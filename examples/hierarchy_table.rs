//! Prints the hierarchy tables of the reproduction (experiments E3 & E4):
//!
//! 1. the strict chain of set-consensus powers between 2-consensus and
//!    registers;
//! 2. the `(N, K)-SC from (m, j)-SC` implementability grid ("Theorem 41");
//! 3. the deterministic grouped family per consensus level, with the task
//!    ceiling shared by every object of that level;
//! 4. streaming verdict-goal spot checks of the E1 consensus claims (the
//!    same `grouped_consensus_check` used by the experiment, which explores
//!    under `ExploreGoal::Verdict` and exits at the first refutation).
//!
//! Run with: `cargo run --example hierarchy_table`

use subconsensus::core::{
    grouped_consensus_check, grouped_task_bound, implementable, level_power, partition_bound,
    sc_chain, GroupedObject, ScPower,
};

fn main() {
    println!("── The sub-consensus chain (strictly decreasing powers) ──────────────");
    println!("   2-consensus = (2,1)-SC ≻ (3,2)-SC ≻ … ≻ registers\n");
    for link in sc_chain(10) {
        println!("   {link}");
    }

    println!("\n── Theorem-41 grid: can (N,K)-SC be built from (m,j)-SC + registers? ──");
    let sources = [(2usize, 1usize), (3, 1), (3, 2), (4, 2), (4, 3), (5, 3)];
    print!("{:>10}", "(N,K) \\ src");
    for (m, j) in sources {
        print!("{:>9}", format!("({m},{j})"));
    }
    println!();
    for n in 2..=8usize {
        for k in 1..n {
            let target = ScPower::new(n, k);
            print!("{:>10}", format!("({n},{k})"));
            for (m, j) in sources {
                let source = ScPower::new(m, j);
                let yes = implementable(target, source);
                let bound = partition_bound(n, m, j);
                print!(
                    "{:>9}",
                    if yes {
                        "yes".to_string()
                    } else {
                        format!("no:{bound}")
                    }
                );
            }
            println!();
        }
    }
    println!("   (`no:b` = the source forces at least b distinct values on N processes)");

    println!("\n── The deterministic grouped family O_{{n,k}} ─────────────────────────");
    println!(
        "{:>8} {:>8} {:>10} {:>16} {:>22}",
        "n", "k", "capacity", "solves", "task ceiling @N=cap"
    );
    for n in 2..=4usize {
        for k in 0..=3usize {
            let o = GroupedObject::for_level(n, k);
            let p = level_power(n, k);
            println!(
                "{:>8} {:>8} {:>10} {:>16} {:>22}",
                n,
                k,
                o.capacity(),
                p.to_string(),
                format!("⌈{}/{}⌉ = {}", p.n, n, grouped_task_bound(n, p.n)),
            );
        }
    }
    println!(
        "\n   Every object of consensus number n has the same task ceiling ⌈N/n⌉ —\n   \
         the paper's O_{{n,k}} hierarchy therefore lives in the object-implementation\n   \
         relation (see EXPERIMENTS.md, E4), not in task solvability."
    );

    println!("\n── E1 verdict-goal spot checks (streaming valency, early exit) ───────");
    println!(
        "{:>7} {:>8} {:>8} {:>8} {:>10} {:>14} {:>10}",
        "", "n", "k", "procs", "consensus", "max distinct", "configs"
    );
    for (n, k) in [(2usize, 1usize), (3, 0)] {
        // `procs = n` proves the level solves n-consensus; `procs = n + 1`
        // refutes it and the streaming check stops at the first
        // disagreeing schedule instead of finishing the graph.
        for procs in [n, n + 1] {
            let c = grouped_consensus_check(n, k, procs).expect("model check");
            println!(
                "VERDICT {:>8} {:>8} {:>8} {:>10} {:>14} {:>10}",
                c.n,
                c.k,
                c.procs,
                if c.solves_consensus { "yes" } else { "no" },
                if c.solves_consensus {
                    c.max_distinct.to_string()
                } else {
                    format!("≥{}", c.max_distinct)
                },
                c.configs,
            );
        }
    }
    println!(
        "   (refuted rows exit early: no freeze, no reverse-CSR, and the\n    \
         configuration count stops at the level that decided the answer)"
    );
}
