//! The Common2 landscape (experiment E5): what 2-consensus *can* build.
//!
//! The paper refutes the Common2 conjecture (that all consensus-number-2
//! objects are equivalent to 2-consensus). This example shows the
//! *positive* side that made the conjecture plausible:
//!
//! * one-shot test-and-set for any number of processes, via a tournament of
//!   2-bounded consensus objects;
//! * a linearizable FIFO queue for 2 processes, via Herlihy's universal
//!   construction over 2-bounded consensus objects — with every random
//!   history checked against the sequential queue spec.
//!
//! Run with: `cargo run --example common2`

use std::sync::Arc;

use subconsensus::objects::{Consensus, Queue, RegisterArray};
use subconsensus::protocols::{tournament_nodes, Tournament, UniversalConstruction};
use subconsensus::sim::{
    check_linearizable, run, run_concurrent, BaseObjects, FirstOutcome, Implementation, ObjectSpec,
    Op, Protocol, RandomScheduler, RunOptions, SystemBuilder, Value,
};

fn tournament_demo() -> Result<(), Box<dyn std::error::Error>> {
    println!("── test-and-set for 6 processes from 2-consensus objects ──");
    let n = 6;
    let mut b = SystemBuilder::new();
    let base = b.add_object_array(tournament_nodes(n), |_| {
        Box::new(Consensus::bounded(2)) as Box<dyn ObjectSpec>
    });
    let p: Arc<dyn Protocol> = Arc::new(Tournament::new(base, n));
    b.add_processes(p, (0..n).map(Value::from));
    let spec = b.build();

    for seed in 0..5 {
        let mut sched = RandomScheduler::seeded(seed);
        let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default())?;
        let winner = out
            .decisions()
            .iter()
            .position(|d| *d == Some(Value::Int(0)))
            .expect("exactly one winner");
        println!("   seed {seed}: winner = P{winner}");
    }
    Ok(())
}

fn universal_demo() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n── linearizable queue for 2 processes from 2-consensus objects ──");
    let nprocs = 2;
    let nslots = 24;
    let queue_spec = Queue::new();
    let mut ok = 0;
    for seed in 0..50 {
        let mut bank = BaseObjects::new();
        let announce = bank.add(RegisterArray::new(nprocs));
        let slots = bank.add_array(nslots, |_| {
            Box::new(Consensus::bounded(nprocs)) as Box<dyn ObjectSpec>
        });
        let inner: Arc<dyn ObjectSpec> = Arc::new(Queue::new());
        let im: Arc<dyn Implementation> = Arc::new(UniversalConstruction::new(
            inner, announce, slots, nslots, nprocs,
        ));
        let workload = vec![
            vec![
                Op::unary("enq", Value::Int(1)),
                Op::new("deq"),
                Op::unary("enq", Value::Int(3)),
            ],
            vec![Op::unary("enq", Value::Int(2)), Op::new("deq")],
        ];
        let mut sched = RandomScheduler::seeded(seed);
        let out = run_concurrent(
            &bank,
            &im,
            workload,
            &mut sched,
            &mut FirstOutcome,
            1_000_000,
        )?;
        if check_linearizable(&out.history, &queue_spec)?.is_some() {
            ok += 1;
        } else {
            println!("   seed {seed}: NOT LINEARIZABLE\n{}", out.history);
        }
    }
    println!("   {ok}/50 random histories linearizable against the sequential queue spec");
    println!(
        "\nThe paper's point: this positive power of 2-consensus notwithstanding,\n\
         consensus number 2 objects are NOT all equivalent — see EXPERIMENTS.md E4."
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    tournament_demo()?;
    universal_demo()
}
