//! The adversary at work: why registers cannot solve consensus.
//!
//! The natural "write your value, read the other's, take the minimum"
//! protocol terminates under every schedule — but the model checker finds
//! the schedules where the two processes disagree, and the valency analysis
//! shows the bivalence structure that the FLP/Herlihy-style proofs (used in
//! the paper's Section-6 lineage) exploit. For contrast, the adopt–commit
//! protocol is run on the same inputs: registers *can* weaken agreement,
//! they just cannot finish the job.
//!
//! Run with: `cargo run --example adversary`

use std::sync::Arc;

use subconsensus::modelcheck::{
    check_wait_freedom, ExploreOptions, StateGraph, TerminalReport, Valency,
};
use subconsensus::objects::RegisterArray;
use subconsensus::protocols::{AdoptCommit, WriteReadMin};
use subconsensus::sim::{Protocol, SystemBuilder, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("── broken register consensus: write, read other, take min ──");
    let mut b = SystemBuilder::new();
    let regs = b.add_object(RegisterArray::new(2));
    let p: Arc<dyn Protocol> = Arc::new(WriteReadMin::new(regs));
    b.add_processes(p, [Value::Int(1), Value::Int(2)]);
    let spec = b.build();

    let graph = StateGraph::explore(&spec, &ExploreOptions::default())?;
    let report = TerminalReport::of(&graph);
    println!("   configurations explored : {}", graph.len());
    println!(
        "   termination             : {:?}",
        check_wait_freedom(&graph)
    );
    println!("   distinct decision sets  : {:?}", report.decision_sets);
    println!(
        "   worst-case disagreement : {} distinct values",
        report.max_distinct_decisions
    );

    let valency = Valency::compute(&graph);
    let bivalent = (0..graph.len()).filter(|&i| valency.is_bivalent(i)).count();
    println!("   bivalent configurations : {bivalent}/{}", graph.len());

    // Extract the disagreeing schedule and replay it step by step.
    let schedule = graph
        .witness_schedule(|c| c.is_final() && c.decided_values().len() == 2)
        .expect("the checker found a disagreeing terminal");
    let rendered: Vec<String> = schedule.iter().map(ToString::to_string).collect();
    println!("   a disagreeing schedule  : {}", rendered.join(" → "));
    let mut replay = subconsensus::sim::ReplayScheduler::new(schedule);
    let out = subconsensus::sim::run(
        &spec,
        &mut replay,
        &mut subconsensus::sim::FirstOutcome,
        &subconsensus::sim::RunOptions::default().traced(),
    )?;
    print!("{}", out.trace);

    println!("\n── adopt–commit on the same inputs: registers CAN weaken agreement ──");
    let mut b = SystemBuilder::new();
    let r1 = b.add_object(RegisterArray::new(2));
    let r2 = b.add_object(RegisterArray::new(2));
    let p: Arc<dyn Protocol> = Arc::new(AdoptCommit::new(r1, r2, 2));
    b.add_processes(p, [Value::Int(1), Value::Int(2)]);
    let spec = b.build();
    let graph = StateGraph::explore(&spec, &ExploreOptions::default())?;
    let report = TerminalReport::of(&graph);
    println!("   configurations explored : {}", graph.len());
    println!(
        "   termination             : {:?}",
        check_wait_freedom(&graph)
    );
    println!("   outcome sets            :");
    for set in &report.decision_sets {
        let rendered: Vec<String> = set.iter().map(ToString::to_string).collect();
        println!("     {{{}}}", rendered.join(", "));
    }
    println!(
        "\n   Every set with a `commit` is unanimous on its value (CA-agreement);\n   \
         full agreement is exactly what registers cannot force — the gap the\n   \
         paper's deterministic sub-consensus objects live in."
    );
    Ok(())
}
