//! Experiment E1 from the command line: exhaustively model-check the
//! consensus number of the deterministic grouped family.
//!
//! For each level `(n, k)` the one-step propose protocol is explored over
//! *every* schedule: with `n` processes it always agrees (consensus number
//! ≥ n); with `n + 1` processes the checker exhibits disagreement —
//! matching the paper's claim that `O_{n,k}` has consensus number exactly
//! `n` for every `k`.
//!
//! Run with: `cargo run --release --example consensus_number`

use subconsensus::core::grouped_consensus_check;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>4} {:>4} {:>7} {:>10} {:>14} {:>10}",
        "n", "k", "procs", "solves?", "max distinct", "configs"
    );
    for n in 1..=3usize {
        for k in 0..=1usize {
            for procs in [n, n + 1] {
                let r = grouped_consensus_check(n, k, procs)?;
                println!(
                    "{:>4} {:>4} {:>7} {:>10} {:>14} {:>10}",
                    r.n,
                    r.k,
                    r.procs,
                    if r.solves_consensus { "yes" } else { "NO" },
                    r.max_distinct,
                    r.configs
                );
                let expect_solved = procs <= n;
                assert_eq!(
                    r.solves_consensus, expect_solved,
                    "consensus number of O_{{{n},{k}}} must be exactly {n}"
                );
            }
        }
    }
    println!("\nevery row matches: consensus number of O_{{n,k}} is exactly n, for every k");
    Ok(())
}
