//! Machine-checked impossibility: enumerate EVERY bounded protocol.
//!
//! For two processes with binary inputs, enumerate all decision-tree
//! protocols of bounded depth over one shared object and exhaustively
//! model-check each against binary consensus. When the search returns no
//! witness, that is a *theorem* for the class:
//!
//! * depth 1 over a `(3,2)`-set-consensus object — impossible (10 trees);
//! * depth 1 over `WRN₃` — impossible (50 trees): the kernel of "WRN is
//!   sub-consensus";
//! * depth 2 over `(3,2)`-SC — impossible (202 trees, ~82k model checks;
//!   pass `--deep` and use `--release`, takes ~10 s);
//! * sanity: over a consensus object a witness IS found.
//!
//! Run with: `cargo run --release --example impossibility_search [--deep]`

use subconsensus::core::{
    search_binary_consensus, set_consensus_32_class, wrn_class, SearchOutcome,
};
use subconsensus::objects::{Consensus, SetConsensus};
use subconsensus::wrn::Wrn;

fn report(label: &str, out: &SearchOutcome) {
    match out.witness {
        Some(w) => println!(
            "   {label}: SOLVABLE (witness trees {w:?}; {} trees/role, {} checks)",
            out.trees, out.checks
        ),
        None => println!(
            "   {label}: IMPOSSIBLE — no protocol in the class solves binary consensus \
             ({} trees/role, {} exhaustive model checks)",
            out.trees, out.checks
        ),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deep = std::env::args().any(|a| a == "--deep");
    println!("── bounded-exhaustive binary-consensus search (2 processes) ──\n");

    let out = search_binary_consensus(
        || Box::new(Consensus::unbounded()),
        &set_consensus_32_class(1),
    )?;
    report("consensus object, depth ≤ 1 (sanity)", &out);
    assert!(out.witness.is_some());

    let out = search_binary_consensus(
        || Box::new(SetConsensus::new(3, 2).expect("valid params")),
        &set_consensus_32_class(1),
    )?;
    report("(3,2)-set-consensus object, depth ≤ 1", &out);
    assert!(out.witness.is_none());

    let out = search_binary_consensus(|| Box::new(Wrn::new(3)), &wrn_class(3, 1))?;
    report("WRN₃ object, depth ≤ 1", &out);
    assert!(out.witness.is_none());

    if deep {
        println!("\n   running the deep search (depth ≤ 2 over (3,2)-SC)…");
        let t0 = std::time::Instant::now();
        let out = search_binary_consensus(
            || Box::new(SetConsensus::new(3, 2).expect("valid params")),
            &set_consensus_32_class(2),
        )?;
        report("(3,2)-set-consensus object, depth ≤ 2", &out);
        println!("   ({:?})", t0.elapsed());
        assert!(out.witness.is_none());
    } else {
        println!("\n   (pass --deep for the depth-2 search: 202 trees, ~82k checks, ~10 s)");
    }

    println!(
        "\nEvery IMPOSSIBLE line is a machine-checked theorem for its protocol class —\n\
         the executable kernel of the paper lineage's sub-consensus impossibilities."
    );
    Ok(())
}
