//! Machine-checked impossibility: enumerate EVERY bounded protocol.
//!
//! For two processes with binary inputs, enumerate all decision-tree
//! protocols of bounded depth over one shared object and exhaustively
//! model-check each against binary consensus. When the search returns no
//! witness, that is a *theorem* for the class:
//!
//! * depth 1 over a `(3,2)`-set-consensus object — impossible (10 trees);
//! * depth 1 over `WRN₃` — impossible (50 trees): the kernel of "WRN is
//!   sub-consensus";
//! * depth 2 over `(3,2)`-SC — impossible (202 trees, ~82k model checks;
//!   pass `--deep` and use `--release`, takes ~10 s);
//! * sanity: over a consensus object a witness IS found.
//!
//! The run closes with a telemetry demo: one instrumented exploration with
//! a per-level progress heartbeat and the final [`ExploreMetrics`] phase
//! breakdown — the same counters `MC_PROGRESS=1` / `MC_TRACE=<path>` turn
//! on for every exploration (including all of the searches above).
//!
//! Run with: `cargo run --release --example impossibility_search [--deep]`

use std::sync::Arc;

use subconsensus::core::{
    search_binary_consensus, set_consensus_32_class, wrn_class, GroupedObject, SearchOutcome,
};
use subconsensus::modelcheck::{ExploreOptions, Recorder, StateGraph};
use subconsensus::objects::{Consensus, SetConsensus};
use subconsensus::protocols::ProposeDecide;
use subconsensus::sim::{Protocol, SystemBuilder, Value};
use subconsensus::wrn::Wrn;

fn report(label: &str, out: &SearchOutcome) {
    match out.witness {
        Some(w) => println!(
            "   {label}: SOLVABLE (witness trees {w:?}; {} trees/role, {} checks)",
            out.trees, out.checks
        ),
        None => println!(
            "   {label}: IMPOSSIBLE — no protocol in the class solves binary consensus \
             ({} trees/role, {} exhaustive model checks)",
            out.trees, out.checks
        ),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deep = std::env::args().any(|a| a == "--deep");
    println!("── bounded-exhaustive binary-consensus search (2 processes) ──\n");

    let out = search_binary_consensus(
        || Box::new(Consensus::unbounded()),
        &set_consensus_32_class(1),
    )?;
    report("consensus object, depth ≤ 1 (sanity)", &out);
    assert!(out.witness.is_some());

    let out = search_binary_consensus(
        || Box::new(SetConsensus::new(3, 2).expect("valid params")),
        &set_consensus_32_class(1),
    )?;
    report("(3,2)-set-consensus object, depth ≤ 1", &out);
    assert!(out.witness.is_none());

    let out = search_binary_consensus(|| Box::new(Wrn::new(3)), &wrn_class(3, 1))?;
    report("WRN₃ object, depth ≤ 1", &out);
    assert!(out.witness.is_none());

    if deep {
        println!("\n   running the deep search (depth ≤ 2 over (3,2)-SC)…");
        let t0 = std::time::Instant::now();
        let out = search_binary_consensus(
            || Box::new(SetConsensus::new(3, 2).expect("valid params")),
            &set_consensus_32_class(2),
        )?;
        report("(3,2)-set-consensus object, depth ≤ 2", &out);
        println!("   ({:?})", t0.elapsed());
        assert!(out.witness.is_none());
    } else {
        println!("\n   (pass --deep for the depth-2 search: 202 trees, ~82k checks, ~10 s)");
    }

    println!(
        "\nEvery IMPOSSIBLE line is a machine-checked theorem for its protocol class —\n\
         the executable kernel of the paper lineage's sub-consensus impossibilities."
    );

    // ── exploration telemetry demo ──────────────────────────────────────
    // One instrumented exploration of the E1 fixture (3 processes through
    // a deterministic O_{2,1}): a heartbeat per level and the full phase /
    // counter breakdown at the end. Every exploration above accepts the
    // same instrumentation via `MC_PROGRESS=1` / `MC_TRACE=<path>`.
    println!("\n── exploration telemetry (E1 fixture, 3 procs over O_{{2,1}}) ──\n");
    let mut b = SystemBuilder::new();
    let obj = b.add_object(GroupedObject::for_level(2, 1));
    let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
    b.add_processes(p, (1..=3).map(Value::Int));
    let spec = b.build();
    let rec = Recorder::new()
        .with_timing()
        .with_progress(1, |r| println!("   heartbeat: {r}"));
    let g = StateGraph::explore_with(&spec, &ExploreOptions::default().with_por(true), &rec)?;
    println!("\n{}\n", g.metrics());
    println!(
        "   (set MC_PROGRESS=1 for a stderr heartbeat and MC_TRACE=<path> for a\n\
         \x20   per-level JSONL span log on any exploration in this workspace)"
    );
    Ok(())
}
