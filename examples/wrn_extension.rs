//! Extension demo: life strictly between registers and 2-consensus.
//!
//! The PODC 2016 paper left open whether any deterministic object of
//! consensus number 1 exceeds registers. The answer (follow-up work,
//! implemented in `subconsensus-wrn`) is the Write-and-Read-Next family:
//! `WRN_k` has consensus number 1 for `k ≥ 3`, yet solves `(k, k-1)`-set
//! consensus — and the family forms an infinite strict hierarchy.
//!
//! Run with: `cargo run --example wrn_extension`

use std::sync::Arc;

use subconsensus::sim::{run, Protocol, RandomScheduler, RunOptions, SystemBuilder, Value};
use subconsensus::wrn::{wrn_hierarchy, wrn_power, Wrn, WrnPropose};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 4;
    println!(
        "── WRN_{k}: deterministic, consensus number 1, power {} ──\n",
        wrn_power(k)
    );

    let mut b = SystemBuilder::new();
    let obj = b.add_object(Wrn::new(k));
    let p: Arc<dyn Protocol> = Arc::new(WrnPropose::new(obj));
    b.add_processes(p, (0..k).map(|i| Value::Int(100 + i as i64)));
    let spec = b.build();

    for seed in 0..6 {
        let mut sched = RandomScheduler::seeded(seed);
        let out = run(
            &spec,
            &mut sched,
            &mut subconsensus::sim::FirstOutcome,
            &RunOptions::default(),
        )?;
        let decisions: Vec<String> = out
            .decisions()
            .iter()
            .map(|d| d.as_ref().map_or("-".into(), ToString::to_string))
            .collect();
        println!(
            "   seed {seed}: decisions = [{}], distinct = {} (bound {})",
            decisions.join(", "),
            out.decided_values().len(),
            k - 1
        );
        assert!(out.decided_values().len() < k);
    }

    println!("\n── the infinite WRN hierarchy (strictly decreasing powers) ──\n");
    for link in wrn_hierarchy(9) {
        println!(
            "   1sWRN_{:<2} ≻ 1sWRN_{:<2}   i.e. {link}",
            link.stronger.n, link.weaker.n
        );
    }
    println!(
        "\nEvery member sits strictly between read-write registers and 2-consensus:\n\
         the deterministic sub-consensus life the paper asked about."
    );
    Ok(())
}
