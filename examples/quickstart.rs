//! Quickstart: deterministic sub-consensus agreement in 30 lines.
//!
//! Four processes propose distinct values through one deterministic
//! `O_{2,1}` grouped object (consensus number 2, capacity 4) and decide at
//! most 2 distinct values — something plain registers can never guarantee.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use subconsensus::core::GroupedObject;
use subconsensus::protocols::ProposeDecide;
use subconsensus::sim::{run, Protocol, RandomScheduler, RunOptions, SystemBuilder, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let object = GroupedObject::for_level(2, 1);
    println!(
        "object O_{{2,1}}: consensus number {}, solves ({}, {})-set consensus\n",
        object.consensus_number(),
        object.set_consensus_power().0,
        object.set_consensus_power().1,
    );

    let mut builder = SystemBuilder::new();
    let obj = builder.add_object(object);
    let protocol: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
    builder.add_processes(protocol, (1..=4).map(|v| Value::Int(v * 11)));
    let system = builder.build();

    for seed in 0..5 {
        let mut sched = RandomScheduler::seeded(seed);
        let mut chooser = RandomScheduler::seeded(seed + 1000);
        let out = run(
            &system,
            &mut sched,
            &mut chooser,
            &RunOptions::default().traced(),
        )?;
        let decisions: Vec<String> = out
            .decisions()
            .iter()
            .map(|d| d.as_ref().map_or("-".into(), ToString::to_string))
            .collect();
        println!(
            "seed {seed}: decisions per process = [{}], distinct = {}",
            decisions.join(", "),
            out.decided_values().len()
        );
        assert!(out.decided_values().len() <= 2, "2-agreement must hold");
    }

    println!("\nfull trace of seed 0:");
    let mut sched = RandomScheduler::seeded(0);
    let mut chooser = RandomScheduler::seeded(1000);
    let out = run(
        &system,
        &mut sched,
        &mut chooser,
        &RunOptions::default().traced(),
    )?;
    print!("{}", out.trace);
    Ok(())
}
