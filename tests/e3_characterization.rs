//! Integration test for experiment E3: the Theorem-41 counting
//! characterization agrees with executed constructions.
//!
//! Positive direction: wherever the predicate says `(N, K)-SC` is
//! implementable from `(m, j)`-set-consensus objects, the partition
//! protocol actually achieves ≤ K distinct decisions — exhaustively over
//! all schedules *and* all nondeterministic object outcomes for small
//! sizes, statistically for larger ones.
//!
//! Tightness: the partition bound itself is attained by some execution.

use std::sync::Arc;

use subconsensus::core::{implementable, partition_bound, witness_partition, ScPower};
use subconsensus::modelcheck::{max_distinct_decisions, ExploreOptions, StateGraph};
use subconsensus::objects::{Consensus, SetConsensus};
use subconsensus::protocols::PartitionPropose;
use subconsensus::sim::{ObjectSpec, Protocol, SystemBuilder, SystemSpec, Value};
use subconsensus::tasks::{check_random, SetConsensusTask};

/// Builds the partition system: `procs` processes over `⌈procs/m⌉` copies of
/// an `(m, j)` agreement object.
fn partition_system(procs: usize, m: usize, j: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let blocks = procs.div_ceil(m);
    let base = b.add_object_array(blocks, |_| {
        if j == 1 {
            Box::new(Consensus::bounded(m)) as Box<dyn ObjectSpec>
        } else {
            Box::new(SetConsensus::new(m, j).expect("0 < j < m")) as Box<dyn ObjectSpec>
        }
    });
    let p: Arc<dyn Protocol> = Arc::new(PartitionPropose::new(base, m));
    b.add_processes(p, (0..procs).map(|i| Value::Int(i as i64 + 1)));
    b.build()
}

#[test]
fn exhaustive_grid_matches_predicate() {
    // Small grid, fully exhaustive (including set-consensus object
    // nondeterminism).
    let cases = [
        // (procs, m, j)
        (4usize, 2usize, 1usize),
        (3, 2, 1),
        (3, 3, 2),
        (4, 3, 2),
        (5, 2, 1),
    ];
    for (procs, m, j) in cases {
        let bound = partition_bound(procs, m, j);
        let spec = partition_system(procs, m, j);
        let graph = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        assert!(!graph.is_truncated(), "({procs},{m},{j}) truncated");
        let worst = max_distinct_decisions(&graph);
        assert_eq!(
            worst, bound,
            "({procs} procs from ({m},{j})-objects): worst case must equal the partition bound"
        );
        // Predicate consistency: the construction solves (procs, bound) and
        // the predicate agrees; (procs, bound - 1) is not implementable.
        assert!(
            implementable(
                ScPower::new(procs, bound),
                ScPower::new(m, j.min(m.saturating_sub(1)).max(1))
            ) || j >= m
        );
        if bound > 1 {
            assert!(!implementable(
                ScPower::new(procs, bound - 1),
                ScPower::new(m, j)
            ));
        }
    }
}

#[test]
fn random_larger_grid_respects_predicate() {
    for (procs, m, j) in [(8usize, 3usize, 2usize), (9, 4, 2), (10, 5, 3), (7, 3, 1)] {
        let bound = partition_bound(procs, m, j);
        let spec = partition_system(procs, m, j);
        let task = SetConsensusTask::new(bound);
        let report = check_random(&spec, &task, 0..300, 200_000).unwrap();
        assert!(report.solved(), "({procs},{m},{j}): {report:?}");
    }
}

#[test]
fn witness_partitions_realize_the_bound_arithmetically() {
    for n in 1..=20 {
        for m in 1..=8 {
            for j in 1..=m {
                let blocks = witness_partition(n, m);
                let realized: usize = blocks.iter().map(|&b| j.min(b)).sum();
                assert_eq!(
                    realized,
                    partition_bound(n, m, j),
                    "witness must meet the bound for ({n},{m},{j})"
                );
            }
        }
    }
}

#[test]
fn predicate_grid_sanity_against_known_landmarks() {
    // Herlihy: n-consensus is universal for n processes — in particular it
    // builds every (n', k) with n' ≤ n.
    for n in 2..=6 {
        for np in 1..=n {
            for k in 1..=np {
                assert!(implementable(ScPower::new(np, k), ScPower::consensus(n)));
            }
        }
    }
    // Chaudhuri: k-set consensus for n > k processes is not implementable
    // from registers — here: from (anything strictly weaker at the size).
    // (2,1) not from (3,2), (4,3), ...
    for k in 2..=6 {
        assert!(!implementable(
            ScPower::consensus(2),
            ScPower::new(k + 1, k)
        ));
    }
    // The paper lineage's concrete example: WRN₃-power objects
    // ((3,2)-SC-equivalent) implement (12, 8)-set consensus.
    assert!(implementable(ScPower::new(12, 8), ScPower::new(3, 2)));
    assert!(!implementable(ScPower::new(12, 7), ScPower::new(3, 2)));
}
