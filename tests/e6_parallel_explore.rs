//! E6 (parallel exploration): the level-synchronized parallel BFS must
//! produce a graph node-for-node identical to the sequential one, on the
//! real E1 fixtures (grouped-family systems), for every thread count.

use std::sync::Arc;

use subconsensus_core::GroupedObject;
use subconsensus_modelcheck::{
    check_wait_freedom, ExploreOptions, StateGraph, StoreBackend, Valency,
};
use subconsensus_protocols::ProposeDecide;
use subconsensus_sim::{Protocol, SystemBuilder, SystemSpec, Value};

/// `procs` processes proposing distinct values through one
/// `GroupedObject::for_level(n, k)` — the E1 benchmark fixture.
fn grouped_system(n: usize, k: usize, procs: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let obj = b.add_object(GroupedObject::for_level(n, k));
    let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
    b.add_processes(p, (0..procs).map(|i| Value::Int(i as i64 + 1)));
    b.build()
}

fn assert_identical(a: &StateGraph, b: &StateGraph, label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: node count");
    for i in 0..a.len() {
        assert_eq!(a.config(i), b.config(i), "{label}: node {i}");
        assert_eq!(a.edges(i), b.edges(i), "{label}: edges of node {i}");
    }
    assert_eq!(a.terminals(), b.terminals(), "{label}: terminals");
    assert_eq!(a.is_truncated(), b.is_truncated(), "{label}: truncation");
}

#[test]
fn parallel_graph_identical_on_grouped_fixtures() {
    for (n, k, procs) in [(2, 0, 2), (2, 1, 3), (3, 0, 3)] {
        let spec = grouped_system(n, k, procs);
        let base = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        assert!(!base.is_truncated());
        for threads in [2usize, 4, 7] {
            let opts = ExploreOptions::default().with_threads(threads);
            let g = StateGraph::explore(&spec, &opts).unwrap();
            assert_identical(&base, &g, &format!("({n},{k},{procs}) x{threads} threads"));
        }
    }
}

#[test]
fn interned_store_matches_deep_store_across_thread_counts() {
    // The hash-consed (default) node store must reproduce the deep-`Config`
    // store bit-for-bit — same nodes in the same order, same edges, same
    // terminals — for every thread count, while holding strictly less memory
    // once sharing has anything to share. (`approx_bytes` honestly counts
    // the interner's tables and unique states, so on graphs of a dozen
    // nodes that fixed overhead dominates; the byte win is asserted on the
    // larger fixtures, where it is structural, not incidental.)
    for (n, k, procs) in [(2, 0, 2), (2, 1, 3), (3, 0, 3)] {
        let spec = grouped_system(n, k, procs);
        let deep = StateGraph::explore(&spec, &ExploreOptions::default().with_interned(false))
            .expect("deep explore");
        assert!(
            deep.interner_stats().is_none(),
            "deep store reports no interner"
        );
        for threads in [1usize, 2, 4] {
            let opts = ExploreOptions::default().with_threads(threads);
            let g = StateGraph::explore(&spec, &opts).expect("interned explore");
            assert_identical(&deep, &g, &format!("({n},{k},{procs}) interned x{threads}"));
            let stats = g
                .interner_stats()
                .expect("interned store exposes arena stats");
            assert!(stats.object_states <= g.len());
            if g.len() >= 50 {
                assert!(
                    g.approx_bytes() < deep.approx_bytes(),
                    "({n},{k},{procs}) x{threads}: interned {} bytes vs deep {} bytes",
                    g.approx_bytes(),
                    deep.approx_bytes()
                );
            }
        }
    }
}

#[test]
fn sharded_graph_identical_on_grouped_fixtures() {
    // The fingerprint-partitioned explorer must reproduce the single-store
    // graph exactly — for every shard count, crossed with thread counts
    // (which shape only the unsharded baseline) and both node stores.
    for (n, k, procs) in [(2, 0, 2), (2, 1, 3), (3, 0, 3)] {
        let spec = grouped_system(n, k, procs);
        for interned in [false, true] {
            let base =
                StateGraph::explore(&spec, &ExploreOptions::default().with_interned(interned))
                    .unwrap();
            for shards in [2usize, 4] {
                for threads in [1usize, 4] {
                    let opts = ExploreOptions::default()
                        .with_interned(interned)
                        .with_shards(shards)
                        .with_threads(threads);
                    let g = StateGraph::explore(&spec, &opts).unwrap();
                    assert_identical(
                        &base,
                        &g,
                        &format!(
                            "({n},{k},{procs}) interned={interned} x{shards} shards x{threads} threads"
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_interned_bytes_match_unsharded() {
    // The freeze-time arena stitch must land on the exact single-interner
    // representation: `approx_bytes` is diffed across `MC_SHARDS` values
    // by scripts/bench_guard.sh, so any drift here is a CI failure too.
    let spec = grouped_system(2, 1, 3);
    let base = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
    for shards in [2usize, 4] {
        let g = StateGraph::explore(&spec, &ExploreOptions::default().with_shards(shards)).unwrap();
        assert_eq!(
            g.approx_bytes(),
            base.approx_bytes(),
            "{shards} shards: stitched arena must cost what one arena costs"
        );
        let stats = g.interner_stats().expect("sharded interned store");
        let base_stats = base.interner_stats().unwrap();
        assert_eq!(stats.object_states, base_stats.object_states);
        assert_eq!(stats.proc_states, base_stats.proc_states);
    }
}

#[test]
fn disk_store_graph_identical_and_reconstituted() {
    // The disk-backed store, forced to spill by a hot-tier budget far
    // below the fixture's footprint, must reproduce the in-memory graph
    // node-for-node — across shard counts — and the freeze-time
    // reconstitution must land on the exact in-memory representation
    // (same `approx_bytes`, same interner arenas), because arenas are
    // append-only and ids never move under eviction.
    let spec = grouped_system(2, 1, 4);
    let base = StateGraph::explore(
        &spec,
        &ExploreOptions::default().with_store(StoreBackend::Memory),
    )
    .unwrap();
    assert!(base.len() > 500, "fixture must dwarf the tiny budget");
    for shards in [1usize, 2, 4] {
        let opts = ExploreOptions::default()
            .with_shards(shards)
            .with_store(StoreBackend::Disk)
            .with_store_budget(16 << 10);
        let g = StateGraph::explore(&spec, &opts).unwrap();
        assert_identical(&base, &g, &format!("disk x{shards} shards"));
        assert_eq!(
            g.approx_bytes(),
            base.approx_bytes(),
            "{shards} shards: reconstituted store must cost what memory costs"
        );
        let stats = g.interner_stats().expect("disk store is interned");
        let base_stats = base.interner_stats().unwrap();
        assert_eq!(stats.object_states, base_stats.object_states);
        assert_eq!(stats.proc_states, base_stats.proc_states);
        let sm = g.metrics().store.expect("disk runs report store metrics");
        assert!(
            sm.spilled_bytes > 0,
            "{shards} shards: a 16 KiB budget must force spill"
        );
    }
}

#[test]
fn analyses_agree_across_thread_counts() {
    let spec = grouped_system(2, 1, 3);
    let seq = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
    let par = StateGraph::explore(&spec, &ExploreOptions::default().with_threads(4)).unwrap();
    // Downstream analyses see the same graph, so their verdicts match
    // exactly (not just up to isomorphism).
    assert_eq!(
        check_wait_freedom(&seq).is_wait_free(),
        check_wait_freedom(&par).is_wait_free()
    );
    let vseq = Valency::compute(&seq);
    let vpar = Valency::compute(&par);
    for i in 0..seq.len() {
        assert_eq!(vseq.valence(i), vpar.valence(i), "valency of node {i}");
    }
}
