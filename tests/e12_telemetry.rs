//! E12 (exploration telemetry): instrumentation must be invisible to the
//! explorer — graphs are node-for-node identical with telemetry on vs off
//! across every store/reduction/thread combination — while the collected
//! metrics are internally consistent (counters sum to node totals, phase
//! times sum under the total), the trace/heartbeat sinks fire, and the DOT
//! export is well-formed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use subconsensus_core::GroupedObject;
use subconsensus_modelcheck::{
    ExploreOptions, Recorder, StateGraph, StoreBackend, TruncationCause, Valency,
};
use subconsensus_objects::Consensus;
use subconsensus_protocols::ProposeDecide;
use subconsensus_sim::json::JsonValue;
use subconsensus_sim::{Pid, Protocol, SystemBuilder, SystemSpec, Value};

/// The E1 fixture: `procs` processes proposing through one
/// `GroupedObject::for_level(n, k)`. Equal inputs give nontrivial
/// symmetry groups; distinct inputs keep them trivial.
fn grouped_system(n: usize, k: usize, procs: usize, equal_inputs: bool) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let obj = b.add_object(GroupedObject::for_level(n, k));
    let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
    b.add_processes(
        p,
        (0..procs).map(|i| Value::Int(if equal_inputs { 1 } else { i as i64 + 1 })),
    );
    b.build()
}

fn assert_identical(a: &StateGraph, b: &StateGraph, label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: node count");
    for i in 0..a.len() {
        assert_eq!(a.config(i), b.config(i), "{label}: node {i}");
        assert_eq!(a.edges(i), b.edges(i), "{label}: edges of node {i}");
    }
    assert_eq!(a.terminals(), b.terminals(), "{label}: terminals");
    assert_eq!(a.is_truncated(), b.is_truncated(), "{label}: truncation");
}

#[test]
fn instrumented_graphs_identical_across_matrix() {
    // Telemetry on (timers + per-level heartbeat) vs off, × interned ×
    // symmetry × POR × threads: the recorder is write-only from the
    // explorer's view, so every combination must reproduce the plain
    // graph node-for-node.
    let spec = grouped_system(2, 1, 3, true);
    for interned in [true, false] {
        for symmetry in [false, true] {
            for por in [false, true] {
                let base_opts = ExploreOptions::default()
                    .with_interned(interned)
                    .with_symmetry(symmetry)
                    .with_por(por);
                let plain = StateGraph::explore(&spec, &base_opts).unwrap();
                for threads in [1usize, 4] {
                    let opts = base_opts.clone().with_threads(threads).with_metrics(true);
                    let rec = Recorder::new().with_timing().with_progress(1, |_| {});
                    let instrumented = StateGraph::explore_with(&spec, &opts, &rec).unwrap();
                    assert_identical(
                        &plain,
                        &instrumented,
                        &format!("interned={interned} sym={symmetry} por={por} threads={threads}"),
                    );
                    assert!(instrumented.metrics().timed);
                }
            }
        }
    }
}

#[test]
fn persistent_sinks_invisible_across_matrix() {
    // The persistent observability sinks — run ledger, status file, level
    // trace — must be as invisible as the in-memory recorder: with all
    // three installed at once, every interned × symmetry × POR × shards ×
    // store combination reproduces the plain graph node-for-node, and every
    // artifact the run leaves behind parses with the in-tree JSON parser.
    let dir = std::env::temp_dir().join(format!("e12_sinks_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ledger = dir.join("runs.jsonl");
    let status = dir.join("status.json");
    let spec = grouped_system(2, 1, 3, true);
    let mut runs = 0usize;
    for interned in [true, false] {
        for symmetry in [false, true] {
            for por in [false, true] {
                for (shards, store) in [
                    (1usize, StoreBackend::Memory),
                    (2, StoreBackend::Memory),
                    (2, StoreBackend::Disk),
                ] {
                    // The disk store requires the interned representation.
                    if store == StoreBackend::Disk && !interned {
                        continue;
                    }
                    let label = format!(
                        "interned={interned} sym={symmetry} por={por} \
                         shards={shards} store={store:?}"
                    );
                    let base_opts = ExploreOptions::default()
                        .with_interned(interned)
                        .with_symmetry(symmetry)
                        .with_por(por);
                    let plain = StateGraph::explore(&spec, &base_opts).unwrap();
                    let mut opts = base_opts.with_shards(shards).with_metrics(true);
                    if store == StoreBackend::Disk {
                        opts = opts
                            .with_store(StoreBackend::Disk)
                            .with_store_budget(4 << 10);
                    }
                    let trace = dir.join(format!("trace_{runs}.jsonl"));
                    let rec = Recorder::new()
                        .with_trace(&trace)
                        .expect("create trace file")
                        .with_run_log(&ledger)
                        .with_status_file(&status);
                    let g = StateGraph::explore_with(&spec, &opts, &rec).unwrap();
                    assert_identical(&plain, &g, &label);
                    runs += 1;

                    // The status snapshot left behind is the final "done"
                    // state of *this* run.
                    let sv = JsonValue::parse(&std::fs::read_to_string(&status).unwrap())
                        .unwrap_or_else(|e| panic!("{label}: status: {e}"));
                    assert_eq!(sv.get("state").and_then(JsonValue::as_str), Some("done"));
                    assert_eq!(
                        sv.get("explored").and_then(JsonValue::as_u64),
                        Some(g.len() as u64),
                        "{label}: status explored"
                    );

                    // Every trace line parses.
                    for line in std::fs::read_to_string(&trace).unwrap().lines() {
                        JsonValue::parse(line).unwrap_or_else(|e| panic!("{label}: trace: {e}"));
                    }
                }
            }
        }
    }

    // One ledger line per run, all parseable, all hashing the same spec,
    // each faithfully recording its options and graph facts.
    let text = std::fs::read_to_string(&ledger).unwrap();
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(lines.len(), runs, "one ledger record per exploration");
    let mut hashes = std::collections::HashSet::new();
    for line in &lines {
        let v = JsonValue::parse(line).unwrap_or_else(|e| panic!("ledger: {e}\n{line}"));
        hashes.insert(
            v.get("spec_hash")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_string(),
        );
        let outcome = v.get("outcome").expect("outcome");
        let configs = outcome.get("configs").and_then(JsonValue::as_u64).unwrap();
        let metrics = v.get("metrics").expect("metrics");
        assert_eq!(
            metrics.get("configs").and_then(JsonValue::as_u64),
            Some(configs),
            "outcome and metrics agree on the graph size"
        );
        let opts = v.get("options").expect("options");
        assert!(opts.get("shards").and_then(JsonValue::as_u64).is_some());
        assert!(opts.get("store").and_then(JsonValue::as_str).is_some());
    }
    assert_eq!(hashes.len(), 1, "same spec, same fingerprint: {hashes:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_record_written_only_when_log_installed() {
    // No ledger installed → `explore_with` must not try to append (and the
    // bare `Recorder::new()` path must report no run-log path at all).
    let rec = Recorder::new();
    assert!(rec.run_log().is_none());
    // With one installed, a verdict-goal run records a verdict outcome.
    let dir = std::env::temp_dir().join(format!("e12_ledger_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ledger = dir.join("runs.jsonl");
    let spec = grouped_system(2, 1, 3, true);
    let rec = Recorder::new().with_run_log(&ledger);
    let opts = ExploreOptions::default().with_goal(subconsensus_modelcheck::ExploreGoal::Verdict(
        subconsensus_modelcheck::VerdictQuery::new().require_wait_freedom(),
    ));
    StateGraph::explore_with(&spec, &opts, &rec).unwrap();
    let text = std::fs::read_to_string(&ledger).unwrap();
    let v = JsonValue::parse(text.lines().next().unwrap()).unwrap();
    let outcome = v.get("outcome").unwrap();
    assert_eq!(
        outcome.get("kind").and_then(JsonValue::as_str),
        Some("verdict")
    );
    let verdict = outcome.get("verdict").expect("verdict payload");
    assert!(verdict.get("holds").is_some());
    assert_eq!(
        v.get("options")
            .unwrap()
            .get("goal")
            .and_then(JsonValue::as_str),
        Some("verdict")
    );
    // The record's hash matches a direct fingerprint of the spec.
    assert_eq!(
        v.get("spec_hash").and_then(JsonValue::as_str),
        Some(format!("{:016x}", spec.spec_fingerprint()).as_str())
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn counters_sum_to_node_totals() {
    for (symmetry, por) in [(false, false), (true, false), (false, true), (true, true)] {
        let spec = grouped_system(2, 1, 3, true);
        let opts = ExploreOptions::default()
            .with_symmetry(symmetry)
            .with_por(por)
            .with_metrics(true);
        let g = StateGraph::explore(&spec, &opts).unwrap();
        let m = g.metrics();
        let label = format!("sym={symmetry} por={por}");

        // Every generated successor lands in exactly one merge bucket.
        assert_eq!(
            m.generated,
            m.dedup_hits + m.added + m.capped,
            "{label}: generated = dedup + added + capped"
        );
        // The store holds the root plus every added successor.
        assert_eq!(
            m.added + 1,
            m.configs as u64,
            "{label}: added + root = configs"
        );
        assert_eq!(m.capped, 0, "{label}: unbounded run never caps");
        assert_eq!(m.configs, g.len(), "{label}: metrics configs = graph len");
        assert_eq!(
            m.edges,
            g.stats().edges,
            "{label}: metrics edges = graph edges"
        );
        assert!(m.peak_bytes > 0, "{label}: peak bytes estimated");
        assert_eq!(m.truncation, TruncationCause::Complete, "{label}");

        // Per-level records tile the exploration exactly.
        let new_nodes: usize = m.levels.iter().map(|l| l.new_nodes).sum();
        let items: u64 = m.levels.iter().map(|l| l.items as u64).sum();
        assert_eq!(
            new_nodes as u64 + 1,
            m.configs as u64,
            "{label}: level new_nodes"
        );
        assert_eq!(items, m.expansions, "{label}: level items = expansions");
        let last = m.levels.last().expect("at least one level");
        assert_eq!(last.nodes_total, m.configs, "{label}: final nodes_total");
        assert_eq!(last.edges_total, m.edges, "{label}: final edges_total");

        // Sequential run: phases are disjoint slices of the wall clock.
        assert!(m.timed, "{label}");
        assert!(
            m.phase_sum() <= m.total_ns,
            "{label}: phase sum {} exceeds total {}",
            m.phase_sum(),
            m.total_ns
        );
        if symmetry {
            assert!(m.symmetry_hits > 0, "{label}: canonicalization hit");
        }
    }
}

#[test]
fn sleep_sets_prune_commuting_proposals() {
    // `GroupedObject` declares no commuting ops, so sleep sets never fire
    // on the E1 fixture; equal-value proposals to a consensus object DO
    // commute, and the pruning must show up in the counter.
    let mut b = SystemBuilder::new();
    let obj = b.add_object(Consensus::unbounded());
    let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
    b.add_processes(p, (0..3).map(|_| Value::Int(7)));
    let spec = b.build();
    let opts = ExploreOptions::default().with_por(true).with_metrics(true);
    let g = StateGraph::explore(&spec, &opts).unwrap();
    let m = g.metrics();
    assert!(m.sleep_pruned > 0, "sleep sets pruned nothing: {m:?}");
    assert_eq!(m.generated, m.dedup_hits + m.added + m.capped);
    // Pruning is sound: the reduced graph still reaches a terminal.
    assert!(!g.terminals().is_empty());
}

#[test]
fn truncation_cause_recorded_and_counted() {
    let spec = grouped_system(2, 1, 3, false);
    let g = StateGraph::explore(
        &spec,
        &ExploreOptions::with_max_configs(5).with_metrics(true),
    )
    .unwrap();
    assert!(g.is_truncated());
    let m = g.metrics();
    assert_eq!(m.truncation, TruncationCause::MaxConfigs { cap: 5 });
    assert!(m.truncation.is_truncated());
    assert!(m.capped > 0, "dropped successors counted");
    assert_eq!(m.configs, 5);
    assert_eq!(m.generated, m.dedup_hits + m.added + m.capped);
    let json = m.to_json();
    assert!(
        json.contains("\"cause\": \"max_configs\", \"cap\": 5"),
        "{json}"
    );
}

#[test]
fn disk_store_metrics_reported_and_consistent() {
    // A disk run squeezed under a 4 KiB hot tier must stay invisible to
    // the explorer (same graph), report a `StoreMetrics` block whose
    // counters are internally consistent, and serialize it into the
    // metrics JSON; memory runs must keep the field null.
    let spec = grouped_system(2, 1, 3, false);
    let plain = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
    assert!(
        plain.metrics().store.is_none(),
        "memory runs report no store metrics"
    );
    assert!(plain.metrics().to_json().contains("\"store\": null"));
    for shards in [1usize, 2] {
        let opts = ExploreOptions::default()
            .with_shards(shards)
            .with_store(StoreBackend::Disk)
            .with_store_budget(4 << 10)
            .with_metrics(true);
        let rec = Recorder::new().with_timing();
        let g = StateGraph::explore_with(&spec, &opts, &rec).unwrap();
        assert_identical(&plain, &g, &format!("disk x{shards}"));
        let m = g.metrics();
        let label = format!("disk x{shards}");
        // Eviction changes where rows live, never how many successors each
        // merge bucket absorbs.
        assert_eq!(
            m.generated,
            m.dedup_hits + m.added + m.capped,
            "{label}: generated = dedup + added + capped"
        );
        assert_eq!(m.capped, 0, "{label}: disk runs do not truncate");
        assert_eq!(m.truncation, TruncationCause::Complete, "{label}");
        let s = m.store.expect("disk runs report store metrics");
        assert!(s.spilled_bytes > 0, "{label}: 4 KiB budget forces spill");
        assert!(s.reload_count > 0, "{label}: pinned frontiers fault back");
        assert!(
            (0.0..=1.0).contains(&s.hot_hit_rate()),
            "{label}: hit rate {} in [0, 1]",
            s.hot_hit_rate()
        );
        assert!(
            s.spill_write_ns > 0,
            "{label}: timed run clocks spill writes"
        );
        let json = m.to_json();
        assert!(
            json.contains("\"store\": {\"spilled_bytes\": "),
            "{label}: {json}"
        );
        assert!(json.contains("\"hot_hit_rate\": "), "{label}: {json}");
    }
}

#[test]
fn memory_budget_truncation_recorded_and_counted() {
    // An in-memory run whose resident estimate crosses the budget must
    // truncate cleanly: dedup still resolves, new nodes are rejected, and
    // the cause names the budget (distinct from a max-configs cap).
    let spec = grouped_system(2, 1, 3, false);
    let g = StateGraph::explore(
        &spec,
        &ExploreOptions::default()
            .with_store(StoreBackend::Memory)
            .with_store_budget(2 << 10)
            .with_metrics(true),
    )
    .unwrap();
    assert!(g.is_truncated());
    let m = g.metrics();
    assert_eq!(m.truncation, TruncationCause::MemoryBudget { budget: 2048 });
    assert!(m.truncation.is_truncated());
    assert!(m.capped > 0, "rejected successors counted");
    assert_eq!(m.generated, m.dedup_hits + m.added + m.capped);
    assert!(m.store.is_none(), "no spill happened");
    let json = m.to_json();
    assert!(
        json.contains("\"cause\": \"memory_budget\", \"budget\": 2048"),
        "{json}"
    );

    // The same budget under the disk backend completes: spilling keeps the
    // resident estimate bounded instead of rejecting nodes.
    let full = StateGraph::explore(
        &spec,
        &ExploreOptions::default()
            .with_store(StoreBackend::Disk)
            .with_store_budget(2 << 10)
            .with_metrics(true),
    )
    .unwrap();
    assert!(!full.is_truncated(), "disk backend lifts the budget bound");
    assert!(full.len() > g.len(), "budget-truncated run is a prefix");
}

#[test]
fn progress_callback_fires_per_interval() {
    let spec = grouped_system(2, 1, 3, false);
    let hits = Arc::new(AtomicUsize::new(0));
    let hits2 = hits.clone();
    let rec = Recorder::new().with_progress(1, move |r| {
        assert!(r.explored > 0);
        assert!(r.expansions > 0);
        hits2.fetch_add(1, Ordering::SeqCst);
    });
    let g = StateGraph::explore_with(&spec, &ExploreOptions::default(), &rec).unwrap();
    let fired = hits.load(Ordering::SeqCst);
    assert!(fired > 0, "every-expansion heartbeat fired");
    // Heartbeats tick inside expansion and merge, not just at level
    // boundaries — a single long level must still report every interval.
    assert!(
        fired > g.metrics().levels.len(),
        "{fired} fires for {} levels: mid-level heartbeats missing",
        g.metrics().levels.len()
    );
    assert!(
        fired as u64 <= g.metrics().expansions,
        "{fired} fires > {} expansions: at most one fire per counted expansion",
        g.metrics().expansions
    );
}

#[test]
fn sharded_telemetry_invisible_and_consistent() {
    // Instrumentation must stay invisible under the sharded explorer too,
    // and the per-shard breakdowns must tile the graph: every node and
    // edge attributed to exactly one shard, traffic conserved.
    let spec = grouped_system(2, 1, 3, true);
    for por in [false, true] {
        let base_opts = ExploreOptions::default().with_por(por);
        let plain = StateGraph::explore(&spec, &base_opts).unwrap();
        let opts = base_opts.with_shards(4).with_metrics(true);
        let rec = Recorder::new().with_timing().with_progress(1, |_| {});
        let g = StateGraph::explore_with(&spec, &opts, &rec).unwrap();
        assert_identical(&plain, &g, &format!("sharded por={por}"));
        let m = g.metrics();
        assert!(m.timed);
        assert_eq!(m.generated, m.dedup_hits + m.added + m.capped);
        assert_eq!(m.shards.len(), 4, "one breakdown per shard");
        assert_eq!(m.shards.iter().map(|s| s.nodes).sum::<usize>(), g.len());
        assert_eq!(
            m.shards.iter().map(|s| s.edges).sum::<usize>(),
            g.stats().edges
        );
        assert_eq!(
            m.shards.iter().map(|s| s.sent).sum::<u64>(),
            m.shards.iter().map(|s| s.received).sum::<u64>(),
            "routed successors conserved"
        );
        assert_eq!(
            m.shards.iter().map(|s| s.received).sum::<u64>(),
            m.generated,
            "every generated successor routed exactly once"
        );
    }
}

#[test]
fn trace_jsonl_one_record_per_level() {
    let path = std::env::temp_dir().join(format!("e12_trace_{}.jsonl", std::process::id()));
    let spec = grouped_system(2, 1, 3, false);
    let rec = Recorder::new()
        .with_trace(&path)
        .expect("create trace file");
    let g = StateGraph::explore_with(&spec, &ExploreOptions::default(), &rec).unwrap();
    let text = std::fs::read_to_string(&path).expect("read trace");
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(
        lines.len(),
        g.metrics().levels.len(),
        "one record per level"
    );
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "span {i}: {line}"
        );
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "span {i} braces: {line}"
        );
        assert!(
            line.contains(&format!("\"level\": {i},")),
            "span {i} level monotone: {line}"
        );
    }
}

#[test]
fn dot_export_well_formed_on_e1_p3() {
    let spec = grouped_system(2, 1, 3, false);
    let g = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
    let dot = g.to_dot();
    assert!(dot.starts_with("digraph stategraph {\n"));
    assert!(dot.ends_with("}\n"));
    assert_eq!(
        dot.matches('{').count(),
        dot.matches('}').count(),
        "balanced braces"
    );
    let edge_lines = dot.lines().filter(|l| l.contains(" -> ")).count();
    assert_eq!(edge_lines, g.stats().edges, "one edge line per CSR edge");
    let node_lines = dot
        .lines()
        .filter(|l| {
            // `n<id> [...]` declarations only — not `node [shape=...]`
            // defaults, not edges.
            let t = l.trim_start();
            t.starts_with('n')
                && t[1..].starts_with(|c: char| c.is_ascii_digit())
                && !t.contains(" -> ")
        })
        .count();
    assert_eq!(node_lines, g.len(), "one node line per configuration");
    assert_eq!(
        dot.matches("doublecircle").count(),
        g.terminals().len(),
        "terminals double-circled"
    );

    // A witness schedule to any terminal highlights its path in red.
    let schedule: Vec<Pid> = g
        .witness_schedule(|c| c.is_final())
        .expect("some terminal is reachable");
    let hi = g.to_dot_with_schedule(&schedule);
    assert_eq!(
        hi.matches("color=red").count(),
        schedule.len(),
        "one highlighted edge per schedule step"
    );
    assert_eq!(
        hi.lines().filter(|l| l.contains(" -> ")).count(),
        g.stats().edges,
        "highlighting adds no edges"
    );
}

#[test]
fn valency_pass_feeds_reverse_csr_phase() {
    let spec = grouped_system(2, 1, 3, false);
    let g = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
    let rec = Recorder::new().with_timing();
    let v = Valency::compute_with(&g, &rec);
    assert!(v.is_bivalent(0) || v.is_univalent(0));
    let m = rec.snapshot();
    assert!(
        m.reverse_csr_ns > 0,
        "reverse-CSR build time recorded: {}",
        m.reverse_csr_ns
    );
}
