//! Integration test for experiment E4: the hierarchies beyond consensus
//! numbers.
//!
//! * E4a — the strict sub-consensus chain `(k, k-1)-SC ≻ (k+1, k)-SC`,
//!   cross-validated by simulation: the weaker object really is too weak
//!   for the stronger task (exhaustive), and the stronger object really
//!   builds the weaker one's task by partition (exhaustive).
//! * E4b — the object-implementation direction on the deterministic family:
//!   capacity gating implements the smaller member from the larger
//!   (linearizability-checked); the register-only relaxed gate exhibits the
//!   documented relaxation; and a spillover construction with an atomic
//!   ticket implements the *larger* member from two smaller ones — showing
//!   precisely which extra synchronization the paper's impossibility says
//!   registers cannot supply.

use std::sync::Arc;

use subconsensus::core::{implementable, sc_chain, CapacityGate, GroupedObject, ScPower};
use subconsensus::modelcheck::{max_distinct_decisions, ExploreOptions, StateGraph};
use subconsensus::objects::{FetchAdd, SetConsensus};
use subconsensus::protocols::{PartitionPropose, ProposeDecide};
use subconsensus::sim::{
    check_linearizable, run_concurrent, BaseObjects, FirstOutcome, ImplStep, Implementation, ObjId,
    ObjectSpec, Op, ProcCtx, Protocol, ProtocolError, RandomScheduler, SystemBuilder, Value,
};

#[test]
fn e4a_chain_links_cross_validated_by_simulation() {
    for link in sc_chain(5) {
        let k = link.stronger.n; // stronger = (k, k-1)
                                 // 1. The weaker object (k+1, k) cannot give the stronger task:
                                 //    k processes over one (k+1, k)-SC object can produce k distinct
                                 //    values in some execution (exhaustive, incl. nondeterminism).
        let mut b = SystemBuilder::new();
        let obj = b.add_object(SetConsensus::new(k + 1, k).unwrap());
        let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
        b.add_processes(p, (0..k).map(|i| Value::Int(i as i64 + 1)));
        let graph = StateGraph::explore(&b.build(), &ExploreOptions::default()).unwrap();
        assert_eq!(
            max_distinct_decisions(&graph),
            k,
            "one (k+1,k) object lets k={k} processes disagree completely"
        );

        // 2. The stronger object (k, k-1) builds the weaker task (k+1, k):
        //    partition k+1 processes into blocks of ≤ k.
        let mut b = SystemBuilder::new();
        let base = b.add_object_array((k + 1).div_ceil(k), |_| {
            Box::new(SetConsensus::new(k, k - 1).unwrap()) as Box<dyn ObjectSpec>
        });
        let p: Arc<dyn Protocol> = Arc::new(PartitionPropose::new(base, k));
        b.add_processes(p, (0..k + 1).map(|i| Value::Int(i as i64 + 1)));
        let graph = StateGraph::explore(&b.build(), &ExploreOptions::default()).unwrap();
        assert!(
            max_distinct_decisions(&graph) <= k,
            "(k,k-1)-objects solve (k+1,k)-set consensus, k={k}"
        );
    }
}

#[test]
fn e4a_chain_head_is_2_consensus_tail_approaches_registers() {
    let chain = sc_chain(8);
    assert_eq!(chain[0].stronger, ScPower::consensus(2));
    // Every element of the chain is strictly below 2-consensus…
    for link in &chain[1..] {
        assert!(!implementable(ScPower::consensus(2), link.stronger));
    }
    // …and strictly above registers (registers solve only the trivial
    // (n, n) tasks; every chain element solves (n, n-1) for its n).
    for link in &chain {
        assert!(link.stronger.k < link.stronger.n);
    }
}

#[test]
fn e4b_capacity_gate_implements_smaller_family_member() {
    // O_{3,0} (capacity 3) from O_{3,2} (capacity 9) + FetchAdd tickets.
    let n = 3;
    let limit = 3;
    let reference = GroupedObject::new(n, limit);
    for seed in 0..80 {
        let mut bank = BaseObjects::new();
        let inner = bank.add(GroupedObject::for_level(n, 2));
        let tickets = bank.add(FetchAdd::new());
        let im: Arc<dyn Implementation> = Arc::new(CapacityGate::new(inner, tickets, limit));
        let workload = vec![
            vec![Op::unary("propose", Value::Int(10))],
            vec![Op::unary("propose", Value::Int(20))],
            vec![Op::unary("propose", Value::Int(30))],
            vec![Op::unary("propose", Value::Int(40))], // one too many: spins
        ];
        let mut sched = RandomScheduler::seeded(seed);
        let out =
            run_concurrent(&bank, &im, workload, &mut sched, &mut FirstOutcome, 5_000).unwrap();
        let completed: usize = out.results.iter().map(Vec::len).sum();
        assert_eq!(completed, limit, "seed {seed}");
        assert!(
            check_linearizable(&out.history, &reference)
                .unwrap()
                .is_some(),
            "seed {seed}:\n{}",
            out.history
        );
    }
}

/// Spillover: implement a capacity-`2L` grouped object from two capacity-`L`
/// ones plus an atomic ticket dispenser. The seam `L` is a multiple of the
/// group size, so arrival groups align and the construction is linearizable
/// — demonstrating that the *only* missing ingredient for going up the
/// family is the atomic ticket, which registers cannot provide (the paper's
/// impossibility).
#[derive(Clone, Copy, Debug)]
struct Spillover {
    first: ObjId,
    second: ObjId,
    tickets: ObjId,
    seam: usize,
}

impl Implementation for Spillover {
    fn start_op(&self, _ctx: &ProcCtx, _op: &Op, _memory: &Value) -> Value {
        Value::Int(0)
    }

    fn step(
        &self,
        _ctx: &ProcCtx,
        op: &Op,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<ImplStep, ProtocolError> {
        match local.as_int() {
            Some(0) => Ok(ImplStep::invoke(
                Value::Int(1),
                self.tickets,
                Op::unary("fetch_add", Value::Int(1)),
            )),
            Some(1) => {
                let ticket = resp
                    .and_then(Value::as_int)
                    .ok_or_else(|| ProtocolError::new("bad ticket"))?
                    as usize;
                let target = if ticket < self.seam {
                    self.first
                } else {
                    self.second
                };
                Ok(ImplStep::invoke(Value::Int(2), target, op.clone()))
            }
            Some(2) => {
                let r = resp
                    .cloned()
                    .ok_or_else(|| ProtocolError::new("no response"))?;
                Ok(ImplStep::ret(r, Value::Nil))
            }
            _ => Err(ProtocolError::new("bad pc")),
        }
    }
}

#[test]
fn e4b_spillover_with_atomic_ticket_goes_up_the_family() {
    // O_{2,1} (capacity 4) from two O_{2,0} (capacity 2) + FetchAdd.
    let n = 2;
    let seam = 2;
    let reference = GroupedObject::new(n, 4);
    for seed in 0..120 {
        let mut bank = BaseObjects::new();
        let first = bank.add(GroupedObject::for_level(n, 0));
        let second = bank.add(GroupedObject::for_level(n, 0));
        let tickets = bank.add(FetchAdd::new());
        let im: Arc<dyn Implementation> = Arc::new(Spillover {
            first,
            second,
            tickets,
            seam,
        });
        let workload = vec![
            vec![Op::unary("propose", Value::Int(1))],
            vec![Op::unary("propose", Value::Int(2))],
            vec![Op::unary("propose", Value::Int(3))],
            vec![Op::unary("propose", Value::Int(4))],
        ];
        let mut sched = RandomScheduler::seeded(seed);
        let out =
            run_concurrent(&bank, &im, workload, &mut sched, &mut FirstOutcome, 100_000).unwrap();
        assert!(out.reached_final, "seed {seed}");
        assert!(
            check_linearizable(&out.history, &reference)
                .unwrap()
                .is_some(),
            "seed {seed}: spillover must linearize against the larger member:\n{}",
            out.history
        );
    }
}

#[test]
fn e4b_misaligned_spillover_is_caught_by_the_checker() {
    // Control experiment: a seam that is NOT a multiple of the group size
    // misaligns arrival groups, and the linearizability checker rejects
    // some histories — evidence the checker has teeth.
    let n = 2;
    let seam = 1; // misaligned: group is 2
    let reference = GroupedObject::new(n, 4);
    let mut failures = 0;
    for seed in 0..120 {
        let mut bank = BaseObjects::new();
        let first = bank.add(GroupedObject::new(n, 3));
        let second = bank.add(GroupedObject::new(n, 3));
        let tickets = bank.add(FetchAdd::new());
        let im: Arc<dyn Implementation> = Arc::new(Spillover {
            first,
            second,
            tickets,
            seam,
        });
        let workload = vec![
            vec![Op::unary("propose", Value::Int(1))],
            vec![Op::unary("propose", Value::Int(2))],
            vec![Op::unary("propose", Value::Int(3))],
            vec![Op::unary("propose", Value::Int(4))],
        ];
        let mut sched = RandomScheduler::seeded(seed);
        let out =
            run_concurrent(&bank, &im, workload, &mut sched, &mut FirstOutcome, 100_000).unwrap();
        if check_linearizable(&out.history, &reference)
            .unwrap()
            .is_none()
        {
            failures += 1;
        }
    }
    assert!(
        failures > 0,
        "misaligned seams must produce non-linearizable histories"
    );
}
