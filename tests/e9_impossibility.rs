//! Integration test for experiment E9: bounded-exhaustive impossibility —
//! every protocol in a bounded class is enumerated and model-checked.

use subconsensus::core::{
    search_binary_consensus, set_consensus_32_class, tree_count, wrn_class, ProtocolClass,
};
use subconsensus::objects::{Consensus, SetConsensus, Swap};
use subconsensus::sim::{Op, Value};
use subconsensus::wrn::Wrn;

#[test]
fn consensus_and_swap_objects_admit_protocols() {
    // Positive controls: objects of consensus number ≥ 2 admit a protocol
    // in the one-step class.
    let out = search_binary_consensus(
        || Box::new(Consensus::unbounded()),
        &set_consensus_32_class(1),
    )
    .unwrap();
    assert!(out.witness.is_some());

    // Swap at depth 1: swap your value in; ⊥ back means you were first
    // (decide own), otherwise decide what you got — the classic protocol,
    // which the search must rediscover among the 18 trees per role.
    let swap_class = ProtocolClass {
        ops: vec![
            Op::unary("swap", Value::Int(0)),
            Op::unary("swap", Value::Int(1)),
        ],
        responses: vec![Value::Nil, Value::Int(0), Value::Int(1)],
        max_depth: 1,
    };
    let out = search_binary_consensus(|| Box::new(Swap::new()), &swap_class).unwrap();
    assert!(
        out.witness.is_some(),
        "swap has consensus number 2: a 1-step protocol exists ({} trees)",
        out.trees
    );
    assert_eq!(out.trees, 2 + 2 * 8);
}

#[test]
fn sub_consensus_objects_admit_no_one_step_protocol() {
    let out = search_binary_consensus(
        || Box::new(SetConsensus::new(3, 2).unwrap()),
        &set_consensus_32_class(1),
    )
    .unwrap();
    assert_eq!(out.witness, None);

    let out = search_binary_consensus(|| Box::new(Wrn::new(3)), &wrn_class(3, 1)).unwrap();
    assert_eq!(out.witness, None);

    let out = search_binary_consensus(|| Box::new(Wrn::new(4)), &wrn_class(4, 1)).unwrap();
    assert_eq!(out.witness, None, "WRN₄ likewise");
}

#[test]
fn wrn2_is_the_boundary() {
    let out = search_binary_consensus(|| Box::new(Wrn::new(2)), &wrn_class(2, 1)).unwrap();
    assert!(out.witness.is_some(), "WRN₂ has consensus number 2");
}

#[test]
fn tree_counts_are_as_documented() {
    assert_eq!(tree_count(&set_consensus_32_class(1), 1), 10);
    assert_eq!(tree_count(&set_consensus_32_class(2), 2), 202);
    assert_eq!(tree_count(&wrn_class(3, 1), 1), 50);
}

// The depth-2 (3,2)-SC impossibility takes ~10 s in release and minutes in
// debug; it is exercised by `examples/impossibility_search.rs --deep` and
// recorded in EXPERIMENTS.md E9. Gate it here behind an env var so
// `cargo test --release -- --ignored` style runs can include it.
#[test]
#[ignore = "slow: ~10 s in release; run with --ignored"]
fn depth_two_set_consensus_impossibility() {
    let out = search_binary_consensus(
        || Box::new(SetConsensus::new(3, 2).unwrap()),
        &set_consensus_32_class(2),
    )
    .unwrap();
    assert_eq!(out.witness, None);
    assert_eq!(out.trees, 202);
}
