//! E10 (symmetry reduction): the orbit-quotient graph produced by
//! `ExploreOptions::with_symmetry(true)` must agree with the full graph on
//! every analysis verdict — initial valence, bivalence, wait-freedom,
//! agreement bounds, terminal decision sets and critical-configuration
//! existence — while visiting strictly fewer configurations on the
//! symmetric fixtures.

use std::sync::Arc;

use subconsensus_core::GroupedObject;
use subconsensus_modelcheck::{
    check_wait_freedom, find_critical, max_distinct_decisions, ExploreOptions, StateGraph,
    StoreBackend, TerminalReport, Valency,
};
use subconsensus_objects::{Consensus, SetConsensus};
use subconsensus_protocols::{PartitionPropose, ProposeDecide};
use subconsensus_sim::{
    ObjectSpec, Pid, Protocol, SymmetryGroups, SystemBuilder, SystemSpec, Value,
};

// Local copies of the bench fixtures (the root package does not depend on
// the bench crate), mirroring `subconsensus_bench::{grouped_system,
// grouped_system_sym, partition_system, partition_system_sym}`.

fn grouped_system(n: usize, k: usize, procs: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let obj = b.add_object(GroupedObject::for_level(n, k));
    let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
    b.add_processes(p, (0..procs).map(|i| Value::Int(i as i64 + 1)));
    b.build()
}

fn grouped_system_sym(n: usize, k: usize, procs: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let obj = b.add_object(GroupedObject::for_level(n, k));
    let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
    b.add_processes(p, (0..procs).map(|_| Value::Int(1)));
    b.build()
}

fn partition_system(procs: usize, m: usize, j: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let blocks = procs.div_ceil(m);
    let base = b.add_object_array(blocks, |_| {
        if j == 1 {
            Box::new(Consensus::bounded(m)) as Box<dyn ObjectSpec>
        } else {
            Box::new(SetConsensus::new(m, j).expect("0 < j < m")) as Box<dyn ObjectSpec>
        }
    });
    let p: Arc<dyn Protocol> = Arc::new(PartitionPropose::new(base, m));
    b.add_processes(p, (0..procs).map(|i| Value::Int(i as i64 + 1)));
    b.build()
}

fn partition_system_sym(procs: usize, m: usize, j: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let blocks = procs.div_ceil(m);
    let base = b.add_object_array(blocks, |_| {
        if j == 1 {
            Box::new(Consensus::bounded(m)) as Box<dyn ObjectSpec>
        } else {
            Box::new(SetConsensus::new(m, j).expect("0 < j < m")) as Box<dyn ObjectSpec>
        }
    });
    let p: Arc<dyn Protocol> = Arc::new(PartitionPropose::new(base, m));
    b.add_processes(p, (0..procs).map(|i| Value::Int((i / m) as i64 + 1)));
    b.set_symmetry_groups(SymmetryGroups::new((0..blocks).map(|blk| {
        (0..procs)
            .filter(move |i| i / m == blk)
            .map(Pid::new)
            .collect::<Vec<_>>()
    })));
    b.build()
}

fn explore_pair(spec: &SystemSpec) -> (StateGraph, StateGraph) {
    let full = StateGraph::explore(spec, &ExploreOptions::default()).expect("full explore");
    let quot = StateGraph::explore(spec, &ExploreOptions::default().with_symmetry(true))
        .expect("quotient explore");
    assert!(!full.is_truncated());
    assert!(!quot.is_truncated());
    (full, quot)
}

/// Every graph-level verdict the repo's analyses produce must be identical
/// on the full graph and its orbit quotient: the quotiented permutations are
/// automorphisms, and each checked property is permutation-invariant.
fn assert_verdicts_agree(full: &StateGraph, quot: &StateGraph, label: &str) {
    // Wait-freedom (acyclicity + all terminals decide).
    assert_eq!(
        check_wait_freedom(full).is_wait_free(),
        check_wait_freedom(quot).is_wait_free(),
        "{label}: wait-freedom"
    );
    // Agreement bound: worst-case number of distinct decisions.
    assert_eq!(
        max_distinct_decisions(full),
        max_distinct_decisions(quot),
        "{label}: max distinct decisions"
    );
    // Terminal structure. Decision *sets* are pid-free, so the quotient
    // must reproduce them exactly (not just up to renaming).
    let rf = TerminalReport::of(full);
    let rq = TerminalReport::of(quot);
    assert_eq!(rf.decision_sets, rq.decision_sets, "{label}: decision sets");
    assert_eq!(
        rf.all_processes_decide, rq.all_processes_decide,
        "{label}: all decide"
    );
    assert_eq!(rf.any_hung, rq.any_hung, "{label}: hung terminals");
    assert_eq!(
        (rf.min_distinct_decisions, rf.max_distinct_decisions),
        (rq.min_distinct_decisions, rq.max_distinct_decisions),
        "{label}: decision counts"
    );
    // Valency of the initial configuration (node 0 in both graphs): the
    // reachable decided-value sets coincide, hence so does bivalence.
    let vf = Valency::compute(full);
    let vq = Valency::compute(quot);
    assert_eq!(vf.valence(0), vq.valence(0), "{label}: initial valence");
    assert_eq!(
        vf.is_bivalent(0),
        vq.is_bivalent(0),
        "{label}: initial bivalence"
    );
    // Critical-configuration existence is preserved by the quotient.
    assert_eq!(
        find_critical(full, &vf).is_some(),
        find_critical(quot, &vq).is_some(),
        "{label}: critical config existence"
    );
}

#[test]
fn quotient_matches_full_verdicts_on_e1_fixtures() {
    for (label, spec) in [
        ("e1 sym p3", grouped_system_sym(2, 1, 3)),
        ("e1 distinct p3", grouped_system(2, 1, 3)),
        ("e1 sym n3 p3", grouped_system_sym(3, 0, 3)),
    ] {
        let (full, quot) = explore_pair(&spec);
        assert_verdicts_agree(&full, &quot, label);
    }
}

#[test]
fn quotient_matches_full_verdicts_on_e4_fixtures() {
    for (label, spec) in [
        ("e4 partition p3", partition_system(3, 2, 1)),
        ("e4 partition sym p4", partition_system_sym(4, 2, 1)),
    ] {
        let (full, quot) = explore_pair(&spec);
        assert_verdicts_agree(&full, &quot, label);
    }
}

#[test]
fn quotient_shrinks_symmetric_graphs_and_preserves_trivial_ones() {
    // Acceptance criterion: on the headline symmetric fixture the quotient
    // visits at most half the configurations of the full graph.
    let spec = grouped_system_sym(2, 1, 3);
    let (full, quot) = explore_pair(&spec);
    assert!(
        2 * quot.len() <= full.len(),
        "quotient {} vs full {}: expected ≤ 1/2",
        quot.len(),
        full.len()
    );

    // Distinct inputs ⇒ trivial symmetry ⇒ the quotient IS the full graph.
    let spec = grouped_system(2, 1, 3);
    let (full, quot) = explore_pair(&spec);
    assert_eq!(quot.len(), full.len());

    // Pid-dependent protocol without an override: the automatic-grouping
    // guard must keep symmetry trivial rather than unsoundly reducing.
    let spec = partition_system(3, 2, 1);
    assert!(spec.symmetry_groups().is_trivial());
    let (full, quot) = explore_pair(&spec);
    assert_eq!(quot.len(), full.len());
}

#[test]
fn interned_quotient_identical_to_deep_quotient() {
    // The hash-consed node store must commute with the symmetry quotient:
    // canonicalizing in id space picks the same orbit representatives in the
    // same order as canonicalizing deep `Config`s, so the two graphs — and
    // every verdict derived from them — are identical, not merely isomorphic.
    for (label, spec) in [
        ("e1 sym p3", grouped_system_sym(2, 1, 3)),
        ("e1 distinct p3", grouped_system(2, 1, 3)),
        ("e4 partition sym p4", partition_system_sym(4, 2, 1)),
    ] {
        for symmetry in [false, true] {
            let opts = ExploreOptions::default().with_symmetry(symmetry);
            let deep = StateGraph::explore(&spec, &opts.clone().with_interned(false))
                .expect("deep explore");
            let interned = StateGraph::explore(&spec, &opts).expect("interned explore");
            let label = format!("{label} (symmetry={symmetry})");
            assert_eq!(deep.len(), interned.len(), "{label}: node count");
            for i in 0..deep.len() {
                assert_eq!(deep.config(i), interned.config(i), "{label}: node {i}");
                assert_eq!(deep.edges(i), interned.edges(i), "{label}: edges of {i}");
            }
            assert_eq!(deep.terminals(), interned.terminals(), "{label}: terminals");
            assert_verdicts_agree(&deep, &interned, &label);
        }
    }
}

#[test]
fn sharded_quotient_identical_across_shard_counts() {
    // Shard routing fingerprints the *canonical* form, so a whole symmetry
    // orbit lands in one shard and the quotient graph — including orbit
    // representative choice and node order — is shard-count independent.
    for (label, spec) in [
        ("e1 sym p3", grouped_system_sym(2, 1, 3)),
        ("e1 distinct p3", grouped_system(2, 1, 3)),
        ("e4 partition sym p4", partition_system_sym(4, 2, 1)),
    ] {
        for symmetry in [false, true] {
            for interned in [false, true] {
                let opts = ExploreOptions::default()
                    .with_symmetry(symmetry)
                    .with_interned(interned);
                let base = StateGraph::explore(&spec, &opts).expect("unsharded explore");
                for shards in [2usize, 4] {
                    let g = StateGraph::explore(&spec, &opts.clone().with_shards(shards))
                        .expect("sharded explore");
                    let label =
                        format!("{label} (symmetry={symmetry} interned={interned} x{shards})");
                    assert_eq!(base.len(), g.len(), "{label}: node count");
                    for i in 0..base.len() {
                        assert_eq!(base.config(i), g.config(i), "{label}: node {i}");
                        assert_eq!(base.edges(i), g.edges(i), "{label}: edges of {i}");
                    }
                    assert_eq!(base.terminals(), g.terminals(), "{label}: terminals");
                    assert_verdicts_agree(&base, &g, &label);
                }
            }
        }
    }
}

#[test]
fn disk_store_quotient_identical() {
    // The disk-backed store must commute with the symmetry quotient: orbit
    // canonicalization runs in id space, and eviction never moves ids, so a
    // 4 KiB hot tier produces the same quotient graph as unbounded memory —
    // across shard counts.
    for (label, spec) in [
        ("e1 sym p3", grouped_system_sym(2, 1, 3)),
        ("e4 partition sym p4", partition_system_sym(4, 2, 1)),
    ] {
        for symmetry in [false, true] {
            let opts = ExploreOptions::default().with_symmetry(symmetry);
            let base = StateGraph::explore(&spec, &opts.clone().with_store(StoreBackend::Memory))
                .expect("memory explore");
            for shards in [1usize, 2] {
                let g = StateGraph::explore(
                    &spec,
                    &opts
                        .clone()
                        .with_shards(shards)
                        .with_store(StoreBackend::Disk)
                        .with_store_budget(4 << 10),
                )
                .expect("disk explore");
                let label = format!("{label} (symmetry={symmetry} disk x{shards})");
                assert_eq!(base.len(), g.len(), "{label}: node count");
                for i in 0..base.len() {
                    assert_eq!(base.config(i), g.config(i), "{label}: node {i}");
                    assert_eq!(base.edges(i), g.edges(i), "{label}: edges of {i}");
                }
                assert_eq!(base.terminals(), g.terminals(), "{label}: terminals");
                assert_verdicts_agree(&base, &g, &label);
            }
        }
    }
}

#[test]
fn large_symmetric_fixture_tractable_only_with_symmetry() {
    // 8 equal-input proposers: the full graph (6561 configs) blows through
    // the cap, while the quotient completes comfortably under it.
    let spec = grouped_system_sym(2, 3, 8);
    let opts = ExploreOptions::with_max_configs(2_000);
    let full = StateGraph::explore(&spec, &opts).expect("full explore");
    assert!(full.is_truncated(), "full graph should exceed the cap");
    let quot = StateGraph::explore(&spec, &opts.with_symmetry(true)).expect("quotient explore");
    assert!(
        !quot.is_truncated(),
        "quotient should complete under the cap"
    );
    assert!(quot.len() <= 100, "quotient stays tiny: {}", quot.len());
    // The truncated full graph yields no verdicts; the quotient does.
    assert!(check_wait_freedom(&quot).is_wait_free());
    assert_eq!(max_distinct_decisions(&quot), 1);
}
