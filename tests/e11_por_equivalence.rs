//! E11 (partial-order reduction): the reduced graph produced by
//! `ExploreOptions::with_por(true)` must agree with the full graph on every
//! terminal-derived verdict — wait-freedom, non-blocking, agreement bounds,
//! terminal decision sets and the initial valence — while visiting at most
//! half the configurations and strictly fewer edges on the
//! interleaving-heavy fixtures, both alone and composed with the symmetry
//! quotient. Interior valences are *not* preserved, so `find_critical`
//! rejects reduced graphs with a hard error.

use std::sync::Arc;

use subconsensus_core::GroupedObject;
use subconsensus_modelcheck::{
    check_nonblocking, check_wait_freedom, find_critical, max_distinct_decisions, ExploreOptions,
    StateGraph, StoreBackend, TerminalReport, Valency,
};
use subconsensus_objects::{Consensus, SetConsensus};
use subconsensus_protocols::{PartitionPropose, ProposeDecide};
use subconsensus_sim::{
    ObjectSpec, Pid, Protocol, SymmetryGroups, SystemBuilder, SystemSpec, Value,
};

// Local copies of the bench fixtures (the root package does not depend on
// the bench crate), mirroring `subconsensus_bench::{grouped_system,
// grouped_system_sym, partition_system, partition_system_sym}`.

fn grouped_system(n: usize, k: usize, procs: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let obj = b.add_object(GroupedObject::for_level(n, k));
    let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
    b.add_processes(p, (0..procs).map(|i| Value::Int(i as i64 + 1)));
    b.build()
}

fn grouped_system_sym(n: usize, k: usize, procs: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let obj = b.add_object(GroupedObject::for_level(n, k));
    let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
    b.add_processes(p, (0..procs).map(|_| Value::Int(1)));
    b.build()
}

fn partition_system(procs: usize, m: usize, j: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let blocks = procs.div_ceil(m);
    let base = b.add_object_array(blocks, |_| {
        if j == 1 {
            Box::new(Consensus::bounded(m)) as Box<dyn ObjectSpec>
        } else {
            Box::new(SetConsensus::new(m, j).expect("0 < j < m")) as Box<dyn ObjectSpec>
        }
    });
    let p: Arc<dyn Protocol> = Arc::new(PartitionPropose::new(base, m));
    b.add_processes(p, (0..procs).map(|i| Value::Int(i as i64 + 1)));
    b.build()
}

fn partition_system_sym(procs: usize, m: usize, j: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let blocks = procs.div_ceil(m);
    let base = b.add_object_array(blocks, |_| {
        if j == 1 {
            Box::new(Consensus::bounded(m)) as Box<dyn ObjectSpec>
        } else {
            Box::new(SetConsensus::new(m, j).expect("0 < j < m")) as Box<dyn ObjectSpec>
        }
    });
    let p: Arc<dyn Protocol> = Arc::new(PartitionPropose::new(base, m));
    b.add_processes(p, (0..procs).map(|i| Value::Int((i / m) as i64 + 1)));
    b.set_symmetry_groups(SymmetryGroups::new((0..blocks).map(|blk| {
        (0..procs)
            .filter(move |i| i / m == blk)
            .map(Pid::new)
            .collect::<Vec<_>>()
    })));
    b.build()
}

fn explore_pair(spec: &SystemSpec, symmetry: bool) -> (StateGraph, StateGraph) {
    let base = ExploreOptions::default().with_symmetry(symmetry);
    let full = StateGraph::explore(spec, &base).expect("full explore");
    let red = StateGraph::explore(spec, &base.with_por(true)).expect("reduced explore");
    assert!(!full.is_truncated());
    assert!(!red.is_truncated());
    assert!(!full.is_por_reduced());
    assert!(red.is_por_reduced());
    (full, red)
}

/// Every terminal-derived verdict must be identical on the full graph and
/// its partial-order reduction: the reduction only prunes interleavings of
/// commuting steps, so every Mazurkiewicz trace — and with it every
/// terminal configuration — survives, and the cycle proviso keeps every
/// cycle reachable in the reduced graph.
fn assert_verdicts_agree(full: &StateGraph, red: &StateGraph, label: &str) {
    // Wait-freedom (acyclicity + all terminals decide) — the full verdict,
    // not just the boolean: Diverges/Hangs/Stuck must round-trip too.
    assert_eq!(
        check_wait_freedom(full),
        check_wait_freedom(red),
        "{label}: wait-freedom"
    );
    // Non-blocking: backward terminal reachability. The never-strand rule
    // guarantees reduced non-terminal nodes keep outgoing edges.
    assert_eq!(
        check_nonblocking(full),
        check_nonblocking(red),
        "{label}: non-blocking"
    );
    // Agreement bound: worst-case number of distinct decisions.
    assert_eq!(
        max_distinct_decisions(full),
        max_distinct_decisions(red),
        "{label}: max distinct decisions"
    );
    // Terminal structure, exactly: POR must reach the same terminal set.
    let rf = TerminalReport::of(full);
    let rr = TerminalReport::of(red);
    assert_eq!(rf.decision_sets, rr.decision_sets, "{label}: decision sets");
    assert_eq!(rf.terminals, rr.terminals, "{label}: terminal count");
    assert_eq!(
        rf.all_processes_decide, rr.all_processes_decide,
        "{label}: all decide"
    );
    assert_eq!(rf.any_hung, rr.any_hung, "{label}: hung terminals");
    assert_eq!(
        (rf.min_distinct_decisions, rf.max_distinct_decisions),
        (rr.min_distinct_decisions, rr.max_distinct_decisions),
        "{label}: decision counts"
    );
    // Root valence (node 0 in both graphs): every terminal survives, so
    // the decided-value spectrum of the whole system is unchanged.
    let vf = Valency::compute(full);
    let vr = Valency::compute(red);
    assert_eq!(vf.valence(0), vr.valence(0), "{label}: initial valence");
    assert_eq!(
        vf.is_bivalent(0),
        vr.is_bivalent(0),
        "{label}: initial bivalence"
    );
}

#[test]
fn por_matches_full_verdicts_on_e1_fixtures() {
    for (label, spec) in [
        ("e1 sym p3", grouped_system_sym(2, 1, 3)),
        ("e1 distinct p3", grouped_system(2, 1, 3)),
        ("e1 sym n3 p3", grouped_system_sym(3, 0, 3)),
    ] {
        let (full, red) = explore_pair(&spec, false);
        assert_verdicts_agree(&full, &red, label);
    }
}

#[test]
fn por_matches_full_verdicts_on_e4_fixtures() {
    for (label, spec) in [
        ("e4 partition p3", partition_system(3, 2, 1)),
        ("e4 partition sym p4", partition_system_sym(4, 2, 1)),
        ("e4 partition p6 j2", partition_system(6, 3, 2)),
    ] {
        let (full, red) = explore_pair(&spec, false);
        assert_verdicts_agree(&full, &red, label);
    }
}

#[test]
fn por_composes_with_the_symmetry_quotient() {
    // POR on top of the orbit quotient: prune first, canonicalize second.
    // Verdicts must survive the composition too.
    for (label, spec) in [
        ("e1 sym p3 + sym", grouped_system_sym(2, 1, 3)),
        ("e4 partition sym p4 + sym", partition_system_sym(4, 2, 1)),
    ] {
        let (quot, red) = explore_pair(&spec, true);
        assert_verdicts_agree(&quot, &red, label);
        assert!(red.len() <= quot.len(), "{label}: POR must not grow");
    }
}

#[test]
fn interned_reduction_identical_to_deep_reduction() {
    // The ample-set choice, sleep-set bookkeeping and wake-up revisits all
    // run in id space under the hash-consed store; the reduced graph must
    // nonetheless be node-for-node identical to the deep store's, under POR
    // alone and composed with the symmetry quotient.
    for (label, spec) in [
        ("e1 sym p3", grouped_system_sym(2, 1, 3)),
        ("e4 partition p3", partition_system(3, 2, 1)),
        ("e4 partition sym p4", partition_system_sym(4, 2, 1)),
    ] {
        for symmetry in [false, true] {
            let opts = ExploreOptions::default()
                .with_por(true)
                .with_symmetry(symmetry);
            let deep = StateGraph::explore(&spec, &opts.clone().with_interned(false))
                .expect("deep explore");
            let interned = StateGraph::explore(&spec, &opts).expect("interned explore");
            let label = format!("{label} (por, symmetry={symmetry})");
            assert_eq!(deep.len(), interned.len(), "{label}: node count");
            for i in 0..deep.len() {
                assert_eq!(deep.config(i), interned.config(i), "{label}: node {i}");
                assert_eq!(deep.edges(i), interned.edges(i), "{label}: edges of {i}");
            }
            assert_eq!(deep.terminals(), interned.terminals(), "{label}: terminals");
            assert_eq!(
                deep.is_por_reduced(),
                interned.is_por_reduced(),
                "{label}: reduction flag"
            );
            assert_verdicts_agree(&deep, &interned, &label);
        }
    }
}

#[test]
fn sharded_reduction_identical_across_shard_counts() {
    // All POR decisions — ample choice, sleep-set propagation, revisit
    // wake-ups, cycle-proviso escalations — replay in the sharded
    // explorer's sequential feedback phase in global tag order, so the
    // reduced graph is node-for-node identical for every shard count,
    // alone and composed with the symmetry quotient and either store.
    for (label, spec) in [
        ("e1 sym p3", grouped_system_sym(2, 1, 3)),
        ("e4 partition p3", partition_system(3, 2, 1)),
        ("e4 partition sym p4", partition_system_sym(4, 2, 1)),
    ] {
        for symmetry in [false, true] {
            for interned in [false, true] {
                let opts = ExploreOptions::default()
                    .with_por(true)
                    .with_symmetry(symmetry)
                    .with_interned(interned);
                let base = StateGraph::explore(&spec, &opts).expect("unsharded explore");
                for shards in [2usize, 4] {
                    let g = StateGraph::explore(&spec, &opts.clone().with_shards(shards))
                        .expect("sharded explore");
                    let label =
                        format!("{label} (por, symmetry={symmetry} interned={interned} x{shards})");
                    assert_eq!(base.len(), g.len(), "{label}: node count");
                    for i in 0..base.len() {
                        assert_eq!(base.config(i), g.config(i), "{label}: node {i}");
                        assert_eq!(base.edges(i), g.edges(i), "{label}: edges of {i}");
                    }
                    assert_eq!(base.terminals(), g.terminals(), "{label}: terminals");
                    assert_eq!(
                        base.is_por_reduced(),
                        g.is_por_reduced(),
                        "{label}: reduction flag"
                    );
                    assert_verdicts_agree(&base, &g, &label);
                }
            }
        }
    }
}

#[test]
fn disk_store_reduction_identical() {
    // POR's sleep sets, ample choices and wake-up revisits all key on node
    // ids, which spill-and-reload never renumbers — so a 4 KiB hot tier
    // reproduces the reduced graph exactly, alone and composed with the
    // symmetry quotient, across shard counts.
    for (label, spec) in [
        ("e1 sym p3", grouped_system_sym(2, 1, 3)),
        ("e4 partition sym p4", partition_system_sym(4, 2, 1)),
    ] {
        for symmetry in [false, true] {
            let opts = ExploreOptions::default()
                .with_por(true)
                .with_symmetry(symmetry);
            let base = StateGraph::explore(&spec, &opts.clone().with_store(StoreBackend::Memory))
                .expect("memory explore");
            for shards in [1usize, 2] {
                let g = StateGraph::explore(
                    &spec,
                    &opts
                        .clone()
                        .with_shards(shards)
                        .with_store(StoreBackend::Disk)
                        .with_store_budget(4 << 10),
                )
                .expect("disk explore");
                let label = format!("{label} (por, symmetry={symmetry} disk x{shards})");
                assert_eq!(base.len(), g.len(), "{label}: node count");
                for i in 0..base.len() {
                    assert_eq!(base.config(i), g.config(i), "{label}: node {i}");
                    assert_eq!(base.edges(i), g.edges(i), "{label}: edges of {i}");
                }
                assert_eq!(base.terminals(), g.terminals(), "{label}: terminals");
                assert_eq!(
                    base.is_por_reduced(),
                    g.is_por_reduced(),
                    "{label}: reduction flag"
                );
                assert_verdicts_agree(&base, &g, &label);
            }
        }
    }
}

#[test]
fn por_halves_the_interleaving_heavy_fixtures() {
    // Acceptance criterion: on the partition fixtures POR explores at most
    // half the configurations and strictly fewer edges, with identical
    // verdicts (checked above).
    for (label, spec) in [
        ("e4 partition p3", partition_system(3, 2, 1)),
        ("e4 partition sym p4", partition_system_sym(4, 2, 1)),
    ] {
        let (full, red) = explore_pair(&spec, false);
        assert!(
            2 * red.len() <= full.len(),
            "{label}: reduced {} vs full {}: expected ≤ 1/2",
            red.len(),
            full.len()
        );
        assert!(
            red.stats().edges < full.stats().edges,
            "{label}: edges must strictly shrink"
        );
    }
}

#[test]
fn interleaving_heavy_fixture_tractable_only_with_por() {
    // 4 disjoint consensus blocks of 2 distinct-input processes: the block
    // interleavings blow the full graph past the cap, while POR serializes
    // the statically-independent blocks and completes. Symmetry cannot
    // help here — the inputs are distinct, so the groups are trivial.
    let spec = partition_system(8, 2, 1);
    assert!(spec.symmetry_groups().is_trivial());
    let opts = ExploreOptions::with_max_configs(2_000);
    let full = StateGraph::explore(&spec, &opts).expect("full explore");
    assert!(full.is_truncated(), "full graph should exceed the cap");
    let red = StateGraph::explore(&spec, &opts.with_por(true)).expect("reduced explore");
    assert!(!red.is_truncated(), "POR should complete under the cap");
    assert!(red.len() <= 200, "reduced graph stays small: {}", red.len());
    // The truncated full graph yields no verdicts; the reduction does.
    assert!(check_wait_freedom(&red).is_wait_free());
    assert_eq!(max_distinct_decisions(&red), 4, "one value per block");

    // And against the uncapped full graph, the verdicts agree exactly.
    let (full, red) = explore_pair(&spec, false);
    assert_verdicts_agree(&full, &red, "e4 partition p8");
}

#[test]
#[should_panic(expected = "partial-order reduction")]
fn find_critical_rejects_reduced_graphs() {
    let spec = grouped_system(2, 1, 3);
    let red = StateGraph::explore(&spec, &ExploreOptions::default().with_por(true))
        .expect("reduced explore");
    let v = Valency::compute(&red);
    let _ = find_critical(&red, &v);
}
