//! Integration test for experiment E5 / substrate correctness: the
//! register-level substrates (renaming, snapshot) and the consensus-level
//! substrates (tournament, universal construction) compose correctly under
//! adversarial and random schedules.

use std::sync::Arc;

use subconsensus::modelcheck::ExploreOptions;
use subconsensus::objects::{CompareAndSwap, Consensus, Queue, RegisterArray, Snapshot, Stack};
use subconsensus::protocols::{
    grid_cells, tournament_nodes, GridRenaming, SnapshotFromRegisters, Tournament,
    UniversalConstruction,
};
use subconsensus::sim::{
    check_linearizable, run_concurrent, BaseObjects, CrashScheduler, FirstOutcome, Implementation,
    ObjectSpec, Op, Pid, Protocol, RandomScheduler, RoundRobin, SystemBuilder, Value,
};
use subconsensus::tasks::{check_exhaustive, check_random, RenamingTask, Task, TestAndSetTask};

#[test]
fn renaming_solves_the_renaming_task() {
    // Exhaustive for 2 participants, random for 4.
    let k = 2;
    let mut b = SystemBuilder::new();
    let regs = b.add_object(RegisterArray::new(GridRenaming::registers_needed(k)));
    let p: Arc<dyn Protocol> = Arc::new(GridRenaming::new(regs, k));
    b.add_processes(p, [Value::Int(1001), Value::Int(2002)]);
    let report = check_exhaustive(
        &b.build(),
        &RenamingTask::new(grid_cells(k)),
        &ExploreOptions::default(),
    )
    .unwrap();
    assert!(report.solved(), "{report:?}");

    let k = 4;
    let mut b = SystemBuilder::new();
    let regs = b.add_object(RegisterArray::new(GridRenaming::registers_needed(k)));
    let p: Arc<dyn Protocol> = Arc::new(GridRenaming::new(regs, k));
    b.add_processes(p, (0..k).map(|i| Value::Int(1000 + i as i64 * 7)));
    let report = check_random(
        &b.build(),
        &RenamingTask::new(grid_cells(k)),
        0..300,
        100_000,
    )
    .unwrap();
    assert!(report.solved(), "{report:?}");
}

#[test]
fn renaming_survives_crashes() {
    // Fail-stop one participant mid-protocol: survivors still acquire
    // distinct names in range.
    let k = 3;
    for crash_after in 0..6 {
        let mut b = SystemBuilder::new();
        let regs = b.add_object(RegisterArray::new(GridRenaming::registers_needed(k)));
        let p: Arc<dyn Protocol> = Arc::new(GridRenaming::new(regs, k));
        b.add_processes(p, [Value::Int(5), Value::Int(6), Value::Int(7)]);
        let spec = b.build();
        let mut sched = CrashScheduler::new(
            RoundRobin::new(),
            [(Pid::new(1), crash_after)].into_iter().collect(),
        );
        let out = subconsensus::sim::run(
            &spec,
            &mut sched,
            &mut FirstOutcome,
            &subconsensus::sim::RunOptions::default(),
        )
        .unwrap();
        let task = RenamingTask::new(grid_cells(k));
        let inputs: Vec<Value> = vec![Value::Int(5), Value::Int(6), Value::Int(7)];
        task.check(&inputs, &out.decisions()).unwrap();
        // Both survivors decided.
        assert!(out.decisions()[0].is_some());
        assert!(out.decisions()[2].is_some());
    }
}

#[test]
fn snapshot_from_registers_linearizes_with_four_processes() {
    let n = 4;
    let spec = Snapshot::new(n);
    for seed in 0..60 {
        let mut bank = BaseObjects::new();
        let regs = bank.add(RegisterArray::new(n));
        let im: Arc<dyn Implementation> = Arc::new(SnapshotFromRegisters::new(regs, n));
        let upd = |i: usize, v: i64| Op::binary("update", Value::from(i), Value::Int(v));
        let workload = vec![
            vec![upd(0, 1), Op::new("scan"), upd(0, 2)],
            vec![Op::new("scan"), upd(1, 10), Op::new("scan")],
            vec![upd(2, 100), upd(2, 200), Op::new("scan")],
            vec![Op::new("scan"), Op::new("scan")],
        ];
        let mut sched = RandomScheduler::seeded(seed);
        let out = run_concurrent(
            &bank,
            &im,
            workload,
            &mut sched,
            &mut FirstOutcome,
            1_000_000,
        )
        .unwrap();
        assert!(out.reached_final, "seed {seed}");
        assert!(
            check_linearizable(&out.history, &spec).unwrap().is_some(),
            "seed {seed}:\n{}",
            out.history
        );
    }
}

#[test]
fn tournament_is_crash_tolerant() {
    // If the would-be winner crashes before finishing, the survivors still
    // produce at most one winner (and possibly none — TAS task allows it
    // only when not everyone decided).
    let n = 4;
    for crash_after in 0..4 {
        for victim in 0..n {
            let mut b = SystemBuilder::new();
            let base = b.add_object_array(tournament_nodes(n), |_| {
                Box::new(Consensus::bounded(2)) as Box<dyn ObjectSpec>
            });
            let p: Arc<dyn Protocol> = Arc::new(Tournament::new(base, n));
            b.add_processes(p, (0..n).map(Value::from));
            let spec = b.build();
            let mut sched = CrashScheduler::new(
                RoundRobin::new(),
                [(Pid::new(victim), crash_after)].into_iter().collect(),
            );
            let out = subconsensus::sim::run(
                &spec,
                &mut sched,
                &mut FirstOutcome,
                &subconsensus::sim::RunOptions::default(),
            )
            .unwrap();
            let inputs: Vec<Value> = (0..n).map(Value::from).collect();
            TestAndSetTask::new()
                .check(&inputs, &out.decisions())
                .unwrap();
        }
    }
}

#[test]
fn universal_stack_and_cas_linearize() {
    for seed in 0..60 {
        // Stack from 3-consensus for 3 processes.
        let mut bank = BaseObjects::new();
        let announce = bank.add(RegisterArray::new(3));
        let slots = bank.add_array(32, |_| {
            Box::new(Consensus::bounded(3)) as Box<dyn ObjectSpec>
        });
        let inner: Arc<dyn ObjectSpec> = Arc::new(Stack::new());
        let im: Arc<dyn Implementation> =
            Arc::new(UniversalConstruction::new(inner, announce, slots, 32, 3));
        let workload = vec![
            vec![Op::unary("push", Value::Int(1)), Op::new("pop")],
            vec![Op::unary("push", Value::Int(2)), Op::new("pop")],
            vec![
                Op::unary("push", Value::Int(3)),
                Op::new("pop"),
                Op::new("pop"),
            ],
        ];
        let mut sched = RandomScheduler::seeded(seed);
        let out = run_concurrent(
            &bank,
            &im,
            workload,
            &mut sched,
            &mut FirstOutcome,
            1_000_000,
        )
        .unwrap();
        assert!(
            check_linearizable(&out.history, &Stack::new())
                .unwrap()
                .is_some(),
            "stack seed {seed}:\n{}",
            out.history
        );

        // Compare-and-swap from 2-consensus for 2 processes.
        let mut bank = BaseObjects::new();
        let announce = bank.add(RegisterArray::new(2));
        let slots = bank.add_array(16, |_| {
            Box::new(Consensus::bounded(2)) as Box<dyn ObjectSpec>
        });
        let inner: Arc<dyn ObjectSpec> = Arc::new(CompareAndSwap::new());
        let im: Arc<dyn Implementation> =
            Arc::new(UniversalConstruction::new(inner, announce, slots, 16, 2));
        let workload = vec![
            vec![
                Op::binary("cas", Value::Nil, Value::Int(1)),
                Op::binary("cas", Value::Int(1), Value::Int(3)),
            ],
            vec![
                Op::binary("cas", Value::Nil, Value::Int(2)),
                Op::new("read"),
            ],
        ];
        let mut sched = RandomScheduler::seeded(seed);
        let out = run_concurrent(
            &bank,
            &im,
            workload,
            &mut sched,
            &mut FirstOutcome,
            1_000_000,
        )
        .unwrap();
        assert!(
            check_linearizable(&out.history, &CompareAndSwap::new())
                .unwrap()
                .is_some(),
            "cas seed {seed}:\n{}",
            out.history
        );
    }
}

#[test]
fn universal_queue_sequential_consistency_of_per_process_results() {
    // Program order within each process must be respected by the
    // implementation's own responses.
    let mut bank = BaseObjects::new();
    let announce = bank.add(RegisterArray::new(2));
    let slots = bank.add_array(16, |_| {
        Box::new(Consensus::bounded(2)) as Box<dyn ObjectSpec>
    });
    let inner: Arc<dyn ObjectSpec> = Arc::new(Queue::new());
    let im: Arc<dyn Implementation> =
        Arc::new(UniversalConstruction::new(inner, announce, slots, 16, 2));
    let workload = vec![
        vec![Op::unary("enq", Value::Int(7)), Op::new("deq")],
        vec![],
    ];
    let out = run_concurrent(
        &bank,
        &im,
        workload,
        &mut RoundRobin::new(),
        &mut FirstOutcome,
        100_000,
    )
    .unwrap();
    assert_eq!(
        out.results[0][1],
        Value::Int(7),
        "own enqueue visible to own dequeue"
    );
}
