//! Integration test for experiment E2: the deterministic grouped family
//! solves `(n(k+1), k+1)`-set consensus — exhaustively for small levels,
//! statistically for larger ones — and the bound is *tight*.

use std::sync::Arc;

use subconsensus::core::GroupedObject;
use subconsensus::modelcheck::{max_distinct_decisions, ExploreOptions, StateGraph};
use subconsensus::protocols::ProposeDecide;
use subconsensus::sim::{Protocol, SystemBuilder, SystemSpec, Value};
use subconsensus::tasks::{check_exhaustive, check_random, SetConsensusTask};

fn grouped_system(n: usize, k: usize, procs: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let obj = b.add_object(GroupedObject::for_level(n, k));
    let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
    b.add_processes(p, (0..procs).map(|i| Value::Int(i as i64 + 1)));
    b.build()
}

#[test]
fn exhaustive_small_levels_solve_k_plus_1_set_consensus() {
    for (n, k) in [(2usize, 0usize), (2, 1), (3, 0)] {
        let procs = n * (k + 1); // full capacity
        let spec = grouped_system(n, k, procs);
        let task = SetConsensusTask::new(k + 1);
        let report = check_exhaustive(&spec, &task, &ExploreOptions::default()).unwrap();
        assert!(
            report.solved(),
            "O_{{{n},{k}}} must solve {}-set consensus: {report:?}",
            k + 1
        );
    }
}

#[test]
fn exhaustive_bound_is_tight() {
    // Some schedule really does produce k+1 distinct values, so (k)-set
    // consensus is NOT solved by the same protocol.
    for (n, k) in [(2usize, 1usize), (3, 1)] {
        let procs = n * (k + 1);
        let spec = grouped_system(n, k, procs);
        let graph = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        assert_eq!(
            max_distinct_decisions(&graph),
            k + 1,
            "tightness for n={n}, k={k}"
        );
        let weaker = SetConsensusTask::new(k);
        let report = check_exhaustive(&spec, &weaker, &ExploreOptions::default()).unwrap();
        assert!(
            !report.solved(),
            "the k-agreement bound must be violated somewhere"
        );
    }
}

#[test]
fn random_larger_levels_respect_the_bound() {
    for (n, k) in [(3usize, 2usize), (4, 1), (2, 4)] {
        let procs = n * (k + 1);
        let spec = grouped_system(n, k, procs);
        let task = SetConsensusTask::new(k + 1);
        let report = check_random(&spec, &task, 0..400, 100_000).unwrap();
        assert!(report.solved(), "n={n} k={k}: {report:?}");
    }
}

#[test]
fn fewer_participants_get_proportionally_stronger_agreement() {
    // With only p ≤ capacity participants, at most ⌈p/n⌉ groups form.
    let n = 2;
    let k = 2; // capacity 6
    for procs in 1..=6 {
        let spec = grouped_system(n, k, procs);
        let graph = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        assert_eq!(
            max_distinct_decisions(&graph),
            procs.div_ceil(n),
            "graded agreement for {procs} participants"
        );
    }
}

#[test]
fn overflow_participants_hang_instead_of_deciding() {
    // One more participant than capacity: every schedule hangs exactly one.
    let n = 2;
    let k = 0; // capacity 2
    let spec = grouped_system(n, k, 3);
    let task = SetConsensusTask::new(1);
    let report = check_exhaustive(&spec, &task, &ExploreOptions::default()).unwrap();
    assert!(!report.solved());
    assert!(report.safe(), "whoever decides still agrees: {report:?}");
    assert_eq!(
        report.wait_freedom,
        subconsensus::modelcheck::WaitFreedom::Hangs
    );
}
