#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build+test command.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

# Remember whether the caller asked for the bench smoke step, then scrub
# the flag so the build/test steps run with normal harness behavior.
RUN_BENCH_SMOKE="${BENCH_SMOKE:-0}"
unset BENCH_SMOKE

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test -q --workspace

if [[ "$RUN_BENCH_SMOKE" == "1" ]]; then
  # Smoke-run the model-check bench (two untimed iterations per kernel, no
  # JSON write — see harness::smoke_mode) and diff its deterministic GUARD
  # facts against the committed BENCH_modelcheck.json, so bench bit-rot,
  # reduction regressions (graphs growing back) and per-config memory
  # regressions all fail the gate. INTERNER_STATS=1 additionally exercises
  # the hash-consing diagnostics path and surfaces the arena summaries.
  echo "==> bench guard (BENCH_SMOKE=1): e9_modelcheck vs BENCH_modelcheck.json"
  INTERNER_STATS=1 bash scripts/bench_guard.sh
fi

echo "OK"
