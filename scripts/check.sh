#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build+test command.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

# Remember whether the caller asked for the bench smoke step, then scrub
# the flag so the build/test steps run with normal harness behavior.
RUN_BENCH_SMOKE="${BENCH_SMOKE:-0}"
unset BENCH_SMOKE

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test -q --workspace

# Telemetry smoke: run the flagship example with the heartbeat, the JSONL
# span trace, the run ledger and the live status file all on, then validate
# every artifact with mc-report (the std-only analysis CLI — the trace
# check replaces the old inline python3 validator: every line parses, the
# level-span keys are present, levels strictly monotone from 0). The
# example runs thousands of explorations; MC_TRACE truncates per
# exploration (the file holds the spans of the last one) while MC_RUN_LOG
# appends one ledger line per exploration and MC_STATUS_FILE holds the
# last atomically-renamed heartbeat snapshot.
echo "==> telemetry smoke: MC_PROGRESS=1 + trace + ledger + status, impossibility_search"
rm -f /tmp/mc_trace.jsonl /tmp/mc_runs.jsonl /tmp/mc_status.json
MC_PROGRESS=1 MC_TRACE=/tmp/mc_trace.jsonl \
  MC_RUN_LOG=/tmp/mc_runs.jsonl MC_STATUS_FILE=/tmp/mc_status.json \
  cargo run --release -q --example impossibility_search >/tmp/mc_example.log
cargo run --release -q --bin mc-report -- validate /tmp/mc_trace.jsonl
cargo run --release -q --bin mc-report -- ledger /tmp/mc_runs.jsonl --last 1 >/dev/null \
  || { echo "telemetry smoke: run ledger failed to parse" >&2; exit 1; }
cargo run --release -q --bin mc-report -- tail /tmp/mc_status.json \
  || { echo "telemetry smoke: status file failed to parse" >&2; exit 1; }
# A ledger diffed against itself must report zero regressions.
cargo run --release -q --bin mc-report -- diff /tmp/mc_runs.jsonl /tmp/mc_runs.jsonl >/dev/null \
  || { echo "telemetry smoke: self-diff of the run ledger reported regressions" >&2; exit 1; }
echo "telemetry smoke: OK (trace validated, ledger + status parsed)"
# The example's closing demo runs an every-expansion heartbeat; its absence
# means the progress-callback path broke. (The MC_PROGRESS=1 stderr default
# fires every 100k expansions — these fixtures are far smaller, so stderr
# staying quiet is expected.)
grep -q 'heartbeat: level' /tmp/mc_example.log \
  || { echo "telemetry smoke: example emitted no heartbeat" >&2; exit 1; }

# Verdict-goal smoke: the hierarchy-table example ends with streaming
# verdict spot checks of the E1 claims (`grouped_consensus_check` explores
# under ExploreGoal::Verdict). Every VERDICT row must carry a decided
# yes/no answer — the early-exit path regressing to "undecided" (or the
# section disappearing) fails the gate.
echo "==> verdict smoke: hierarchy_table example (ExploreGoal::Verdict path)"
cargo run --release -q --example hierarchy_table >/tmp/mc_hierarchy.log
grep -c '^VERDICT ' /tmp/mc_hierarchy.log | grep -qx 4 \
  || { echo "verdict smoke: expected 4 VERDICT rows" >&2; exit 1; }
if grep '^VERDICT ' /tmp/mc_hierarchy.log | awk '{print $5}' | grep -qv -E '^(yes|no)$'; then
  echo "verdict smoke: a VERDICT row left the consensus question undecided" >&2
  exit 1
fi
echo "verdict smoke: OK (4 decided VERDICT rows)"

if [[ "$RUN_BENCH_SMOKE" == "1" ]]; then
  # Smoke-run the model-check bench (two untimed iterations per kernel, no
  # JSON write — see harness::smoke_mode) twice — MC_SHARDS=1 and
  # MC_SHARDS=4 — diffing the two runs' GUARD lines (shard-count
  # independence of the explored graphs, gated on every run) and then the
  # unsharded facts against the committed BENCH_modelcheck.json, so bench
  # bit-rot, sharding divergence, reduction regressions (graphs growing
  # back) and per-config memory regressions all fail the gate.
  # INTERNER_STATS=1 additionally exercises the hash-consing diagnostics
  # path and surfaces the arena summaries.
  echo "==> bench guard (BENCH_SMOKE=1): e9_modelcheck at MC_SHARDS=1 vs 4 vs BENCH_modelcheck.json"
  INTERNER_STATS=1 bash scripts/bench_guard.sh
fi

echo "OK"
