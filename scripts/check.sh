#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build+test command.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

# Remember whether the caller asked for the bench smoke step, then scrub
# the flag so the build/test steps run with normal harness behavior.
RUN_BENCH_SMOKE="${BENCH_SMOKE:-0}"
unset BENCH_SMOKE

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test -q --workspace

# Telemetry smoke: run the flagship example with the heartbeat and the
# JSONL span trace on, then validate the trace is well-formed (every line
# parses as JSON, level numbers strictly monotone from 0). The example runs
# thousands of explorations; MC_TRACE truncates per exploration, so the
# file holds the spans of the last one.
echo "==> telemetry smoke: MC_PROGRESS=1 MC_TRACE=/tmp/mc_trace.jsonl impossibility_search"
rm -f /tmp/mc_trace.jsonl
MC_PROGRESS=1 MC_TRACE=/tmp/mc_trace.jsonl \
  cargo run --release -q --example impossibility_search >/tmp/mc_example.log
python3 - <<'EOF'
import json
lines = [l for l in open("/tmp/mc_trace.jsonl") if l.strip()]
assert lines, "MC_TRACE produced an empty trace"
levels = []
for l in lines:
    rec = json.loads(l)  # raises on malformed JSON
    for key in ("level", "items", "new_nodes", "nodes", "edges", "elapsed_ns"):
        assert key in rec, f"trace record missing {key!r}: {rec}"
    levels.append(rec["level"])
assert levels == list(range(len(levels))), f"levels not monotone from 0: {levels}"
print(f"telemetry smoke: OK ({len(lines)} well-formed trace records)")
EOF
# The example's closing demo runs an every-expansion heartbeat; its absence
# means the progress-callback path broke. (The MC_PROGRESS=1 stderr default
# fires every 100k expansions — these fixtures are far smaller, so stderr
# staying quiet is expected.)
grep -q 'heartbeat: level' /tmp/mc_example.log \
  || { echo "telemetry smoke: example emitted no heartbeat" >&2; exit 1; }

# Verdict-goal smoke: the hierarchy-table example ends with streaming
# verdict spot checks of the E1 claims (`grouped_consensus_check` explores
# under ExploreGoal::Verdict). Every VERDICT row must carry a decided
# yes/no answer — the early-exit path regressing to "undecided" (or the
# section disappearing) fails the gate.
echo "==> verdict smoke: hierarchy_table example (ExploreGoal::Verdict path)"
cargo run --release -q --example hierarchy_table >/tmp/mc_hierarchy.log
grep -c '^VERDICT ' /tmp/mc_hierarchy.log | grep -qx 4 \
  || { echo "verdict smoke: expected 4 VERDICT rows" >&2; exit 1; }
if grep '^VERDICT ' /tmp/mc_hierarchy.log | awk '{print $5}' | grep -qv -E '^(yes|no)$'; then
  echo "verdict smoke: a VERDICT row left the consensus question undecided" >&2
  exit 1
fi
echo "verdict smoke: OK (4 decided VERDICT rows)"

if [[ "$RUN_BENCH_SMOKE" == "1" ]]; then
  # Smoke-run the model-check bench (two untimed iterations per kernel, no
  # JSON write — see harness::smoke_mode) twice — MC_SHARDS=1 and
  # MC_SHARDS=4 — diffing the two runs' GUARD lines (shard-count
  # independence of the explored graphs, gated on every run) and then the
  # unsharded facts against the committed BENCH_modelcheck.json, so bench
  # bit-rot, sharding divergence, reduction regressions (graphs growing
  # back) and per-config memory regressions all fail the gate.
  # INTERNER_STATS=1 additionally exercises the hash-consing diagnostics
  # path and surfaces the arena summaries.
  echo "==> bench guard (BENCH_SMOKE=1): e9_modelcheck at MC_SHARDS=1 vs 4 vs BENCH_modelcheck.json"
  INTERNER_STATS=1 bash scripts/bench_guard.sh
fi

echo "OK"
