#!/usr/bin/env bash
# Deterministic bench guard, five gates:
#
# 1. Shard-count independence: the e9 smoke bench runs twice — once with
#    MC_SHARDS=1 and once with MC_SHARDS=4, so the second run routes every
#    exploration through the fingerprint-partitioned explorer — and the
#    GUARD lines (peak_configs, edges, truncated,
#    approx_bytes_per_config) must be *identical*. Any divergence in
#    configs, edges or bytes means the sharded explorer no longer
#    reproduces the single-store graph and fails the gate.
#
# 2. Baseline regression: the MC_SHARDS=1 facts for every (fixture,
#    symmetry, por) combination are compared against the committed
#    BENCH_modelcheck.json (threads=1, shards=1 rows). Timing fields are
#    machine-dependent and ignored; the graph facts — including the
#    frozen store's per-config memory — are deterministic, so any growth
#    (more configs, more edges, more bytes per config, or a completing
#    exploration starting to truncate) is a regression and fails the
#    gate. Shrinkage is an improvement: it passes here and shows up in
#    the next full bench run.
#
# 3. Verdict-goal agreement: the smoke bench's VERDICT lines (one per
#    gate fixture x symmetry x por; the in-bench asserts already checked
#    the streaming verdict against a full-graph re-exploration) must be
#    byte-identical between MC_SHARDS=1 and MC_SHARDS=4, and every line
#    must show the early-exited run exploring strictly fewer
#    configurations than the full graph.
#
# 4. Disk-store equivalence: the smoke bench runs once more with
#    MC_STORE=disk and a 64 KiB hot-tier budget, so every Auto-backend
#    exploration spills cold arenas, frontier rows and index buckets to
#    disk. The GUARD and VERDICT lines must be byte-identical to the
#    in-memory run (spilling must never change the explored graph or its
#    frozen footprint), at least one SPILL line must report nonzero
#    spilled bytes (the explicit disk rows with their tiny budget), and
#    no mc-spill-* run directory may survive the run. INTERNER lines are
#    deliberately NOT diffed: eviction inflates the arenas' miss
#    counters without touching the graph.
#
# 5. mc-report diff self-consistency: `mc-report diff` on the committed
#    baseline against itself must report zero regressions and exit 0,
#    and against a doctored copy (a completing row flipped to
#    "truncated": true) must flag the regression and exit non-zero —
#    so the analysis CLI the other gates and humans lean on cannot
#    silently stop seeing regressions.
#
# With INTERNER_STATS=1 the smoke run's per-row hash-consing arena
# summaries are forwarded to stdout.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="BENCH_modelcheck.json"
if [[ ! -f "$BASELINE" ]]; then
  echo "bench_guard: no $BASELINE baseline; skipping" >&2
  exit 0
fi

raw=$(MC_SHARDS=1 BENCH_SMOKE=1 cargo bench -q -p subconsensus-bench --bench e9_modelcheck 2>&1 | grep -E '^(GUARD|INTERNER|VERDICT) ' || true)
fresh=$(grep '^GUARD ' <<<"$raw" || true)
if [[ -z "$fresh" ]]; then
  echo "bench_guard: smoke run produced no GUARD lines" >&2
  exit 1
fi
# Arena summaries (emitted only under INTERNER_STATS=1).
grep '^INTERNER ' <<<"$raw" || true

# Gate 1: the same smoke bench under MC_SHARDS=4 must print the exact
# same GUARD facts — configs, edges, truncation and bytes per config.
sharded_raw=$(MC_SHARDS=4 BENCH_SMOKE=1 cargo bench -q -p subconsensus-bench --bench e9_modelcheck 2>&1 | grep -E '^(GUARD|VERDICT) ' || true)
sharded=$(grep '^GUARD ' <<<"$sharded_raw" || true)
if [[ -z "$sharded" ]]; then
  echo "bench_guard: MC_SHARDS=4 smoke run produced no GUARD lines" >&2
  exit 1
fi
if ! diff <(echo "$fresh") <(echo "$sharded") >/dev/null; then
  echo "bench_guard: FAILED — GUARD lines diverge between MC_SHARDS=1 and MC_SHARDS=4:"
  diff <(echo "$fresh") <(echo "$sharded") | sed 's/^/bench_guard:   /' || true
  exit 1
fi
echo "bench_guard: shard independence OK ($(wc -l <<<"$sharded") GUARD lines identical at MC_SHARDS=4)"

# Gate 2: compare the unsharded facts against the committed baseline.
fail=0
checked=0
while read -r _ fixture symmetry por peak edges truncated bytes_pc; do
  row=$(grep -F "\"fixture\": \"$fixture\", \"threads\": 1, \"shards\": 1, \"symmetry\": $symmetry, \"por\": $por," "$BASELINE" | head -1 || true)
  if [[ -z "$row" ]]; then
    echo "bench_guard: no baseline row for $fixture symmetry=$symmetry por=$por (new fixture?); skipping"
    continue
  fi
  # The per-phase timing breakdown ("phases": {...}) is machine-dependent;
  # strip the object before field extraction so its keys can never shadow
  # the deterministic graph facts the guard compares.
  row=$(sed 's/"phases": {[^}]*}, //' <<<"$row")
  checked=$((checked + 1))
  base_peak=$(sed -n 's/.*"peak_configs": \([0-9]*\).*/\1/p' <<<"$row")
  base_edges=$(sed -n 's/.*"edges": \([0-9]*\).*/\1/p' <<<"$row")
  base_trunc=$(sed -n 's/.*"truncated": \(true\|false\).*/\1/p' <<<"$row")
  base_bytes=$(sed -n 's/.*"approx_bytes_per_config": \([0-9]*\).*/\1/p' <<<"$row")
  if ((peak > base_peak)); then
    echo "bench_guard: $fixture sym=$symmetry por=$por: peak_configs grew $base_peak -> $peak"
    fail=1
  fi
  if ((edges > base_edges)); then
    echo "bench_guard: $fixture sym=$symmetry por=$por: edges grew $base_edges -> $edges"
    fail=1
  fi
  if [[ "$base_trunc" == "false" && "$truncated" == "true" ]]; then
    echo "bench_guard: $fixture sym=$symmetry por=$por: exploration now truncates"
    fail=1
  fi
  if [[ -n "$base_bytes" && -n "$bytes_pc" ]] && ((bytes_pc > base_bytes)); then
    echo "bench_guard: $fixture sym=$symmetry por=$por: approx_bytes_per_config grew $base_bytes -> $bytes_pc"
    fail=1
  fi
done <<<"$fresh"

if ((checked == 0)); then
  echo "bench_guard: no GUARD line matched a baseline row — format drift?" >&2
  exit 1
fi
if ((fail)); then
  echo "bench_guard: FAILED (explored graphs grew vs $BASELINE)"
  exit 1
fi
echo "bench_guard: OK ($checked rows checked, graph facts + bytes/config)"

# Gate 3: verdict-goal agreement. The bench already asserts (per row)
# that the streaming verdict matches a full-graph re-exploration and
# that shards 1 and 4 produce identical facts; here we re-check the
# printed VERDICT lines across the two MC_SHARDS runs and the
# strictly-fewer-configs claim.
fresh_v=$(grep '^VERDICT ' <<<"$raw" || true)
sharded_v=$(grep '^VERDICT ' <<<"$sharded_raw" || true)
if [[ -z "$fresh_v" ]]; then
  echo "bench_guard: smoke run produced no VERDICT lines" >&2
  exit 1
fi
if ! diff <(echo "$fresh_v") <(echo "$sharded_v") >/dev/null; then
  echo "bench_guard: FAILED — VERDICT lines diverge between MC_SHARDS=1 and MC_SHARDS=4:"
  diff <(echo "$fresh_v") <(echo "$sharded_v") | sed 's/^/bench_guard:   /' || true
  exit 1
fi
vfail=0
while read -r _ fixture symmetry por vconfigs fconfigs answer _; do
  if ((vconfigs >= fconfigs)); then
    echo "bench_guard: $fixture sym=$symmetry por=$por: verdict explored $vconfigs configs, full graph $fconfigs — no early-exit saving"
    vfail=1
  fi
  if [[ "$answer" == "undecided" ]]; then
    echo "bench_guard: $fixture sym=$symmetry por=$por: verdict run left the query undecided"
    vfail=1
  fi
done <<<"$fresh_v"
if ((vfail)); then
  echo "bench_guard: FAILED (verdict-goal rows lost their early exit)"
  exit 1
fi
echo "bench_guard: verdict goal OK ($(wc -l <<<"$fresh_v") VERDICT lines, early exit strict on all)"

# Gate 4: disk-store equivalence. Route every Auto-backend exploration
# through the disk store with a hot tier small enough that the large
# fixtures actually spill; the explored graphs — and the frozen,
# unspilled footprints behind approx_bytes_per_config — must be
# byte-identical to the in-memory run.
disk_raw=$(MC_SHARDS=1 MC_STORE=disk MC_STORE_BUDGET=65536 BENCH_SMOKE=1 cargo bench -q -p subconsensus-bench --bench e9_modelcheck 2>&1 | grep -E '^(GUARD|VERDICT|SPILL) ' || true)
disk_g=$(grep -E '^(GUARD|VERDICT) ' <<<"$disk_raw" || true)
mem_g=$(grep -E '^(GUARD|VERDICT) ' <<<"$raw" || true)
if [[ -z "$disk_g" ]]; then
  echo "bench_guard: MC_STORE=disk smoke run produced no GUARD lines" >&2
  exit 1
fi
if ! diff <(echo "$mem_g") <(echo "$disk_g") >/dev/null; then
  echo "bench_guard: FAILED — GUARD/VERDICT lines diverge between MC_STORE=disk and memory:"
  diff <(echo "$mem_g") <(echo "$disk_g") | sed 's/^/bench_guard:   /' || true
  exit 1
fi
spilled=0
while read -r _ fixture symmetry por bytes reloads; do
  if ((bytes > 0)); then
    spilled=$((spilled + 1))
  else
    echo "bench_guard: $fixture sym=$symmetry por=$por: disk row spilled 0 bytes ($reloads reloads)"
  fi
done < <(grep '^SPILL ' <<<"$disk_raw")
if ((spilled == 0)); then
  echo "bench_guard: FAILED — no SPILL line reported nonzero spilled bytes" >&2
  exit 1
fi
spill_base="${MC_STORE_DIR:-${TMPDIR:-/tmp}}"
leftover=$(find "$spill_base" -maxdepth 1 -name 'mc-spill-*' 2>/dev/null || true)
if [[ -n "$leftover" ]]; then
  echo "bench_guard: FAILED — spill run directories leaked:" >&2
  sed 's/^/bench_guard:   /' <<<"$leftover" >&2
  exit 1
fi
echo "bench_guard: disk store OK (GUARD/VERDICT identical under MC_STORE=disk, $spilled SPILL rows, run dirs cleaned)"

# Gate 5: the mc-report diff gate must itself work. Identical files diff
# clean (exit 0, zero regressions); a copy with one completing row
# doctored to "truncated": true must be flagged (non-zero exit).
if ! cargo run --release -q --bin mc-report -- diff "$BASELINE" "$BASELINE" >/tmp/mc_diff_self.log; then
  echo "bench_guard: FAILED — mc-report diff reported regressions on identical files:" >&2
  sed 's/^/bench_guard:   /' /tmp/mc_diff_self.log >&2
  exit 1
fi
if ! grep -q ' 0 regressed' /tmp/mc_diff_self.log; then
  echo "bench_guard: FAILED — self-diff summary did not report 0 regressed:" >&2
  sed 's/^/bench_guard:   /' /tmp/mc_diff_self.log >&2
  exit 1
fi
sed '0,/"truncated": false/s//"truncated": true/' "$BASELINE" >/tmp/mc_doctored.json
if cargo run --release -q --bin mc-report -- diff "$BASELINE" /tmp/mc_doctored.json >/tmp/mc_diff_doctored.log; then
  echo "bench_guard: FAILED — mc-report diff missed a doctored truncation regression" >&2
  exit 1
fi
rm -f /tmp/mc_doctored.json /tmp/mc_diff_self.log /tmp/mc_diff_doctored.log
echo "bench_guard: mc-report diff OK (self-diff clean, doctored regression caught)"
