//! The follow-up paper's algorithms over `WRN_k` objects.
//!
//! * [`WrnPropose`] — Algorithm 2: `(k-1)`-set consensus for `k` processes
//!   with ids `{0..k-1}` from a single `WRN_k`.
//! * [`WrnPartitionPropose`] — Algorithm 6: `m`-set consensus for `n`
//!   processes from `⌈n/k⌉` objects (`m/n ≥ (k-1)/k`).
//! * [`WrnManyProcs`] — Algorithm 3: `(k-1)`-set consensus for `k`
//!   *participants out of a huge namespace*: rename (splitter grid), then
//!   sweep a table of `WRN_k` objects indexed by all functions from the
//!   bounded namespace onto `{0..k-1}`.
//! * [`RelaxedWrn`] — Algorithm 4: the flag-principle relaxed `WRN_k` from
//!   a `1sWRN_k` and counters.

use subconsensus_protocols::GridRenaming;
use subconsensus_sim::{
    Action, ImplStep, Implementation, ObjId, Op, ProcCtx, Protocol, ProtocolError, Value,
};

/// Algorithm 2: process `i` (its pid) performs `wrn(i, input)` on one
/// `WRN_k` object and decides the response, falling back to its own input
/// on `⊥`.
///
/// For `k` processes with distinct inputs this solves `(k-1)`-set
/// consensus: the first invoker decides its own value, the last invoker
/// decides its successor's, and nobody decides the last invoker's value.
#[derive(Clone, Copy, Debug)]
pub struct WrnPropose {
    obj: ObjId,
}

impl WrnPropose {
    /// Creates the protocol over the `WRN_k` (or `1sWRN_k`) object `obj`.
    pub fn new(obj: ObjId) -> Self {
        WrnPropose { obj }
    }
}

impl Protocol for WrnPropose {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        Value::Int(0)
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        match local.as_int() {
            Some(0) => Ok(Action::invoke(
                Value::Int(1),
                self.obj,
                Op::binary("wrn", Value::from(ctx.pid.index()), ctx.input.clone()),
            )),
            Some(1) => {
                let t = resp.ok_or_else(|| ProtocolError::new("missing wrn response"))?;
                Ok(Action::Decide(if t.is_nil() {
                    ctx.input.clone()
                } else {
                    t.clone()
                }))
            }
            _ => Err(ProtocolError::new("wrn-propose: bad pc")),
        }
    }
}

/// Algorithm 6: process `i` performs `wrn(i mod k, input)` on object
/// `base + ⌊i/k⌋`; decide the response or the input on `⊥`.
///
/// `n` processes with `⌈n/k⌉` `WRN_k` objects decide at most
/// `⌈n/k⌉ · (k-1) + min(n mod k, …)` values — e.g. `WRN_3` objects solve
/// `(12, 8)`-set consensus.
#[derive(Clone, Copy, Debug)]
pub struct WrnPartitionPropose {
    base: ObjId,
    k: usize,
}

impl WrnPartitionPropose {
    /// Creates the protocol over a contiguous array of `WRN_k` objects.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(base: ObjId, k: usize) -> Self {
        assert!(k >= 2, "WRN_k requires k ≥ 2");
        WrnPartitionPropose { base, k }
    }
}

impl Protocol for WrnPartitionPropose {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        Value::Int(0)
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        let me = ctx.pid.index();
        match local.as_int() {
            Some(0) => Ok(Action::invoke(
                Value::Int(1),
                self.base.offset(me / self.k),
                Op::binary("wrn", Value::from(me % self.k), ctx.input.clone()),
            )),
            Some(1) => {
                let t = resp.ok_or_else(|| ProtocolError::new("missing wrn response"))?;
                Ok(Action::Decide(if t.is_nil() {
                    ctx.input.clone()
                } else {
                    t.clone()
                }))
            }
            _ => Err(ProtocolError::new("wrn-partition: bad pc")),
        }
    }
}

/// Algorithm 3: `(k-1)`-set consensus for at most `k` participants whose
/// identifiers come from an arbitrary (huge) namespace.
///
/// Phase 1 renames the participant into the bounded namespace
/// `{0 .. M-1}`, `M = k(k+1)/2`, with the register-only splitter grid.
/// Phase 2 sweeps `W[ℓ]` for `ℓ = 0 .. k^M - 1`, where iteration `ℓ`
/// interprets `ℓ` as the function `f_ℓ : {0..M-1} → {0..k-1}` (base-`k`
/// digits) and performs `W[ℓ].wrn(f_ℓ(name), input)`. The first non-`⊥`
/// response is decided; a participant that sees only `⊥` decides its own
/// input. Correctness hinges on the iteration `ℓ*` whose function maps the
/// (at most `k`) acquired names *onto* `{0..k-1}` — the enumeration
/// guarantees it exists.
#[derive(Clone, Copy, Debug)]
pub struct WrnManyProcs {
    renaming: GridRenaming,
    wrns: ObjId,
    k: usize,
}

impl WrnManyProcs {
    /// Number of grid-renaming names (and function-domain size) for `k`.
    pub fn namespace(k: usize) -> usize {
        k * (k + 1) / 2
    }

    /// Number of `WRN_k` objects required: `k^namespace(k)`.
    pub fn wrn_objects_needed(k: usize) -> usize {
        k.pow(Self::namespace(k) as u32)
    }

    /// Creates the protocol: `regs` is the splitter-grid register array
    /// (length [`GridRenaming::registers_needed`]`(k)`), `wrns` the first of
    /// [`Self::wrn_objects_needed`]`(k)` contiguous `WRN_k` objects.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(regs: ObjId, wrns: ObjId, k: usize) -> Self {
        assert!(k >= 2, "WRN_k requires k ≥ 2");
        WrnManyProcs {
            renaming: GridRenaming::new(regs, k),
            wrns,
            k,
        }
    }

    /// `f_ℓ(name)`: digit `name` of `ℓ` in base `k`.
    fn f(&self, ell: usize, name: usize) -> usize {
        (ell / self.k.pow(name as u32)) % self.k
    }
}

// Local state is a 2-phase tagged value:
//   ("rename", inner_local)       — delegating to the splitter grid
//   ("sweep", name, ell)          — iterating the WRN table
impl Protocol for WrnManyProcs {
    fn start(&self, ctx: &ProcCtx) -> Value {
        Value::tup([Value::Sym("rename"), self.renaming.start(ctx)])
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        let tag = local
            .index(0)
            .and_then(Value::as_sym)
            .ok_or_else(|| ProtocolError::new("wrn-many: bad local state"))?;
        match tag {
            "rename" => {
                let inner = local
                    .index(1)
                    .ok_or_else(|| ProtocolError::new("wrn-many: missing inner state"))?;
                match self.renaming.step(ctx, inner, resp)? {
                    Action::Invoke { local: il, obj, op } => Ok(Action::Invoke {
                        local: Value::tup([Value::Sym("rename"), il]),
                        obj,
                        op,
                    }),
                    Action::Decide(name_v) => {
                        let name = name_v
                            .as_index()
                            .ok_or_else(|| ProtocolError::new("wrn-many: bad name"))?;
                        // Enter the sweep at iteration 0.
                        self.sweep_invoke(ctx, name, 0)
                    }
                }
            }
            "sweep" => {
                let name = local
                    .index(1)
                    .and_then(Value::as_index)
                    .ok_or_else(|| ProtocolError::new("wrn-many: bad name"))?;
                let ell = local
                    .index(2)
                    .and_then(Value::as_index)
                    .ok_or_else(|| ProtocolError::new("wrn-many: bad iteration"))?;
                let t = resp.ok_or_else(|| ProtocolError::new("missing wrn response"))?;
                if !t.is_nil() {
                    return Ok(Action::Decide(t.clone()));
                }
                let next = ell + 1;
                if next >= Self::wrn_objects_needed(self.k) {
                    return Ok(Action::Decide(ctx.input.clone()));
                }
                self.sweep_invoke(ctx, name, next)
            }
            _ => Err(ProtocolError::new("wrn-many: unknown phase")),
        }
    }
}

impl WrnManyProcs {
    fn sweep_invoke(
        &self,
        ctx: &ProcCtx,
        name: usize,
        ell: usize,
    ) -> Result<Action, ProtocolError> {
        let i = self.f(ell, name);
        Ok(Action::Invoke {
            local: Value::tup([Value::Sym("sweep"), Value::from(name), Value::from(ell)]),
            obj: self.wrns.offset(ell),
            op: Op::binary("wrn", Value::from(i), ctx.input.clone()),
        })
    }
}

/// Algorithm 3 over **one-shot** objects: the sweep of [`WrnManyProcs`]
/// with every `W[ℓ].wrn` replaced by the relaxed flag-principle access of
/// Algorithm 4 (inc counter, read, forward to the `1sWRN_k` only on
/// reading exactly 1).
///
/// This is the paper lineage's final form: it shows the construction needs
/// only *one-shot* WRN objects. Racing participants mapped to the same
/// index by `f_ℓ` may both be diverted to `⊥` — harmless, because the
/// decisive iteration `ℓ*` maps all acquired names injectively onto
/// `{0..k-1}` and there every underlying `1sWRN` access goes through
/// (Claim 21).
///
/// Object layout (per iteration `ℓ`): counter array `counters + ℓ`
/// ([`CounterArray`](subconsensus_objects::CounterArray)`(k)`) and one-shot
/// object `wrns + ℓ` ([`OneShotWrn`](crate::OneShotWrn)).
#[derive(Clone, Copy, Debug)]
pub struct WrnManyProcsOneShot {
    renaming: GridRenaming,
    counters: ObjId,
    wrns: ObjId,
    k: usize,
}

impl WrnManyProcsOneShot {
    /// Creates the protocol; `regs` as in [`WrnManyProcs::new`], `counters`
    /// the first of [`WrnManyProcs::wrn_objects_needed`]`(k)` counter
    /// arrays, `wrns` the first of as many `1sWRN_k` objects.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(regs: ObjId, counters: ObjId, wrns: ObjId, k: usize) -> Self {
        assert!(k >= 2, "WRN_k requires k ≥ 2");
        WrnManyProcsOneShot {
            renaming: GridRenaming::new(regs, k),
            counters,
            wrns,
            k,
        }
    }

    fn f(&self, ell: usize, name: usize) -> usize {
        (ell / self.k.pow(name as u32)) % self.k
    }

    /// Enters iteration `ell`: increment the flag counter for our index.
    fn enter(&self, name: usize, ell: usize) -> Action {
        let i = self.f(ell, name);
        Action::Invoke {
            local: Value::tup([
                Value::Sym("sweep"),
                Value::from(name),
                Value::from(ell),
                Value::Int(0), // sub-pc: inc issued
            ]),
            obj: self.counters.offset(ell),
            op: Op::unary("inc", Value::from(i)),
        }
    }

    fn advance(&self, ctx: &ProcCtx, name: usize, ell: usize) -> Result<Action, ProtocolError> {
        let next = ell + 1;
        if next >= WrnManyProcs::wrn_objects_needed(self.k) {
            return Ok(Action::Decide(ctx.input.clone()));
        }
        Ok(self.enter(name, next))
    }
}

impl Protocol for WrnManyProcsOneShot {
    fn start(&self, ctx: &ProcCtx) -> Value {
        Value::tup([Value::Sym("rename"), self.renaming.start(ctx)])
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        let tag = local
            .index(0)
            .and_then(Value::as_sym)
            .ok_or_else(|| ProtocolError::new("wrn-many-1s: bad local state"))?;
        match tag {
            "rename" => {
                let inner = local
                    .index(1)
                    .ok_or_else(|| ProtocolError::new("wrn-many-1s: missing inner state"))?;
                match self.renaming.step(ctx, inner, resp)? {
                    Action::Invoke { local: il, obj, op } => Ok(Action::Invoke {
                        local: Value::tup([Value::Sym("rename"), il]),
                        obj,
                        op,
                    }),
                    Action::Decide(name_v) => {
                        let name = name_v
                            .as_index()
                            .ok_or_else(|| ProtocolError::new("wrn-many-1s: bad name"))?;
                        Ok(self.enter(name, 0))
                    }
                }
            }
            "sweep" => {
                let name = local
                    .index(1)
                    .and_then(Value::as_index)
                    .ok_or_else(|| ProtocolError::new("wrn-many-1s: bad name"))?;
                let ell = local
                    .index(2)
                    .and_then(Value::as_index)
                    .ok_or_else(|| ProtocolError::new("wrn-many-1s: bad iteration"))?;
                let sub = local
                    .index(3)
                    .and_then(Value::as_int)
                    .ok_or_else(|| ProtocolError::new("wrn-many-1s: bad sub-pc"))?;
                let i = self.f(ell, name);
                let at = |sub: i64| {
                    Value::tup([
                        Value::Sym("sweep"),
                        Value::from(name),
                        Value::from(ell),
                        Value::Int(sub),
                    ])
                };
                match sub {
                    // inc acked: read the counter.
                    0 => Ok(Action::Invoke {
                        local: at(1),
                        obj: self.counters.offset(ell),
                        op: Op::unary("read", Value::from(i)),
                    }),
                    // counter read: gate.
                    1 => {
                        let c = resp
                            .and_then(Value::as_int)
                            .ok_or_else(|| ProtocolError::new("wrn-many-1s: bad counter"))?;
                        if c == 1 {
                            Ok(Action::Invoke {
                                local: at(2),
                                obj: self.wrns.offset(ell),
                                op: Op::binary("wrn", Value::from(i), ctx.input.clone()),
                            })
                        } else {
                            // Relaxed: give up on this iteration (⊥).
                            self.advance(ctx, name, ell)
                        }
                    }
                    // wrn response received.
                    2 => {
                        let t = resp
                            .ok_or_else(|| ProtocolError::new("wrn-many-1s: missing wrn resp"))?;
                        if t.is_nil() {
                            self.advance(ctx, name, ell)
                        } else {
                            Ok(Action::Decide(t.clone()))
                        }
                    }
                    _ => Err(ProtocolError::new("wrn-many-1s: bad sub-pc")),
                }
            }
            _ => Err(ProtocolError::new("wrn-many-1s: unknown phase")),
        }
    }
}

/// Algorithm 4: the *relaxed* `WRN_k` implemented from one `1sWRN_k` and a
/// per-index counter (the flag principle).
///
/// High-level operation `wrn(i, v)`: increment counter `i`, read it; on
/// exactly 1, forward to the one-shot object (provably safe — Claim 19);
/// otherwise give up and return `⊥`. Racing invocations on the same index
/// may all return `⊥`, the documented relaxation; when all indices are used
/// by distinct processes the relaxed object behaves exactly like `WRN_k`
/// (Claim 21).
#[derive(Clone, Copy, Debug)]
pub struct RelaxedWrn {
    one_shot: ObjId,
    counters: ObjId,
}

impl RelaxedWrn {
    /// Creates the implementation over a `1sWRN_k` (`one_shot`) and a
    /// [`CounterArray`](subconsensus_objects::CounterArray)`(k)`
    /// (`counters`).
    pub fn new(one_shot: ObjId, counters: ObjId) -> Self {
        RelaxedWrn { one_shot, counters }
    }
}

// Local: pc 0 = inc, 1 = read, 2 = gate, 3 = forward response.
impl Implementation for RelaxedWrn {
    fn start_op(&self, _ctx: &ProcCtx, _op: &Op, _memory: &Value) -> Value {
        Value::Int(0)
    }

    fn step(
        &self,
        _ctx: &ProcCtx,
        op: &Op,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<ImplStep, ProtocolError> {
        if op.name != "wrn" {
            return Err(ProtocolError::new(format!(
                "relaxed-wrn: unknown op `{}`",
                op.name
            )));
        }
        let i = op
            .arg(0)
            .cloned()
            .ok_or_else(|| ProtocolError::new("relaxed-wrn: missing index"))?;
        match local.as_int() {
            Some(0) => Ok(ImplStep::invoke(
                Value::Int(1),
                self.counters,
                Op::unary("inc", i),
            )),
            Some(1) => Ok(ImplStep::invoke(
                Value::Int(2),
                self.counters,
                Op::unary("read", i),
            )),
            Some(2) => {
                let c = resp
                    .and_then(Value::as_int)
                    .ok_or_else(|| ProtocolError::new("relaxed-wrn: bad counter"))?;
                if c == 1 {
                    Ok(ImplStep::invoke(Value::Int(3), self.one_shot, op.clone()))
                } else {
                    Ok(ImplStep::ret(Value::Nil, Value::Nil))
                }
            }
            Some(3) => {
                let r = resp
                    .cloned()
                    .ok_or_else(|| ProtocolError::new("relaxed-wrn: missing response"))?;
                Ok(ImplStep::ret(r, Value::Nil))
            }
            _ => Err(ProtocolError::new("relaxed-wrn: bad pc")),
        }
    }
}
