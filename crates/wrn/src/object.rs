//! The Write-and-Read-Next objects `WRN_k` and `1sWRN_k`.
//!
//! `WRN_k` has a single operation `wrn(i, v)` with index `i ∈ {0..k-1}` and
//! value `v ≠ ⊥`: atomically write `v` into cell `i` and return the current
//! content of cell `(i+1) mod k` (or `⊥` if that cell was never written).
//!
//! `1sWRN_k` (one-shot) additionally makes re-using an index illegal: a
//! second invocation with the same index hangs the system undetectably.
//!
//! For `k = 2`, `WRN_2` behaves like a swap-flavored object of consensus
//! number 2; for `k ≥ 3` the consensus number drops to **1** while the
//! object still exceeds registers — the deterministic life between
//! registers and 2-consensus that the PODC 2016 paper left open.

use subconsensus_sim::{ObjectError, ObjectSpec, Op, Outcome, Value};

const WRN: &str = "wrn";
const ONE_SHOT: &str = "one-shot-wrn";

fn parse_wrn(object: &'static str, k: usize, op: &Op) -> Result<(usize, Value), ObjectError> {
    if op.name != "wrn" {
        return Err(ObjectError::UnknownOp {
            object,
            op: op.clone(),
        });
    }
    if op.args.len() != 2 {
        return Err(ObjectError::BadArity {
            object,
            op: op.clone(),
            expected: 2,
        });
    }
    let i = op.args[0]
        .as_index()
        .ok_or_else(|| ObjectError::TypeMismatch {
            object,
            detail: format!("index argument of `{op}` must be a non-negative integer"),
        })?;
    if i >= k {
        return Err(ObjectError::IllegalOp {
            object,
            detail: format!("index {i} out of range 0..{k}"),
        });
    }
    let v = op.args[1].clone();
    if v.is_nil() {
        return Err(ObjectError::IllegalOp {
            object,
            detail: "cannot write ⊥".into(),
        });
    }
    Ok((i, v))
}

/// The multi-use `WRN_k` object.
///
/// # Examples
///
/// ```
/// use subconsensus_wrn::Wrn;
/// use subconsensus_sim::{ObjectSpec, Op, Value};
///
/// let w = Wrn::new(3);
/// let s0 = w.initial_state();
/// // wrn(0, a): cell 1 is still empty.
/// let o = w.apply(&s0, &Op::binary("wrn", Value::Int(0), Value::Sym("a"))).unwrap().remove(0);
/// assert_eq!(o.response, Some(Value::Nil));
/// // wrn(2, c): reads cell 0 = a.
/// let o = w.apply(&o.state, &Op::binary("wrn", Value::Int(2), Value::Sym("c"))).unwrap().remove(0);
/// assert_eq!(o.response, Some(Value::Sym("a")));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Wrn {
    k: usize,
}

impl Wrn {
    /// Creates a `WRN_k` object.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "WRN_k requires k ≥ 2");
        Wrn { k }
    }

    /// Returns the arity `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl ObjectSpec for Wrn {
    fn type_name(&self) -> &'static str {
        WRN
    }

    fn initial_state(&self) -> Value {
        Value::nil_tup(self.k)
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        let (i, v) = parse_wrn(WRN, self.k, op)?;
        let next = state
            .with_index(i, v)
            .ok_or_else(|| ObjectError::TypeMismatch {
                object: WRN,
                detail: format!("state {state} is not a {}-cell array", self.k),
            })?;
        let read = next
            .index((i + 1) % self.k)
            .cloned()
            .expect("index in range");
        Ok(vec![Outcome::ret(next, read)])
    }
}

/// The one-shot `1sWRN_k` object: each index may be used at most once; a
/// repeated index hangs the system undetectably.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OneShotWrn {
    k: usize,
}

impl OneShotWrn {
    /// Creates a `1sWRN_k` object.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "1sWRN_k requires k ≥ 2");
        OneShotWrn { k }
    }

    /// Returns the arity `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl ObjectSpec for OneShotWrn {
    fn type_name(&self) -> &'static str {
        ONE_SHOT
    }

    /// State: `(cells, used)` — the cell array plus a used-flags array.
    fn initial_state(&self) -> Value {
        Value::tup([
            Value::nil_tup(self.k),
            Value::Tup(vec![Value::Bool(false); self.k]),
        ])
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        let (i, v) = parse_wrn(ONE_SHOT, self.k, op)?;
        let corrupt = || ObjectError::TypeMismatch {
            object: ONE_SHOT,
            detail: format!("state {state} is not (cells, used)"),
        };
        let cells = state.index(0).cloned().ok_or_else(corrupt)?;
        let used = state.index(1).cloned().ok_or_else(corrupt)?;
        if used.index(i).and_then(Value::as_bool) == Some(true) {
            // Illegal re-use: hang undetectably (state unchanged).
            return Ok(vec![Outcome::hang(state.clone())]);
        }
        let cells = cells.with_index(i, v).ok_or_else(corrupt)?;
        let used = used.with_index(i, Value::Bool(true)).ok_or_else(corrupt)?;
        let read = cells.index((i + 1) % self.k).cloned().expect("in range");
        Ok(vec![Outcome::ret(Value::tup([cells, used]), read)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subconsensus_sim::audit_determinism;

    fn wrn_op(i: usize, v: i64) -> Op {
        Op::binary("wrn", Value::from(i), Value::Int(v))
    }

    #[test]
    fn ring_semantics() {
        let w = Wrn::new(3);
        let mut s = w.initial_state();
        // Fill 0, 1, 2 in order; each reads its successor.
        let expected = [Value::Nil, Value::Nil, Value::Int(10)];
        for (i, exp) in expected.iter().enumerate() {
            let o = w
                .apply(&s, &wrn_op(i, 10 * (i as i64 + 1)))
                .unwrap()
                .remove(0);
            assert_eq!(&o.response.unwrap(), exp, "index {i}");
            s = o.state;
        }
        // Re-writing index 1 now reads cell 2.
        let o = w.apply(&s, &wrn_op(1, 99)).unwrap().remove(0);
        assert_eq!(o.response, Some(Value::Int(30)));
    }

    #[test]
    fn last_writer_reads_first_value_in_a_full_round() {
        // If all k indices are used in order i = k-1, ..., 1, 0 the last
        // one (index 0) reads index 1's value.
        let k = 4;
        let w = Wrn::new(k);
        let mut s = w.initial_state();
        for i in (1..k).rev() {
            s = w.apply(&s, &wrn_op(i, i as i64)).unwrap().remove(0).state;
        }
        let o = w.apply(&s, &wrn_op(0, 100)).unwrap().remove(0);
        assert_eq!(o.response, Some(Value::Int(1)));
    }

    #[test]
    fn misuse_rejected() {
        let w = Wrn::new(3);
        let s = w.initial_state();
        assert!(w.apply(&s, &Op::new("read")).is_err());
        assert!(w.apply(&s, &Op::unary("wrn", Value::Int(0))).is_err());
        assert!(w.apply(&s, &wrn_op(3, 1)).is_err());
        assert!(w
            .apply(&s, &Op::binary("wrn", Value::Int(0), Value::Nil))
            .is_err());
    }

    #[test]
    #[should_panic(expected = "k ≥ 2")]
    fn tiny_k_panics() {
        let _ = Wrn::new(1);
    }

    #[test]
    fn wrn_is_deterministic() {
        let ops = [wrn_op(0, 1), wrn_op(1, 2), wrn_op(2, 3)];
        assert_eq!(audit_determinism(&Wrn::new(3), &ops, 4).unwrap(), None);
        assert_eq!(
            audit_determinism(&OneShotWrn::new(3), &ops, 4).unwrap(),
            None
        );
    }

    #[test]
    fn one_shot_reuse_hangs() {
        let w = OneShotWrn::new(3);
        let s0 = w.initial_state();
        let o1 = w.apply(&s0, &wrn_op(1, 5)).unwrap().remove(0);
        assert!(!o1.is_hang());
        let o2 = w.apply(&o1.state, &wrn_op(1, 6)).unwrap().remove(0);
        assert!(o2.is_hang(), "re-using an index hangs");
        assert_eq!(o2.state, o1.state, "and leaves the object unchanged");
        // Other indices still work.
        let o3 = w.apply(&o1.state, &wrn_op(0, 7)).unwrap().remove(0);
        assert_eq!(o3.response, Some(Value::Int(5)));
    }

    #[test]
    fn one_shot_matches_multi_use_on_fresh_indices() {
        let k = 3;
        let multi = Wrn::new(k);
        let oneshot = OneShotWrn::new(k);
        let mut sm = multi.initial_state();
        let mut so = oneshot.initial_state();
        for (i, v) in [(2usize, 4i64), (0, 5), (1, 6)] {
            let om = multi.apply(&sm, &wrn_op(i, v)).unwrap().remove(0);
            let oo = oneshot.apply(&so, &wrn_op(i, v)).unwrap().remove(0);
            assert_eq!(om.response, oo.response, "index {i}");
            sm = om.state;
            so = oo.state;
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Wrn::new(5).k(), 5);
        assert_eq!(OneShotWrn::new(4).k(), 4);
    }
}
