//! **Extension crate** — the resolution of the paper's open question.
//!
//! *Deterministic Objects: Life Beyond Consensus* (PODC 2016) establishes
//! its hierarchy for consensus levels `n ≥ 2` and leaves the case `n = 1`
//! open: *is every deterministic object of consensus number 1 equivalent to
//! read-write registers?* The answer — **no**, there is an infinite
//! hierarchy of deterministic objects strictly between registers and
//! 2-consensus — came from the follow-up work of Daian, Losa, Afek and
//! Gafni (DISC 2018) via the *Write-and-Read-Next* objects. This crate
//! implements that resolution inside the same framework, as the paper's
//! future work:
//!
//! * [`Wrn`] / [`OneShotWrn`] — the deterministic `WRN_k` objects;
//! * [`WrnPropose`] (Algorithm 2), [`WrnPartitionPropose`] (Algorithm 6),
//!   [`WrnManyProcs`] / [`WrnManyProcsOneShot`] (Algorithm 3, multi-use and
//!   one-shot forms) — set-consensus from `WRN_k`;
//! * [`RelaxedWrn`] (Algorithm 4) — the flag-principle relaxed object from
//!   the one-shot variant;
//! * [`StrongSetElection`] + [`WrnFromSse`] (Algorithm 5) — the converse
//!   construction proving `1sWRN_k ≡ (k, k-1)-set consensus`, checked
//!   against the [`OneShotWrn`] sequential spec by the linearizability
//!   checker;
//! * [`wrn_power`] / [`wrn_hierarchy`] — the tie-in to the core power
//!   calculus: the `WRN` hierarchy *is* the sub-consensus chain
//!   `(2,1)-SC ≻ (3,2)-SC ≻ …` of `subconsensus_core::sc_chain`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod from_sse;
mod object;
mod protocols;

pub use from_sse::{StrongSetElection, WrnFromSse};
pub use object::{OneShotWrn, Wrn};
pub use protocols::{
    RelaxedWrn, WrnManyProcs, WrnManyProcsOneShot, WrnPartitionPropose, WrnPropose,
};

use subconsensus_core::ScPower;

/// The synchronization power of `1sWRN_k`: `(k, k-1)`-set consensus
/// (Theorems 1–2 of the resolution).
///
/// # Panics
///
/// Panics if `k < 2`.
///
/// # Examples
///
/// ```
/// use subconsensus_wrn::wrn_power;
/// assert_eq!(wrn_power(3).to_string(), "(3, 2)-SC");
/// ```
pub fn wrn_power(k: usize) -> ScPower {
    assert!(k >= 2, "WRN_k requires k ≥ 2");
    ScPower::new(k, k - 1)
}

/// The strict `WRN` hierarchy between registers and 2-consensus:
/// `1sWRN_k` is strictly stronger than `1sWRN_{k'}` for `k < k'`, verified
/// through the core counting characterization.
///
/// Returns the pairs `(k, k+1)` with their refuting bounds, for
/// `k ∈ {2 .. k_max - 1}` — exactly `subconsensus_core::sc_chain` viewed
/// through WRN glasses.
pub fn wrn_hierarchy(k_max: usize) -> Vec<subconsensus_core::ChainLink> {
    subconsensus_core::sc_chain(k_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subconsensus_core::{implementable, strictly_stronger};

    #[test]
    fn wrn_power_is_strictly_between_registers_and_2_consensus() {
        for k in 3..10 {
            let p = wrn_power(k);
            // Stronger than registers: solves (k, k-1) which registers
            // cannot (registers only solve trivial (n, n) tasks).
            assert!(p.k < p.n);
            // Weaker than 2-consensus.
            assert!(!implementable(ScPower::consensus(2), p), "k = {k}");
            assert!(
                implementable(p, ScPower::consensus(2)),
                "2-consensus builds it"
            );
        }
    }

    #[test]
    fn wrn2_is_2_consensus_power() {
        // WRN₂ is a swap: consensus number 2.
        assert_eq!(wrn_power(2), ScPower::consensus(2));
    }

    #[test]
    fn hierarchy_is_strict_and_matches_core_chain() {
        let chain = wrn_hierarchy(8);
        assert_eq!(chain.len(), 6);
        for (idx, link) in chain.iter().enumerate() {
            let k = idx + 2;
            assert_eq!(link.stronger, wrn_power(k));
            assert_eq!(link.weaker, wrn_power(k + 1));
            assert!(strictly_stronger(link.stronger, link.weaker));
        }
    }

    #[test]
    #[should_panic(expected = "k ≥ 2")]
    fn wrn_power_rejects_k1() {
        let _ = wrn_power(1);
    }
}
