//! Algorithm 5: a linearizable `1sWRN_k` from `(k, k-1)`-strong set
//! election, snapshots and a doorway — the direction that proves
//! `1sWRN_k` is *no stronger* than `(k, k-1)`-set consensus.
//!
//! Together with Algorithm 2 (`1sWRN_k` solves `(k, k-1)`-set consensus)
//! this establishes the equivalence `1sWRN_k ≡ (k, k-1)-SC`, and hence the
//! infinite hierarchy of deterministic objects strictly between registers
//! and 2-consensus — the resolution of the PODC 2016 paper's open question.

use subconsensus_sim::{
    ImplStep, Implementation, ObjId, ObjectError, ObjectSpec, Op, Outcome, ProcCtx, ProtocolError,
    Value,
};

/// The `(k, k-1)`-strong-set-election object: each of up to `k` distinct
/// identifiers invokes once; at most `k-1` distinct identifiers are ever
/// returned; and **self-election** holds — if anyone is handed `j`, then
/// `j`'s own invocation returned `j`.
///
/// Nondeterministic (like the set-consensus object it is implemented from
/// in the literature); used here as the agreement substrate of Algorithm 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StrongSetElection {
    k: usize,
}

const SSE: &str = "strong-set-election";

impl StrongSetElection {
    /// Creates the object for identifiers `{0 .. k-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "strong set election requires k ≥ 2");
        StrongSetElection { k }
    }
}

impl ObjectSpec for StrongSetElection {
    fn type_name(&self) -> &'static str {
        SSE
    }

    /// State: `(elected, invoked)` — the set of self-elected ids and the
    /// used-id flags.
    fn initial_state(&self) -> Value {
        Value::tup([Value::tup([]), Value::Tup(vec![Value::Bool(false); self.k])])
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        if op.name != "invoke" {
            return Err(ObjectError::UnknownOp {
                object: SSE,
                op: op.clone(),
            });
        }
        if op.args.len() != 1 {
            return Err(ObjectError::BadArity {
                object: SSE,
                op: op.clone(),
                expected: 1,
            });
        }
        let i = op.args[0]
            .as_index()
            .ok_or_else(|| ObjectError::TypeMismatch {
                object: SSE,
                detail: format!("identifier argument of `{op}` must be a non-negative integer"),
            })?;
        if i >= self.k {
            return Err(ObjectError::IllegalOp {
                object: SSE,
                detail: format!("identifier {i} out of range 0..{}", self.k),
            });
        }
        let corrupt = || ObjectError::TypeMismatch {
            object: SSE,
            detail: format!("state {state} is not (elected, invoked)"),
        };
        let elected: Vec<usize> = state
            .index(0)
            .and_then(Value::as_tup)
            .ok_or_else(corrupt)?
            .iter()
            .map(|v| v.as_index().ok_or_else(corrupt))
            .collect::<Result<_, _>>()?;
        let invoked = state.index(1).cloned().ok_or_else(corrupt)?;
        if invoked.index(i).and_then(Value::as_bool) == Some(true) {
            // Illegal re-invocation: hang undetectably.
            return Ok(vec![Outcome::hang(state.clone())]);
        }
        let invoked = invoked
            .with_index(i, Value::Bool(true))
            .ok_or_else(corrupt)?;
        let mut outcomes = Vec::new();
        if elected.len() < self.k - 1 {
            // Branch: elect self.
            let mut e = elected.clone();
            e.push(i);
            e.sort_unstable();
            let next = Value::tup([Value::tup(e.into_iter().map(Value::from)), invoked.clone()]);
            outcomes.push(Outcome::ret(next, Value::from(i)));
        }
        for &j in &elected {
            // Branch: defer to an already self-elected identifier.
            let next = Value::tup([
                Value::tup(elected.iter().copied().map(Value::from)),
                invoked.clone(),
            ]);
            outcomes.push(Outcome::ret(next, Value::from(j)));
        }
        Ok(outcomes)
    }

    fn is_deterministic(&self) -> bool {
        false
    }
}

/// Algorithm 5: the linearizable `1sWRN_k` implementation.
///
/// Base objects: a snapshot `R` (announced values), a snapshot `O`
/// (announced views), a multi-writer doorway register (initially
/// `"opened"`), and one [`StrongSetElection`] instance.
///
/// High-level operation: `wrn(i, v)` with each index used at most once
/// (callers must pass distinct indices — the one-shot discipline).
/// Histories are checked against [`OneShotWrn`](crate::OneShotWrn).
#[derive(Clone, Copy, Debug)]
pub struct WrnFromSse {
    r: ObjId,
    o: ObjId,
    doorway: ObjId,
    sse: ObjId,
    k: usize,
}

impl WrnFromSse {
    /// Creates the implementation. `r` and `o` must be
    /// [`Snapshot`](subconsensus_objects::Snapshot)`(k)` objects, `doorway`
    /// a register initialized to `Sym("opened")`, `sse` a
    /// [`StrongSetElection`]`(k)`.
    pub fn new(r: ObjId, o: ObjId, doorway: ObjId, sse: ObjId, k: usize) -> Self {
        WrnFromSse {
            r,
            o,
            doorway,
            sse,
            k,
        }
    }

    fn parse(&self, op: &Op) -> Result<(usize, Value), ProtocolError> {
        if op.name != "wrn" {
            return Err(ProtocolError::new(format!(
                "wrn-from-sse: unknown op `{}`",
                op.name
            )));
        }
        let i = op
            .arg(0)
            .and_then(Value::as_index)
            .filter(|&i| i < self.k)
            .ok_or_else(|| ProtocolError::new("wrn-from-sse: bad index"))?;
        let v = op
            .arg(1)
            .cloned()
            .filter(|v| !v.is_nil())
            .ok_or_else(|| ProtocolError::new("wrn-from-sse: bad value"))?;
        Ok((i, v))
    }
}

// Local state: (pc, SR) — SR is ⊥ until the R-snapshot is taken.
//   0 — announce: R.update(i, v)
//   1 — read the doorway
//   2 — doorway value received: close it, or go scan
//   3 — doorway closed (write acked): SSE.invoke(i)
//   4 — SSE verdict received
//   5 — R.scan issued; response is SR
//   6 — O.update(i, SR) acked; issue O.scan
//   7 — SO received: decide ⊥ or SR[(i+1) mod k]
impl Implementation for WrnFromSse {
    fn start_op(&self, _ctx: &ProcCtx, _op: &Op, _memory: &Value) -> Value {
        Value::tup([Value::Int(0), Value::Nil])
    }

    fn step(
        &self,
        _ctx: &ProcCtx,
        op: &Op,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<ImplStep, ProtocolError> {
        let (i, v) = self.parse(op)?;
        let pc = local
            .index(0)
            .and_then(Value::as_int)
            .ok_or_else(|| ProtocolError::new("wrn-from-sse: bad pc"))?;
        let sr = local.index(1).cloned().unwrap_or(Value::Nil);
        let at = |pc: i64, sr: Value| Value::tup([Value::Int(pc), sr]);
        let need = |r: Option<&Value>| -> Result<Value, ProtocolError> {
            r.cloned()
                .ok_or_else(|| ProtocolError::new("wrn-from-sse: missing response"))
        };
        match pc {
            0 => Ok(ImplStep::invoke(
                at(1, sr),
                self.r,
                Op::binary("update", Value::from(i), v),
            )),
            1 => Ok(ImplStep::invoke(at(2, sr), self.doorway, Op::new("read"))),
            2 => {
                if need(resp)? == Value::Sym("opened") {
                    Ok(ImplStep::invoke(
                        at(3, sr),
                        self.doorway,
                        Op::unary("write", Value::Sym("closed")),
                    ))
                } else {
                    Ok(ImplStep::invoke(at(5, sr), self.r, Op::new("scan")))
                }
            }
            3 => Ok(ImplStep::invoke(
                at(4, sr),
                self.sse,
                Op::unary("invoke", Value::from(i)),
            )),
            4 => {
                if need(resp)?.as_index() == Some(i) {
                    // Won the election: the invocation linearizes first.
                    Ok(ImplStep::ret(Value::Nil, Value::Nil))
                } else {
                    Ok(ImplStep::invoke(at(5, sr), self.r, Op::new("scan")))
                }
            }
            5 => {
                let sr = need(resp)?;
                Ok(ImplStep::invoke(
                    at(6, sr.clone()),
                    self.o,
                    Op::binary("update", Value::from(i), sr),
                ))
            }
            6 => Ok(ImplStep::invoke(at(7, sr), self.o, Op::new("scan"))),
            7 => {
                let so = need(resp)?;
                let succ = (i + 1) % self.k;
                for j in 0..self.k {
                    let view = so
                        .index(j)
                        .ok_or_else(|| ProtocolError::new("wrn-from-sse: bad SO"))?;
                    if view.is_nil() {
                        continue;
                    }
                    let saw_me = view.index(i) == Some(&v);
                    let saw_succ_empty = view.index(succ).is_some_and(Value::is_nil);
                    if saw_me && saw_succ_empty {
                        return Ok(ImplStep::ret(Value::Nil, Value::Nil));
                    }
                }
                let out = sr
                    .index(succ)
                    .cloned()
                    .ok_or_else(|| ProtocolError::new("wrn-from-sse: bad SR"))?;
                Ok(ImplStep::ret(out, Value::Nil))
            }
            _ => Err(ProtocolError::new("wrn-from-sse: bad pc")),
        }
    }
}
