//! End-to-end validation of the WRN algorithms (the resolution of the
//! paper's open question), mirroring the claims of the follow-up work:
//!
//! * Algorithm 2 solves `(k-1)`-set consensus for `k` processes — tightly;
//! * Algorithm 6 solves `m`-set consensus for `n` processes;
//! * Algorithm 3 handles `k` participants out of a huge namespace;
//! * Algorithm 4 (relaxed WRN) admits solo-index uses exactly (Claims
//!   19–21);
//! * Algorithm 5 is a linearizable `1sWRN_k` from strong set election;
//! * `WRN_k` (`k ≥ 3`) cannot solve 2-process consensus (Section 6), shown
//!   for the natural protocol by exhaustive model checking.

use std::sync::Arc;

use subconsensus_modelcheck::{
    check_wait_freedom, max_distinct_decisions, ExploreOptions, StateGraph, WaitFreedom,
};
use subconsensus_objects::{CounterArray, Register, RegisterArray, Snapshot};
use subconsensus_protocols::GridRenaming;
use subconsensus_sim::{
    check_linearizable, run, run_concurrent, BaseObjects, FirstOutcome, Implementation, ObjectSpec,
    Op, Protocol, RandomScheduler, RoundRobin, RunOptions, SystemBuilder, SystemSpec, Value,
};
use subconsensus_tasks::{check_exhaustive, check_random, SetConsensusTask};
use subconsensus_wrn::{
    OneShotWrn, RelaxedWrn, StrongSetElection, Wrn, WrnFromSse, WrnManyProcs, WrnPartitionPropose,
    WrnPropose,
};

fn algorithm2_system(k: usize, one_shot: bool) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let obj = if one_shot {
        b.add_boxed_object(Box::new(OneShotWrn::new(k)))
    } else {
        b.add_boxed_object(Box::new(Wrn::new(k)))
    };
    let p: Arc<dyn Protocol> = Arc::new(WrnPropose::new(obj));
    b.add_processes(p, (0..k).map(|i| Value::Int(100 + i as i64)));
    b.build()
}

#[test]
fn algorithm2_solves_k_minus_1_set_consensus_exhaustively() {
    for k in [3usize, 4] {
        for one_shot in [false, true] {
            let spec = algorithm2_system(k, one_shot);
            let report = check_exhaustive(
                &spec,
                &SetConsensusTask::new(k - 1),
                &ExploreOptions::default(),
            )
            .unwrap();
            assert!(report.solved(), "k={k} one_shot={one_shot}: {report:?}");
        }
    }
}

#[test]
fn algorithm2_bound_is_tight_and_k_minus_2_fails() {
    let k = 4;
    let spec = algorithm2_system(k, false);
    let graph = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
    assert_eq!(max_distinct_decisions(&graph), k - 1, "tight");
    let report = check_exhaustive(
        &spec,
        &SetConsensusTask::new(k - 2),
        &ExploreOptions::default(),
    )
    .unwrap();
    assert!(!report.solved(), "(k-2)-agreement must fail somewhere");
}

#[test]
fn algorithm2_claims_first_and_last_invoker() {
    // Claim 4: the first process to invoke decides its own value.
    // Claim 5: the last process decides its successor's value.
    let k = 3;
    let spec = algorithm2_system(k, false);
    // Sequential order P2, P0, P1: P2 first (decides own), P1 last
    // (successor of 1 is 2 → decides P2's value).
    let order = [2usize, 2, 0, 0, 1, 1].map(subconsensus_sim::Pid::new);
    let mut sched = subconsensus_sim::ReplayScheduler::new(order.to_vec());
    let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
    let d = out.decisions();
    assert_eq!(d[2], Some(Value::Int(102)), "first invoker keeps its value");
    assert_eq!(
        d[1],
        Some(Value::Int(102)),
        "last invoker adopts its successor"
    );
    assert_eq!(
        d[0],
        Some(Value::Int(100)),
        "P0 ran before P1, so it saw ⊥ and kept its own"
    );
    // Corollary 8: P1 (the last invoker) proposed 101, and indeed nobody
    // decided 101 — at most k-1 = 2 distinct values.
    assert!(!d.contains(&Some(Value::Int(101))));
}

#[test]
fn algorithm6_set_consensus_ratio() {
    // WRN₃ objects: 6 processes → at most 4 distinct (2 objects × 2 values).
    let k = 3;
    let n = 6usize;
    let mut b = SystemBuilder::new();
    let base = b.add_object_array(n.div_ceil(k), |_| {
        Box::new(Wrn::new(k)) as Box<dyn ObjectSpec>
    });
    let p: Arc<dyn Protocol> = Arc::new(WrnPartitionPropose::new(base, k));
    b.add_processes(p, (0..n).map(|i| Value::Int(i as i64 + 1)));
    let spec = b.build();
    let report = check_random(&spec, &SetConsensusTask::new(4), 0..400, 100_000).unwrap();
    assert!(report.solved(), "{report:?}");

    // The paper's (12, 8) instance, statistically.
    let n = 12usize;
    let mut b = SystemBuilder::new();
    let base = b.add_object_array(n.div_ceil(k), |_| {
        Box::new(Wrn::new(k)) as Box<dyn ObjectSpec>
    });
    let p: Arc<dyn Protocol> = Arc::new(WrnPartitionPropose::new(base, k));
    b.add_processes(p, (0..n).map(|i| Value::Int(i as i64 + 1)));
    let spec = b.build();
    let report = check_random(&spec, &SetConsensusTask::new(8), 0..200, 100_000).unwrap();
    assert!(report.solved(), "{report:?}");
}

fn algorithm3_system(k: usize, names: &[i64]) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let regs = b.add_object(RegisterArray::new(GridRenaming::registers_needed(k)));
    let wrns = b.add_object_array(WrnManyProcs::wrn_objects_needed(k), |_| {
        Box::new(Wrn::new(k)) as Box<dyn ObjectSpec>
    });
    let p: Arc<dyn Protocol> = Arc::new(WrnManyProcs::new(regs, wrns, k));
    b.add_processes(p, names.iter().map(|&v| Value::Int(v)));
    b.build()
}

#[test]
fn algorithm3_two_participants_out_of_many_exhaustive() {
    // k = 2: (2-1)-set consensus = consensus for 2 participants with huge
    // names, from WRN₂ objects (consensus number 2 — consistent).
    let spec = algorithm3_system(2, &[123_456, 987_654]);
    let report = check_exhaustive(
        &spec,
        &SetConsensusTask::consensus(),
        &ExploreOptions::with_max_configs(2_000_000),
    )
    .unwrap();
    assert!(report.solved(), "{report:?}");
}

#[test]
fn algorithm3_three_participants_random() {
    // k = 3: 729 WRN₃ objects; (3-1)-set consensus for 3 participants out
    // of a huge namespace.
    let spec = algorithm3_system(3, &[1_000_003, 2_000_017, 3_000_029]);
    let report = check_random(&spec, &SetConsensusTask::new(2), 0..150, 500_000).unwrap();
    assert!(report.solved(), "{report:?}");
}

#[test]
fn algorithm4_relaxed_wrn_claims() {
    let k = 3;
    // Distinct indices: behaves exactly like WRN (Claim 21).
    let mk = || {
        let mut bank = BaseObjects::new();
        let os = bank.add(OneShotWrn::new(k));
        let counters = bank.add(CounterArray::new(k));
        let im: Arc<dyn Implementation> = Arc::new(RelaxedWrn::new(os, counters));
        (bank, im)
    };
    let (bank, im) = mk();
    let workload: Vec<Vec<Op>> = (0..k)
        .map(|i| vec![Op::binary("wrn", Value::from(i), Value::Int(10 + i as i64))])
        .collect();
    let out = run_concurrent(
        &bank,
        &im,
        workload,
        &mut RoundRobin::new(),
        &mut FirstOutcome,
        100_000,
    )
    .unwrap();
    assert!(out.reached_final);
    // Sequential round-robin: every process sees one full step each in
    // turn; each 1sWRN is invoked (Claim 21): nobody gets a spurious ⊥
    // before its own write — P0 reads cell 1 (⊥ at that time or not).
    assert_eq!(out.results.iter().map(Vec::len).sum::<usize>(), k);

    // Racing the same index: at most one forwards; others get ⊥ (Claims
    // 19–20: the one-shot object is never used twice on an index).
    for seed in 0..100 {
        let (bank, im) = mk();
        let workload = vec![
            vec![Op::binary("wrn", Value::from(1usize), Value::Int(7))],
            vec![Op::binary("wrn", Value::from(1usize), Value::Int(8))],
        ];
        let mut sched = RandomScheduler::seeded(seed);
        let out =
            run_concurrent(&bank, &im, workload, &mut sched, &mut FirstOutcome, 100_000).unwrap();
        assert!(
            out.reached_final,
            "legality: the 1sWRN never hangs (seed {seed})"
        );
        let non_nil = out.results.iter().flatten().filter(|r| !r.is_nil()).count();
        assert!(
            non_nil <= 1,
            "at most one racer passes the gate (seed {seed})"
        );
    }
}

fn algorithm5_fixture(k: usize) -> (BaseObjects, Arc<dyn Implementation>) {
    let mut bank = BaseObjects::new();
    let r = bank.add(Snapshot::new(k));
    let o = bank.add(Snapshot::new(k));
    let doorway = bank.add(Register::with_initial(Value::Sym("opened")));
    let sse = bank.add(StrongSetElection::new(k));
    let im: Arc<dyn Implementation> = Arc::new(WrnFromSse::new(r, o, doorway, sse, k));
    (bank, im)
}

#[test]
fn algorithm5_linearizes_against_one_shot_wrn() {
    for k in [3usize, 4] {
        let reference = OneShotWrn::new(k);
        for seed in 0..200 {
            let (bank, im) = algorithm5_fixture(k);
            let workload: Vec<Vec<Op>> = (0..k)
                .map(|i| vec![Op::binary("wrn", Value::from(i), Value::Int(50 + i as i64))])
                .collect();
            let mut sched = RandomScheduler::seeded(seed);
            let mut chooser = RandomScheduler::seeded(seed + 31);
            let out =
                run_concurrent(&bank, &im, workload, &mut sched, &mut chooser, 500_000).unwrap();
            assert!(out.reached_final, "wait-freedom (k={k} seed {seed})");
            let w = check_linearizable(&out.history, &reference).unwrap();
            assert!(
                w.is_some(),
                "k={k} seed {seed}: history not linearizable against 1sWRN:\n{}",
                out.history
            );
        }
    }
}

#[test]
fn algorithm5_claim23_someone_returns_bot() {
    // Claim 23: in every complete execution some invocation returns ⊥.
    let k = 3;
    for seed in 0..100 {
        let (bank, im) = algorithm5_fixture(k);
        let workload: Vec<Vec<Op>> = (0..k)
            .map(|i| vec![Op::binary("wrn", Value::from(i), Value::Int(70 + i as i64))])
            .collect();
        let mut sched = RandomScheduler::seeded(seed);
        let mut chooser = RandomScheduler::seeded(seed * 3 + 1);
        let out = run_concurrent(&bank, &im, workload, &mut sched, &mut chooser, 500_000).unwrap();
        assert!(
            out.results.iter().flatten().any(Value::is_nil),
            "seed {seed}: some invocation must return ⊥"
        );
    }
}

#[test]
fn wrn3_cannot_solve_2_process_consensus() {
    // Section 6 (Lemma 38) for the natural one-step protocol, exhaustively:
    // with k ≥ 3, both index assignments (same index, adjacent indices and
    // non-adjacent ones) admit disagreeing or invalid schedules.
    let k = 3;
    for (i0, i1) in [(0usize, 1usize), (0, 2), (1, 1)] {
        #[derive(Debug)]
        struct Fixed {
            obj: subconsensus_sim::ObjId,
            index: usize,
        }
        impl Protocol for Fixed {
            fn start(&self, _ctx: &subconsensus_sim::ProcCtx) -> Value {
                Value::Int(0)
            }
            fn step(
                &self,
                ctx: &subconsensus_sim::ProcCtx,
                local: &Value,
                resp: Option<&Value>,
            ) -> Result<subconsensus_sim::Action, subconsensus_sim::ProtocolError> {
                match local.as_int() {
                    Some(0) => Ok(subconsensus_sim::Action::invoke(
                        Value::Int(1),
                        self.obj,
                        Op::binary("wrn", Value::from(self.index), ctx.input.clone()),
                    )),
                    _ => {
                        let t = resp.unwrap();
                        Ok(subconsensus_sim::Action::Decide(if t.is_nil() {
                            ctx.input.clone()
                        } else {
                            t.clone()
                        }))
                    }
                }
            }
        }
        let mut b = SystemBuilder::new();
        let obj = b.add_object(Wrn::new(k));
        b.add_process(Arc::new(Fixed { obj, index: i0 }), Value::Int(1));
        b.add_process(Arc::new(Fixed { obj, index: i1 }), Value::Int(2));
        let spec = b.build();
        let report = check_exhaustive(
            &spec,
            &SetConsensusTask::consensus(),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(
            !report.solved(),
            "indices ({i0},{i1}): one WRN₃ step must not give 2-consensus"
        );
    }
}

#[test]
fn wrn2_admits_a_consensus_protocol_but_wrn3_does_not() {
    // The sharpest boundary of the extension, machine-checked over the
    // whole one-step protocol class: WRN₂ (a swap flavor, consensus number
    // 2) admits a binary-consensus protocol; WRN₃ admits none.
    use subconsensus_core::{search_binary_consensus, wrn_class};
    let two = search_binary_consensus(|| Box::new(Wrn::new(2)), &wrn_class(2, 1)).unwrap();
    assert!(two.witness.is_some(), "WRN₂ has consensus number 2");
    let three = search_binary_consensus(|| Box::new(Wrn::new(3)), &wrn_class(3, 1)).unwrap();
    assert!(three.witness.is_none(), "WRN₃ is sub-consensus");
}

#[test]
fn sse_object_properties_exhaustive() {
    // Drive the SSE object with 3 distinct ids over all schedules and
    // nondeterminism: at most k-1 = 2 leaders, validity, self-election.
    let k = 3;
    #[derive(Debug)]
    struct Invoke {
        obj: subconsensus_sim::ObjId,
    }
    impl Protocol for Invoke {
        fn start(&self, _ctx: &subconsensus_sim::ProcCtx) -> Value {
            Value::Int(0)
        }
        fn step(
            &self,
            ctx: &subconsensus_sim::ProcCtx,
            local: &Value,
            resp: Option<&Value>,
        ) -> Result<subconsensus_sim::Action, subconsensus_sim::ProtocolError> {
            match local.as_int() {
                Some(0) => Ok(subconsensus_sim::Action::invoke(
                    Value::Int(1),
                    self.obj,
                    Op::unary("invoke", Value::from(ctx.pid.index())),
                )),
                _ => Ok(subconsensus_sim::Action::Decide(resp.unwrap().clone())),
            }
        }
    }
    let mut b = SystemBuilder::new();
    let obj = b.add_object(StrongSetElection::new(k));
    let p: Arc<dyn Protocol> = Arc::new(Invoke { obj });
    b.add_processes(p, (0..k).map(Value::from));
    let spec = b.build();
    let graph = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
    assert_eq!(check_wait_freedom(&graph), WaitFreedom::WaitFree);
    for &t in graph.terminals() {
        let cfg = graph.config(t);
        let decisions: Vec<usize> = cfg
            .decisions()
            .into_iter()
            .map(|d| d.unwrap().as_index().unwrap())
            .collect();
        let distinct: std::collections::BTreeSet<usize> = decisions.iter().copied().collect();
        assert!(distinct.len() < k, "k-1 agreement");
        for (i, &d) in decisions.iter().enumerate() {
            assert!(d < k, "validity");
            assert_eq!(decisions[d], d, "self-election: P{i} elected {d}");
        }
    }
}

#[test]
fn algorithm3_one_shot_variant_two_participants_exhaustive() {
    // The paper lineage's final form: Algorithm 3 over 1sWRN₂ objects with
    // relaxed flag-gated access — exhaustive for k = 2.
    use subconsensus_wrn::WrnManyProcsOneShot;
    let k = 2;
    let objs = WrnManyProcs::wrn_objects_needed(k);
    let mut b = SystemBuilder::new();
    let regs = b.add_object(RegisterArray::new(GridRenaming::registers_needed(k)));
    let counters = b.add_object_array(objs, |_| {
        Box::new(CounterArray::new(k)) as Box<dyn ObjectSpec>
    });
    let wrns = b.add_object_array(objs, |_| {
        Box::new(OneShotWrn::new(k)) as Box<dyn ObjectSpec>
    });
    let p: Arc<dyn Protocol> = Arc::new(WrnManyProcsOneShot::new(regs, counters, wrns, k));
    b.add_processes(p, [Value::Int(111_111), Value::Int(222_222)]);
    let report = check_exhaustive(
        &b.build(),
        &SetConsensusTask::consensus(),
        &ExploreOptions::with_max_configs(5_000_000),
    )
    .unwrap();
    assert!(report.solved(), "{report:?}");
}

#[test]
fn algorithm3_one_shot_variant_three_participants_random() {
    use subconsensus_wrn::WrnManyProcsOneShot;
    let k = 3;
    let objs = WrnManyProcs::wrn_objects_needed(k);
    let mut b = SystemBuilder::new();
    let regs = b.add_object(RegisterArray::new(GridRenaming::registers_needed(k)));
    let counters = b.add_object_array(objs, |_| {
        Box::new(CounterArray::new(k)) as Box<dyn ObjectSpec>
    });
    let wrns = b.add_object_array(objs, |_| {
        Box::new(OneShotWrn::new(k)) as Box<dyn ObjectSpec>
    });
    let p: Arc<dyn Protocol> = Arc::new(WrnManyProcsOneShot::new(regs, counters, wrns, k));
    b.add_processes(
        p,
        [
            Value::Int(5_000_011),
            Value::Int(6_000_083),
            Value::Int(7_000_177),
        ],
    );
    let spec = b.build();
    let report = check_random(&spec, &SetConsensusTask::new(2), 0..100, 1_000_000).unwrap();
    assert!(report.solved(), "{report:?}");
}
