//! Wait-free consensus on hardware compare-and-swap.
//!
//! The contrast object for the real-atomics experiments: hardware CAS has
//! infinite consensus number, so a single `compare_exchange` decides
//! consensus for any number of threads — whereas the grouped family caps
//! out at its group size.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::grouped::EMPTY;

/// A sticky consensus cell on one `AtomicU64`.
///
/// # Examples
///
/// ```
/// use subconsensus_rt::CasConsensus;
///
/// let c = CasConsensus::new();
/// assert_eq!(c.propose(7), 7);
/// assert_eq!(c.propose(9), 7, "the first value sticks");
/// assert_eq!(c.read(), Some(7));
/// ```
#[derive(Debug, Default)]
pub struct CasConsensus {
    cell: AtomicU64,
}

impl CasConsensus {
    /// Creates an undecided cell.
    pub fn new() -> Self {
        CasConsensus {
            cell: AtomicU64::new(EMPTY),
        }
    }

    /// Proposes `v`; returns the decided value (the first proposal).
    ///
    /// # Panics
    ///
    /// Panics if `v == EMPTY` (the reserved sentinel).
    pub fn propose(&self, v: u64) -> u64 {
        assert_ne!(v, EMPTY, "EMPTY is reserved");
        match self
            .cell
            .compare_exchange(EMPTY, v, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => v,
            Err(winner) => winner,
        }
    }

    /// Returns the decided value, if any.
    pub fn read(&self) -> Option<u64> {
        match self.cell.load(Ordering::Acquire) {
            EMPTY => None,
            v => Some(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    #[test]
    fn undecided_reads_none() {
        assert_eq!(CasConsensus::new().read(), None);
    }

    #[test]
    fn concurrent_threads_agree() {
        for _ in 0..100 {
            let c = CasConsensus::new();
            let decisions: Mutex<Vec<u64>> = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for t in 0..8u64 {
                    let c = &c;
                    let decisions = &decisions;
                    s.spawn(move || {
                        let d = c.propose(100 + t);
                        decisions.lock().unwrap().push(d);
                    });
                }
            });
            let decisions = decisions.into_inner().unwrap();
            let distinct: BTreeSet<u64> = decisions.iter().copied().collect();
            assert_eq!(distinct.len(), 1, "agreement");
            let d = *distinct.iter().next().unwrap();
            assert!((100..108).contains(&d), "validity");
        }
    }

    #[test]
    #[should_panic(expected = "EMPTY is reserved")]
    fn sentinel_rejected() {
        CasConsensus::new().propose(crate::grouped::EMPTY);
    }
}
