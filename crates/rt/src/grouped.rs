//! The grouped deterministic object on real hardware atomics.
//!
//! Two implementations of the same single-operation object (the
//! `O_{n,k}`-family stand-in of `subconsensus-core`, here over `u64`
//! values):
//!
//! * [`LockFreeGrouped`] — a fetch-and-add ticket dispenser plus a slot
//!   array of atomics; lock-free (a proposer may briefly spin waiting for
//!   its group leader's slot to be published);
//! * [`LockedGrouped`] — the obvious mutex-protected reference.
//!
//! Both return the drawn arrival ticket alongside the response so tests can
//! verify the arrival-group semantics exactly; both return `None` once the
//! capacity is exhausted (the real-time analogue of the model's undetectable
//! hang is *detectable* here on purpose — a spinning thread would be a
//! resource leak, not an experiment).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Sentinel marking an unpublished slot. Proposals must not use it.
pub const EMPTY: u64 = u64::MAX;

/// A completed proposal: the arrival ticket drawn and the group leader's
/// value returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProposeOutcome {
    /// 0-based arrival position of this proposal.
    pub ticket: usize,
    /// The value of the proposal leading this arrival group.
    pub response: u64,
}

/// Shared behavior of the two real-atomics grouped objects.
pub trait Grouped: Send + Sync {
    /// Proposes `v`; returns the ticket and the group leader's value, or
    /// `None` if the object is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `v == EMPTY`.
    fn propose(&self, v: u64) -> Option<ProposeOutcome>;

    /// Returns the arrival-group size `n`.
    fn group_size(&self) -> usize;

    /// Returns the total proposal capacity.
    fn capacity(&self) -> usize;
}

/// Lock-free grouped object: fetch-and-add tickets + published slots.
#[derive(Debug)]
pub struct LockFreeGrouped {
    group: usize,
    tickets: AtomicUsize,
    slots: Vec<AtomicU64>,
}

impl LockFreeGrouped {
    /// Creates the object with arrival groups of `group` and the given
    /// `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `group == 0` or `capacity == 0`.
    pub fn new(group: usize, capacity: usize) -> Self {
        assert!(group > 0, "group size must be positive");
        assert!(capacity > 0, "capacity must be positive");
        LockFreeGrouped {
            group,
            tickets: AtomicUsize::new(0),
            slots: (0..capacity).map(|_| AtomicU64::new(EMPTY)).collect(),
        }
    }

    /// Creates the `(n, k)` family level: groups of `n`, capacity `n(k+1)`.
    pub fn for_level(n: usize, k: usize) -> Self {
        Self::new(n, n * (k + 1))
    }
}

impl Grouped for LockFreeGrouped {
    fn propose(&self, v: u64) -> Option<ProposeOutcome> {
        assert_ne!(v, EMPTY, "EMPTY is reserved");
        let ticket = self.tickets.fetch_add(1, Ordering::AcqRel);
        if ticket >= self.slots.len() {
            return None; // exhausted
        }
        self.slots[ticket].store(v, Ordering::Release);
        let leader = (ticket / self.group) * self.group;
        // The leader drew a smaller ticket, so its store is imminent; spin
        // until published (lock-free, not wait-free).
        let response = loop {
            let seen = self.slots[leader].load(Ordering::Acquire);
            if seen != EMPTY {
                break seen;
            }
            std::hint::spin_loop();
        };
        Some(ProposeOutcome { ticket, response })
    }

    fn group_size(&self) -> usize {
        self.group
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Mutex-protected reference implementation of the same object.
#[derive(Debug)]
pub struct LockedGrouped {
    group: usize,
    capacity: usize,
    proposals: Mutex<Vec<u64>>,
}

impl LockedGrouped {
    /// Creates the object with arrival groups of `group` and the given
    /// `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `group == 0` or `capacity == 0`.
    pub fn new(group: usize, capacity: usize) -> Self {
        assert!(group > 0, "group size must be positive");
        assert!(capacity > 0, "capacity must be positive");
        LockedGrouped {
            group,
            capacity,
            proposals: Mutex::new(Vec::new()),
        }
    }

    /// Creates the `(n, k)` family level: groups of `n`, capacity `n(k+1)`.
    pub fn for_level(n: usize, k: usize) -> Self {
        Self::new(n, n * (k + 1))
    }
}

impl Grouped for LockedGrouped {
    fn propose(&self, v: u64) -> Option<ProposeOutcome> {
        assert_ne!(v, EMPTY, "EMPTY is reserved");
        let mut proposals = self.proposals.lock().expect("proposals lock poisoned");
        let ticket = proposals.len();
        if ticket >= self.capacity {
            return None;
        }
        proposals.push(v);
        let leader = (ticket / self.group) * self.group;
        Some(ProposeOutcome {
            ticket,
            response: proposals[leader],
        })
    }

    fn group_size(&self) -> usize {
        self.group
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Verifies a set of completed proposals against the grouped semantics:
/// tickets are distinct, and every response equals the value proposed by
/// the holder of the group-leader ticket.
///
/// `outcomes` pairs each proposal's input value with its outcome. Returns
/// `Err` with a description of the first inconsistency.
///
/// # Errors
///
/// Returns a human-readable description of the first violated property.
pub fn verify_grouped_semantics(
    group: usize,
    outcomes: &[(u64, ProposeOutcome)],
) -> Result<(), String> {
    use std::collections::HashMap;
    let mut by_ticket: HashMap<usize, u64> = HashMap::new();
    for (v, o) in outcomes {
        if by_ticket.insert(o.ticket, *v).is_some() {
            return Err(format!("ticket {} drawn twice", o.ticket));
        }
    }
    for (_, o) in outcomes {
        let leader = (o.ticket / group) * group;
        let Some(&leader_value) = by_ticket.get(&leader) else {
            return Err(format!(
                "ticket {}'s leader {leader} missing from outcomes",
                o.ticket
            ));
        };
        if o.response != leader_value {
            return Err(format!(
                "ticket {} got {} but its leader {leader} proposed {leader_value}",
                o.ticket, o.response
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn exercise_sequential(obj: &dyn Grouped) {
        let mut outcomes = Vec::new();
        for i in 0..obj.capacity() as u64 {
            let v = 100 + i;
            let o = obj.propose(v).expect("within capacity");
            outcomes.push((v, o));
        }
        assert!(obj.propose(9).is_none(), "exhausted");
        verify_grouped_semantics(obj.group_size(), &outcomes).unwrap();
        let distinct: BTreeSet<u64> = outcomes.iter().map(|(_, o)| o.response).collect();
        assert_eq!(
            distinct.len(),
            obj.capacity().div_ceil(obj.group_size()),
            "one value per group"
        );
    }

    #[test]
    fn lock_free_sequential_semantics() {
        exercise_sequential(&LockFreeGrouped::for_level(3, 2));
        exercise_sequential(&LockFreeGrouped::new(2, 5));
    }

    #[test]
    fn locked_sequential_semantics() {
        exercise_sequential(&LockedGrouped::for_level(3, 2));
        exercise_sequential(&LockedGrouped::new(2, 5));
    }

    fn exercise_concurrent(obj: &dyn Grouped, threads: usize) {
        let outcomes: Mutex<Vec<(u64, ProposeOutcome)>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..threads {
                let outcomes = &outcomes;
                let obj = &obj;
                s.spawn(move || {
                    let v = 1000 + t as u64;
                    if let Some(o) = obj.propose(v) {
                        outcomes.lock().unwrap().push((v, o));
                    }
                });
            }
        });
        let outcomes = outcomes.into_inner().unwrap();
        let expected = threads.min(obj.capacity());
        assert_eq!(outcomes.len(), expected);
        verify_grouped_semantics(obj.group_size(), &outcomes).unwrap();
        let distinct: BTreeSet<u64> = outcomes.iter().map(|(_, o)| o.response).collect();
        assert!(distinct.len() <= expected.div_ceil(obj.group_size()));
    }

    #[test]
    fn lock_free_concurrent_semantics() {
        for _ in 0..50 {
            exercise_concurrent(&LockFreeGrouped::for_level(2, 3), 8);
            exercise_concurrent(&LockFreeGrouped::for_level(4, 1), 6);
        }
    }

    #[test]
    fn locked_concurrent_semantics() {
        for _ in 0..50 {
            exercise_concurrent(&LockedGrouped::for_level(2, 3), 8);
        }
    }

    #[test]
    fn overflow_threads_observe_exhaustion() {
        let obj = LockFreeGrouped::new(2, 2);
        assert!(obj.propose(1).is_some());
        assert!(obj.propose(2).is_some());
        assert!(obj.propose(3).is_none());
    }

    #[test]
    #[should_panic(expected = "EMPTY is reserved")]
    fn empty_sentinel_rejected() {
        let obj = LockFreeGrouped::new(2, 2);
        let _ = obj.propose(EMPTY);
    }

    #[test]
    fn verifier_catches_bad_data() {
        // Response disagrees with leader value.
        let bad = [
            (
                10u64,
                ProposeOutcome {
                    ticket: 0,
                    response: 10,
                },
            ),
            (
                20u64,
                ProposeOutcome {
                    ticket: 1,
                    response: 20,
                },
            ),
        ];
        assert!(verify_grouped_semantics(2, &bad).is_err());
        let dup = [
            (
                10u64,
                ProposeOutcome {
                    ticket: 0,
                    response: 10,
                },
            ),
            (
                20u64,
                ProposeOutcome {
                    ticket: 0,
                    response: 10,
                },
            ),
        ];
        assert!(verify_grouped_semantics(2, &dup).is_err());
    }
}
