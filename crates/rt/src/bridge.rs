//! Bridging real threads to the simulator's linearizability checker.
//!
//! Real-thread executions produce concurrent histories too — this module
//! records them (behind a mutex, so event order is a total order consistent
//! with real time) and hands them to
//! [`check_linearizable`](subconsensus_sim::check_linearizable) against the
//! simulator-side sequential specification.
//!
//! The recorded invocation event is taken *before* the real call starts and
//! the response event *after* it returns, so recorded intervals contain the
//! real ones. That widening removes real-time precedence constraints, never
//! adds them: a rejection is always a genuine linearizability violation,
//! while borderline acceptances are conservative.

use std::sync::Mutex;

use subconsensus_sim::{History, Op, OpId, Pid, Value};

use crate::grouped::Grouped;

/// A thread-safe recorder of one concurrent history.
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    inner: Mutex<History>,
}

impl HistoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an invocation by thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if thread `tid` already has an operation in flight.
    pub fn invoke(&self, tid: usize, op: Op) -> OpId {
        self.inner
            .lock()
            .expect("history lock poisoned")
            .invoke(Pid::new(tid), op)
            .expect("one op in flight per thread")
    }

    /// Records the response of operation `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in flight.
    pub fn respond(&self, id: OpId, response: Value) {
        self.inner
            .lock()
            .expect("history lock poisoned")
            .respond(id, response)
            .expect("response matches an in-flight op");
    }

    /// Extracts the recorded history.
    pub fn into_history(self) -> History {
        self.inner.into_inner().expect("history lock poisoned")
    }
}

/// Runs `threads` real threads, each proposing one value from `values`
/// against `obj`, while recording the high-level history. Exhausted
/// proposals (the object's hang analogue) are left pending in the history.
///
/// Returns the recorded history for linearizability checking.
pub fn record_grouped_run<G: Grouped>(obj: &G, values: &[u64]) -> History {
    let recorder = HistoryRecorder::new();
    std::thread::scope(|s| {
        for (tid, &v) in values.iter().enumerate() {
            let recorder = &recorder;
            let obj = &obj;
            s.spawn(move || {
                let id = recorder.invoke(tid, Op::unary("propose", Value::Int(v as i64)));
                if let Some(out) = obj.propose(v) {
                    recorder.respond(id, Value::Int(out.response as i64));
                }
            });
        }
    });
    recorder.into_history()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouped::{LockFreeGrouped, LockedGrouped, ProposeOutcome, EMPTY};
    use subconsensus_core::GroupedObject;
    use subconsensus_sim::check_linearizable;

    #[test]
    fn lock_free_histories_linearize_against_the_sim_spec() {
        let reference = GroupedObject::new(2, 4);
        for round in 0..150 {
            let obj = LockFreeGrouped::new(2, 4);
            let values: Vec<u64> = (0..4).map(|t| 100 + round + t * 7).collect();
            let history = record_grouped_run(&obj, &values);
            assert!(
                check_linearizable(&history, &reference).unwrap().is_some(),
                "round {round}:\n{history}"
            );
        }
    }

    #[test]
    fn locked_histories_linearize_too() {
        let reference = GroupedObject::new(3, 6);
        for round in 0..100 {
            let obj = LockedGrouped::new(3, 6);
            let values: Vec<u64> = (0..6).map(|t| 500 + round + t * 11).collect();
            let history = record_grouped_run(&obj, &values);
            assert!(
                check_linearizable(&history, &reference).unwrap().is_some(),
                "round {round}:\n{history}"
            );
        }
    }

    #[test]
    fn overflow_leaves_pending_ops_and_still_linearizes() {
        let reference = GroupedObject::new(2, 2);
        for round in 0..60 {
            let obj = LockFreeGrouped::new(2, 2);
            let values: Vec<u64> = (0..4).map(|t| 1 + round + t).collect();
            let history = record_grouped_run(&obj, &values);
            assert!(!history.is_complete(), "two proposals must be left pending");
            assert!(
                check_linearizable(&history, &reference).unwrap().is_some(),
                "round {round}:\n{history}"
            );
        }
    }

    /// A deliberately wrong object: every proposal gets its own value back.
    #[derive(Debug)]
    struct EchoGrouped {
        tickets: std::sync::atomic::AtomicUsize,
        cap: usize,
    }

    impl Grouped for EchoGrouped {
        fn propose(&self, v: u64) -> Option<ProposeOutcome> {
            assert_ne!(v, EMPTY);
            let t = self
                .tickets
                .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
            if t >= self.cap {
                return None;
            }
            Some(ProposeOutcome {
                ticket: t,
                response: v,
            })
        }

        fn group_size(&self) -> usize {
            2
        }

        fn capacity(&self) -> usize {
            self.cap
        }
    }

    #[test]
    fn the_bridge_catches_a_broken_object() {
        // Two distinct proposals both get their own value: under the
        // grouped spec (group 2) one of them must have received the
        // other's, in every linearization — rejected deterministically.
        let reference = GroupedObject::new(2, 2);
        let obj = EchoGrouped {
            tickets: std::sync::atomic::AtomicUsize::new(0),
            cap: 2,
        };
        let history = record_grouped_run(&obj, &[41, 42]);
        assert!(
            check_linearizable(&history, &reference).unwrap().is_none(),
            "echo object must be rejected:\n{history}"
        );
    }

    #[test]
    fn recorder_rejects_protocol_misuse() {
        let r = HistoryRecorder::new();
        let id = r.invoke(0, Op::new("propose"));
        r.respond(id, Value::Int(1));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.respond(id, Value::Int(2));
        }));
        assert!(result.is_err(), "double response must panic");
    }
}
