//! Real-atomics runtime: the paper's objects on hardware
//! `std::sync::atomic`, driven by actual threads.
//!
//! The discrete simulator of `subconsensus-sim` is the main vehicle of this
//! reproduction; this crate is the "atomics are available" complement: the
//! grouped deterministic family ([`LockFreeGrouped`], with a mutex-based
//! [`LockedGrouped`] reference) and a hardware-CAS consensus cell
//! ([`CasConsensus`]) runnable and benchmarkable under real contention
//! (experiment E7).
//!
//! Semantics are verified two ways: [`verify_grouped_semantics`] checks the
//! ticket/leader arithmetic of every run, and [`record_grouped_run`] records
//! real-thread histories and feeds them to the *simulator's* linearizability
//! checker against the sequential `GroupedObject` spec — the bridge between
//! the hardware and the model.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bridge;
mod consensus;
mod grouped;

pub use bridge::{record_grouped_run, HistoryRecorder};
pub use consensus::CasConsensus;
pub use grouped::{
    verify_grouped_semantics, Grouped, LockFreeGrouped, LockedGrouped, ProposeOutcome, EMPTY,
};
