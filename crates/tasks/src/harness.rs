//! Solvability harness: does this protocol solve this task?
//!
//! Two modes:
//!
//! * [`check_exhaustive`] — explore *every* schedule and nondeterministic
//!   outcome with the model checker (small systems); verifies both
//!   termination (wait-freedom) and the task relation on every final
//!   configuration. This is a *proof* for the given system size and inputs.
//! * [`check_random`] — run many seeded random schedules (larger systems);
//!   verifies the task relation on each run. This is a test, not a proof.
//!
//! Both also exercise **crash schedules**: prefixes where a subset of
//! processes stops taking steps, under which the surviving processes must
//! still decide correctly (fail-stop = never scheduled again, which the
//! exhaustive graph already covers: every reachable configuration extends
//! with any subset active).

use subconsensus_modelcheck::{check_wait_freedom, ExploreOptions, StateGraph, WaitFreedom};
use subconsensus_sim::{run, Pid, RandomScheduler, RunOptions, SimError, SystemSpec, Value};

use crate::task::{Task, Violation};

/// The result of an exhaustive solvability check.
#[derive(Clone, Debug)]
pub struct ExhaustiveReport {
    /// Termination verdict over all schedules.
    pub wait_freedom: WaitFreedom,
    /// First task violation found among final configurations, if any.
    pub violation: Option<Violation>,
    /// Number of distinct configurations explored.
    pub configs: usize,
    /// Number of final configurations.
    pub terminals: usize,
    /// Whether the exploration hit its bound (in which case the verdict is
    /// only partial).
    pub truncated: bool,
}

impl ExhaustiveReport {
    /// `true` iff the protocol wait-free solves the task on this system:
    /// every schedule terminates with every process decided, and every final
    /// configuration satisfies the task.
    pub fn solved(&self) -> bool {
        !self.truncated && self.wait_freedom.is_wait_free() && self.violation.is_none()
    }

    /// `true` iff every final configuration satisfies the task relation,
    /// regardless of termination (useful for protocols over objects that
    /// may hang some process by design).
    pub fn safe(&self) -> bool {
        !self.truncated && self.violation.is_none()
    }
}

/// Exhaustively checks whether `spec` wait-free solves `task`.
///
/// The inputs judged by the task are read from the system itself (the input
/// of each process as registered in the builder).
///
/// # Errors
///
/// Propagates simulator errors ([`SimError`]) raised during exploration.
pub fn check_exhaustive(
    spec: &SystemSpec,
    task: &dyn Task,
    opts: &ExploreOptions,
) -> Result<ExhaustiveReport, SimError> {
    let inputs: Vec<Value> = (0..spec.nprocs())
        .map(|i| spec.ctx(Pid::new(i)).input)
        .collect();
    let graph = StateGraph::explore(spec, opts)?;
    let wait_freedom = check_wait_freedom(&graph);
    let mut violation = None;
    for &t in graph.terminals() {
        let outputs = graph.node(t).decisions();
        if let Err(v) = task.check(&inputs, &outputs) {
            violation = Some(v);
            break;
        }
    }
    // Also check every *partial* configuration: decisions made so far must
    // already satisfy the task (decisions are irrevocable). Probes are
    // id-native (`StateGraph::node`), so this sweep reads statuses from id
    // rows instead of materializing a deep `Config` per node.
    if violation.is_none() {
        for i in 0..graph.len() {
            let outputs = graph.node(i).decisions();
            if let Err(v) = task.check(&inputs, &outputs) {
                violation = Some(v);
                break;
            }
        }
    }
    Ok(ExhaustiveReport {
        wait_freedom,
        violation,
        configs: graph.len(),
        terminals: graph.terminals().len(),
        truncated: graph.is_truncated(),
    })
}

/// The result of a randomized solvability check.
#[derive(Clone, Debug)]
pub struct RandomReport {
    /// Number of runs executed.
    pub runs: usize,
    /// Number of runs that reached a final configuration.
    pub completed: usize,
    /// First violation found, with the seed that produced it.
    pub violation: Option<(u64, Violation)>,
}

impl RandomReport {
    /// `true` iff every run terminated and satisfied the task.
    pub fn solved(&self) -> bool {
        self.completed == self.runs && self.violation.is_none()
    }
}

/// Runs `spec` under `seeds` random schedules and checks `task` on each
/// outcome.
///
/// # Errors
///
/// Propagates simulator errors raised during the runs.
pub fn check_random(
    spec: &SystemSpec,
    task: &dyn Task,
    seeds: std::ops::Range<u64>,
    max_steps: usize,
) -> Result<RandomReport, SimError> {
    let inputs: Vec<Value> = (0..spec.nprocs())
        .map(|i| spec.ctx(Pid::new(i)).input)
        .collect();
    let mut completed = 0;
    let mut violation = None;
    let mut runs = 0;
    for seed in seeds {
        runs += 1;
        let mut sched = RandomScheduler::seeded(seed);
        let mut chooser = RandomScheduler::seeded(seed.wrapping_add(0x9e37_79b9));
        let out = run(
            spec,
            &mut sched,
            &mut chooser,
            &RunOptions::with_max_steps(max_steps),
        )?;
        if out.reached_final {
            completed += 1;
        }
        if violation.is_none() {
            if let Err(v) = task.check(&inputs, &out.decisions()) {
                violation = Some((seed, v));
            }
        }
    }
    Ok(RandomReport {
        runs,
        completed,
        violation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{SetConsensusTask, TestAndSetTask};
    use std::sync::Arc;
    use subconsensus_objects::{Consensus, RegisterArray, SetConsensus};
    use subconsensus_protocols::{tournament_nodes, ProposeDecide, Tournament, WriteReadMin};
    use subconsensus_sim::{ObjectSpec, Protocol, SystemBuilder};

    fn propose_system(obj: Box<dyn ObjectSpec>, inputs: &[i64]) -> SystemSpec {
        let mut b = SystemBuilder::new();
        let o = b.add_boxed_object(obj);
        let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(o));
        b.add_processes(p, inputs.iter().map(|&v| Value::Int(v)));
        b.build()
    }

    #[test]
    fn consensus_object_solves_consensus_exhaustively() {
        let spec = propose_system(Box::new(Consensus::unbounded()), &[1, 2, 3]);
        let r = check_exhaustive(
            &spec,
            &SetConsensusTask::consensus(),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(r.solved(), "{r:?}");
        assert!(r.terminals > 0);
    }

    #[test]
    fn set_consensus_object_solves_k_but_not_k_minus_1() {
        let spec = propose_system(Box::new(SetConsensus::new(3, 2).unwrap()), &[1, 2, 3]);
        let two =
            check_exhaustive(&spec, &SetConsensusTask::new(2), &ExploreOptions::default()).unwrap();
        assert!(two.solved(), "{two:?}");
        let one = check_exhaustive(
            &spec,
            &SetConsensusTask::consensus(),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(!one.solved());
        assert!(
            one.violation.is_some(),
            "2 values must be decidable somewhere"
        );
    }

    #[test]
    fn broken_register_consensus_flagged_by_harness() {
        let mut b = SystemBuilder::new();
        let regs = b.add_object(RegisterArray::new(2));
        let p: Arc<dyn Protocol> = Arc::new(WriteReadMin::new(regs));
        b.add_processes(p, [Value::Int(1), Value::Int(2)]);
        let spec = b.build();
        let r = check_exhaustive(
            &spec,
            &SetConsensusTask::consensus(),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(!r.solved());
        assert!(r.violation.unwrap().detail.contains("agreement"));
    }

    #[test]
    fn tournament_solves_test_and_set_exhaustively_and_randomly() {
        let n = 3;
        let mut b = SystemBuilder::new();
        let base = b.add_object_array(tournament_nodes(n), |_| {
            Box::new(Consensus::bounded(2)) as Box<dyn ObjectSpec>
        });
        let p: Arc<dyn Protocol> = Arc::new(Tournament::new(base, n));
        b.add_processes(p, (0..n).map(Value::from));
        let spec = b.build();

        let r =
            check_exhaustive(&spec, &TestAndSetTask::new(), &ExploreOptions::default()).unwrap();
        assert!(r.solved(), "{r:?}");

        let rr = check_random(&spec, &TestAndSetTask::new(), 0..100, 100_000).unwrap();
        assert!(rr.solved(), "{rr:?}");
        assert_eq!(rr.runs, 100);
    }

    #[test]
    fn truncated_exploration_is_not_a_proof() {
        let spec = propose_system(Box::new(Consensus::unbounded()), &[1, 2, 3]);
        let r = check_exhaustive(
            &spec,
            &SetConsensusTask::consensus(),
            &ExploreOptions::with_max_configs(3),
        )
        .unwrap();
        assert!(r.truncated);
        assert!(!r.solved());
    }
}
