//! Task specifications and a solvability harness.
//!
//! A **task** specifies what combinations of output values may be produced
//! given each process's input (the simulator checks *termination*
//! separately). This crate provides the tasks the paper's results are
//! phrased in — consensus, `k`-set consensus, (strong) `k`-set election,
//! renaming, test-and-set — plus a harness that decides, exhaustively for
//! small systems and statistically for larger ones, whether a protocol
//! solves a task:
//!
//! * [`check_exhaustive`] — model-checks every schedule and every
//!   nondeterministic object outcome;
//! * [`check_random`] — samples seeded random schedules.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod harness;
mod task;

pub use harness::{check_exhaustive, check_random, ExhaustiveReport, RandomReport};
pub use task::{
    ImmediateSnapshotTask, RenamingTask, SetConsensusTask, SetElectionTask, Task, TestAndSetTask,
    Violation,
};
