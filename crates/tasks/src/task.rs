//! Task specifications.
//!
//! A *task* specifies which combinations of output values are allowed, given
//! the input value of each process and the set of processes producing
//! outputs. Termination (every process that takes enough steps decides) is
//! checked separately by the harness; a [`Task`] only judges the
//! input/output relation.

use std::collections::BTreeSet;
use std::fmt;

use subconsensus_sim::Value;

/// A violation of a task specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The task that was violated.
    pub task: &'static str,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task `{}` violated: {}", self.task, self.detail)
    }
}

impl std::error::Error for Violation {}

/// A one-shot distributed task.
///
/// `inputs[i]` is the input of process `i`; `outputs[i]` is its decision, or
/// `None` if it produced none (crashed, hung, or was not scheduled). A task
/// judges only the produced outputs.
pub trait Task: fmt::Debug {
    /// A short name used in reports.
    fn name(&self) -> &'static str;

    /// Checks one complete outcome.
    ///
    /// # Errors
    ///
    /// Returns a [`Violation`] describing the first property broken.
    fn check(&self, inputs: &[Value], outputs: &[Option<Value>]) -> Result<(), Violation>;
}

fn distinct_outputs(outputs: &[Option<Value>]) -> BTreeSet<&Value> {
    outputs.iter().flatten().collect()
}

/// The `k`-set consensus task: validity (every output is some process's
/// input) + `k`-agreement (at most `k` distinct outputs). `k = 1` is
/// consensus.
///
/// # Examples
///
/// ```
/// use subconsensus_tasks::{SetConsensusTask, Task};
/// use subconsensus_sim::Value;
///
/// let task = SetConsensusTask::consensus();
/// let inputs = [Value::Int(1), Value::Int(2)];
/// assert!(task.check(&inputs, &[Some(Value::Int(1)), Some(Value::Int(1))]).is_ok());
/// assert!(task.check(&inputs, &[Some(Value::Int(1)), Some(Value::Int(2))]).is_err());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SetConsensusTask {
    k: usize,
}

impl SetConsensusTask {
    /// Creates the `k`-set consensus task.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k-set consensus requires k ≥ 1");
        SetConsensusTask { k }
    }

    /// The consensus task (`k = 1`).
    pub fn consensus() -> Self {
        Self::new(1)
    }

    /// Returns the agreement bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Task for SetConsensusTask {
    fn name(&self) -> &'static str {
        if self.k == 1 {
            "consensus"
        } else {
            "k-set-consensus"
        }
    }

    fn check(&self, inputs: &[Value], outputs: &[Option<Value>]) -> Result<(), Violation> {
        for (i, out) in outputs.iter().enumerate() {
            if let Some(v) = out {
                if !inputs.contains(v) {
                    return Err(Violation {
                        task: self.name(),
                        detail: format!("validity: P{i} decided {v}, which nobody proposed"),
                    });
                }
            }
        }
        let distinct = distinct_outputs(outputs);
        if distinct.len() > self.k {
            return Err(Violation {
                task: self.name(),
                detail: format!(
                    "{}-agreement: {} distinct outputs {:?}",
                    self.k,
                    distinct.len(),
                    distinct
                ),
            });
        }
        Ok(())
    }
}

/// The `k`-set election task: every output is the *input of a process that
/// produced an output or took part* (outputs name participants), with at
/// most `k` distinct outputs.
///
/// Inputs are interpreted as (unique) identifiers that processes propose;
/// the election variant additionally requires each output to be the
/// identifier of a *participant* — which here means any process with an
/// input, since the harness only builds participating processes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SetElectionTask {
    k: usize,
    strong: bool,
}

impl SetElectionTask {
    /// Creates the `k`-set election task.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k-set election requires k ≥ 1");
        SetElectionTask { k, strong: false }
    }

    /// Creates the **strong** `k`-set election task, which adds
    /// *self-election*: if some process outputs identifier `id`, the process
    /// whose input is `id` must itself output `id` (if it outputs at all).
    pub fn strong(k: usize) -> Self {
        assert!(k > 0, "k-set election requires k ≥ 1");
        SetElectionTask { k, strong: true }
    }

    /// Returns the agreement bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Task for SetElectionTask {
    fn name(&self) -> &'static str {
        if self.strong {
            "strong-k-set-election"
        } else {
            "k-set-election"
        }
    }

    fn check(&self, inputs: &[Value], outputs: &[Option<Value>]) -> Result<(), Violation> {
        for (i, out) in outputs.iter().enumerate() {
            if let Some(v) = out {
                if !inputs.contains(v) {
                    return Err(Violation {
                        task: self.name(),
                        detail: format!("P{i} elected {v}, not a participant identifier"),
                    });
                }
            }
        }
        let distinct = distinct_outputs(outputs);
        if distinct.len() > self.k {
            return Err(Violation {
                task: self.name(),
                detail: format!("{}-agreement: {} distinct leaders", self.k, distinct.len()),
            });
        }
        if self.strong {
            for (i, out) in outputs.iter().enumerate() {
                if let Some(v) = out {
                    // Find the process whose input is v.
                    if let Some(j) = inputs.iter().position(|inp| inp == v) {
                        if let Some(vj) = &outputs[j] {
                            if vj != v {
                                return Err(Violation {
                                    task: self.name(),
                                    detail: format!(
                                        "self-election: P{i} elected {v} but P{j} elected {vj}"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// The one-shot renaming task: outputs are pairwise distinct names in
/// `{0 .. namespace-1}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RenamingTask {
    namespace: usize,
}

impl RenamingTask {
    /// Creates the renaming task with target namespace `{0..namespace-1}`.
    pub fn new(namespace: usize) -> Self {
        RenamingTask { namespace }
    }

    /// Returns the namespace size.
    pub fn namespace(&self) -> usize {
        self.namespace
    }
}

impl Task for RenamingTask {
    fn name(&self) -> &'static str {
        "renaming"
    }

    fn check(&self, _inputs: &[Value], outputs: &[Option<Value>]) -> Result<(), Violation> {
        let mut seen = BTreeSet::new();
        for (i, out) in outputs.iter().enumerate() {
            if let Some(v) = out {
                let name = v.as_index().ok_or_else(|| Violation {
                    task: "renaming",
                    detail: format!("P{i} decided non-name {v}"),
                })?;
                if name >= self.namespace {
                    return Err(Violation {
                        task: "renaming",
                        detail: format!("P{i} took name {name} outside 0..{}", self.namespace),
                    });
                }
                if !seen.insert(name) {
                    return Err(Violation {
                        task: "renaming",
                        detail: format!("name {name} taken twice"),
                    });
                }
            }
        }
        Ok(())
    }
}

/// The one-shot immediate-snapshot task (Borowsky–Gafni): each output is a
/// *view* — a sorted tuple of input values — satisfying
///
/// * **validity** — every element of a view is some process's input;
/// * **self-inclusion** — a process's view contains its own input;
/// * **containment** — any two views are `⊆`-comparable;
/// * **immediacy** — if process `j`'s input appears in `i`'s view then
///   `j`'s view (when produced) is a subset of `i`'s view.
///
/// Inputs are assumed pairwise distinct (the harness builds them so), which
/// lets views be compared as value sets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ImmediateSnapshotTask;

impl ImmediateSnapshotTask {
    /// Creates the task.
    pub fn new() -> Self {
        ImmediateSnapshotTask
    }
}

fn view_set(v: &Value) -> Option<BTreeSet<&Value>> {
    v.as_tup().map(|items| items.iter().collect())
}

impl Task for ImmediateSnapshotTask {
    fn name(&self) -> &'static str {
        "immediate-snapshot"
    }

    fn check(&self, inputs: &[Value], outputs: &[Option<Value>]) -> Result<(), Violation> {
        let fail = |detail: String| Violation {
            task: "immediate-snapshot",
            detail,
        };
        let views: Vec<(usize, BTreeSet<&Value>)> = outputs
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_ref().map(|v| (i, v)))
            .map(|(i, v)| {
                view_set(v)
                    .map(|s| (i, s))
                    .ok_or_else(|| fail(format!("P{i} decided non-view {v}")))
            })
            .collect::<Result<_, _>>()?;
        for (i, view) in &views {
            for elem in view {
                if !inputs.contains(elem) {
                    return Err(fail(format!("validity: P{i} saw non-input {elem}")));
                }
            }
            if !view.contains(&inputs[*i]) {
                return Err(fail(format!(
                    "self-inclusion: P{i}'s view misses its input"
                )));
            }
        }
        for (i, vi) in &views {
            for (j, vj) in &views {
                if i < j && !vi.is_subset(vj) && !vj.is_subset(vi) {
                    return Err(fail(format!("containment: P{i} and P{j} incomparable")));
                }
            }
        }
        for (i, vi) in &views {
            for (j, vj) in &views {
                if vi.contains(&inputs[*j]) && !vj.is_subset(vi) {
                    return Err(fail(format!(
                        "immediacy: P{i} saw P{j}'s input but P{j}'s view is not contained"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// The one-shot test-and-set task: every output is 0 (winner) or 1 (loser);
/// at most one winner; and if **all** processes produce outputs, exactly one
/// winner.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TestAndSetTask;

impl TestAndSetTask {
    /// Creates the task.
    pub fn new() -> Self {
        TestAndSetTask
    }
}

impl Task for TestAndSetTask {
    fn name(&self) -> &'static str {
        "test-and-set"
    }

    fn check(&self, _inputs: &[Value], outputs: &[Option<Value>]) -> Result<(), Violation> {
        let mut winners = 0usize;
        let mut produced = 0usize;
        for (i, out) in outputs.iter().enumerate() {
            if let Some(v) = out {
                produced += 1;
                match v.as_int() {
                    Some(0) => winners += 1,
                    Some(1) => {}
                    _ => {
                        return Err(Violation {
                            task: "test-and-set",
                            detail: format!("P{i} decided {v}, expected 0 or 1"),
                        })
                    }
                }
            }
        }
        if winners > 1 {
            return Err(Violation {
                task: "test-and-set",
                detail: format!("{winners} winners"),
            });
        }
        if produced == outputs.len() && winners == 0 {
            return Err(Violation {
                task: "test-and-set",
                detail: "everyone decided but nobody won".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(vs: &[i64]) -> Vec<Value> {
        vs.iter().map(|&v| Value::Int(v)).collect()
    }

    fn outs(vs: &[Option<i64>]) -> Vec<Option<Value>> {
        vs.iter().map(|v| v.map(Value::Int)).collect()
    }

    #[test]
    fn set_consensus_validity_and_agreement() {
        let t = SetConsensusTask::new(2);
        assert_eq!(t.k(), 2);
        let inputs = vals(&[1, 2, 3]);
        assert!(t
            .check(&inputs, &outs(&[Some(1), Some(2), Some(1)]))
            .is_ok());
        assert!(t
            .check(&inputs, &outs(&[Some(1), Some(2), Some(3)]))
            .is_err());
        assert!(t.check(&inputs, &outs(&[Some(9), None, None])).is_err());
        assert!(t.check(&inputs, &outs(&[None, None, None])).is_ok());
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn zero_k_panics() {
        let _ = SetConsensusTask::new(0);
    }

    #[test]
    fn consensus_is_one_set_consensus() {
        let t = SetConsensusTask::consensus();
        assert_eq!(t.name(), "consensus");
        assert_eq!(t.k(), 1);
        let inputs = vals(&[5, 6]);
        assert!(t.check(&inputs, &outs(&[Some(5), Some(6)])).is_err());
    }

    #[test]
    fn election_requires_participant_ids() {
        let t = SetElectionTask::new(1);
        let inputs = vals(&[10, 20]);
        assert!(t.check(&inputs, &outs(&[Some(10), Some(10)])).is_ok());
        assert!(t.check(&inputs, &outs(&[Some(30), None])).is_err());
    }

    #[test]
    fn strong_election_self_property() {
        let t = SetElectionTask::strong(2);
        let inputs = vals(&[10, 20, 30]);
        // P0 elects 20, but P1 (whose id is 20) elected 30: violation.
        assert!(t
            .check(&inputs, &outs(&[Some(20), Some(30), Some(30)]))
            .is_err());
        // P1 itself elects 20: fine.
        assert!(t
            .check(&inputs, &outs(&[Some(20), Some(20), Some(20)]))
            .is_ok());
        // P1 produced no output: vacuously fine.
        assert!(t.check(&inputs, &outs(&[Some(20), None, Some(20)])).is_ok());
    }

    #[test]
    fn renaming_uniqueness_and_range() {
        let t = RenamingTask::new(3);
        assert_eq!(t.namespace(), 3);
        let inputs = vals(&[100, 200]);
        assert!(t.check(&inputs, &outs(&[Some(0), Some(2)])).is_ok());
        assert!(t.check(&inputs, &outs(&[Some(0), Some(0)])).is_err());
        assert!(t.check(&inputs, &outs(&[Some(3), None])).is_err());
        assert!(t.check(&inputs, &[Some(Value::Sym("x")), None]).is_err());
    }

    #[test]
    fn immediate_snapshot_properties() {
        let t = ImmediateSnapshotTask::new();
        let inputs = vals(&[1, 2, 3]);
        let view = |vs: &[i64]| Some(Value::tup(vs.iter().map(|&v| Value::Int(v))));
        // A legal ordered outcome: {1} ⊆ {1,2} ⊆ {1,2,3}.
        assert!(t
            .check(&inputs, &[view(&[1]), view(&[1, 2]), view(&[1, 2, 3])])
            .is_ok());
        // Validity violation: 9 is not an input.
        assert!(t.check(&inputs, &[view(&[1, 9]), None, None]).is_err());
        // Self-inclusion violation: P0's view lacks 1.
        assert!(t.check(&inputs, &[view(&[2]), None, None]).is_err());
        // Containment violation: {1,2} vs {1,3} incomparable.
        assert!(t
            .check(&inputs, &[view(&[1, 2]), None, view(&[1, 3])])
            .is_err());
        // Immediacy violation: P0 saw P1's input but P1's view ⊄ P0's.
        assert!(t
            .check(&inputs, &[view(&[1, 2]), view(&[1, 2, 3]), None])
            .is_err());
        // Non-view output rejected.
        assert!(t
            .check(&inputs, &[Some(Value::Int(1)), None, None])
            .is_err());
        // Pending processes are fine.
        assert!(t.check(&inputs, &[None, None, None]).is_ok());
    }

    #[test]
    fn test_and_set_single_winner() {
        let t = TestAndSetTask::new();
        let inputs = vals(&[0, 1, 2]);
        assert!(t
            .check(&inputs, &outs(&[Some(0), Some(1), Some(1)]))
            .is_ok());
        assert!(t
            .check(&inputs, &outs(&[Some(0), Some(0), Some(1)]))
            .is_err());
        assert!(t
            .check(&inputs, &outs(&[Some(1), Some(1), Some(1)]))
            .is_err());
        // Partial outcomes may have no winner yet.
        assert!(t.check(&inputs, &outs(&[Some(1), None, None])).is_ok());
        assert!(t.check(&inputs, &outs(&[Some(2), None, None])).is_err());
    }
}
