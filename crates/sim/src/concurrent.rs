//! Driving an [`Implementation`] under a scheduler and recording the
//! concurrent history.

use std::sync::Arc;

use crate::error::SimError;
use crate::history::{History, OpId};
use crate::ids::{ObjId, Pid};
use crate::implementation::{ImplStep, Implementation};
use crate::object::ObjectSpec;
use crate::op::Op;
use crate::protocol::ProcCtx;
use crate::sched::{OutcomeChooser, Scheduler};
use crate::value::Value;

/// A bank of base objects for a concurrent run.
#[derive(Debug, Default)]
pub struct BaseObjects {
    specs: Vec<Box<dyn ObjectSpec>>,
}

impl BaseObjects {
    /// Creates an empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an object and returns its id.
    pub fn add(&mut self, spec: impl ObjectSpec + 'static) -> ObjId {
        self.add_boxed(Box::new(spec))
    }

    /// Registers an already-boxed object and returns its id.
    pub fn add_boxed(&mut self, spec: Box<dyn ObjectSpec>) -> ObjId {
        let id = ObjId::new(self.specs.len());
        self.specs.push(spec);
        id
    }

    /// Registers `n` objects produced by `make`; returns the first id of the
    /// contiguous range.
    pub fn add_array<F>(&mut self, n: usize, mut make: F) -> ObjId
    where
        F: FnMut(usize) -> Box<dyn ObjectSpec>,
    {
        let base = ObjId::new(self.specs.len());
        for i in 0..n {
            self.specs.push(make(i));
        }
        base
    }

    /// Returns the number of registered objects.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Returns `true` if no objects are registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

#[derive(Clone, Debug)]
enum Phase {
    /// About to start high-level op `op_idx` (if any are left).
    Starting,
    /// Inside a high-level op, with op-local state and the response to the
    /// previous base invocation.
    Mid {
        hl_id: OpId,
        local: Value,
        resp: Option<Value>,
    },
    /// All high-level ops finished.
    Done,
    /// A base operation hung; the current high-level op stays pending.
    Hung,
}

#[derive(Debug)]
struct ProcRun {
    ops: Vec<Op>,
    op_idx: usize,
    memory: Value,
    phase: Phase,
    results: Vec<Value>,
}

/// The result of a concurrent run.
#[derive(Clone, Debug)]
pub struct ConcurrentOutcome {
    /// The recorded high-level history.
    pub history: History,
    /// Per-process high-level responses, in program order.
    pub results: Vec<Vec<Value>>,
    /// Number of scheduled steps.
    pub steps: usize,
    /// Whether every process finished its workload (or hung).
    pub reached_final: bool,
    /// Final states of the base objects.
    pub final_states: Vec<Value>,
}

/// Drives `implementation` over a per-process workload of high-level
/// operations against `objects`, interleaved by `scheduler`, and records the
/// concurrent [`History`].
///
/// Scheduling granularity: each scheduled step is either one atomic base
/// operation, or one operation boundary (recording the invocation of the next
/// high-level op, or its response). Operation boundaries are where the
/// adversary gets to place invocation/response events relative to other
/// processes' steps.
///
/// # Errors
///
/// Propagates [`SimError`]s raised by object specs or the implementation.
pub fn run_concurrent(
    objects: &BaseObjects,
    implementation: &Arc<dyn Implementation>,
    workload: Vec<Vec<Op>>,
    scheduler: &mut dyn Scheduler,
    chooser: &mut dyn OutcomeChooser,
    max_steps: usize,
) -> Result<ConcurrentOutcome, SimError> {
    let nprocs = workload.len();
    let mut obj_states: Vec<Value> = objects.specs.iter().map(|o| o.initial_state()).collect();
    let mut procs: Vec<ProcRun> = workload
        .into_iter()
        .enumerate()
        .map(|(i, ops)| {
            let ctx = ProcCtx::new(Pid::new(i), nprocs, Value::Nil);
            ProcRun {
                ops,
                op_idx: 0,
                memory: implementation.init_memory(&ctx),
                phase: Phase::Starting,
                results: Vec::new(),
            }
        })
        .collect();
    let mut history = History::new();
    let mut steps = 0;

    let enabled = |procs: &[ProcRun]| -> Vec<Pid> {
        procs
            .iter()
            .enumerate()
            .filter(|(_, p)| match p.phase {
                Phase::Starting => p.op_idx < p.ops.len(),
                Phase::Mid { .. } => true,
                Phase::Done | Phase::Hung => false,
            })
            .map(|(i, _)| Pid::new(i))
            .collect()
    };

    while steps < max_steps {
        let en = enabled(&procs);
        if en.is_empty() {
            return Ok(ConcurrentOutcome {
                history,
                results: procs.into_iter().map(|p| p.results).collect(),
                steps,
                reached_final: true,
                final_states: obj_states,
            });
        }
        let Some(pid) = scheduler.next_pid(&en) else {
            return Ok(ConcurrentOutcome {
                history,
                results: procs.into_iter().map(|p| p.results).collect(),
                steps,
                reached_final: false,
                final_states: obj_states,
            });
        };
        steps += 1;
        let ctx = ProcCtx::new(pid, nprocs, Value::Nil);
        let p = &mut procs[pid.index()];
        match std::mem::replace(&mut p.phase, Phase::Done) {
            Phase::Starting => {
                // Operation boundary: record the invocation.
                let op = p.ops[p.op_idx].clone();
                let hl_id = history
                    .invoke(pid, op.clone())
                    .expect("runner keeps at most one op in flight per pid");
                let local = implementation.start_op(&ctx, &op, &p.memory);
                p.phase = Phase::Mid {
                    hl_id,
                    local,
                    resp: None,
                };
            }
            Phase::Mid { hl_id, local, resp } => {
                let op = p.ops[p.op_idx].clone();
                let action = implementation
                    .step(&ctx, &op, &local, resp.as_ref())
                    .map_err(|source| SimError::Protocol { pid, source })?;
                match action {
                    ImplStep::Return { response, memory } => {
                        history
                            .respond(hl_id, response.clone())
                            .expect("runner responds to its own invocation");
                        p.results.push(response);
                        p.memory = memory;
                        p.op_idx += 1;
                        p.phase = Phase::Starting;
                    }
                    ImplStep::Invoke {
                        local,
                        obj,
                        op: base_op,
                    } => {
                        let spec = objects
                            .specs
                            .get(obj.index())
                            .ok_or(SimError::UnknownObject { pid, obj })?;
                        let outcomes = spec
                            .apply(&obj_states[obj.index()], &base_op)
                            .map_err(|source| SimError::Object { obj, pid, source })?;
                        if outcomes.is_empty() {
                            return Err(SimError::NoOutcomes { obj, pid });
                        }
                        let idx = if outcomes.len() == 1 {
                            0
                        } else {
                            chooser.choose(outcomes.len())
                        };
                        let out = outcomes
                            .into_iter()
                            .nth(idx)
                            .expect("chooser index in range");
                        obj_states[obj.index()] = out.state;
                        match out.response {
                            Some(r) => {
                                p.phase = Phase::Mid {
                                    hl_id,
                                    local,
                                    resp: Some(r),
                                };
                            }
                            None => {
                                p.phase = Phase::Hung;
                            }
                        }
                    }
                }
            }
            done_or_hung => {
                p.phase = done_or_hung;
                return Err(SimError::ProcessNotEnabled(pid));
            }
        }
    }
    Ok(ConcurrentOutcome {
        history,
        results: procs.into_iter().map(|p| p.results).collect(),
        steps,
        reached_final: false,
        final_states: obj_states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{ObjectError, ProtocolError};
    use crate::object::Outcome;
    use crate::sched::{FirstOutcome, RandomScheduler, RoundRobin};

    /// A base register.
    #[derive(Debug)]
    struct Reg;

    impl ObjectSpec for Reg {
        fn type_name(&self) -> &'static str {
            "reg"
        }

        fn initial_state(&self) -> Value {
            Value::Nil
        }

        fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            match op.name {
                "read" => Ok(vec![Outcome::ret(state.clone(), state.clone())]),
                "write" => Ok(vec![Outcome::ret(
                    op.arg(0).cloned().unwrap_or(Value::Nil),
                    Value::Nil,
                )]),
                _ => Err(ObjectError::UnknownOp {
                    object: "reg",
                    op: op.clone(),
                }),
            }
        }
    }

    /// High-level register implemented directly on one base register.
    #[derive(Debug)]
    struct PassThrough {
        reg: ObjId,
    }

    impl Implementation for PassThrough {
        fn start_op(&self, _ctx: &ProcCtx, _op: &Op, _memory: &Value) -> Value {
            Value::Int(0)
        }

        fn step(
            &self,
            _ctx: &ProcCtx,
            op: &Op,
            local: &Value,
            resp: Option<&Value>,
        ) -> Result<ImplStep, ProtocolError> {
            match local.as_int() {
                Some(0) => Ok(ImplStep::invoke(Value::Int(1), self.reg, op.clone())),
                Some(1) => Ok(ImplStep::ret(
                    resp.cloned().ok_or_else(|| ProtocolError::new("no resp"))?,
                    Value::Nil,
                )),
                _ => Err(ProtocolError::new("bad pc")),
            }
        }
    }

    #[test]
    fn sequential_workload_produces_complete_history() {
        let mut bank = BaseObjects::new();
        let reg = bank.add(Reg);
        let im: Arc<dyn Implementation> = Arc::new(PassThrough { reg });
        let workload = vec![
            vec![Op::unary("write", Value::Int(5)), Op::new("read")],
            vec![Op::new("read")],
        ];
        let out = run_concurrent(
            &bank,
            &im,
            workload,
            &mut RoundRobin::new(),
            &mut FirstOutcome,
            10_000,
        )
        .unwrap();
        assert!(out.reached_final);
        assert!(out.history.is_complete());
        assert_eq!(out.history.num_ops(), 3);
        assert_eq!(out.results[0].len(), 2);
        // P0's read must see its own write in program order.
        assert_eq!(out.results[0][1], Value::Int(5));
        assert_eq!(out.final_states[0], Value::Int(5));
    }

    #[test]
    fn random_interleavings_complete() {
        let mut bank = BaseObjects::new();
        let reg = bank.add(Reg);
        let im: Arc<dyn Implementation> = Arc::new(PassThrough { reg });
        for seed in 0..20 {
            let workload = vec![
                vec![Op::unary("write", Value::Int(1)), Op::new("read")],
                vec![Op::unary("write", Value::Int(2)), Op::new("read")],
            ];
            let mut sched = RandomScheduler::seeded(seed);
            let out = run_concurrent(&bank, &im, workload, &mut sched, &mut FirstOutcome, 10_000)
                .unwrap();
            assert!(out.reached_final);
            // Every read returns one of the two written values.
            let r0 = &out.results[0][1];
            assert!(r0 == &Value::Int(1) || r0 == &Value::Int(2));
        }
    }

    /// Hangs on its only op.
    #[derive(Debug)]
    struct Pit;

    impl ObjectSpec for Pit {
        fn type_name(&self) -> &'static str {
            "pit"
        }

        fn initial_state(&self) -> Value {
            Value::Nil
        }

        fn apply(&self, state: &Value, _op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            Ok(vec![Outcome::hang(state.clone())])
        }
    }

    #[test]
    fn hanging_base_op_leaves_pending_history() {
        let mut bank = BaseObjects::new();
        let pit = bank.add(Pit);
        let im: Arc<dyn Implementation> = Arc::new(PassThrough { reg: pit });
        let out = run_concurrent(
            &bank,
            &im,
            vec![vec![Op::new("read")]],
            &mut RoundRobin::new(),
            &mut FirstOutcome,
            10_000,
        )
        .unwrap();
        assert!(out.reached_final, "hung process counts as finished");
        assert!(!out.history.is_complete());
        assert_eq!(out.results[0].len(), 0);
    }

    #[test]
    fn bank_array_allocation() {
        let mut bank = BaseObjects::new();
        assert!(bank.is_empty());
        let base = bank.add_array(3, |_| Box::new(Reg) as Box<dyn ObjectSpec>);
        assert_eq!(base, ObjId::new(0));
        assert_eq!(bank.len(), 3);
    }
}
