//! Exploration telemetry: phase timers, counters, heartbeats, trace export.
//!
//! The model checker composes four optimizations (parallel BFS, symmetry
//! quotient, POR sleep sets, hash-consed stores) and without telemetry is a
//! black box while it runs. This module is the std-only observability layer
//! threaded through `explore_core` (and the valency / non-blocking passes):
//!
//! * a [`Recorder`] handle of relaxed atomic counters and opt-in phase
//!   timers, shared by reference between the merge thread and the level
//!   workers;
//! * an [`ExploreMetrics`] snapshot attached to every explored graph —
//!   per-phase wall time, generated/deduped/pruned counters, per-level
//!   frontier sizes and the truncation cause, with
//!   [`to_json`](ExploreMetrics::to_json) for machine consumers;
//! * a progress **heartbeat**: an optional callback (or the `MC_PROGRESS`
//!   env default, printing to stderr) fired every N expansions so long
//!   runs are not silent, carrying recent-rate and ETA estimates;
//! * a `MC_TRACE=<path>` JSONL span log, one record per BFS level;
//! * a `MC_STATUS_FILE=<path>` live status snapshot: one JSON object,
//!   atomically rewritten (write-temp-then-rename) on every heartbeat, so
//!   external pollers can watch a multi-hour run without its stderr;
//! * a `MC_RUN_LOG=<path>` **run ledger**: one [`RunRecord`] JSONL line
//!   appended at the end of every exploration — spec hash, options, env,
//!   git revision, wall times, outcome and the full metrics snapshot.
//!
//! # Zero-cost-when-off
//!
//! Telemetry must never change the explored graph, and the uninstrumented
//! path must stay as fast as before it existed. Two mechanisms:
//!
//! * **Counters are always on** but are single relaxed atomic adds on
//!   values the explorer computes anyway — the same instructions run
//!   whether anyone reads them or not, so "on" and "off" runs execute
//!   identical exploration logic and build node-for-node identical graphs.
//! * **Timers are opt-in**: every `time_*` method returns `None` (no
//!   `Instant::now()` call, no syscall) unless timing was requested via
//!   [`Recorder::with_timing`] or the `MC_PROGRESS`/`MC_TRACE` env vars.
//!
//! The recorder has no methods that *return* state to the explorer, so by
//! construction it cannot branch exploration decisions.

use std::collections::HashSet;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime};

use crate::json::json_escape;

/// Unified truthiness test for diagnostic environment variables
/// (`MC_PROGRESS`, `MC_TRACE` presence checks, `INTERNER_STATS`,
/// `BENCH_SMOKE`): set, non-empty, and not `"0"`.
pub fn env_flag(name: &str) -> bool {
    std::env::var_os(name).is_some_and(|v| !v.is_empty() && v != "0")
}

/// Default heartbeat interval (expansions between progress reports) when
/// `MC_PROGRESS` is set without a numeric interval.
pub const DEFAULT_PROGRESS_EVERY: u64 = 100_000;

/// Emits `message` to stderr the first time `key` is seen in this process
/// and suppresses every later call with the same key. All one-shot
/// diagnostics (truncation hints, the `MC_STORE=disk` suggestion, sink
/// open failures) route through here so "at most once per process" is one
/// mechanism, not N scattered `Once` statics. Returns whether the message
/// was actually emitted — callers never branch on it, but tests assert the
/// at-most-once contract without capturing stderr.
pub fn warn_once(key: &str, message: &str) -> bool {
    static SEEN: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    let seen = SEEN.get_or_init(|| Mutex::new(HashSet::new()));
    let fresh = seen.lock().expect("warn_once lock").insert(key.to_string());
    if fresh {
        eprintln!("{message}");
    }
    fresh
}

/// Milliseconds since the Unix epoch (0 if the system clock is before
/// it). Wall-clock stamps for the run ledger and status file; exploration
/// logic itself only ever uses monotonic [`Instant`]s.
pub fn unix_time_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The working tree's short git revision, resolved once per process (the
/// first ledger append pays the subprocess; everything after reads the
/// cache). `"unknown"` outside a git checkout or without a `git` binary.
pub fn git_revision() -> &'static str {
    static REV: OnceLock<String> = OnceLock::new();
    REV.get_or_init(|| {
        std::process::Command::new("git")
            .args(["rev-parse", "--short=12", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    })
}

/// Snapshot of every `MC_*` environment variable currently set, as one
/// JSON object with sorted keys. Captured into each [`RunRecord`] so a
/// ledger line is interpretable without knowing what the shell looked
/// like: `MC_SHARDS`, `MC_STORE`, `MC_STORE_BUDGET` and friends all shape
/// the run but live outside [`ExploreMetrics`].
pub fn mc_env_json() -> String {
    let mut vars: Vec<(String, String)> = std::env::vars()
        .filter(|(k, _)| k.starts_with("MC_"))
        .collect();
    vars.sort();
    let members: Vec<String> = vars
        .iter()
        .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", members.join(", "))
}

/// One durable record of a finished exploration — the unit of the
/// `MC_RUN_LOG` ledger ([`Recorder::append_run_record`] writes one JSONL
/// line per run). The explorer builds it *after* the graph is complete,
/// so ledger-enabled and ledger-free runs explore identical graphs; the
/// spec hash is the cache key the ROADMAP's checking-as-a-service queue
/// will dedup verdict requests on.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Canonical content fingerprint of the explored system
    /// ([`SystemSpec::spec_fingerprint`](crate::SystemSpec::spec_fingerprint)).
    pub spec_hash: u64,
    /// Wall-clock start of the exploration, Unix milliseconds (passed in
    /// by the caller — the recorder only knows monotonic time).
    pub started_unix_ms: u64,
    /// Wall-clock end of the exploration, Unix milliseconds.
    pub ended_unix_ms: u64,
    /// Short git revision of the binary's working tree ([`git_revision`]).
    pub git_revision: String,
    /// The effective `ExploreOptions` as one JSON object (env-resolved
    /// shards/store/budget included), pre-rendered by the caller.
    pub options_json: String,
    /// What the run produced, as one JSON object: graph facts
    /// (`{"kind": "graph", ...}`) or a streaming verdict
    /// (`{"kind": "verdict", ...}`).
    pub outcome_json: String,
    /// The complete [`ExploreMetrics::to_json`] payload (phases, levels,
    /// shards, store, truncation).
    pub metrics_json: String,
}

impl RunRecord {
    /// The record as one JSON object (one ledger line, no trailing
    /// newline). The spec hash is a fixed-width hex *string*: JSON numbers
    /// are f64 and would corrupt 64-bit fingerprints.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"spec_hash\": \"{:016x}\", \"started_unix_ms\": {}, \
             \"ended_unix_ms\": {}, \"git_revision\": \"{}\", \
             \"env\": {}, \"options\": {}, \"outcome\": {}, \"metrics\": {}}}",
            self.spec_hash,
            self.started_unix_ms,
            self.ended_unix_ms,
            json_escape(&self.git_revision),
            mc_env_json(),
            self.options_json,
            self.outcome_json,
            self.metrics_json
        )
    }
}

/// Phase slots of the [`Recorder`]'s timer array. Kept private: the public
/// view is the named fields of [`ExploreMetrics`].
const SLOT_EXPAND: usize = 0;
const SLOT_CANON: usize = 1;
const SLOT_POR: usize = 2;
const SLOT_WORKER_DEDUP: usize = 3;
const SLOT_MERGE_INSERT: usize = 4;
const SLOT_MERGE_BLOCK: usize = 5;
const SLOT_FREEZE: usize = 6;
const SLOT_REVERSE_CSR: usize = 7;
const NSLOTS: usize = 8;

/// Why an exploration stopped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TruncationCause {
    /// The reachable graph was exhausted: every analysis is total.
    #[default]
    Complete,
    /// The exploration hit `max_configs` and dropped successors: every
    /// analysis on the graph is partial.
    MaxConfigs {
        /// The bound that was hit.
        cap: usize,
    },
    /// The in-memory store's resident estimate exceeded
    /// `store_budget_bytes` and the exploration stopped adding nodes.
    /// `MC_STORE=disk` lifts this bound by spilling cold state instead.
    MemoryBudget {
        /// The configured budget, in bytes.
        budget: usize,
    },
}

impl TruncationCause {
    /// `true` unless the exploration completed.
    pub fn is_truncated(&self) -> bool {
        !matches!(self, TruncationCause::Complete)
    }
}

/// Disk-store telemetry of one exploration (`None` in [`ExploreMetrics`]
/// unless the run used `MC_STORE=disk` /
/// `ExploreOptions::store_budget_bytes` with the disk backend). Counters
/// are always on; the `*_ns` fields follow the recorder's timing flag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreMetrics {
    /// Bytes written to spill files (rows, arena segments, index buckets).
    pub spilled_bytes: u64,
    /// Cold reads back into the hot tier (row faults + segment restores).
    pub reload_count: u64,
    /// Row/segment accesses served from the hot tier.
    pub hot_hits: u64,
    /// Row/segment accesses that had to fault from disk.
    pub hot_misses: u64,
    /// Wall time writing spill files (timed runs only).
    pub spill_write_ns: u64,
    /// Wall time reading spill files back (timed runs only).
    pub spill_read_ns: u64,
}

impl StoreMetrics {
    /// Fraction of cold-capable accesses served without touching disk
    /// (1.0 when nothing was ever faulted).
    pub fn hot_hit_rate(&self) -> f64 {
        let total = self.hot_hits + self.hot_misses;
        if total == 0 {
            1.0
        } else {
            self.hot_hits as f64 / total as f64
        }
    }

    /// The spill stats as one flat JSON object (the `spill` field of the
    /// e9 disk rows).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"spilled_bytes\": {}, \"reload_count\": {}, \"hot_hits\": {}, \
             \"hot_misses\": {}, \"hot_hit_rate\": {:.4}, \
             \"spill_write_ns\": {}, \"spill_read_ns\": {}}}",
            self.spilled_bytes,
            self.reload_count,
            self.hot_hits,
            self.hot_misses,
            self.hot_hit_rate(),
            self.spill_write_ns,
            self.spill_read_ns
        )
    }
}

/// Per-BFS-level frontier metrics, one record per level (also the schema of
/// the `MC_TRACE` JSONL lines).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelMetrics {
    /// BFS depth of this level (0 = the root's expansion).
    pub level: u32,
    /// Work items expanded at this level (first visits plus POR wake-ups
    /// and proviso escalations).
    pub items: usize,
    /// Nodes first discovered by this level's merge.
    pub new_nodes: usize,
    /// Total nodes in the store after this level.
    pub nodes_total: usize,
    /// Total edges recorded after this level.
    pub edges_total: usize,
    /// Wall time of the level (expansion + merge), in nanoseconds.
    pub elapsed_ns: u64,
}

impl LevelMetrics {
    /// The level record as one flat JSON object (the `MC_TRACE` line
    /// schema and the members of [`ExploreMetrics::to_json`]'s `levels`).
    pub fn to_json(self) -> String {
        format!(
            "{{\"level\": {}, \"items\": {}, \"new_nodes\": {}, \"nodes\": {}, \
             \"edges\": {}, \"elapsed_ns\": {}}}",
            self.level,
            self.items,
            self.new_nodes,
            self.nodes_total,
            self.edges_total,
            self.elapsed_ns
        )
    }
}

/// One progress-heartbeat report (see [`Recorder::with_progress`]).
#[derive(Clone, Copy, Debug)]
pub struct ProgressReport {
    /// Current BFS depth.
    pub level: u32,
    /// Distinct configurations discovered so far.
    pub explored: usize,
    /// Work items queued for the next level.
    pub frontier: usize,
    /// Successor configurations generated so far (pre-dedup).
    pub generated: u64,
    /// Generated successors that deduplicated onto known nodes.
    pub dedup_hits: u64,
    /// Node expansions performed so far.
    pub expansions: u64,
    /// Wall time since the exploration started.
    pub elapsed: Duration,
    /// Discovery throughput: `explored / elapsed`.
    pub configs_per_sec: f64,
    /// Discovery throughput over the most recent heartbeat interval
    /// (falls back to the overall rate on the first beat). More honest
    /// than the lifetime average once the frontier shape changes.
    pub recent_configs_per_sec: f64,
    /// Configurations left under the `max_configs` bound.
    pub bound_remaining: usize,
    /// Heuristic estimate of the configurations still undiscovered, from
    /// the frontier's growth ratio between heartbeats: a frontier decaying
    /// by factor `r < 1` per beat extrapolates geometrically to
    /// `frontier * r / (1 - r)` more discoveries, capped at
    /// [`bound_remaining`](Self::bound_remaining). `None` while the
    /// frontier is still growing (no convergent estimate).
    pub est_remaining: Option<u64>,
    /// Heuristic seconds to completion: the remaining estimate (or, for a
    /// still-growing frontier, the distance to the `max_configs` bound —
    /// then an upper bound on the run) over the recent rate. `None` when
    /// the rate is unknown (first beat at zero elapsed time).
    pub eta_secs: Option<f64>,
    /// Bytes spilled to disk so far (0 unless the run uses the disk store).
    pub spilled_bytes: u64,
}

impl fmt::Display for ProgressReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "level {}: {} explored, {} frontier, {} generated ({} dedup), \
             {:.0} configs/sec, bound remaining {}",
            self.level,
            self.explored,
            self.frontier,
            self.generated,
            self.dedup_hits,
            self.configs_per_sec,
            self.bound_remaining
        )?;
        if self.recent_configs_per_sec > 0.0
            && (self.recent_configs_per_sec - self.configs_per_sec).abs() >= 0.5
        {
            write!(f, " ({:.0}/sec recent)", self.recent_configs_per_sec)?;
        }
        if let Some(eta) = self.eta_secs {
            match self.est_remaining {
                Some(rem) => write!(f, ", ~{rem} configs / ~{eta:.0}s left")?,
                None => write!(f, ", ≤{eta:.0}s to bound")?,
            }
        }
        if self.spilled_bytes > 0 {
            write!(f, ", {} B spilled", self.spilled_bytes)?;
        }
        Ok(())
    }
}

/// Per-shard telemetry of one sharded exploration: phase wall times of the
/// shard's own expand/merge work plus its share of the partitioned graph
/// and cross-shard traffic. Collected into
/// [`ExploreMetrics::shards`]; empty for unsharded runs.
///
/// The `*_ns` fields are per-shard wall times. The *aggregate*
/// [`ExploreMetrics`] phase fields absorb the **maximum** over shards per
/// phase (the parallel critical path), so the headline `dedup_ns +
/// merge_ns` share honestly reflects what sharding removes from the
/// critical path even on machines where the shards run sequentially.
#[derive(Clone, Debug, Default)]
pub struct ShardMetrics {
    /// Shard index (`0..shards`).
    pub shard: usize,
    /// Wall time stepping successors of this shard's frontier items.
    pub expand_ns: u64,
    /// Wall time canonicalizing this shard's successors.
    pub canonicalize_ns: u64,
    /// Wall time on POR footprints / ample sets / sleep filters.
    pub por_ns: u64,
    /// Wall time fingerprinting + deduplicating (worker lookups plus this
    /// shard's merge-side intern/find-or-insert).
    pub dedup_ns: u64,
    /// Wall time in this shard's merge outside of insertion.
    pub merge_ns: u64,
    /// Nodes owned by this shard in the final graph.
    pub nodes: usize,
    /// Edges recorded by this shard (edges live with the *source* node).
    pub edges: usize,
    /// Successors this shard generated that were owned by another shard.
    pub sent: u64,
    /// Successors merged by this shard that another shard generated.
    pub received: u64,
    /// Largest cross-shard inbox (queue depth) this shard ever drained in
    /// one level — the high-water mark of routed traffic aimed at it.
    pub max_outbox: usize,
    /// Bounded-queue flushes this shard's workers performed into other
    /// shards' sinks (each flush moves at most one chunk, so per-worker
    /// staging memory stays bounded no matter how hot a shard runs).
    pub outbox_flushes: u64,
}

impl ShardMetrics {
    /// The shard breakdown as one flat JSON object (the members of
    /// [`ExploreMetrics::to_json`]'s `shards` array).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"shard\": {}, \"expand_ns\": {}, \"canonicalize_ns\": {}, \
             \"por_ns\": {}, \"dedup_ns\": {}, \"merge_ns\": {}, \
             \"nodes\": {}, \"edges\": {}, \"sent\": {}, \"received\": {}, \
             \"max_outbox\": {}, \"outbox_flushes\": {}}}",
            self.shard,
            self.expand_ns,
            self.canonicalize_ns,
            self.por_ns,
            self.dedup_ns,
            self.merge_ns,
            self.nodes,
            self.edges,
            self.sent,
            self.received,
            self.max_outbox,
            self.outbox_flushes
        )
    }
}

/// The metrics snapshot attached to every explored
/// [`StateGraph`](../subconsensus_modelcheck/struct.StateGraph.html).
///
/// Counter fields are always populated; the `*_ns` phase times are zero
/// unless the exploration ran with timing on (`timed`) — via
/// [`ExploreOptions::metrics`](../subconsensus_modelcheck/struct.ExploreOptions.html),
/// an explicit instrumented [`Recorder`], or the `MC_PROGRESS`/`MC_TRACE`
/// env vars.
#[derive(Clone, Debug, Default)]
pub struct ExploreMetrics {
    /// Wall time stepping successors (worker side).
    pub expand_ns: u64,
    /// Wall time canonicalizing successors under symmetry.
    pub canonicalize_ns: u64,
    /// Wall time computing footprints, ample sets and sleep filters.
    pub por_ns: u64,
    /// Wall time fingerprinting and deduplicating (worker lookups plus
    /// merge-side intern/find-or-insert).
    pub dedup_ns: u64,
    /// Wall time in the sequential merge outside of insertion (edge
    /// bookkeeping, revisits, proviso escalation).
    pub merge_ns: u64,
    /// Wall time freezing the edge buffer into CSR form.
    pub freeze_ns: u64,
    /// Wall time building the reverse CSR (valency / non-blocking passes;
    /// zero unless one ran with this graph's recorder).
    pub reverse_csr_ns: u64,
    /// Times the CSR freeze ran. Distinguishes "skipped under a verdict
    /// goal" (0 calls) from "ran but too fast to time" (calls > 0, 0 ns)
    /// on small fixtures. Counted only when the timers are on.
    pub freeze_calls: u64,
    /// Times the reverse-CSR build ran (same skipped-vs-fast distinction
    /// as [`freeze_calls`](Self::freeze_calls)).
    pub reverse_csr_calls: u64,
    /// Wall time of the whole exploration.
    pub total_ns: u64,
    /// Whether phase timers were on (`false` ⇒ every `*_ns` field above,
    /// `total_ns` included, is 0).
    pub timed: bool,
    /// Distinct configurations in the final graph.
    pub configs: usize,
    /// Edges in the final graph.
    pub edges: usize,
    /// Successor configurations generated (pre-dedup).
    pub generated: u64,
    /// Generated successors deduplicated onto already-known nodes.
    pub dedup_hits: u64,
    /// Generated successors inserted as new nodes.
    pub added: u64,
    /// Generated successors dropped at the `max_configs` bound.
    pub capped: u64,
    /// Successors whose canonicalization applied a nontrivial pid
    /// permutation (symmetry-quotient hits).
    pub symmetry_hits: u64,
    /// Ample-set candidates suppressed by sleep sets (POR edge pruning).
    pub sleep_pruned: u64,
    /// Node expansions (work items) performed.
    pub expansions: u64,
    /// One record per BFS level.
    pub levels: Vec<LevelMetrics>,
    /// Per-shard breakdowns of a sharded exploration (empty when the run
    /// used one shard). Kept out of [`phases_json`](Self::phases_json) —
    /// that object stays flat for the bench guard's line-oriented diffing.
    pub shards: Vec<ShardMetrics>,
    /// Peak resident-byte estimate of the exploration: the high-water mark
    /// of the store's per-level estimate (rows + arenas + fingerprint
    /// index), floored at the frozen graph's footprint.
    pub peak_bytes: usize,
    /// Disk-store spill telemetry (`None` for in-memory runs).
    pub store: Option<StoreMetrics>,
    /// Why the exploration stopped.
    pub truncation: TruncationCause,
}

impl ExploreMetrics {
    /// Sum of the per-phase times (excluding `total_ns`).
    pub fn phase_sum(&self) -> u64 {
        self.expand_ns
            + self.canonicalize_ns
            + self.por_ns
            + self.dedup_ns
            + self.merge_ns
            + self.freeze_ns
            + self.reverse_csr_ns
    }

    /// Wall time not attributed to any phase (scheduling, level
    /// bookkeeping, thread spawn); `total_ns - phase_sum()`, saturating.
    pub fn other_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.phase_sum())
    }

    /// The phase breakdown alone as one JSON object (the `phases` field of
    /// the e9 bench rows). Components plus `other_ns` sum to `total_ns`.
    pub fn phases_json(&self) -> String {
        format!(
            "{{\"expand_ns\": {}, \"canonicalize_ns\": {}, \"por_ns\": {}, \
             \"dedup_ns\": {}, \"merge_ns\": {}, \"freeze_ns\": {}, \
             \"freeze_calls\": {}, \"reverse_csr_ns\": {}, \
             \"reverse_csr_calls\": {}, \"other_ns\": {}, \"total_ns\": {}}}",
            self.expand_ns,
            self.canonicalize_ns,
            self.por_ns,
            self.dedup_ns,
            self.merge_ns,
            self.freeze_ns,
            self.freeze_calls,
            self.reverse_csr_ns,
            self.reverse_csr_calls,
            self.other_ns(),
            self.total_ns
        )
    }

    /// The whole snapshot as one JSON object (no external deps — hand
    /// formatted like the bench writer).
    pub fn to_json(&self) -> String {
        let truncation = match self.truncation {
            TruncationCause::Complete => "null".to_string(),
            TruncationCause::MaxConfigs { cap } => {
                format!("{{\"cause\": \"max_configs\", \"cap\": {cap}}}")
            }
            TruncationCause::MemoryBudget { budget } => {
                format!("{{\"cause\": \"memory_budget\", \"budget\": {budget}}}")
            }
        };
        let store = match &self.store {
            None => "null".to_string(),
            Some(s) => s.to_json(),
        };
        let levels: Vec<String> = self.levels.iter().map(|l| l.to_json()).collect();
        let shards: Vec<String> = self.shards.iter().map(|s| s.to_json()).collect();
        format!(
            "{{\"configs\": {}, \"edges\": {}, \"generated\": {}, \
             \"dedup_hits\": {}, \"added\": {}, \"capped\": {}, \
             \"symmetry_hits\": {}, \"sleep_pruned\": {}, \"expansions\": {}, \
             \"peak_bytes\": {}, \"truncation\": {truncation}, \
             \"store\": {store}, \
             \"timed\": {}, \"phases\": {}, \"shards\": [{}], \"levels\": [{}]}}",
            self.configs,
            self.edges,
            self.generated,
            self.dedup_hits,
            self.added,
            self.capped,
            self.symmetry_hits,
            self.sleep_pruned,
            self.expansions,
            self.peak_bytes,
            self.timed,
            self.phases_json(),
            shards.join(", "),
            levels.join(", ")
        )
    }
}

impl fmt::Display for ExploreMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} configs, {} edges in {} levels ({} expansions){}",
            self.configs,
            self.edges,
            self.levels.len(),
            self.expansions,
            match self.truncation {
                TruncationCause::Complete => String::new(),
                TruncationCause::MaxConfigs { cap } => format!(" [TRUNCATED at {cap}]"),
                TruncationCause::MemoryBudget { budget } => {
                    format!(" [TRUNCATED by {budget} B memory budget]")
                }
            }
        )?;
        writeln!(
            f,
            "generated {} ({} dedup hits, {} added, {} capped); \
             {} symmetry hits, {} sleep-pruned",
            self.generated,
            self.dedup_hits,
            self.added,
            self.capped,
            self.symmetry_hits,
            self.sleep_pruned
        )?;
        if self.timed {
            let ms = |ns: u64| ns as f64 / 1e6;
            writeln!(
                f,
                "phases: expand {:.2}ms, canonicalize {:.2}ms, por {:.2}ms, \
                 dedup {:.2}ms, merge {:.2}ms, freeze {:.2}ms, reverse-csr {:.2}ms, \
                 other {:.2}ms (total {:.2}ms)",
                ms(self.expand_ns),
                ms(self.canonicalize_ns),
                ms(self.por_ns),
                ms(self.dedup_ns),
                ms(self.merge_ns),
                ms(self.freeze_ns),
                ms(self.reverse_csr_ns),
                ms(self.other_ns()),
                ms(self.total_ns)
            )?;
        } else {
            writeln!(
                f,
                "phases: untimed (enable ExploreOptions::metrics or MC_PROGRESS)"
            )?;
        }
        write!(f, "peak memory ≈ {} bytes", self.peak_bytes)?;
        if let Some(s) = &self.store {
            write!(
                f,
                "\nspill: {} B out, {} reloads, hot hit rate {:.2}",
                s.spilled_bytes,
                s.reload_count,
                s.hot_hit_rate()
            )?;
        }
        Ok(())
    }
}

/// A running phase timer: accumulates its elapsed nanoseconds into the
/// recorder's slot on drop. Obtained from the `Recorder::time_*` methods
/// (`None` when timing is off — no clock is read).
#[must_use]
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    slot: &'a AtomicU64,
    t0: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        self.slot
            .fetch_add(self.t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// The heartbeat callback type (see [`Recorder::with_progress`]).
type ProgressCallback = Box<dyn Fn(&ProgressReport) + Send + Sync>;

/// The shared heartbeat machinery: one expansion-count gate drives every
/// per-interval consumer (the progress callback and the status file), so
/// they observe the same [`ProgressReport`]s and the same rate state.
struct Heartbeat {
    every: u64,
    /// Expansion count at the last fired heartbeat.
    last: AtomicU64,
    /// Explored count at the last heartbeat (recent-rate numerator).
    last_explored: AtomicU64,
    /// Frontier size at the last heartbeat (growth-ratio estimate).
    last_frontier: AtomicU64,
    /// Elapsed nanos at the last heartbeat (recent-rate denominator).
    last_elapsed_ns: AtomicU64,
    callback: Option<ProgressCallback>,
    status: Option<StatusSink>,
}

impl Heartbeat {
    fn new() -> Self {
        Heartbeat {
            every: DEFAULT_PROGRESS_EVERY,
            last: AtomicU64::new(0),
            last_explored: AtomicU64::new(0),
            last_frontier: AtomicU64::new(0),
            last_elapsed_ns: AtomicU64::new(0),
            callback: None,
            status: None,
        }
    }
}

/// The `MC_STATUS_FILE` sink: one JSON object, atomically rewritten per
/// heartbeat (write a sibling temp file, then rename over the target, so
/// a poller never reads a torn write).
struct StatusSink {
    path: PathBuf,
    started_unix_ms: u64,
}

impl StatusSink {
    fn write(&self, report: &ProgressReport, state: &str) {
        let json = status_json(report, state, self.started_unix_ms);
        let mut tmp = self.path.clone().into_os_string();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        let res = std::fs::write(&tmp, json).and_then(|()| std::fs::rename(&tmp, &self.path));
        if let Err(e) = res {
            warn_once(
                "status_file",
                &format!(
                    "modelcheck: WARNING: MC_STATUS_FILE: cannot write {}: {e} \
                     (status updates disabled messages suppressed for this process)",
                    self.path.display()
                ),
            );
        }
    }
}

/// The status-file schema: the full [`ProgressReport`] plus run identity
/// (`state` is `"running"` per heartbeat, `"done"` once at the end).
fn status_json(r: &ProgressReport, state: &str, started_unix_ms: u64) -> String {
    let opt_u64 = |v: Option<u64>| v.map_or("null".to_string(), |n| n.to_string());
    let opt_f64 = |v: Option<f64>| v.map_or("null".to_string(), crate::json::json_f64);
    format!(
        "{{\"state\": \"{}\", \"pid\": {}, \"started_unix_ms\": {}, \
         \"updated_unix_ms\": {}, \"level\": {}, \"explored\": {}, \
         \"frontier\": {}, \"generated\": {}, \"dedup_hits\": {}, \
         \"expansions\": {}, \"elapsed_ns\": {}, \"configs_per_sec\": {}, \
         \"recent_configs_per_sec\": {}, \"bound_remaining\": {}, \
         \"est_remaining\": {}, \"eta_secs\": {}, \"spilled_bytes\": {}}}",
        json_escape(state),
        std::process::id(),
        started_unix_ms,
        unix_time_ms(),
        r.level,
        r.explored,
        r.frontier,
        r.generated,
        r.dedup_hits,
        r.expansions,
        r.elapsed.as_nanos() as u64,
        crate::json::json_f64(r.configs_per_sec),
        crate::json::json_f64(r.recent_configs_per_sec),
        r.bound_remaining,
        opt_u64(r.est_remaining),
        opt_f64(r.eta_secs),
        r.spilled_bytes
    )
}

/// Telemetry configuration resolved from the environment, once per process
/// (env vars are process-level configuration; per-explore toggling uses the
/// explicit [`Recorder`] builders instead).
struct EnvTelemetry {
    timing: bool,
    progress_every: Option<u64>,
    trace_path: Option<PathBuf>,
    status_path: Option<PathBuf>,
    run_log_path: Option<PathBuf>,
}

fn env_telemetry() -> &'static EnvTelemetry {
    static ENV: OnceLock<EnvTelemetry> = OnceLock::new();
    ENV.get_or_init(|| {
        let progress_every = if env_flag("MC_PROGRESS") {
            // A numeric value > 1 is the heartbeat interval; any other
            // truthy value means "on, default interval".
            let every = std::env::var("MC_PROGRESS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&n| n > 1)
                .unwrap_or(DEFAULT_PROGRESS_EVERY);
            Some(every)
        } else {
            None
        };
        let env_path = |name: &str| {
            std::env::var_os(name)
                .filter(|v| !v.is_empty() && v != "0")
                .map(PathBuf::from)
        };
        let trace_path = env_path("MC_TRACE");
        let status_path = env_path("MC_STATUS_FILE");
        // The ledger path: MC_RUN_LOG wins; with only MC_STORE_DIR set the
        // ledger lands next to the spill directories as `runs.jsonl`.
        let run_log_path = env_path("MC_RUN_LOG")
            .or_else(|| env_path("MC_STORE_DIR").map(|d| d.join("runs.jsonl")));
        EnvTelemetry {
            timing: progress_every.is_some()
                || trace_path.is_some()
                || status_path.is_some()
                || run_log_path.is_some(),
            progress_every,
            trace_path,
            status_path,
            run_log_path,
        }
    })
}

/// The telemetry sink one exploration writes into.
///
/// Counters are relaxed atomics and always recorded; phase timers only run
/// when constructed with timing on (otherwise `time_*` returns `None` and
/// no clock is read). The recorder exposes nothing the explorer reads back,
/// so instrumented and uninstrumented runs build identical graphs.
pub struct Recorder {
    timing: bool,
    slots: [AtomicU64; NSLOTS],
    /// Guard constructions per slot (how many times each phase *ran*),
    /// counted only while timing — the zero-overhead-when-off contract.
    slot_calls: [AtomicU64; NSLOTS],
    generated: AtomicU64,
    dedup_hits: AtomicU64,
    added: AtomicU64,
    capped: AtomicU64,
    symmetry_hits: AtomicU64,
    sleep_pruned: AtomicU64,
    expansions: AtomicU64,
    /// `u64::MAX` = complete; anything else is the `max_configs` cap hit.
    truncation_cap: AtomicU64,
    /// `u64::MAX` = no budget truncation; anything else is the byte budget
    /// whose estimate was exceeded (takes precedence over `truncation_cap`
    /// in the snapshot — the budget is what actually stopped growth).
    budget_limit: AtomicU64,
    /// High-water mark of the store's per-level resident estimate.
    peak_bytes: AtomicU64,
    /// Disk-store counters (surfaced in the snapshot only once
    /// [`mark_store_active`](Self::mark_store_active) ran).
    store_active: AtomicU64,
    spilled_bytes: AtomicU64,
    store_reloads: AtomicU64,
    store_hot_hits: AtomicU64,
    store_hot_misses: AtomicU64,
    spill_write_ns: AtomicU64,
    spill_read_ns: AtomicU64,
    levels: Mutex<Vec<LevelMetrics>>,
    shard_metrics: Mutex<Vec<ShardMetrics>>,
    heartbeat: Option<Heartbeat>,
    trace: Option<Mutex<BufWriter<File>>>,
    /// Ledger path: one [`RunRecord`] JSONL line appended per exploration
    /// (the explorer calls [`append_run_record`](Self::append_run_record)
    /// after the graph is built, never during it).
    run_log: Option<PathBuf>,
    start: Instant,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("timing", &self.timing)
            .field("progress", &self.heartbeat.as_ref().map(|p| p.every))
            .field(
                "status",
                &self.heartbeat.as_ref().is_some_and(|h| h.status.is_some()),
            )
            .field("trace", &self.trace.is_some())
            .field("run_log", &self.run_log)
            .finish_non_exhaustive()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A counters-only recorder: phase timers off, no heartbeat, no trace.
    /// This is the default sink of an un-instrumented exploration.
    pub fn new() -> Self {
        Recorder {
            timing: false,
            slots: Default::default(),
            slot_calls: Default::default(),
            generated: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            added: AtomicU64::new(0),
            capped: AtomicU64::new(0),
            symmetry_hits: AtomicU64::new(0),
            sleep_pruned: AtomicU64::new(0),
            expansions: AtomicU64::new(0),
            truncation_cap: AtomicU64::new(u64::MAX),
            budget_limit: AtomicU64::new(u64::MAX),
            peak_bytes: AtomicU64::new(0),
            store_active: AtomicU64::new(0),
            spilled_bytes: AtomicU64::new(0),
            store_reloads: AtomicU64::new(0),
            store_hot_hits: AtomicU64::new(0),
            store_hot_misses: AtomicU64::new(0),
            spill_write_ns: AtomicU64::new(0),
            spill_read_ns: AtomicU64::new(0),
            levels: Mutex::new(Vec::new()),
            shard_metrics: Mutex::new(Vec::new()),
            heartbeat: None,
            trace: None,
            run_log: None,
            start: Instant::now(),
        }
    }

    /// A recorder honoring the `MC_PROGRESS` / `MC_TRACE` /
    /// `MC_STATUS_FILE` / `MC_RUN_LOG` environment (read once per
    /// process): heartbeat to stderr, JSONL trace to the given path
    /// (truncated per exploration), atomically-rewritten status snapshot,
    /// and the run ledger (`MC_RUN_LOG`, or `runs.jsonl` under
    /// `MC_STORE_DIR` when only that is set). `timing` additionally forces
    /// the phase timers on (e.g. from
    /// [`ExploreOptions::metrics`](../subconsensus_modelcheck/struct.ExploreOptions.html)).
    pub fn from_env(timing: bool) -> Self {
        let env = env_telemetry();
        let mut rec = Recorder::new();
        rec.timing = timing || env.timing;
        if let Some(every) = env.progress_every {
            rec = rec.with_stderr_progress(every);
        }
        if let Some(path) = &env.trace_path {
            // A bad trace path degrades to a warning, not a failed explore.
            match File::create(path) {
                Ok(f) => rec.trace = Some(Mutex::new(BufWriter::new(f))),
                Err(e) => {
                    warn_once(
                        "trace_open",
                        &format!(
                            "modelcheck: WARNING: MC_TRACE: cannot open {}: {e} \
                             (trace disabled; further open failures suppressed \
                             for this process)",
                            path.display()
                        ),
                    );
                }
            }
        }
        if let Some(path) = &env.status_path {
            rec = rec.with_status_file(path);
        }
        if let Some(path) = &env.run_log_path {
            rec = rec.with_run_log(path);
        }
        rec
    }

    /// Turns the phase timers on.
    pub fn with_timing(mut self) -> Self {
        self.timing = true;
        self
    }

    /// Installs a heartbeat callback fired every `every` node expansions
    /// (checked at level boundaries and inside the merge loops, so even a
    /// single huge level reports every interval). Implies timing.
    pub fn with_progress<F>(mut self, every: u64, callback: F) -> Self
    where
        F: Fn(&ProgressReport) + Send + Sync + 'static,
    {
        self.timing = true;
        let hb = self.heartbeat.get_or_insert_with(Heartbeat::new);
        hb.every = every.max(1);
        hb.callback = Some(Box::new(callback));
        self
    }

    /// Installs the default stderr heartbeat (`MC_PROGRESS`'s sink).
    pub fn with_stderr_progress(self, every: u64) -> Self {
        self.with_progress(every, |r| eprintln!("modelcheck: {r}"))
    }

    /// Installs the `MC_STATUS_FILE` sink: on every heartbeat interval the
    /// full [`ProgressReport`] is rewritten to `path` as one JSON object,
    /// via a sibling temp file and an atomic rename (a poller never sees a
    /// torn write). Shares the interval gate with
    /// [`with_progress`](Self::with_progress) (default
    /// [`DEFAULT_PROGRESS_EVERY`] when no progress callback set one).
    /// Implies timing. Write failures degrade to a one-shot warning.
    pub fn with_status_file<P: AsRef<Path>>(mut self, path: P) -> Self {
        self.timing = true;
        let hb = self.heartbeat.get_or_insert_with(Heartbeat::new);
        hb.status = Some(StatusSink {
            path: path.as_ref().to_path_buf(),
            started_unix_ms: unix_time_ms(),
        });
        self
    }

    /// Installs the run-ledger path: the explorer appends one
    /// [`RunRecord`] JSONL line per finished exploration (see
    /// [`append_run_record`](Self::append_run_record)). Append-only and
    /// written only after the graph is complete, so the explored graph is
    /// identical with or without a ledger. Does not imply timing by
    /// itself ([`from_env`](Self::from_env) turns timing on for
    /// `MC_RUN_LOG` so ledger lines carry phase times).
    pub fn with_run_log<P: AsRef<Path>>(mut self, path: P) -> Self {
        self.run_log = Some(path.as_ref().to_path_buf());
        self
    }

    /// The installed run-ledger path, if any (the explorer checks this to
    /// skip building a [`RunRecord`] entirely on ledger-free runs).
    pub fn run_log(&self) -> Option<&Path> {
        self.run_log.as_deref()
    }

    /// Appends one ledger line to the run log (no-op without
    /// [`with_run_log`](Self::with_run_log)). The file is opened in
    /// append mode per record: concurrent processes interleave whole
    /// lines, never partial ones, for line-sized writes on POSIX
    /// filesystems. Failures degrade to a one-shot warning — a broken
    /// ledger never fails an exploration.
    pub fn append_run_record(&self, record: &RunRecord) {
        let Some(path) = &self.run_log else { return };
        let res = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| writeln!(f, "{}", record.to_json()));
        if let Err(e) = res {
            warn_once(
                "run_log",
                &format!(
                    "modelcheck: WARNING: MC_RUN_LOG: cannot append to {}: {e} \
                     (run ledger disabled; further append failures suppressed \
                     for this process)",
                    path.display()
                ),
            );
        }
    }

    /// Streams one JSONL record per BFS level to `path` (truncating any
    /// previous file). Implies timing.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created.
    pub fn with_trace<P: AsRef<Path>>(mut self, path: P) -> std::io::Result<Self> {
        self.timing = true;
        self.trace = Some(Mutex::new(BufWriter::new(File::create(path)?)));
        Ok(self)
    }

    /// Whether the phase timers are on.
    pub fn is_timing(&self) -> bool {
        self.timing
    }

    fn guard(&self, slot: usize) -> Option<PhaseGuard<'_>> {
        if self.timing {
            self.slot_calls[slot].fetch_add(1, Ordering::Relaxed);
            Some(PhaseGuard {
                slot: &self.slots[slot],
                t0: Instant::now(),
            })
        } else {
            None
        }
    }

    /// Times successor stepping (worker side).
    pub fn time_expand(&self) -> Option<PhaseGuard<'_>> {
        self.guard(SLOT_EXPAND)
    }

    /// Times canonicalization under symmetry.
    pub fn time_canonicalize(&self) -> Option<PhaseGuard<'_>> {
        self.guard(SLOT_CANON)
    }

    /// Times POR footprint / ample-set / sleep-filter work.
    pub fn time_por(&self) -> Option<PhaseGuard<'_>> {
        self.guard(SLOT_POR)
    }

    /// Times fingerprinting and worker-side dedup lookups.
    pub fn time_dedup(&self) -> Option<PhaseGuard<'_>> {
        self.guard(SLOT_WORKER_DEDUP)
    }

    /// Times merge-side intern + find-or-insert.
    pub fn time_intern(&self) -> Option<PhaseGuard<'_>> {
        self.guard(SLOT_MERGE_INSERT)
    }

    /// Times the whole sequential merge block (insertion time is measured
    /// separately by [`time_intern`](Self::time_intern) and subtracted in
    /// the snapshot).
    pub fn time_merge(&self) -> Option<PhaseGuard<'_>> {
        self.guard(SLOT_MERGE_BLOCK)
    }

    /// Times the CSR freeze.
    pub fn time_freeze(&self) -> Option<PhaseGuard<'_>> {
        self.guard(SLOT_FREEZE)
    }

    /// Times the reverse-CSR build (valency / non-blocking passes).
    pub fn time_reverse_csr(&self) -> Option<PhaseGuard<'_>> {
        self.guard(SLOT_REVERSE_CSR)
    }

    /// Counts successor configurations generated (pre-dedup).
    pub fn count_generated(&self, n: u64) {
        self.generated.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts successors that deduplicated onto known nodes.
    pub fn count_dedup_hits(&self, n: u64) {
        self.dedup_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts successors inserted as new nodes.
    pub fn count_added(&self, n: u64) {
        self.added.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts successors dropped at the configuration bound.
    pub fn count_capped(&self, n: u64) {
        self.capped.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts successors whose canonicalization applied a nontrivial pid
    /// permutation.
    pub fn count_symmetry_hits(&self, n: u64) {
        self.symmetry_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts ample candidates suppressed by sleep sets.
    pub fn count_sleep_pruned(&self, n: u64) {
        self.sleep_pruned.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts node expansions (work items).
    pub fn count_expansions(&self, n: u64) {
        self.expansions.fetch_add(n, Ordering::Relaxed);
    }

    /// Records that the exploration hit the `cap` configuration bound.
    pub fn set_truncated(&self, cap: usize) {
        self.truncation_cap.store(cap as u64, Ordering::Relaxed);
    }

    /// Records that the exploration stopped because the in-memory store's
    /// resident estimate exceeded `budget` bytes. Wins over
    /// [`set_truncated`](Self::set_truncated) in the snapshot.
    pub fn set_budget_truncated(&self, budget: usize) {
        self.budget_limit.store(budget as u64, Ordering::Relaxed);
    }

    /// Raises the resident-byte high-water mark (stores report their
    /// per-level estimate here; the explorer floors the final value at the
    /// frozen graph's footprint).
    pub fn record_peak_bytes(&self, bytes: usize) {
        self.peak_bytes.fetch_max(bytes as u64, Ordering::Relaxed);
    }

    /// Marks this run as disk-store backed so the snapshot carries a
    /// [`StoreMetrics`] object (even if nothing spilled under the budget).
    pub fn mark_store_active(&self) {
        self.store_active.store(1, Ordering::Relaxed);
    }

    /// Counts bytes written to spill files.
    pub fn count_spilled_bytes(&self, n: u64) {
        self.spilled_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts cold reads back into the hot tier (row faults + segment
    /// restores).
    pub fn count_store_reloads(&self, n: u64) {
        self.store_reloads.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts cold-capable accesses served from the hot tier.
    pub fn count_store_hot_hits(&self, n: u64) {
        self.store_hot_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts cold-capable accesses that had to fault from disk.
    pub fn count_store_hot_misses(&self, n: u64) {
        self.store_hot_misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Accumulates spill-write wall time (callers only measure while
    /// [`is_timing`](Self::is_timing), keeping the off path clock-free).
    pub fn add_spill_write_ns(&self, ns: u64) {
        self.spill_write_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Accumulates spill-read wall time (same timing contract as
    /// [`add_spill_write_ns`](Self::add_spill_write_ns)).
    pub fn add_spill_read_ns(&self, ns: u64) {
        self.spill_read_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one finished BFS level (always on — once per level) and
    /// streams its trace record if a trace sink is installed.
    pub fn record_level(
        &self,
        items: usize,
        new_nodes: usize,
        nodes_total: usize,
        edges_total: usize,
        elapsed: Duration,
    ) {
        let mut levels = self.levels.lock().expect("levels lock");
        let rec = LevelMetrics {
            level: levels.len() as u32,
            items,
            new_nodes,
            nodes_total,
            edges_total,
            elapsed_ns: elapsed.as_nanos() as u64,
        };
        levels.push(rec);
        drop(levels);
        if let Some(trace) = &self.trace {
            let mut w = trace.lock().expect("trace lock");
            // Flush per line so a killed run still leaves parseable spans.
            let _ = writeln!(w, "{}", rec.to_json());
            let _ = w.flush();
        }
    }

    /// Fires the heartbeat if at least `every` expansions have elapsed
    /// since the last one. Called at level boundaries *and* from inside the
    /// per-item merge loops, so a single long level still reports every
    /// interval; mid-level calls pass the current level's size as
    /// `frontier`. The claim on `last` is a compare-exchange: concurrent
    /// ticks from parallel shards race to one winner per interval instead
    /// of multiplying reports.
    pub fn heartbeat(&self, level: u32, explored: usize, frontier: usize, bound_remaining: usize) {
        let Some(hb) = &self.heartbeat else { return };
        let expansions = self.expansions.load(Ordering::Relaxed);
        let last = hb.last.load(Ordering::Relaxed);
        if expansions < last.saturating_add(hb.every) {
            return;
        }
        if hb
            .last
            .compare_exchange(last, expansions, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return; // another shard claimed this interval
        }
        let report = self.build_report(hb, level, explored, frontier, bound_remaining, expansions);
        if let Some(callback) = &hb.callback {
            callback(&report);
        }
        if let Some(status) = &hb.status {
            status.write(&report, "running");
        }
    }

    /// Assembles one [`ProgressReport`], advancing the heartbeat's rate
    /// state (previous explored / frontier / elapsed) in the process. The
    /// recent rate and the geometric frontier-decay estimate are
    /// *heuristics* for human pacing — nothing in the explorer reads them
    /// back.
    fn build_report(
        &self,
        hb: &Heartbeat,
        level: u32,
        explored: usize,
        frontier: usize,
        bound_remaining: usize,
        expansions: u64,
    ) -> ProgressReport {
        let elapsed = self.start.elapsed();
        let secs = elapsed.as_secs_f64();
        let now_ns = elapsed.as_nanos() as u64;
        let prev_explored = hb.last_explored.swap(explored as u64, Ordering::Relaxed);
        let prev_frontier = hb.last_frontier.swap(frontier as u64, Ordering::Relaxed);
        let prev_ns = hb.last_elapsed_ns.swap(now_ns, Ordering::Relaxed);
        let overall = if secs > 0.0 {
            explored as f64 / secs
        } else {
            0.0
        };
        let recent = if now_ns > prev_ns && explored as u64 > prev_explored {
            (explored as u64 - prev_explored) as f64 / ((now_ns - prev_ns) as f64 / 1e9)
        } else {
            overall
        };
        // A frontier decaying by ratio r per beat extrapolates to
        // frontier * (r + r² + …) = frontier * r / (1 - r) further
        // discoveries; a growing frontier has no convergent estimate and
        // the max_configs bound is the only cap.
        let est_remaining = if frontier > 0 && (frontier as u64) < prev_frontier {
            let r = frontier as f64 / prev_frontier as f64;
            let geo = frontier as f64 * r / (1.0 - r);
            Some(geo.min(bound_remaining as f64).round() as u64)
        } else {
            None
        };
        let eta_secs = if recent > 0.0 {
            Some(est_remaining.map_or(bound_remaining as f64, |r| r as f64) / recent)
        } else {
            None
        };
        ProgressReport {
            level,
            explored,
            frontier,
            generated: self.generated.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            expansions,
            elapsed,
            configs_per_sec: overall,
            recent_configs_per_sec: recent,
            bound_remaining,
            est_remaining,
            eta_secs,
            spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
        }
    }

    /// Writes the terminal `"done"` snapshot to the status file (no-op
    /// without a [`with_status_file`](Self::with_status_file) sink). The
    /// explorer calls this once per exploration after the graph is
    /// complete, so a poller always observes a final state even when the
    /// run ended between heartbeat intervals.
    pub fn finalize_status(&self, explored: usize) {
        let Some(hb) = &self.heartbeat else { return };
        let Some(status) = &hb.status else { return };
        let elapsed = self.start.elapsed();
        let secs = elapsed.as_secs_f64();
        let report = ProgressReport {
            level: self.levels.lock().expect("levels lock").len() as u32,
            explored,
            frontier: 0,
            generated: self.generated.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            expansions: self.expansions.load(Ordering::Relaxed),
            elapsed,
            configs_per_sec: if secs > 0.0 {
                explored as f64 / secs
            } else {
                0.0
            },
            recent_configs_per_sec: 0.0,
            bound_remaining: 0,
            est_remaining: Some(0),
            eta_secs: Some(0.0),
            spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
        };
        status.write(&report, "done");
    }

    /// A timers-only child recorder for one shard of a sharded
    /// exploration: same timing flag as `self`, no heartbeat or trace sink
    /// (those stay on the parent, which all counters also go to — shards
    /// only accumulate their own phase times, later folded back in via
    /// [`absorb_parallel`](Self::absorb_parallel)).
    pub fn shard_child(&self) -> Recorder {
        let mut child = Recorder::new();
        child.timing = self.timing;
        child
    }

    /// Folds per-shard phase timers into this recorder as the parallel
    /// critical path: for each phase slot, adds the **maximum** over
    /// `children`. Shards run concurrently (or are the units that *would*
    /// run concurrently on multicore hardware), so the slowest shard per
    /// phase is what wall time cannot go below — summing would misreport
    /// the aggregate as if the shards ran back-to-back.
    pub fn absorb_parallel(&self, children: &[Recorder]) {
        for i in 0..NSLOTS {
            let max = children
                .iter()
                .map(|c| c.slots[i].load(Ordering::Relaxed))
                .max()
                .unwrap_or(0);
            self.slots[i].fetch_add(max, Ordering::Relaxed);
            // Same critical-path view for the invocation counts: the busiest
            // shard's call count, not the fleet-wide sum.
            let max_calls = children
                .iter()
                .map(|c| c.slot_calls[i].load(Ordering::Relaxed))
                .max()
                .unwrap_or(0);
            self.slot_calls[i].fetch_add(max_calls, Ordering::Relaxed);
        }
        // Spill *counters* are conserved quantities (bytes written, faults
        // taken) so they sum; the spill I/O times follow the critical-path
        // rule like the phase slots.
        let sum = |f: fn(&Recorder) -> &AtomicU64| {
            children
                .iter()
                .map(|c| f(c).load(Ordering::Relaxed))
                .sum::<u64>()
        };
        let max = |f: fn(&Recorder) -> &AtomicU64| {
            children
                .iter()
                .map(|c| f(c).load(Ordering::Relaxed))
                .max()
                .unwrap_or(0)
        };
        self.spilled_bytes
            .fetch_add(sum(|c| &c.spilled_bytes), Ordering::Relaxed);
        self.store_reloads
            .fetch_add(sum(|c| &c.store_reloads), Ordering::Relaxed);
        self.store_hot_hits
            .fetch_add(sum(|c| &c.store_hot_hits), Ordering::Relaxed);
        self.store_hot_misses
            .fetch_add(sum(|c| &c.store_hot_misses), Ordering::Relaxed);
        self.spill_write_ns
            .fetch_add(max(|c| &c.spill_write_ns), Ordering::Relaxed);
        self.spill_read_ns
            .fetch_add(max(|c| &c.spill_read_ns), Ordering::Relaxed);
    }

    /// This recorder's phase times viewed as one shard's [`ShardMetrics`]
    /// (the graph-shape and traffic fields are zero; the sharded explorer
    /// fills them). Uses the same slot combination as
    /// [`snapshot`](Self::snapshot): dedup = worker lookups + merge
    /// inserts, merge = merge block minus inserts.
    pub fn shard_phases(&self, shard: usize) -> ShardMetrics {
        let slot = |i: usize| self.slots[i].load(Ordering::Relaxed);
        let merge_insert = slot(SLOT_MERGE_INSERT);
        ShardMetrics {
            shard,
            expand_ns: slot(SLOT_EXPAND),
            canonicalize_ns: slot(SLOT_CANON),
            por_ns: slot(SLOT_POR),
            dedup_ns: slot(SLOT_WORKER_DEDUP) + merge_insert,
            merge_ns: slot(SLOT_MERGE_BLOCK).saturating_sub(merge_insert),
            ..ShardMetrics::default()
        }
    }

    /// Records the per-shard breakdowns onto the final snapshot (the
    /// recorder itself is counters + timers only, so the sharded explorer
    /// hands the collected [`ShardMetrics`] to the snapshot directly).
    pub fn set_shards(&self, shards: Vec<ShardMetrics>) {
        *self.shard_metrics.lock().expect("shard metrics lock") = shards;
    }

    /// Snapshots the recorder into an [`ExploreMetrics`]. The graph-shape
    /// fields (`configs`, `edges`, `peak_bytes`) are zero here; the
    /// explorer overwrites them from the frozen graph.
    pub fn snapshot(&self) -> ExploreMetrics {
        let slot = |i: usize| self.slots[i].load(Ordering::Relaxed);
        let worker_dedup = slot(SLOT_WORKER_DEDUP);
        let merge_insert = slot(SLOT_MERGE_INSERT);
        let cap = self.truncation_cap.load(Ordering::Relaxed);
        let budget = self.budget_limit.load(Ordering::Relaxed);
        let store = if self.store_active.load(Ordering::Relaxed) != 0 {
            Some(StoreMetrics {
                spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
                reload_count: self.store_reloads.load(Ordering::Relaxed),
                hot_hits: self.store_hot_hits.load(Ordering::Relaxed),
                hot_misses: self.store_hot_misses.load(Ordering::Relaxed),
                spill_write_ns: self.spill_write_ns.load(Ordering::Relaxed),
                spill_read_ns: self.spill_read_ns.load(Ordering::Relaxed),
            })
        } else {
            None
        };
        ExploreMetrics {
            expand_ns: slot(SLOT_EXPAND),
            canonicalize_ns: slot(SLOT_CANON),
            por_ns: slot(SLOT_POR),
            dedup_ns: worker_dedup + merge_insert,
            merge_ns: slot(SLOT_MERGE_BLOCK).saturating_sub(merge_insert),
            freeze_ns: slot(SLOT_FREEZE),
            reverse_csr_ns: slot(SLOT_REVERSE_CSR),
            freeze_calls: self.slot_calls[SLOT_FREEZE].load(Ordering::Relaxed),
            reverse_csr_calls: self.slot_calls[SLOT_REVERSE_CSR].load(Ordering::Relaxed),
            total_ns: if self.timing {
                self.start.elapsed().as_nanos() as u64
            } else {
                0
            },
            timed: self.timing,
            configs: 0,
            edges: 0,
            generated: self.generated.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            added: self.added.load(Ordering::Relaxed),
            capped: self.capped.load(Ordering::Relaxed),
            symmetry_hits: self.symmetry_hits.load(Ordering::Relaxed),
            sleep_pruned: self.sleep_pruned.load(Ordering::Relaxed),
            expansions: self.expansions.load(Ordering::Relaxed),
            levels: self.levels.lock().expect("levels lock").clone(),
            shards: self
                .shard_metrics
                .lock()
                .expect("shard metrics lock")
                .clone(),
            peak_bytes: self.peak_bytes.load(Ordering::Relaxed) as usize,
            store,
            truncation: if budget != u64::MAX {
                TruncationCause::MemoryBudget {
                    budget: budget as usize,
                }
            } else if cap == u64::MAX {
                TruncationCause::Complete
            } else {
                TruncationCause::MaxConfigs { cap: cap as usize }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_flag_semantics() {
        // Unique var names: tests in one binary share the process env.
        std::env::remove_var("SUBC_METRICS_T0");
        assert!(!env_flag("SUBC_METRICS_T0"));
        std::env::set_var("SUBC_METRICS_T1", "");
        assert!(!env_flag("SUBC_METRICS_T1"));
        std::env::set_var("SUBC_METRICS_T2", "0");
        assert!(!env_flag("SUBC_METRICS_T2"));
        std::env::set_var("SUBC_METRICS_T3", "1");
        assert!(env_flag("SUBC_METRICS_T3"));
        std::env::set_var("SUBC_METRICS_T4", "yes");
        assert!(env_flag("SUBC_METRICS_T4"));
    }

    #[test]
    fn untimed_recorder_reads_no_clock_slots() {
        let rec = Recorder::new();
        assert!(rec.time_expand().is_none());
        assert!(rec.time_merge().is_none());
        rec.count_generated(3);
        rec.count_dedup_hits(1);
        rec.count_added(2);
        let m = rec.snapshot();
        assert!(!m.timed);
        assert_eq!(m.generated, 3);
        assert_eq!(m.dedup_hits + m.added, 3);
        assert_eq!(m.phase_sum(), 0);
        assert_eq!(m.total_ns, 0);
    }

    #[test]
    fn timed_guard_accumulates() {
        let rec = Recorder::new().with_timing();
        {
            let _t = rec.time_expand();
            std::hint::black_box(0u64);
        }
        let m = rec.snapshot();
        assert!(m.timed);
        // The guard measured *something* (possibly sub-microsecond, but the
        // drop always adds the elapsed nanos — zero only if the clock did
        // not tick at all, which `>=` tolerates).
        assert!(m.expand_ns <= m.phase_sum());
        assert!(m.total_ns >= m.expand_ns);
    }

    #[test]
    fn merge_insert_subtracted_not_double_counted() {
        let rec = Recorder::new().with_timing();
        {
            let _outer = rec.time_merge();
            let _inner = rec.time_intern();
            std::thread::sleep(Duration::from_millis(2));
        }
        let m = rec.snapshot();
        // dedup picks up the insert time; merge keeps only the remainder.
        assert!(
            m.dedup_ns >= 1_000_000,
            "insert time recorded: {}",
            m.dedup_ns
        );
        assert!(
            m.merge_ns < m.dedup_ns,
            "insert not double-counted (merge {} vs dedup {})",
            m.merge_ns,
            m.dedup_ns
        );
    }

    #[test]
    fn truncation_cause_roundtrip() {
        let rec = Recorder::new();
        assert_eq!(rec.snapshot().truncation, TruncationCause::Complete);
        assert!(!rec.snapshot().truncation.is_truncated());
        rec.set_truncated(500);
        let t = rec.snapshot().truncation;
        assert_eq!(t, TruncationCause::MaxConfigs { cap: 500 });
        assert!(t.is_truncated());
    }

    #[test]
    fn progress_fires_on_interval() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = hits.clone();
        let rec = Recorder::new().with_progress(2, move |r| {
            assert!(r.expansions >= 2);
            hits2.fetch_add(1, Ordering::SeqCst);
        });
        rec.heartbeat(0, 1, 1, 100); // 0 expansions: below interval
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        rec.count_expansions(2);
        rec.heartbeat(1, 3, 2, 97);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        rec.heartbeat(1, 3, 2, 97); // no new expansions: suppressed
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn level_records_and_json() {
        let rec = Recorder::new();
        rec.record_level(1, 2, 3, 4, Duration::from_nanos(5));
        rec.record_level(2, 0, 3, 6, Duration::from_nanos(7));
        let m = rec.snapshot();
        assert_eq!(m.levels.len(), 2);
        assert_eq!(m.levels[0].level, 0);
        assert_eq!(m.levels[1].level, 1);
        assert_eq!(
            m.levels[0].to_json(),
            "{\"level\": 0, \"items\": 1, \"new_nodes\": 2, \"nodes\": 3, \
             \"edges\": 4, \"elapsed_ns\": 5}"
        );
        let json = m.to_json();
        assert!(json.contains("\"levels\": [{"));
        assert!(json.contains("\"truncation\": null"));
        // Balanced braces: a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON: {json}"
        );
    }

    #[test]
    fn absorb_parallel_takes_max_per_slot() {
        let main = Recorder::new().with_timing();
        let a = main.shard_child();
        let b = main.shard_child();
        assert!(a.is_timing() && b.is_timing());
        {
            let _t = a.time_dedup();
            std::thread::sleep(Duration::from_millis(3));
        }
        {
            let _t = b.time_dedup();
            std::thread::sleep(Duration::from_millis(1));
        }
        main.absorb_parallel(&[a, b]);
        let m = main.snapshot();
        // Critical path = the slower shard, not the sum of both.
        let slower = 3_000_000;
        let sum = 4_000_000;
        assert!(m.dedup_ns >= slower / 2, "dedup absorbed: {}", m.dedup_ns);
        assert!(
            m.dedup_ns < sum + slower,
            "dedup must be a max, not a sum: {}",
            m.dedup_ns
        );
    }

    #[test]
    fn shard_metrics_surface_in_snapshot_json() {
        let rec = Recorder::new();
        let child = rec.shard_child();
        let mut sm = child.shard_phases(1);
        sm.nodes = 7;
        sm.sent = 3;
        rec.set_shards(vec![sm]);
        let m = rec.snapshot();
        assert_eq!(m.shards.len(), 1);
        assert_eq!(m.shards[0].shard, 1);
        assert_eq!(m.shards[0].nodes, 7);
        let json = m.to_json();
        assert!(json.contains("\"shards\": [{\"shard\": 1,"), "{json}");
        // The flat phases object must not gain nested shard data: the bench
        // guard strips `"phases": {...}` with a brace-free regex.
        let phases = m.phases_json();
        assert!(!phases.contains("shard"), "{phases}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON: {json}"
        );
    }

    #[test]
    fn concurrent_heartbeat_claims_once_per_interval() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = hits.clone();
        let rec = Recorder::new().with_progress(2, move |_| {
            hits2.fetch_add(1, Ordering::SeqCst);
        });
        rec.count_expansions(2);
        // Two "shards" observe the same interval; only one may fire.
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| rec.heartbeat(0, 1, 1, 10));
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn phase_calls_distinguish_skipped_from_fast() {
        // Timed but never invoked: 0 calls, 0 ns — a genuinely skipped phase.
        let rec = Recorder::new().with_timing();
        let m = rec.snapshot();
        assert_eq!(m.freeze_calls, 0);
        assert_eq!(m.reverse_csr_calls, 0);
        // Invoked but (possibly) too fast to time: calls > 0 regardless.
        {
            let _t = rec.time_freeze();
        }
        {
            let _t = rec.time_reverse_csr();
        }
        let m = rec.snapshot();
        assert_eq!(m.freeze_calls, 1);
        assert_eq!(m.reverse_csr_calls, 1);
        let json = m.phases_json();
        assert!(json.contains("\"freeze_calls\": 1"), "{json}");
        assert!(json.contains("\"reverse_csr_calls\": 1"), "{json}");
        // Untimed recorders keep the zero-overhead contract: no counts.
        let off = Recorder::new();
        {
            let _t = off.time_freeze();
        }
        assert_eq!(off.snapshot().freeze_calls, 0);
    }

    #[test]
    fn phases_json_components_sum_to_total() {
        let m = ExploreMetrics {
            expand_ns: 10,
            canonicalize_ns: 20,
            por_ns: 5,
            dedup_ns: 15,
            merge_ns: 25,
            freeze_ns: 5,
            reverse_csr_ns: 0,
            total_ns: 100,
            timed: true,
            ..Default::default()
        };
        assert_eq!(m.phase_sum(), 80);
        assert_eq!(m.other_ns(), 20);
        let json = m.phases_json();
        assert!(json.contains("\"other_ns\": 20"));
        assert!(json.contains("\"total_ns\": 100"));
    }
}
