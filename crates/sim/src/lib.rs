//! Discrete asynchronous shared-memory simulator.
//!
//! This crate is the substrate of the `subconsensus` workspace — an
//! executable form of the standard asynchronous shared-memory model with
//! *oblivious* objects used by *Deterministic Objects: Life Beyond Consensus*
//! (Afek, Ellen, Gafni — PODC 2016):
//!
//! * processes communicate only by applying atomic operations (**steps**) to
//!   shared objects;
//! * each object is a sequential specification ([`ObjectSpec`]) mapping a
//!   (state, operation) pair to one outcome (deterministic objects) or
//!   several (nondeterministic ones); outcomes may **hang** the caller
//!   undetectably;
//! * per-process algorithms are pure state machines ([`Protocol`] for
//!   one-shot tasks, [`Implementation`] for long-lived objects);
//! * a **configuration** ([`Config`]) is the state of every process and
//!   object; taking a step is a pure function from configurations to
//!   successor configurations, so executions can be replayed, randomized and
//!   exhaustively model-checked;
//! * the **adversary** is a [`Scheduler`]; fail-stop crashes are schedulers
//!   that stop scheduling a process;
//! * implemented objects are validated with a linearizability checker
//!   ([`check_linearizable`]).
//!
//! # Quick example
//!
//! Two processes race to write a register; the decided values are whatever
//! each process read afterwards:
//!
//! ```
//! use std::sync::Arc;
//! use subconsensus_sim::{
//!     run, Action, FirstOutcome, ObjId, ObjectError, ObjectSpec, Op, Outcome, ProcCtx,
//!     Protocol, ProtocolError, RoundRobin, RunOptions, SystemBuilder, Value,
//! };
//!
//! #[derive(Debug)]
//! struct Reg;
//! impl ObjectSpec for Reg {
//!     fn type_name(&self) -> &'static str { "reg" }
//!     fn initial_state(&self) -> Value { Value::Nil }
//!     fn apply(&self, s: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
//!         Ok(match op.name {
//!             "read" => vec![Outcome::ret(s.clone(), s.clone())],
//!             _ => vec![Outcome::ret(op.arg(0).cloned().unwrap(), Value::Nil)],
//!         })
//!     }
//! }
//!
//! #[derive(Debug)]
//! struct WriteThenRead { reg: ObjId }
//! impl Protocol for WriteThenRead {
//!     fn start(&self, _ctx: &ProcCtx) -> Value { Value::Int(0) }
//!     fn step(&self, ctx: &ProcCtx, local: &Value, resp: Option<&Value>)
//!         -> Result<Action, ProtocolError> {
//!         match local.as_int() {
//!             Some(0) => Ok(Action::invoke(Value::Int(1), self.reg,
//!                 Op::unary("write", ctx.input.clone()))),
//!             Some(1) => Ok(Action::invoke(Value::Int(2), self.reg, Op::new("read"))),
//!             _ => Ok(Action::Decide(resp.cloned().unwrap())),
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = SystemBuilder::new();
//! let reg = b.add_object(Reg);
//! b.add_processes(Arc::new(WriteThenRead { reg }), [Value::Int(1), Value::Int(2)]);
//! let spec = b.build();
//! let out = run(&spec, &mut RoundRobin::new(), &mut FirstOutcome, &RunOptions::default())?;
//! assert!(out.reached_final);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod concurrent;
mod error;
mod history;
mod ids;
mod implementation;
mod intern;
pub mod json;
mod linearize;
mod metrics;
mod object;
mod op;
mod protocol;
mod rng;
mod runner;
mod sched;
mod system;
mod trace;
mod value;

pub use concurrent::{run_concurrent, BaseObjects, ConcurrentOutcome};
pub use error::{ObjectError, ProtocolError, SimError};
pub use history::{History, HistoryError, HistoryEvent, OpId, OpRecord};
pub use ids::{ObjId, Pid};
pub use implementation::{ImplStep, Implementation};
pub use intern::{
    shard_of_fingerprint, CompactConfig, InternerStats, PendingConfig, StateInterner, WireConfig,
    ARENA_SEGMENT,
};
pub use linearize::{check_linearizable, is_linearizable, LinearizeError, MAX_OPS};
pub use metrics::{
    env_flag, git_revision, mc_env_json, unix_time_ms, warn_once, ExploreMetrics, LevelMetrics,
    PhaseGuard, ProgressReport, Recorder, RunRecord, ShardMetrics, StoreMetrics, TruncationCause,
    DEFAULT_PROGRESS_EVERY,
};
pub use object::{audit_determinism, DeterminismViolation, ObjectSpec, Outcome};
pub use op::Op;
pub use protocol::{Action, ProcCtx, Protocol};
pub use rng::SmallRng;
pub use runner::{run, run_from, RunOptions, RunOutcome};
pub use sched::{
    CrashScheduler, FirstOutcome, OutcomeChooser, PriorityScheduler, RandomScheduler,
    ReplayChooser, ReplayScheduler, RoundRobin, Scheduler,
};
pub use system::{
    Config, EnabledIter, EnabledSet, ProcState, ProcStatus, StepFootprint, StepInfo,
    SymmetryGroups, SystemBuilder, SystemSpec,
};
pub use trace::{Trace, TraceEvent};
pub use value::Value;
