//! The universal value domain shared by objects, operations and protocols.
//!
//! Everything that flows through the simulator — object states, operation
//! arguments, responses, and protocol-local state — is a [`Value`]. Using a
//! single hashable, totally ordered value domain is what makes whole system
//! configurations hashable, which in turn is what lets the model checker
//! deduplicate visited configurations.

use std::fmt;

/// A dynamically typed simulator value.
///
/// `Value` is deliberately small and Lisp-like: the distinguished bottom
/// element [`Value::Nil`] (written `⊥` in the paper), booleans, integers,
/// interned symbols, and tuples. Arrays of registers, snapshots, and protocol
/// program counters are all encoded as tuples.
///
/// # Examples
///
/// ```
/// use subconsensus_sim::Value;
///
/// let v = Value::tup([Value::Int(3), Value::Nil]);
/// assert_eq!(v.index(0).and_then(Value::as_int), Some(3));
/// assert!(v.index(1).is_some_and(Value::is_nil));
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The distinguished empty value, written `⊥` in the paper.
    #[default]
    Nil,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An interned symbolic constant (e.g. `"opened"`, `"closed"`).
    Sym(&'static str),
    /// A tuple of values; also used to encode arrays and records.
    Tup(Vec<Value>),
}

impl Value {
    /// Builds a tuple value from an iterator of elements.
    ///
    /// # Examples
    ///
    /// ```
    /// use subconsensus_sim::Value;
    /// assert_eq!(Value::tup([]), Value::Tup(vec![]));
    /// ```
    pub fn tup<I: IntoIterator<Item = Value>>(items: I) -> Self {
        Value::Tup(items.into_iter().collect())
    }

    /// Builds a tuple of `len` copies of [`Value::Nil`] — the initial state of
    /// most register arrays.
    pub fn nil_tup(len: usize) -> Self {
        Value::Tup(vec![Value::Nil; len])
    }

    /// Returns `true` if this value is [`Value::Nil`].
    pub fn is_nil(&self) -> bool {
        matches!(self, Value::Nil)
    }

    /// Returns the integer payload, if this value is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this value is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the symbol payload, if this value is a [`Value::Sym`].
    pub fn as_sym(&self) -> Option<&'static str> {
        match self {
            Value::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the tuple elements, if this value is a [`Value::Tup`].
    pub fn as_tup(&self) -> Option<&[Value]> {
        match self {
            Value::Tup(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the integer payload as a `usize`, if this value is a
    /// non-negative [`Value::Int`].
    pub fn as_index(&self) -> Option<usize> {
        self.as_int().and_then(|i| usize::try_from(i).ok())
    }

    /// Returns element `i` of a tuple value, or `None` if this value is not a
    /// tuple or the index is out of bounds.
    pub fn index(&self, i: usize) -> Option<&Value> {
        self.as_tup().and_then(|items| items.get(i))
    }

    /// Returns the number of elements if this value is a tuple, else `None`.
    ///
    /// There is deliberately no `is_empty`: `None` (not a tuple) and
    /// `Some(true)` (empty tuple) would be too easy to conflate.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> Option<usize> {
        self.as_tup().map(<[Value]>::len)
    }

    /// Returns a copy of this tuple value with element `i` replaced by `v`.
    ///
    /// Returns `None` if this value is not a tuple or `i` is out of bounds.
    /// This is the workhorse of register-array updates.
    pub fn with_index(&self, i: usize, v: Value) -> Option<Value> {
        let items = self.as_tup()?;
        if i >= items.len() {
            return None;
        }
        let mut items = items.to_vec();
        items[i] = v;
        Some(Value::Tup(items))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&'static str> for Value {
    fn from(s: &'static str) -> Self {
        Value::Sym(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::Tup(items)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "⊥"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => write!(f, "{s}"),
            Value::Tup(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nil_is_default_and_bottom() {
        assert_eq!(Value::default(), Value::Nil);
        assert!(Value::Nil.is_nil());
        assert!(!Value::Int(0).is_nil());
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Sym("opened").as_sym(), Some("opened"));
        assert_eq!(Value::Nil.as_int(), None);
        assert_eq!(Value::Int(1).as_bool(), None);
    }

    #[test]
    fn as_index_rejects_negative() {
        assert_eq!(Value::Int(-1).as_index(), None);
        assert_eq!(Value::Int(3).as_index(), Some(3));
    }

    #[test]
    fn tuple_indexing() {
        let t = Value::tup([Value::Int(1), Value::Sym("x")]);
        assert_eq!(t.index(0), Some(&Value::Int(1)));
        assert_eq!(t.index(2), None);
        assert_eq!(t.len(), Some(2));
        assert_eq!(Value::Int(0).len(), None);
    }

    #[test]
    fn with_index_replaces_functionally() {
        let t = Value::nil_tup(3);
        let t2 = t.with_index(1, Value::Int(9)).unwrap();
        assert_eq!(t2.index(1), Some(&Value::Int(9)));
        // Original untouched.
        assert_eq!(t.index(1), Some(&Value::Nil));
        assert_eq!(t.with_index(3, Value::Nil), None);
        assert_eq!(Value::Int(0).with_index(0, Value::Nil), None);
    }

    #[test]
    fn display_is_compact() {
        let t = Value::tup([Value::Nil, Value::Int(2), Value::Sym("ok")]);
        assert_eq!(t.to_string(), "(⊥ 2 ok)");
        assert_eq!(format!("{t:?}"), "(⊥ 2 ok)");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3usize), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::Sym("s"));
        assert_eq!(Value::from(vec![Value::Nil]), Value::tup([Value::Nil]));
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = [Value::Int(2), Value::Nil, Value::Sym("a"), Value::Int(1)];
        vs.sort();
        assert_eq!(vs[0], Value::Nil);
    }
}
