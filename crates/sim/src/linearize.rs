//! Linearizability checking (Wing & Gong search with memoized pruning).
//!
//! Given a concurrent [`History`] over one implemented object and the
//! sequential [`ObjectSpec`] of that object, [`check_linearizable`] searches
//! for a linearization: a sequential ordering of all completed operations
//! (plus any subset of the pending ones) that respects real-time order and
//! the sequential specification.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use crate::error::ObjectError;
use crate::history::{History, OpId};
use crate::object::ObjectSpec;
use crate::value::Value;

/// The maximum number of operations per history the checker supports
/// (operation sets are tracked in a `u128` bitmask).
pub const MAX_OPS: usize = 128;

/// Error raised by the linearizability checker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinearizeError {
    /// The history has more than [`MAX_OPS`] operations.
    TooManyOps(usize),
    /// The sequential spec rejected an operation that appears in the history.
    Object(ObjectError),
}

impl fmt::Display for LinearizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinearizeError::TooManyOps(n) => {
                write!(
                    f,
                    "history has {n} operations, checker supports at most {MAX_OPS}"
                )
            }
            LinearizeError::Object(e) => write!(f, "sequential spec rejected an operation: {e}"),
        }
    }
}

impl Error for LinearizeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LinearizeError::Object(e) => Some(e),
            LinearizeError::TooManyOps(_) => None,
        }
    }
}

impl From<ObjectError> for LinearizeError {
    fn from(e: ObjectError) -> Self {
        LinearizeError::Object(e)
    }
}

/// Checks whether `history` is linearizable with respect to `spec`, starting
/// from the spec's initial state.
///
/// Returns a witness linearization (the order in which operations take
/// effect; pending operations that never took effect are omitted) or `None`
/// if the history is not linearizable.
///
/// Completed operations must take effect and return exactly their recorded
/// response. Pending operations may take effect with any legal outcome
/// (including a hanging one) or may be dropped entirely.
///
/// # Errors
///
/// Returns [`LinearizeError::TooManyOps`] for histories longer than
/// [`MAX_OPS`] operations, and propagates [`ObjectError`]s from the spec.
///
/// # Examples
///
/// ```
/// # use subconsensus_sim::{History, Op, Pid, Value};
/// # use subconsensus_sim::{check_linearizable, ObjectError, ObjectSpec, Outcome};
/// #[derive(Debug)]
/// struct Reg;
/// impl ObjectSpec for Reg {
///     fn type_name(&self) -> &'static str { "reg" }
///     fn initial_state(&self) -> Value { Value::Nil }
///     fn apply(&self, s: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
///         Ok(match op.name {
///             "read" => vec![Outcome::ret(s.clone(), s.clone())],
///             _ => vec![Outcome::ret(op.arg(0).cloned().unwrap(), Value::Nil)],
///         })
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut h = History::new();
/// let w = h.invoke(Pid::new(0), Op::unary("write", Value::Int(1)))?;
/// let r = h.invoke(Pid::new(1), Op::new("read"))?;
/// h.respond(r, Value::Int(1))?; // read overlaps the write and sees it: OK
/// h.respond(w, Value::Nil)?;
/// assert!(check_linearizable(&h, &Reg)?.is_some());
/// # Ok(())
/// # }
/// ```
pub fn check_linearizable(
    history: &History,
    spec: &dyn ObjectSpec,
) -> Result<Option<Vec<OpId>>, LinearizeError> {
    let records = history.records();
    let n = records.len();
    if n > MAX_OPS {
        return Err(LinearizeError::TooManyOps(n));
    }
    let complete_mask: u128 = records
        .iter()
        .filter(|r| r.is_complete())
        .fold(0u128, |m, r| m | (1u128 << r.id.0));

    // done-set bitmask + object state → already explored and failed.
    let mut failed: HashSet<(u128, Value)> = HashSet::new();
    let mut order: Vec<OpId> = Vec::new();

    fn search(
        history: &History,
        spec: &dyn ObjectSpec,
        complete_mask: u128,
        done: u128,
        state: &Value,
        failed: &mut HashSet<(u128, Value)>,
        order: &mut Vec<OpId>,
    ) -> Result<bool, LinearizeError> {
        if done & complete_mask == complete_mask {
            return Ok(true);
        }
        if failed.contains(&(done, state.clone())) {
            return Ok(false);
        }
        let records = history.records();
        // Candidate ops: not yet linearized and minimal in the real-time
        // order among remaining ops (no remaining op completed before their
        // invocation).
        'cand: for rec in records {
            let bit = 1u128 << rec.id.0;
            if done & bit != 0 {
                continue;
            }
            for other in records {
                let obit = 1u128 << other.id.0;
                if obit == bit || done & obit != 0 {
                    continue;
                }
                if history.precedes(other.id, rec.id) {
                    continue 'cand;
                }
            }
            let outcomes = spec.apply(state, &rec.op)?;
            for out in outcomes {
                let effect_ok = match (&rec.response, &out.response) {
                    // Completed op must reproduce its recorded response.
                    (Some(expected), Some(got)) => expected == got,
                    // Completed op cannot map to a hanging outcome.
                    (Some(_), None) => false,
                    // Pending op may take effect with any outcome.
                    (None, _) => true,
                };
                if !effect_ok {
                    continue;
                }
                order.push(rec.id);
                if search(
                    history,
                    spec,
                    complete_mask,
                    done | bit,
                    &out.state,
                    failed,
                    order,
                )? {
                    return Ok(true);
                }
                order.pop();
            }
        }
        failed.insert((done, state.clone()));
        Ok(false)
    }

    let init = spec.initial_state();
    if search(
        history,
        spec,
        complete_mask,
        0,
        &init,
        &mut failed,
        &mut order,
    )? {
        Ok(Some(order))
    } else {
        Ok(None)
    }
}

/// Convenience wrapper returning a plain boolean.
///
/// # Errors
///
/// Same as [`check_linearizable`].
pub fn is_linearizable(history: &History, spec: &dyn ObjectSpec) -> Result<bool, LinearizeError> {
    Ok(check_linearizable(history, spec)?.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Pid;
    use crate::object::Outcome;
    use crate::op::Op;

    /// Sequential read/write register spec.
    #[derive(Debug)]
    struct Reg;

    impl ObjectSpec for Reg {
        fn type_name(&self) -> &'static str {
            "reg"
        }

        fn initial_state(&self) -> Value {
            Value::Nil
        }

        fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            match op.name {
                "read" => Ok(vec![Outcome::ret(state.clone(), state.clone())]),
                "write" => Ok(vec![Outcome::ret(
                    op.arg(0).cloned().unwrap_or(Value::Nil),
                    Value::Nil,
                )]),
                _ => Err(ObjectError::UnknownOp {
                    object: "reg",
                    op: op.clone(),
                }),
            }
        }
    }

    /// FIFO queue spec: enq(v) / deq() -> v or ⊥.
    #[derive(Debug)]
    struct Queue;

    impl ObjectSpec for Queue {
        fn type_name(&self) -> &'static str {
            "queue"
        }

        fn initial_state(&self) -> Value {
            Value::tup([])
        }

        fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            let items = state.as_tup().unwrap_or(&[]).to_vec();
            match op.name {
                "enq" => {
                    let mut items = items;
                    items.push(op.arg(0).cloned().unwrap_or(Value::Nil));
                    Ok(vec![Outcome::ret(Value::Tup(items), Value::Nil)])
                }
                "deq" => {
                    if items.is_empty() {
                        Ok(vec![Outcome::ret(state.clone(), Value::Nil)])
                    } else {
                        let head = items[0].clone();
                        Ok(vec![Outcome::ret(Value::Tup(items[1..].to_vec()), head)])
                    }
                }
                _ => Err(ObjectError::UnknownOp {
                    object: "queue",
                    op: op.clone(),
                }),
            }
        }
    }

    fn seq_history(ops: &[(&'static str, Option<i64>, Value)]) -> History {
        // Sequential: each op completes before the next is invoked, all by P0.
        let mut h = History::new();
        for (name, arg, resp) in ops {
            let op = match arg {
                Some(a) => Op::unary(name, Value::Int(*a)),
                None => Op::new(name),
            };
            let id = h.invoke(Pid::new(0), op).unwrap();
            h.respond(id, resp.clone()).unwrap();
        }
        h
    }

    #[test]
    fn sequential_correct_history_is_linearizable() {
        let h = seq_history(&[
            ("write", Some(1), Value::Nil),
            ("read", None, Value::Int(1)),
        ]);
        let w = check_linearizable(&h, &Reg).unwrap().unwrap();
        assert_eq!(w, vec![OpId(0), OpId(1)]);
    }

    #[test]
    fn sequential_wrong_history_is_not_linearizable() {
        let h = seq_history(&[
            ("write", Some(1), Value::Nil),
            ("read", None, Value::Int(2)),
        ]);
        assert_eq!(check_linearizable(&h, &Reg).unwrap(), None);
    }

    #[test]
    fn overlapping_ops_may_reorder() {
        // P0: write(1) ... P1's read overlaps it and returns ⊥ (old value):
        // legal, the read linearizes before the write.
        let mut h = History::new();
        let w = h
            .invoke(Pid::new(0), Op::unary("write", Value::Int(1)))
            .unwrap();
        let r = h.invoke(Pid::new(1), Op::new("read")).unwrap();
        h.respond(r, Value::Nil).unwrap();
        h.respond(w, Value::Nil).unwrap();
        let order = check_linearizable(&h, &Reg).unwrap().unwrap();
        assert_eq!(order, vec![OpId(1), OpId(0)]);
    }

    #[test]
    fn real_time_order_is_respected() {
        // write(1) completes strictly before the read is invoked, so the
        // read must not return ⊥.
        let mut h = History::new();
        let w = h
            .invoke(Pid::new(0), Op::unary("write", Value::Int(1)))
            .unwrap();
        h.respond(w, Value::Nil).unwrap();
        let r = h.invoke(Pid::new(1), Op::new("read")).unwrap();
        h.respond(r, Value::Nil).unwrap();
        assert_eq!(check_linearizable(&h, &Reg).unwrap(), None);
    }

    #[test]
    fn pending_op_may_take_effect() {
        // P0's write never returns, but P1 reads 1: linearizable only if the
        // pending write is allowed to take effect.
        let mut h = History::new();
        let _w = h
            .invoke(Pid::new(0), Op::unary("write", Value::Int(1)))
            .unwrap();
        let r = h.invoke(Pid::new(1), Op::new("read")).unwrap();
        h.respond(r, Value::Int(1)).unwrap();
        let order = check_linearizable(&h, &Reg).unwrap().unwrap();
        assert_eq!(order, vec![OpId(0), OpId(1)]);
    }

    #[test]
    fn pending_op_may_be_dropped() {
        let mut h = History::new();
        let _w = h
            .invoke(Pid::new(0), Op::unary("write", Value::Int(1)))
            .unwrap();
        let r = h.invoke(Pid::new(1), Op::new("read")).unwrap();
        h.respond(r, Value::Nil).unwrap();
        let order = check_linearizable(&h, &Reg).unwrap().unwrap();
        assert_eq!(order, vec![OpId(1)], "the pending write is dropped");
    }

    #[test]
    fn queue_fifo_violation_detected() {
        // enq(1); enq(2) sequentially, then deq() -> 2 violates FIFO.
        let h = seq_history(&[
            ("enq", Some(1), Value::Nil),
            ("enq", Some(2), Value::Nil),
            ("deq", None, Value::Int(2)),
        ]);
        assert_eq!(check_linearizable(&h, &Queue).unwrap(), None);
        let ok = seq_history(&[
            ("enq", Some(1), Value::Nil),
            ("enq", Some(2), Value::Nil),
            ("deq", None, Value::Int(1)),
        ]);
        assert!(check_linearizable(&ok, &Queue).unwrap().is_some());
    }

    #[test]
    fn concurrent_enqueues_allow_either_order() {
        let mut h = History::new();
        let e1 = h
            .invoke(Pid::new(0), Op::unary("enq", Value::Int(1)))
            .unwrap();
        let e2 = h
            .invoke(Pid::new(1), Op::unary("enq", Value::Int(2)))
            .unwrap();
        h.respond(e1, Value::Nil).unwrap();
        h.respond(e2, Value::Nil).unwrap();
        let d = h.invoke(Pid::new(0), Op::new("deq")).unwrap();
        h.respond(d, Value::Int(2)).unwrap();
        assert!(check_linearizable(&h, &Queue).unwrap().is_some());
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h = History::new();
        assert_eq!(check_linearizable(&h, &Reg).unwrap(), Some(vec![]));
        assert!(is_linearizable(&h, &Reg).unwrap());
    }
}
