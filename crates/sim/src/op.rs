//! Operations applied to shared objects.

use std::fmt;

use crate::value::Value;

/// A single operation (invocation) on a shared object.
///
/// An operation is a symbolic name plus a vector of [`Value`] arguments. The
/// interpretation of the name and arguments is entirely up to the
/// [`ObjectSpec`](crate::ObjectSpec) of the target object.
///
/// `Op` is a passive, compound data structure, so its fields are public.
///
/// # Examples
///
/// ```
/// use subconsensus_sim::{Op, Value};
///
/// let w = Op::binary("write", Value::Int(0), Value::Int(42));
/// assert_eq!(w.name, "write");
/// assert_eq!(w.args.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Op {
    /// The operation name, interpreted by the target object's spec.
    pub name: &'static str,
    /// The operation arguments.
    pub args: Vec<Value>,
}

impl Op {
    /// Creates a nullary operation.
    pub fn new(name: &'static str) -> Self {
        Op {
            name,
            args: Vec::new(),
        }
    }

    /// Creates a unary operation.
    pub fn unary(name: &'static str, arg: Value) -> Self {
        Op {
            name,
            args: vec![arg],
        }
    }

    /// Creates a binary operation.
    pub fn binary(name: &'static str, a: Value, b: Value) -> Self {
        Op {
            name,
            args: vec![a, b],
        }
    }

    /// Creates an operation with an arbitrary argument list.
    pub fn with_args<I: IntoIterator<Item = Value>>(name: &'static str, args: I) -> Self {
        Op {
            name,
            args: args.into_iter().collect(),
        }
    }

    /// Returns argument `i`, if present.
    pub fn arg(&self, i: usize) -> Option<&Value> {
        self.args.get(i)
    }
}

impl fmt::Debug for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Op::new("scan").args.len(), 0);
        assert_eq!(Op::unary("read", Value::Int(1)).args, vec![Value::Int(1)]);
        let b = Op::binary("write", Value::Int(0), Value::Nil);
        assert_eq!(b.arg(1), Some(&Value::Nil));
        assert_eq!(b.arg(2), None);
        let w = Op::with_args("f", [Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(w.args.len(), 3);
    }

    #[test]
    fn display_shows_call_syntax() {
        let op = Op::binary("write", Value::Int(2), Value::Sym("x"));
        assert_eq!(op.to_string(), "write(2, x)");
        assert_eq!(Op::new("scan").to_string(), "scan()");
    }
}
