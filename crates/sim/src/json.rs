//! Minimal std-only JSON support for the telemetry artifacts.
//!
//! Every machine-readable artifact this workspace emits — `MC_TRACE`
//! level spans, `ExploreMetrics::to_json`, the `MC_RUN_LOG` ledger, the
//! `MC_STATUS_FILE` snapshot, `BENCH_modelcheck.json` — is hand-formatted
//! (the build is offline; no serde). This module is the matching *reader*:
//! a small recursive-descent parser used by the `mc-report` CLI and by the
//! round-trip tests that keep every hand-built emitter honest.
//!
//! The parser accepts standard JSON (RFC 8259): objects, arrays, strings
//! with escapes, numbers, booleans and `null`. Numbers are held as `f64`,
//! which is exact for every integer the emitters produce (counters fit in
//! 53 bits in practice); object keys keep their document order.

use std::fmt;

/// A parsed JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers included), held as `f64`.
    Number(f64),
    /// A string, with escapes resolved.
    String(String),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object as an ordered key/value list (document order preserved;
    /// lookups are linear, which is fine at telemetry sizes).
    Object(Vec<(String, JsonValue)>),
}

/// A parse failure: byte offset into the input plus a short message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Object member lookup (`None` for missing keys and non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Escapes `s` for embedding in a JSON string literal (quotes not
/// included). The hand-rolled emitters use this for any value that is not
/// a known-safe identifier.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` the way every emitter in this workspace does: four
/// decimal places, `null` for non-finite values (JSON has no NaN/Inf).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(members)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a following \uXXXX low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired UTF-16 surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code)
                        } else {
                            char::from_u32(hi)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid \\u escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(b) => {
                    // Re-decode multi-byte UTF-8 from the source slice.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let end = (start + width).min(self.bytes.len());
                        match std::str::from_utf8(&self.bytes[start..end]) {
                            Ok(s) => {
                                out.push_str(s);
                                self.pos = end;
                            }
                            Err(_) => return Err(self.err("invalid UTF-8 in string")),
                        }
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(JsonValue::parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(JsonValue::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(JsonValue::parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse("{\"a\": [1, 2, {\"b\": null}], \"c\": {\"d\": false}, \"e\": 3}")
            .unwrap();
        assert_eq!(v.get("e").and_then(JsonValue::as_u64), Some(3));
        let a = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert!(a[2].get("b").unwrap().is_null());
        assert_eq!(
            v.get("c")
                .and_then(|c| c.get("d"))
                .and_then(JsonValue::as_bool),
            Some(false)
        );
    }

    #[test]
    fn object_key_order_preserved() {
        let v = JsonValue::parse("{\"z\": 1, \"a\": 2}").unwrap();
        let members = v.as_object().unwrap();
        assert_eq!(members[0].0, "z");
        assert_eq!(members[1].0, "a");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\ path/ünïcode ☃";
        let doc = format!("\"{}\"", json_escape(original));
        assert_eq!(JsonValue::parse(&doc).unwrap().as_str(), Some(original));
        // Explicit \u escapes, including a surrogate pair.
        let v = JsonValue::parse("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "tru",
            "1 2",
            "\"open",
            "\"\\u12\"",
            "{1: 2}",
            "nan",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn rejects_unpaired_surrogates() {
        assert!(JsonValue::parse("\"\\ud800\"").is_err());
        assert!(JsonValue::parse("\"\\ud800\\u0041\"").is_err());
    }

    #[test]
    fn json_f64_formatting() {
        assert_eq!(json_f64(1.0), "1.0000");
        assert_eq!(json_f64(0.12345), "0.1235");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(JsonValue::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("-3").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("0").unwrap().as_u64(), Some(0));
    }
}
