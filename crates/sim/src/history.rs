//! Concurrent histories of an implemented object, for linearizability
//! checking.

use std::fmt;

use crate::ids::Pid;
use crate::op::Op;
use crate::value::Value;

/// Identifier of a high-level operation inside a [`History`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// One event of a concurrent history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HistoryEvent {
    /// A process invoked a high-level operation.
    Invoke {
        /// The operation identifier (unique within the history).
        id: OpId,
        /// The invoking process.
        pid: Pid,
        /// The invoked operation.
        op: Op,
    },
    /// A previously invoked operation returned.
    Respond {
        /// The operation identifier of the matching invocation.
        id: OpId,
        /// The responding process.
        pid: Pid,
        /// The response value.
        response: Value,
    },
}

/// A complete description of one high-level operation extracted from a
/// history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpRecord {
    /// The operation identifier.
    pub id: OpId,
    /// The invoking process.
    pub pid: Pid,
    /// The operation.
    pub op: Op,
    /// The response, or `None` if the operation is pending at the end of the
    /// history.
    pub response: Option<Value>,
    /// Index of the invocation event in the history.
    pub invoked_at: usize,
    /// Index of the response event, or `None` if pending.
    pub responded_at: Option<usize>,
}

impl OpRecord {
    /// Returns `true` if the operation completed within the history.
    pub fn is_complete(&self) -> bool {
        self.responded_at.is_some()
    }
}

/// A concurrent history: a well-formed sequence of invocation and response
/// events over one implemented object.
///
/// Well-formedness (each process has at most one operation in flight,
/// responses match prior invocations) is enforced at construction.
///
/// # Examples
///
/// ```
/// use subconsensus_sim::{History, Op, Pid, Value};
///
/// let mut h = History::new();
/// let a = h.invoke(Pid::new(0), Op::unary("write", Value::Int(1))).unwrap();
/// let b = h.invoke(Pid::new(1), Op::new("read")).unwrap();
/// h.respond(a, Value::Nil).unwrap();
/// h.respond(b, Value::Int(1)).unwrap();
/// assert_eq!(h.records().len(), 2);
/// assert!(h.is_complete());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct History {
    events: Vec<HistoryEvent>,
    // One record per OpId, kept in sync with `events`.
    records: Vec<OpRecord>,
    // In-flight operation of each pid, if any.
    inflight: std::collections::HashMap<Pid, OpId>,
}

/// Error raised when appending an ill-formed event to a [`History`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HistoryError {
    /// The process already has an operation in flight.
    AlreadyInflight(Pid),
    /// The response does not match an in-flight operation.
    NoMatchingInvoke(OpId),
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::AlreadyInflight(pid) => {
                write!(f, "{pid} already has an operation in flight")
            }
            HistoryError::NoMatchingInvoke(id) => {
                write!(
                    f,
                    "response for {id} does not match an in-flight invocation"
                )
            }
        }
    }
}

impl std::error::Error for HistoryError {}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an invocation by `pid` and returns its operation id.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::AlreadyInflight`] if `pid` has an incomplete
    /// operation.
    pub fn invoke(&mut self, pid: Pid, op: Op) -> Result<OpId, HistoryError> {
        if self.inflight.contains_key(&pid) {
            return Err(HistoryError::AlreadyInflight(pid));
        }
        let id = OpId(self.records.len());
        self.records.push(OpRecord {
            id,
            pid,
            op: op.clone(),
            response: None,
            invoked_at: self.events.len(),
            responded_at: None,
        });
        self.events.push(HistoryEvent::Invoke { id, pid, op });
        self.inflight.insert(pid, id);
        Ok(id)
    }

    /// Appends the response of operation `id`.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::NoMatchingInvoke`] if `id` is not in flight.
    pub fn respond(&mut self, id: OpId, response: Value) -> Result<(), HistoryError> {
        let rec = self
            .records
            .get(id.0)
            .filter(|r| r.responded_at.is_none())
            .ok_or(HistoryError::NoMatchingInvoke(id))?;
        let pid = rec.pid;
        if self.inflight.get(&pid) != Some(&id) {
            return Err(HistoryError::NoMatchingInvoke(id));
        }
        self.inflight.remove(&pid);
        let at = self.events.len();
        self.events.push(HistoryEvent::Respond {
            id,
            pid,
            response: response.clone(),
        });
        let rec = &mut self.records[id.0];
        rec.response = Some(response);
        rec.responded_at = Some(at);
        Ok(())
    }

    /// Returns the events in order.
    pub fn events(&self) -> &[HistoryEvent] {
        &self.events
    }

    /// Returns one record per operation, in invocation order.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// Returns the number of operations (complete + pending).
    pub fn num_ops(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if every invoked operation has responded.
    pub fn is_complete(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Returns `true` if operation `a` completed before operation `b` was
    /// invoked (the real-time order that linearizability must respect).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn precedes(&self, a: OpId, b: OpId) -> bool {
        match self.records[a.0].responded_at {
            Some(ra) => ra < self.records[b.0].invoked_at,
            None => false,
        }
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.events.iter().enumerate() {
            match e {
                HistoryEvent::Invoke { id, pid, op } => {
                    writeln!(f, "{i:>4}  {pid}  invoke {id}: {op}")?
                }
                HistoryEvent::Respond { id, pid, response } => {
                    writeln!(f, "{i:>4}  {pid}  respond {id} -> {response}")?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formedness_is_enforced() {
        let mut h = History::new();
        let a = h.invoke(Pid::new(0), Op::new("read")).unwrap();
        assert_eq!(
            h.invoke(Pid::new(0), Op::new("read")),
            Err(HistoryError::AlreadyInflight(Pid::new(0)))
        );
        h.respond(a, Value::Nil).unwrap();
        assert_eq!(
            h.respond(a, Value::Nil),
            Err(HistoryError::NoMatchingInvoke(a))
        );
        assert_eq!(
            h.respond(OpId(99), Value::Nil),
            Err(HistoryError::NoMatchingInvoke(OpId(99)))
        );
    }

    #[test]
    fn precedes_tracks_real_time_order() {
        let mut h = History::new();
        let a = h.invoke(Pid::new(0), Op::new("a")).unwrap();
        h.respond(a, Value::Nil).unwrap();
        let b = h.invoke(Pid::new(1), Op::new("b")).unwrap();
        assert!(h.precedes(a, b));
        assert!(!h.precedes(b, a));

        // Concurrent ops do not precede each other.
        let c = h.invoke(Pid::new(0), Op::new("c")).unwrap();
        h.respond(b, Value::Nil).unwrap();
        h.respond(c, Value::Nil).unwrap();
        assert!(!h.precedes(b, c));
        assert!(!h.precedes(c, b));
    }

    #[test]
    fn pending_ops_are_recorded() {
        let mut h = History::new();
        let a = h.invoke(Pid::new(0), Op::new("a")).unwrap();
        assert!(!h.is_complete());
        let rec = &h.records()[a.0];
        assert!(!rec.is_complete());
        assert_eq!(rec.response, None);
        assert_eq!(h.num_ops(), 1);
    }

    #[test]
    fn display_renders_events() {
        let mut h = History::new();
        let a = h
            .invoke(Pid::new(0), Op::unary("write", Value::Int(1)))
            .unwrap();
        h.respond(a, Value::Nil).unwrap();
        let s = h.to_string();
        assert!(s.contains("invoke op0"));
        assert!(s.contains("respond op0"));
    }
}
