//! Hash-consed configurations: interned state arenas and id-word configs.
//!
//! Exhaustive exploration stores millions of configurations whose individual
//! object and process states are drawn from a *small* set — a p8 run with
//! thousands of configs typically has a few hundred distinct [`ProcState`]s.
//! A [`StateInterner`] hash-conses those states into append-only arenas (one
//! for object [`Value`]s, one for [`ProcState`]s) and hands out dense `u32`
//! ids, so a whole configuration shrinks to a [`CompactConfig`]: one flat
//! array of id words (object ids first, then proc ids).
//!
//! The payoff is that every hot operation moves to id space:
//!
//! * **equality** is a word-for-word `u32` compare — no deep traversal, so
//!   the model checker's fingerprint-collision verification is a `memcmp`;
//! * **hashing** hashes the id slice;
//! * **stepping** copies the id array and replaces the one or two slots that
//!   changed, looking the new states up in the arena first ([`PendingConfig`]
//!   carries the (rare) genuinely fresh states to the single-threaded merge,
//!   which interns them — the arenas never need locks);
//! * **within-group canonicalization** permutes id words.
//!
//! Soundness of id equality rests on the interning invariant: the arena
//! never holds two equal states, so `id(a) == id(b) ⇔ a == b` for states,
//! and therefore word-wise id equality of two [`CompactConfig`]s over the
//! *same* interner is exactly deep [`Config`] equality.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::system::{Config, ProcState, ProcStatus};
use crate::value::Value;

/// The id word reserved for "not yet interned" slots of a [`PendingConfig`].
const PLACEHOLDER: u32 = u32::MAX;

fn hash_one<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// One hash-consing arena: equal values get equal ids, forever.
///
/// Lookups are readable under a shared reference (the parallel expansion
/// workers race only on the relaxed hit/miss counters); inserts require
/// `&mut` and happen on the merge thread only.
#[derive(Debug)]
struct Pool<T> {
    arena: Vec<Arc<T>>,
    /// `hashes[id]` is the content hash of `arena[id]` — the same value the
    /// state was interned under. Shard routing reads it so a slot's
    /// contribution to a configuration's *content* fingerprint never depends
    /// on which interner issued the id.
    hashes: Vec<u64>,
    /// Hash → candidate ids, verified by full equality (hash collisions are
    /// survivable, just slow).
    index: HashMap<u64, Vec<u32>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T> Default for Pool<T> {
    fn default() -> Self {
        Pool {
            arena: Vec::new(),
            hashes: Vec::new(),
            index: HashMap::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<T> Clone for Pool<T> {
    fn clone(&self) -> Self {
        Pool {
            arena: self.arena.clone(),
            hashes: self.hashes.clone(),
            index: self.index.clone(),
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)),
        }
    }
}

impl<T: Eq + Hash> Pool<T> {
    /// Finds the id of `value` if it is already interned.
    fn lookup_hashed(&self, hash: u64, value: &T) -> Option<u32> {
        let found = self.index.get(&hash).and_then(|ids| {
            ids.iter()
                .copied()
                .find(|&id| *self.arena[id as usize] == *value)
        });
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Interns `value` (supplied as a closure so callers holding an `Arc`
    /// can share it instead of re-allocating), returning its id.
    fn intern_hashed(&mut self, hash: u64, value: &T, make: impl FnOnce() -> Arc<T>) -> u32 {
        if let Some(id) = self.lookup_hashed(hash, value) {
            return id;
        }
        let id = u32::try_from(self.arena.len()).expect("interner arena exceeds u32 ids");
        self.arena.push(make());
        self.hashes.push(hash);
        self.index.entry(hash).or_default().push(id);
        id
    }

    fn stats(&self) -> (usize, u64, u64) {
        (
            self.arena.len(),
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Approximate heap footprint of the arena + hash index themselves
    /// (excluding the deep size of the stored states).
    fn table_bytes(&self) -> usize {
        self.arena.len() * std::mem::size_of::<Arc<T>>()
            + self.hashes.len() * std::mem::size_of::<u64>()
            + self.index.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<Vec<u32>>())
            + self.arena.len() * std::mem::size_of::<u32>()
    }
}

/// An exploration-scoped hash-consing arena for object and process states.
///
/// Build one per exploration (or per system), intern the initial
/// configuration with [`StateInterner::intern_config`], and step in id
/// space via
/// [`SystemSpec::compact_successors`](crate::SystemSpec::compact_successors).
/// Ids are only meaningful relative to the interner that issued them.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use subconsensus_sim::{
///     Action, ProcCtx, Protocol, ProtocolError, StateInterner, SystemBuilder, Value,
/// };
///
/// #[derive(Debug)]
/// struct DecideInput;
/// impl Protocol for DecideInput {
///     fn start(&self, _ctx: &ProcCtx) -> Value { Value::Nil }
///     fn step(&self, ctx: &ProcCtx, _l: &Value, _r: Option<&Value>)
///         -> Result<Action, ProtocolError> {
///         Ok(Action::Decide(ctx.input.clone()))
///     }
/// }
///
/// let mut b = SystemBuilder::new();
/// b.add_process(Arc::new(DecideInput), Value::Int(3));
/// let spec = b.build();
/// let mut interner = StateInterner::new();
/// let compact = interner.intern_config(&spec.initial_config());
/// assert_eq!(compact.materialize(&interner), spec.initial_config());
/// // Re-interning an equal configuration yields identical id words.
/// assert_eq!(interner.intern_config(&spec.initial_config()), compact);
/// ```
#[derive(Clone, Debug, Default)]
pub struct StateInterner {
    objs: Pool<Value>,
    procs: Pool<ProcState>,
    /// `proc_enabled[id]` caches `procs.arena[id].status.is_enabled()` so
    /// computing a configuration's enabled bitset never touches the states.
    proc_enabled: Vec<bool>,
}

impl StateInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the interned object state with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this interner.
    pub fn object(&self, id: u32) -> &Value {
        &self.objs.arena[id as usize]
    }

    /// Returns the interned process state with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this interner.
    pub fn proc(&self, id: u32) -> &ProcState {
        &self.procs.arena[id as usize]
    }

    pub(crate) fn object_arc(&self, id: u32) -> Arc<Value> {
        Arc::clone(&self.objs.arena[id as usize])
    }

    pub(crate) fn proc_arc(&self, id: u32) -> Arc<ProcState> {
        Arc::clone(&self.procs.arena[id as usize])
    }

    pub(crate) fn lookup_object_hashed(&self, hash: u64, state: &Value) -> Option<u32> {
        self.objs.lookup_hashed(hash, state)
    }

    pub(crate) fn lookup_proc_hashed(&self, hash: u64, state: &ProcState) -> Option<u32> {
        self.procs.lookup_hashed(hash, state)
    }

    fn intern_object_arc(&mut self, state: &Arc<Value>) -> u32 {
        self.objs
            .intern_hashed(hash_one(&**state), state, || Arc::clone(state))
    }

    fn intern_proc_arc(&mut self, state: &Arc<ProcState>) -> u32 {
        let id = self
            .procs
            .intern_hashed(hash_one(&**state), state, || Arc::clone(state));
        self.note_proc(id);
        id
    }

    /// Keeps the enabled-bit cache in sync with the proc arena.
    fn note_proc(&mut self, id: u32) {
        let id = id as usize;
        if id == self.proc_enabled.len() {
            self.proc_enabled
                .push(self.procs.arena[id].status.is_enabled());
        }
    }

    /// Interns every object and process state of `config` (sharing its
    /// `Arc`s — no state is deep-copied) and returns the id-word form.
    ///
    /// Equal configurations always produce identical words; see the type
    /// docs for why.
    pub fn intern_config(&mut self, config: &Config) -> CompactConfig {
        let (objects, procs) = config.parts();
        let mut words = Vec::with_capacity(objects.len() + procs.len());
        for obj in objects {
            words.push(self.intern_object_arc(obj));
        }
        for proc in procs {
            words.push(self.intern_proc_arc(proc));
        }
        CompactConfig {
            nobjects: u32::try_from(objects.len()).expect("object count exceeds u32"),
            words: words.into_boxed_slice(),
        }
    }

    /// Rebuilds the deep [`Config`] for a row of id words (`nobjects`
    /// object ids followed by proc ids) — `Arc` clones out of the arenas,
    /// no state is deep-copied.
    ///
    /// # Panics
    ///
    /// Panics if any word was not issued by this interner.
    pub fn materialize_words(&self, nobjects: usize, words: &[u32]) -> Config {
        let objects = words[..nobjects]
            .iter()
            .map(|&id| self.object_arc(id))
            .collect();
        let procs = words[nobjects..]
            .iter()
            .map(|&id| self.proc_arc(id))
            .collect();
        Config::from_parts(objects, procs)
    }

    /// Computes the enabled-process bitset of a row of id words without
    /// touching any state: bit `i` ⇔ process `i` may still step.
    ///
    /// # Panics
    ///
    /// Panics if the row has more than 64 processes or holds foreign ids.
    pub fn enabled_bits(&self, nobjects: usize, words: &[u32]) -> u64 {
        let procs = &words[nobjects..];
        assert!(
            procs.len() <= 64,
            "EnabledSet supports at most 64 processes"
        );
        let mut bits = 0u64;
        for (i, &id) in procs.iter().enumerate() {
            if self.proc_enabled[id as usize] {
                bits |= 1 << i;
            }
        }
        bits
    }

    /// Content-based fingerprint of a row of id words: hashes the per-slot
    /// *content* hashes (recorded at intern time) rather than the ids, so
    /// equal configurations fingerprint identically no matter which
    /// [`StateInterner`] issued the ids, or in what order its arenas were
    /// populated. Sharded exploration routes configurations to their owner
    /// shard by this value (see
    /// [`shard_of_fingerprint`]); id-based hashes would make shard
    /// ownership depend on interning history, which differs per shard.
    ///
    /// # Panics
    ///
    /// Panics if any word was not issued by this interner.
    pub fn content_fingerprint_words(&self, nobjects: usize, words: &[u32]) -> u64 {
        let mut h = DefaultHasher::new();
        nobjects.hash(&mut h);
        for &id in &words[..nobjects] {
            self.objs.hashes[id as usize].hash(&mut h);
        }
        for &id in &words[nobjects..] {
            self.procs.hashes[id as usize].hash(&mut h);
        }
        h.finish()
    }

    /// Interns every slot of a cross-shard [`WireConfig`] into *this*
    /// interner and returns the local id-word form. The wire carries each
    /// state's `Arc` plus its content hash, so adoption is pure arena
    /// lookups/inserts — no state is deep-copied or re-hashed.
    ///
    /// This is how a shard merges successors generated by a *different*
    /// shard's workers: ids are meaningless across interners, content is
    /// not.
    pub fn adopt(&mut self, wire: WireConfig) -> CompactConfig {
        let WireConfig {
            nobjects,
            objs,
            procs,
        } = wire;
        let mut words = Vec::with_capacity(objs.len() + procs.len());
        for (hash, state) in objs {
            words.push(self.objs.intern_hashed(hash, &state, || state.clone()));
        }
        for (hash, state) in procs {
            let id = self.procs.intern_hashed(hash, &state, || state.clone());
            self.note_proc(id);
            words.push(id);
        }
        CompactConfig {
            nobjects,
            words: words.into_boxed_slice(),
        }
    }

    /// Interns the fresh states of `pending` (produced by
    /// [`SystemSpec::compact_successors`](crate::SystemSpec::compact_successors))
    /// and returns the fully resolved id words.
    ///
    /// Call this on the single merge thread; worker threads only ever hold
    /// `&StateInterner`.
    pub fn finalize(&mut self, pending: PendingConfig) -> CompactConfig {
        let PendingConfig {
            nobjects,
            mut words,
            fresh,
        } = pending;
        for slot in fresh {
            let id = match slot.state {
                FreshState::Obj(v) => {
                    let arc = Arc::new(v);
                    self.objs.intern_hashed(slot.hash, &arc, || arc.clone())
                }
                FreshState::Proc(p) => {
                    let arc = Arc::new(p);
                    let id = self.procs.intern_hashed(slot.hash, &arc, || arc.clone());
                    self.note_proc(id);
                    id
                }
            };
            words[slot.slot as usize] = id;
        }
        debug_assert!(!words.contains(&PLACEHOLDER));
        CompactConfig { nobjects, words }
    }

    /// Merges `other`'s arenas into this interner — states present in both
    /// are deduplicated (`Arc`s shared, nothing deep-copied) — and returns
    /// the id remappings (`old object id → new id`, `old process id → new
    /// id`, indexed by old id).
    ///
    /// The sharded explorer uses this when freezing a graph: per-shard
    /// arenas are stitched back into one interner and every node's id row
    /// is rewritten through the returned maps, so the frozen representation
    /// is identical in shape to a single-store exploration's.
    pub fn absorb_arenas(&mut self, other: &StateInterner) -> (Vec<u32>, Vec<u32>) {
        let mut omap = Vec::with_capacity(other.objs.arena.len());
        for (state, &hash) in other.objs.arena.iter().zip(&other.objs.hashes) {
            omap.push(self.objs.intern_hashed(hash, state, || Arc::clone(state)));
        }
        let mut pmap = Vec::with_capacity(other.procs.arena.len());
        for (state, &hash) in other.procs.arena.iter().zip(&other.procs.hashes) {
            let id = self.procs.intern_hashed(hash, state, || Arc::clone(state));
            self.note_proc(id);
            pmap.push(id);
        }
        (omap, pmap)
    }

    /// Arena sizes, hit rates and footprint, for post-exploration reports.
    pub fn stats(&self) -> InternerStats {
        let (object_states, ohits, omisses) = self.objs.stats();
        let (proc_states, phits, pmisses) = self.procs.stats();
        let state_bytes = self
            .objs
            .arena
            .iter()
            .map(|v| value_bytes(v))
            .sum::<usize>()
            + self
                .procs
                .arena
                .iter()
                .map(|p| proc_bytes(p))
                .sum::<usize>();
        InternerStats {
            object_states,
            proc_states,
            hits: ohits + phits,
            requests: ohits + phits + omisses + pmisses,
            table_bytes: self.objs.table_bytes()
                + self.procs.table_bytes()
                + self.proc_enabled.len(),
            state_bytes,
        }
    }
}

/// Approximate deep heap size of one [`Value`].
fn value_bytes(v: &Value) -> usize {
    std::mem::size_of::<Value>()
        + match v {
            Value::Tup(items) => items.iter().map(value_bytes).sum(),
            _ => 0,
        }
}

/// Approximate deep heap size of one [`ProcState`].
fn proc_bytes(p: &ProcState) -> usize {
    let mut n = value_bytes(&p.local);
    n += std::mem::size_of::<Option<Value>>();
    if let Some(r) = &p.resp {
        n += match r {
            Value::Tup(items) => items.iter().map(value_bytes).sum(),
            _ => 0,
        };
    }
    n += std::mem::size_of::<ProcStatus>();
    if let ProcStatus::Decided(Value::Tup(items)) = &p.status {
        n += items.iter().map(value_bytes).sum::<usize>();
    }
    n
}

/// A fully interned configuration: `nobjects` object-state ids followed by
/// one process-state id per process, relative to some [`StateInterner`].
///
/// Equality and hashing are over the id words — constant-time per word, and
/// (by the interning invariant) equivalent to deep [`Config`]
/// equality/hashing when both sides come from the same interner.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CompactConfig {
    nobjects: u32,
    words: Box<[u32]>,
}

impl CompactConfig {
    /// The id words: object ids first, then proc ids.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// The number of object slots.
    pub fn nobjects(&self) -> usize {
        self.nobjects as usize
    }

    /// The number of process slots.
    pub fn nprocs(&self) -> usize {
        self.words.len() - self.nobjects()
    }

    /// Rebuilds the deep [`Config`] (see
    /// [`StateInterner::materialize_words`]).
    pub fn materialize(&self, interner: &StateInterner) -> Config {
        interner.materialize_words(self.nobjects(), &self.words)
    }
}

/// A stepped-but-not-yet-interned configuration.
///
/// Produced by
/// [`SystemSpec::compact_successors`](crate::SystemSpec::compact_successors)
/// on (possibly parallel) worker threads, which may only *read* the
/// interner: slots whose new state is already interned carry its id, and
/// the rare genuinely fresh states ride along in full until
/// [`StateInterner::finalize`] interns them on the merge thread.
///
/// Equality compares resolved words plus the fresh states, which (over one
/// interner snapshot) coincides with deep equality of the configurations
/// they denote.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingConfig {
    nobjects: u32,
    words: Box<[u32]>,
    fresh: Vec<FreshSlot>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct FreshSlot {
    slot: u32,
    hash: u64,
    state: FreshState,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum FreshState {
    Obj(Value),
    Proc(ProcState),
}

impl PendingConfig {
    pub(crate) fn copy_of(nobjects: usize, words: &[u32]) -> Self {
        PendingConfig {
            nobjects: u32::try_from(nobjects).expect("object count exceeds u32"),
            words: words.into(),
            fresh: Vec::new(),
        }
    }

    /// The number of object slots.
    pub fn nobjects(&self) -> usize {
        self.nobjects as usize
    }

    /// The number of process slots.
    pub fn nprocs(&self) -> usize {
        self.words.len() - self.nobjects()
    }

    /// `true` when every slot already carries an interned id — the id
    /// words then fully identify the configuration, and
    /// [`PendingConfig::resolved_words`] returns them.
    pub fn is_resolved(&self) -> bool {
        self.fresh.is_empty()
    }

    /// The id words, if every slot is resolved (see
    /// [`PendingConfig::is_resolved`]).
    pub fn resolved_words(&self) -> Option<&[u32]> {
        self.is_resolved().then_some(&*self.words)
    }

    /// Points slot `slot` at `state`: an arena id if the interner already
    /// holds it, else a fresh ride-along.
    fn set_slot(
        &mut self,
        slot: usize,
        hash: u64,
        id: Option<u32>,
        state: impl FnOnce() -> FreshState,
    ) {
        self.fresh.retain(|f| f.slot as usize != slot);
        match id {
            Some(id) => self.words[slot] = id,
            None => {
                self.words[slot] = PLACEHOLDER;
                self.fresh.push(FreshSlot {
                    slot: u32::try_from(slot).expect("slot exceeds u32"),
                    hash,
                    state: state(),
                });
            }
        }
    }

    pub(crate) fn set_object_state(
        &mut self,
        interner: &StateInterner,
        index: usize,
        state: Value,
    ) {
        let hash = hash_one(&state);
        let id = interner.lookup_object_hashed(hash, &state);
        self.set_slot(index, hash, id, || FreshState::Obj(state));
    }

    pub(crate) fn set_proc_state(
        &mut self,
        interner: &StateInterner,
        index: usize,
        state: ProcState,
    ) {
        let slot = self.nobjects() + index;
        let hash = hash_one(&state);
        let id = interner.lookup_proc_hashed(hash, &state);
        self.set_slot(slot, hash, id, || FreshState::Proc(state));
    }

    /// The object state at `index`, resolving through the interner or the
    /// fresh ride-alongs.
    pub(crate) fn object_ref<'a>(&'a self, interner: &'a StateInterner, index: usize) -> &'a Value {
        match self.fresh_at(index) {
            Some(FreshState::Obj(v)) => v,
            _ => interner.object(self.words[index]),
        }
    }

    /// The process state at `index`, resolving through the interner or the
    /// fresh ride-alongs.
    pub(crate) fn proc_ref<'a>(
        &'a self,
        interner: &'a StateInterner,
        index: usize,
    ) -> &'a ProcState {
        let slot = self.nobjects() + index;
        match self.fresh_at(slot) {
            Some(FreshState::Proc(p)) => p,
            _ => interner.proc(self.words[slot]),
        }
    }

    /// `true` when processes `a` and `b` carry the same *resolved* id —
    /// by the interning invariant, a proof their states are equal. `false`
    /// says nothing (one side may be an unresolved fresh slot).
    pub(crate) fn procs_equal_ids(&self, a: usize, b: usize) -> bool {
        let (wa, wb) = (
            self.words[self.nobjects() + a],
            self.words[self.nobjects() + b],
        );
        wa != PLACEHOLDER && wa == wb
    }

    fn fresh_at(&self, slot: usize) -> Option<&FreshState> {
        self.fresh
            .iter()
            .find(|f| f.slot as usize == slot)
            .map(|f| &f.state)
    }

    /// The content hash of `slot`: the arena-recorded hash for interned
    /// slots, the ride-along hash for fresh ones.
    fn slot_content_hash(&self, interner: &StateInterner, slot: usize) -> u64 {
        let word = self.words[slot];
        if word != PLACEHOLDER {
            return if slot < self.nobjects() {
                interner.objs.hashes[word as usize]
            } else {
                interner.procs.hashes[word as usize]
            };
        }
        self.fresh
            .iter()
            .find(|f| f.slot as usize == slot)
            .map(|f| f.hash)
            .expect("placeholder slot without a fresh ride-along")
    }

    /// Content-based fingerprint, identical to
    /// [`StateInterner::content_fingerprint_words`] on the words
    /// [`StateInterner::finalize`] would produce — computable *before*
    /// finalizing, on worker threads holding only `&StateInterner`. Sharded
    /// exploration uses it to route a successor to its owner shard without
    /// touching any arena.
    pub fn content_fingerprint(&self, interner: &StateInterner) -> u64 {
        let mut h = DefaultHasher::new();
        self.nobjects().hash(&mut h);
        for slot in 0..self.words.len() {
            self.slot_content_hash(interner, slot).hash(&mut h);
        }
        h.finish()
    }

    /// Converts into the interner-independent wire form for hand-off to
    /// another shard: every slot resolved to its `Arc`'d state plus content
    /// hash (`Arc` clones out of the arena for interned slots, one
    /// allocation per genuinely fresh state).
    pub fn export(self, interner: &StateInterner) -> WireConfig {
        let nobjects = self.nobjects();
        let mut objs = Vec::with_capacity(nobjects);
        let mut procs = Vec::with_capacity(self.nprocs());
        for slot in 0..self.words.len() {
            let hash = self.slot_content_hash(interner, slot);
            let word = self.words[slot];
            if slot < nobjects {
                let state = match self.fresh_at(slot) {
                    Some(FreshState::Obj(v)) => Arc::new(v.clone()),
                    _ => interner.object_arc(word),
                };
                objs.push((hash, state));
            } else {
                let state = match self.fresh_at(slot) {
                    Some(FreshState::Proc(p)) => Arc::new(p.clone()),
                    _ => interner.proc_arc(word),
                };
                procs.push((hash, state));
            }
        }
        WireConfig {
            nobjects: self.nobjects,
            objs,
            procs,
        }
    }

    /// Rearranges the process slots by `perm` (`perm[old] = new`), exactly
    /// like [`Config::permuted`], rewriting fresh-slot positions too.
    pub(crate) fn permute_procs(&mut self, perm: &[usize]) {
        let nobjects = self.nobjects();
        debug_assert_eq!(perm.len(), self.nprocs(), "permutation length mismatch");
        let old = self.words.clone();
        for (old_i, &new_i) in perm.iter().enumerate() {
            self.words[nobjects + new_i] = old[nobjects + old_i];
        }
        for f in &mut self.fresh {
            let slot = f.slot as usize;
            if slot >= nobjects {
                f.slot = u32::try_from(nobjects + perm[slot - nobjects]).expect("slot exceeds u32");
            }
        }
    }
}

/// An interner-independent configuration in transit between shards.
///
/// Per-shard [`StateInterner`]s issue unrelated ids, so a successor crossing
/// shards cannot travel as id words. The wire form carries each slot's state
/// `Arc` together with its content hash — enough for the owning shard to
/// [`StateInterner::adopt`] it with pure arena lookups, and for the content
/// fingerprint to be recomputed without re-hashing any state.
#[derive(Clone, Debug)]
pub struct WireConfig {
    nobjects: u32,
    /// Object slots, in position order: (content hash, state).
    objs: Vec<(u64, Arc<Value>)>,
    /// Process slots, in position order: (content hash, state).
    procs: Vec<(u64, Arc<ProcState>)>,
}

impl WireConfig {
    /// Content-based fingerprint, equal to what
    /// [`PendingConfig::content_fingerprint`] reported before export and
    /// what [`StateInterner::content_fingerprint_words`] reports after
    /// adoption.
    pub fn content_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        (self.nobjects as usize).hash(&mut h);
        for (hash, _) in &self.objs {
            hash.hash(&mut h);
        }
        for (hash, _) in &self.procs {
            hash.hash(&mut h);
        }
        h.finish()
    }
}

/// Maps a content fingerprint to its owning shard (`fp mod shards`).
///
/// Shard routing must use the *content* fingerprint of the **canonical**
/// representative (when symmetry reduction is on), so every member of an
/// orbit lands in the same shard's dedup table; see
/// [`StateInterner::content_fingerprint_words`] for why id-based hashes
/// would break this.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_of_fingerprint(fp: u64, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    (fp % shards as u64) as usize
}

/// Arena sizes, hit rates and memory footprint of a [`StateInterner`],
/// reported after exploration (see the e9 bench's `INTERNER_STATS`
/// summary).
#[derive(Clone, Debug)]
pub struct InternerStats {
    /// Distinct object states interned.
    pub object_states: usize,
    /// Distinct process states interned.
    pub proc_states: usize,
    /// Total lookup/intern requests served.
    pub requests: u64,
    /// Requests answered with an already-interned id.
    pub hits: u64,
    /// Approximate bytes of the arenas and hash indexes themselves.
    pub table_bytes: usize,
    /// Approximate deep bytes of the unique states stored once each.
    pub state_bytes: usize,
}

impl InternerStats {
    /// Folds another interner's stats into this one (field-wise sums), for
    /// reporting sharded explorations as one summary. Per-shard arenas are
    /// independent, so a state present in two shards counts twice — the
    /// summed `object_states`/`proc_states`/`state_bytes` are the honest
    /// total footprint of the sharded run, not a distinct-state count.
    pub fn absorb(&mut self, other: &InternerStats) {
        self.object_states += other.object_states;
        self.proc_states += other.proc_states;
        self.requests += other.requests;
        self.hits += other.hits;
        self.table_bytes += other.table_bytes;
        self.state_bytes += other.state_bytes;
    }

    /// Fraction of requests answered from the arena (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Estimated bytes *not* allocated thanks to sharing: every hit would
    /// otherwise have materialized its own copy of an average-sized state.
    pub fn bytes_saved(&self) -> u64 {
        let unique = (self.object_states + self.proc_states) as u64;
        if unique == 0 {
            return 0;
        }
        self.hits * (self.state_bytes as u64 / unique)
    }
}

impl fmt::Display for InternerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interner: {} object states, {} proc states, {}/{} hits ({:.1}%), \
             ~{} table bytes, ~{} state bytes, ~{} bytes saved",
            self.object_states,
            self.proc_states,
            self.hits,
            self.requests,
            self.hit_rate() * 100.0,
            self.table_bytes,
            self.state_bytes,
            self.bytes_saved(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_interning_is_idempotent() {
        let mut pool: Pool<Value> = Pool::default();
        let a = Arc::new(Value::Int(1));
        let b = Arc::new(Value::Int(2));
        let ia = pool.intern_hashed(hash_one(&*a), &a, || Arc::clone(&a));
        let ib = pool.intern_hashed(hash_one(&*b), &b, || Arc::clone(&b));
        assert_ne!(ia, ib);
        let ia2 = pool.intern_hashed(hash_one(&*a), &a, || Arc::clone(&a));
        assert_eq!(ia, ia2);
        assert_eq!(pool.arena.len(), 2);
        assert_eq!(pool.lookup_hashed(hash_one(&*b), &b), Some(ib));
        assert_eq!(
            pool.lookup_hashed(hash_one(&Value::Int(3)), &Value::Int(3)),
            None
        );
    }

    #[test]
    fn stats_track_hits_and_sizes() {
        let mut interner = StateInterner::new();
        let v = Arc::new(Value::tup([Value::Int(1), Value::Nil]));
        interner.intern_object_arc(&v);
        interner.intern_object_arc(&v);
        let stats = interner.stats();
        assert_eq!(stats.object_states, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.requests, 2);
        assert!(stats.state_bytes > 0);
        assert!(stats.hit_rate() > 0.4 && stats.hit_rate() < 0.6);
        assert!(stats.bytes_saved() > 0);
        let shown = stats.to_string();
        assert!(shown.contains("object states"), "{shown}");
    }

    #[test]
    fn enabled_bits_follow_proc_status() {
        let mut interner = StateInterner::new();
        let running = Arc::new(ProcState {
            local: Value::Nil,
            resp: None,
            status: ProcStatus::Running,
        });
        let decided = Arc::new(ProcState {
            local: Value::Nil,
            resp: None,
            status: ProcStatus::Decided(Value::Int(0)),
        });
        let r = interner.intern_proc_arc(&running);
        let d = interner.intern_proc_arc(&decided);
        assert_eq!(interner.enabled_bits(0, &[r, d, r]), 0b101);
    }

    #[test]
    fn content_fingerprint_survives_export_adopt_round_trip() {
        // Two interners with *different* arena histories: pre-populate the
        // second with unrelated states so equal configs get different ids.
        let mut a = StateInterner::new();
        let mut b = StateInterner::new();
        for i in 0..5 {
            b.intern_object_arc(&Arc::new(Value::Int(100 + i)));
            b.intern_proc_arc(&Arc::new(ProcState {
                local: Value::Int(200 + i),
                resp: None,
                status: ProcStatus::Running,
            }));
        }
        let base = Arc::new(ProcState {
            local: Value::Nil,
            resp: None,
            status: ProcStatus::Fresh,
        });
        let id = a.intern_proc_arc(&base);
        let mut pending = PendingConfig::copy_of(0, &[id, id]);
        pending.set_proc_state(
            &a,
            1,
            ProcState {
                local: Value::Int(7),
                resp: None,
                status: ProcStatus::Running,
            },
        );
        let fp_pending = pending.content_fingerprint(&a);
        let wire = pending.clone().export(&a);
        assert_eq!(wire.content_fingerprint(), fp_pending);
        // Adopting into a differently-populated interner: different ids,
        // same content fingerprint, same materialized config.
        let adopted = b.adopt(wire);
        assert_eq!(
            b.content_fingerprint_words(0, adopted.words()),
            fp_pending,
            "content fingerprint must not depend on interner history"
        );
        let finalized = a.finalize(pending);
        assert_ne!(finalized.words(), adopted.words());
        assert_eq!(
            a.content_fingerprint_words(0, finalized.words()),
            fp_pending
        );
        assert_eq!(finalized.materialize(&a), adopted.materialize(&b));
        // Re-adoption dedups against the now-present states.
        assert!(shard_of_fingerprint(fp_pending, 4) < 4);
        assert_eq!(shard_of_fingerprint(fp_pending, 1), 0);
    }

    #[test]
    fn interner_stats_absorb_sums_fields() {
        let mut a = StateInterner::new();
        a.intern_object_arc(&Arc::new(Value::Int(1)));
        a.intern_object_arc(&Arc::new(Value::Int(1)));
        let mut total = a.stats();
        total.absorb(&a.stats());
        assert_eq!(total.object_states, 2);
        assert_eq!(total.requests, 4);
        assert_eq!(total.hits, 2);
        assert!(total.table_bytes >= 2 * a.stats().table_bytes);
    }

    #[test]
    fn absorb_arenas_dedups_and_remaps() {
        // Two arenas with overlapping contents interned in different
        // orders, so equal states carry different ids.
        let mut a = StateInterner::new();
        let mut b = StateInterner::new();
        let oa0 = a.intern_object_arc(&Arc::new(Value::Int(1)));
        let oa1 = a.intern_object_arc(&Arc::new(Value::Int(2)));
        let ob0 = b.intern_object_arc(&Arc::new(Value::Int(2)));
        let ob1 = b.intern_object_arc(&Arc::new(Value::Int(3)));
        let pa = a.intern_proc_arc(&Arc::new(ProcState {
            local: Value::Int(10),
            resp: None,
            status: ProcStatus::Running,
        }));
        let pb = b.intern_proc_arc(&Arc::new(ProcState {
            local: Value::Int(10),
            resp: None,
            status: ProcStatus::Running,
        }));
        let mut merged = StateInterner::new();
        let (omap_a, pmap_a) = merged.absorb_arenas(&a);
        let (omap_b, pmap_b) = merged.absorb_arenas(&b);
        // The shared states (Int(2), the Int(10) proc) must collapse to
        // single ids; the rest stay distinct.
        assert_eq!(omap_a[oa1 as usize], omap_b[ob0 as usize]);
        assert_ne!(omap_a[oa0 as usize], omap_b[ob1 as usize]);
        assert_eq!(pmap_a[pa as usize], pmap_b[pb as usize]);
        let stats = merged.stats();
        assert_eq!(stats.object_states, 3, "1, 2, 3");
        assert_eq!(stats.proc_states, 1);
        // Remapped ids resolve to the same states as the originals.
        assert_eq!(merged.object(omap_a[oa0 as usize]), a.object(oa0));
        assert_eq!(merged.object(omap_b[ob1 as usize]), b.object(ob1));
        assert_eq!(merged.proc(pmap_a[pa as usize]), a.proc(pa));
        // The enabled-bit cache covers the absorbed procs.
        assert_eq!(
            merged.enabled_bits(0, &[pmap_a[pa as usize]]),
            0b1,
            "a Running proc is enabled"
        );
    }

    #[test]
    fn pending_permute_moves_fresh_slots() {
        let mut interner = StateInterner::new();
        let base = Arc::new(ProcState {
            local: Value::Nil,
            resp: None,
            status: ProcStatus::Fresh,
        });
        let id = interner.intern_proc_arc(&base);
        let mut pending = PendingConfig::copy_of(0, &[id, id]);
        pending.set_proc_state(
            &interner,
            0,
            ProcState {
                local: Value::Int(7),
                resp: None,
                status: ProcStatus::Running,
            },
        );
        assert!(!pending.is_resolved());
        // Swap the two procs: the fresh state must follow slot 0 → 1.
        pending.permute_procs(&[1, 0]);
        assert_eq!(pending.proc_ref(&interner, 0).local, Value::Nil);
        assert_eq!(pending.proc_ref(&interner, 1).local, Value::Int(7));
        let compact = interner.finalize(pending);
        assert_eq!(compact.words()[0], id);
        assert_eq!(interner.proc(compact.words()[1]).local, Value::Int(7));
    }
}
