//! Hash-consed configurations: interned state arenas and id-word configs.
//!
//! Exhaustive exploration stores millions of configurations whose individual
//! object and process states are drawn from a *small* set — a p8 run with
//! thousands of configs typically has a few hundred distinct [`ProcState`]s.
//! A [`StateInterner`] hash-conses those states into append-only arenas (one
//! for object [`Value`]s, one for [`ProcState`]s) and hands out dense `u32`
//! ids, so a whole configuration shrinks to a [`CompactConfig`]: one flat
//! array of id words (object ids first, then proc ids).
//!
//! The payoff is that every hot operation moves to id space:
//!
//! * **equality** is a word-for-word `u32` compare — no deep traversal, so
//!   the model checker's fingerprint-collision verification is a `memcmp`;
//! * **hashing** hashes the id slice;
//! * **stepping** copies the id array and replaces the one or two slots that
//!   changed, looking the new states up in the arena first ([`PendingConfig`]
//!   carries the (rare) genuinely fresh states to the single-threaded merge,
//!   which interns them — the arenas never need locks);
//! * **within-group canonicalization** permutes id words.
//!
//! Soundness of id equality rests on the interning invariant: the arena
//! never holds two equal states, so `id(a) == id(b) ⇔ a == b` for states,
//! and therefore word-wise id equality of two [`CompactConfig`]s over the
//! *same* interner is exactly deep [`Config`] equality.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::system::{Config, ProcState, ProcStatus};
use crate::value::Value;

/// The id word reserved for "not yet interned" slots of a [`PendingConfig`].
const PLACEHOLDER: u32 = u32::MAX;

/// Ids per evictable arena segment. Segments are the unit of disk spill:
/// the id space `[seg * ARENA_SEGMENT, (seg + 1) * ARENA_SEGMENT)` is
/// encoded, evicted and restored as a whole. Only *complete* segments are
/// evictable — the tail the interner is still appending into stays
/// resident, so interning new states never needs a fault.
pub const ARENA_SEGMENT: usize = 64;

fn hash_one<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// One hash-consing arena: equal values get equal ids, forever.
///
/// Lookups are readable under a shared reference (the parallel expansion
/// workers race only on the relaxed hit/miss counters); inserts require
/// `&mut` and happen on the merge thread only.
#[derive(Debug)]
struct Pool<T> {
    /// `None` marks a state whose segment was evicted to disk: its id,
    /// content hash and index entry all stay valid (the arena is
    /// append-only in id space), only the value itself is cold.
    /// `Option<Arc<T>>` is pointer-sized, so eviction costs no table space.
    arena: Vec<Option<Arc<T>>>,
    /// `hashes[id]` is the content hash of `arena[id]` — the same value the
    /// state was interned under. Shard routing reads it so a slot's
    /// contribution to a configuration's *content* fingerprint never depends
    /// on which interner issued the id. Never evicted.
    hashes: Vec<u64>,
    /// Hash → candidate ids, verified by full equality (hash collisions are
    /// survivable, just slow).
    index: HashMap<u64, Vec<u32>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Deep bytes of the states currently resident, maintained
    /// incrementally (insert adds, evict subtracts, restore re-adds) so
    /// budget estimates and [`StateInterner::stats`] are O(1).
    resident_bytes: usize,
}

impl<T> Default for Pool<T> {
    fn default() -> Self {
        Pool {
            arena: Vec::new(),
            hashes: Vec::new(),
            index: HashMap::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            resident_bytes: 0,
        }
    }
}

impl<T> Clone for Pool<T> {
    fn clone(&self) -> Self {
        Pool {
            arena: self.arena.clone(),
            hashes: self.hashes.clone(),
            index: self.index.clone(),
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)),
            resident_bytes: self.resident_bytes,
        }
    }
}

impl<T: Eq + Hash> Pool<T> {
    /// Finds the id of `value` if it is already interned **and resident**.
    ///
    /// A candidate whose segment was evicted is skipped — a *false miss*.
    /// That is safe on the worker path: a missed state rides along by value
    /// in the [`PendingConfig`] and the authoritative merge-side intern
    /// dedups it (after restoring the cold segment; see
    /// [`StateInterner::cold_segments_for_pending`]).
    fn lookup_hashed(&self, hash: u64, value: &T) -> Option<u32> {
        let found = self.index.get(&hash).and_then(|ids| {
            ids.iter()
                .copied()
                .find(|&id| self.arena[id as usize].as_deref() == Some(value))
        });
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Interns `value` (supplied as a closure so callers holding an `Arc`
    /// can share it instead of re-allocating), returning its id.
    ///
    /// # Panics
    ///
    /// Panics if a hash-colliding candidate is evicted: appending without
    /// comparing against it could create a duplicate id for an equal state
    /// and silently break the `id(a) == id(b) ⇔ a == b` invariant. Callers
    /// on the merge path must restore the segments named by
    /// [`StateInterner::cold_segments_for_pending`] /
    /// [`cold_segments_for_wire`](StateInterner::cold_segments_for_wire)
    /// first.
    fn intern_hashed(&mut self, hash: u64, value: &T, make: impl FnOnce() -> Arc<T>) -> u32 {
        if let Some(id) = self.lookup_hashed(hash, value) {
            return id;
        }
        if let Some(ids) = self.index.get(&hash) {
            assert!(
                ids.iter().all(|&id| self.arena[id as usize].is_some()),
                "interning against an evicted candidate — restore its segment first"
            );
        }
        let id = u32::try_from(self.arena.len()).expect("interner arena exceeds u32 ids");
        self.arena.push(Some(make()));
        self.hashes.push(hash);
        self.index.entry(hash).or_default().push(id);
        id
    }

    fn stats(&self) -> (usize, u64, u64) {
        (
            self.arena.len(),
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Approximate heap footprint of the arena + hash index themselves
    /// (excluding the deep size of the stored states).
    fn table_bytes(&self) -> usize {
        self.arena.len() * std::mem::size_of::<Option<Arc<T>>>()
            + self.hashes.len() * std::mem::size_of::<u64>()
            + self.index.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<Vec<u32>>())
            + self.arena.len() * std::mem::size_of::<u32>()
    }

    /// Number of *complete* (hence evictable) segments.
    fn complete_segments(&self) -> usize {
        self.arena.len() / ARENA_SEGMENT
    }

    fn segment_range(&self, seg: usize) -> std::ops::Range<usize> {
        let lo = seg * ARENA_SEGMENT;
        let hi = lo + ARENA_SEGMENT;
        assert!(hi <= self.arena.len(), "segment {seg} is not complete");
        lo..hi
    }

    /// Whether segment `seg` is resident (segments evict and restore as a
    /// whole, so the first slot speaks for all of them).
    fn segment_resident(&self, seg: usize) -> bool {
        self.arena[self.segment_range(seg).start].is_some()
    }

    /// Drops the values of segment `seg`, returning the deep bytes freed
    /// (`size` measures one value; must match the insert-time accounting).
    fn evict_segment(&mut self, seg: usize, size: impl Fn(&T) -> usize) -> usize {
        let mut freed = 0;
        for slot in self.segment_range(seg) {
            let v = self.arena[slot]
                .take()
                .expect("evicting a segment that is not resident");
            freed += size(&v);
        }
        self.resident_bytes -= freed;
        freed
    }

    /// Segments holding *evicted* dedup candidates for `hash` — what the
    /// merge path must restore before it may intern a state with this hash.
    fn cold_candidate_segments(&self, hash: u64) -> Vec<usize> {
        let mut segs = Vec::new();
        if let Some(ids) = self.index.get(&hash) {
            for &id in ids {
                if self.arena[id as usize].is_none() {
                    let seg = id as usize / ARENA_SEGMENT;
                    if !segs.contains(&seg) {
                        segs.push(seg);
                    }
                }
            }
        }
        segs
    }
}

/// An exploration-scoped hash-consing arena for object and process states.
///
/// Build one per exploration (or per system), intern the initial
/// configuration with [`StateInterner::intern_config`], and step in id
/// space via
/// [`SystemSpec::compact_successors`](crate::SystemSpec::compact_successors).
/// Ids are only meaningful relative to the interner that issued them.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use subconsensus_sim::{
///     Action, ProcCtx, Protocol, ProtocolError, StateInterner, SystemBuilder, Value,
/// };
///
/// #[derive(Debug)]
/// struct DecideInput;
/// impl Protocol for DecideInput {
///     fn start(&self, _ctx: &ProcCtx) -> Value { Value::Nil }
///     fn step(&self, ctx: &ProcCtx, _l: &Value, _r: Option<&Value>)
///         -> Result<Action, ProtocolError> {
///         Ok(Action::Decide(ctx.input.clone()))
///     }
/// }
///
/// let mut b = SystemBuilder::new();
/// b.add_process(Arc::new(DecideInput), Value::Int(3));
/// let spec = b.build();
/// let mut interner = StateInterner::new();
/// let compact = interner.intern_config(&spec.initial_config());
/// assert_eq!(compact.materialize(&interner), spec.initial_config());
/// // Re-interning an equal configuration yields identical id words.
/// assert_eq!(interner.intern_config(&spec.initial_config()), compact);
/// ```
#[derive(Clone, Debug, Default)]
pub struct StateInterner {
    objs: Pool<Value>,
    procs: Pool<ProcState>,
    /// `proc_enabled[id]` caches `procs.arena[id].status.is_enabled()` so
    /// computing a configuration's enabled bitset never touches the states.
    proc_enabled: Vec<bool>,
}

impl StateInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the interned object state with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this interner, or if its segment is
    /// evicted (restore it first; see
    /// [`restore_object_segment`](Self::restore_object_segment)).
    pub fn object(&self, id: u32) -> &Value {
        self.objs.arena[id as usize]
            .as_deref()
            .expect("object state evicted — restore its segment before dereferencing")
    }

    /// Returns the interned process state with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this interner, or if its segment is
    /// evicted (restore it first; see
    /// [`restore_proc_segment`](Self::restore_proc_segment)).
    pub fn proc(&self, id: u32) -> &ProcState {
        self.procs.arena[id as usize]
            .as_deref()
            .expect("proc state evicted — restore its segment before dereferencing")
    }

    pub(crate) fn object_arc(&self, id: u32) -> Arc<Value> {
        Arc::clone(
            self.objs.arena[id as usize]
                .as_ref()
                .expect("object state evicted — restore its segment before dereferencing"),
        )
    }

    pub(crate) fn proc_arc(&self, id: u32) -> Arc<ProcState> {
        Arc::clone(
            self.procs.arena[id as usize]
                .as_ref()
                .expect("proc state evicted — restore its segment before dereferencing"),
        )
    }

    pub(crate) fn lookup_object_hashed(&self, hash: u64, state: &Value) -> Option<u32> {
        self.objs.lookup_hashed(hash, state)
    }

    pub(crate) fn lookup_proc_hashed(&self, hash: u64, state: &ProcState) -> Option<u32> {
        self.procs.lookup_hashed(hash, state)
    }

    fn intern_object_arc(&mut self, state: &Arc<Value>) -> u32 {
        self.intern_obj_counted(hash_one(&**state), state)
    }

    fn intern_proc_arc(&mut self, state: &Arc<ProcState>) -> u32 {
        self.intern_proc_counted(hash_one(&**state), state)
    }

    /// The single object-intern entry point: interns through the pool and
    /// keeps the incremental resident-byte counter in step with genuinely
    /// new states.
    fn intern_obj_counted(&mut self, hash: u64, state: &Arc<Value>) -> u32 {
        let before = self.objs.arena.len();
        let id = self.objs.intern_hashed(hash, state, || Arc::clone(state));
        if self.objs.arena.len() > before {
            self.objs.resident_bytes += value_bytes(state);
        }
        id
    }

    /// The single proc-intern entry point (see
    /// [`intern_obj_counted`](Self::intern_obj_counted)); also maintains
    /// the enabled-bit cache.
    fn intern_proc_counted(&mut self, hash: u64, state: &Arc<ProcState>) -> u32 {
        let before = self.procs.arena.len();
        let id = self.procs.intern_hashed(hash, state, || Arc::clone(state));
        if self.procs.arena.len() > before {
            self.procs.resident_bytes += proc_bytes(state);
        }
        self.note_proc(id);
        id
    }

    /// Keeps the enabled-bit cache in sync with the proc arena.
    fn note_proc(&mut self, id: u32) {
        let id = id as usize;
        if id == self.proc_enabled.len() {
            let state = self.procs.arena[id]
                .as_ref()
                .expect("freshly interned proc state is always resident");
            self.proc_enabled.push(state.status.is_enabled());
        }
    }

    /// Interns every object and process state of `config` (sharing its
    /// `Arc`s — no state is deep-copied) and returns the id-word form.
    ///
    /// Equal configurations always produce identical words; see the type
    /// docs for why.
    pub fn intern_config(&mut self, config: &Config) -> CompactConfig {
        let (objects, procs) = config.parts();
        let mut words = Vec::with_capacity(objects.len() + procs.len());
        for obj in objects {
            words.push(self.intern_object_arc(obj));
        }
        for proc in procs {
            words.push(self.intern_proc_arc(proc));
        }
        CompactConfig {
            nobjects: u32::try_from(objects.len()).expect("object count exceeds u32"),
            words: words.into_boxed_slice(),
        }
    }

    /// Rebuilds the deep [`Config`] for a row of id words (`nobjects`
    /// object ids followed by proc ids) — `Arc` clones out of the arenas,
    /// no state is deep-copied.
    ///
    /// # Panics
    ///
    /// Panics if any word was not issued by this interner.
    pub fn materialize_words(&self, nobjects: usize, words: &[u32]) -> Config {
        let objects = words[..nobjects]
            .iter()
            .map(|&id| self.object_arc(id))
            .collect();
        let procs = words[nobjects..]
            .iter()
            .map(|&id| self.proc_arc(id))
            .collect();
        Config::from_parts(objects, procs)
    }

    /// Computes the enabled-process bitset of a row of id words without
    /// touching any state: bit `i` ⇔ process `i` may still step.
    ///
    /// # Panics
    ///
    /// Panics if the row has more than 64 processes or holds foreign ids.
    pub fn enabled_bits(&self, nobjects: usize, words: &[u32]) -> u64 {
        let procs = &words[nobjects..];
        assert!(
            procs.len() <= 64,
            "EnabledSet supports at most 64 processes"
        );
        let mut bits = 0u64;
        for (i, &id) in procs.iter().enumerate() {
            if self.proc_enabled[id as usize] {
                bits |= 1 << i;
            }
        }
        bits
    }

    /// Content-based fingerprint of a row of id words: hashes the per-slot
    /// *content* hashes (recorded at intern time) rather than the ids, so
    /// equal configurations fingerprint identically no matter which
    /// [`StateInterner`] issued the ids, or in what order its arenas were
    /// populated. Sharded exploration routes configurations to their owner
    /// shard by this value (see
    /// [`shard_of_fingerprint`]); id-based hashes would make shard
    /// ownership depend on interning history, which differs per shard.
    ///
    /// # Panics
    ///
    /// Panics if any word was not issued by this interner.
    pub fn content_fingerprint_words(&self, nobjects: usize, words: &[u32]) -> u64 {
        let mut h = DefaultHasher::new();
        nobjects.hash(&mut h);
        for &id in &words[..nobjects] {
            self.objs.hashes[id as usize].hash(&mut h);
        }
        for &id in &words[nobjects..] {
            self.procs.hashes[id as usize].hash(&mut h);
        }
        h.finish()
    }

    /// Interns every slot of a cross-shard [`WireConfig`] into *this*
    /// interner and returns the local id-word form. The wire carries each
    /// state's `Arc` plus its content hash, so adoption is pure arena
    /// lookups/inserts — no state is deep-copied or re-hashed.
    ///
    /// This is how a shard merges successors generated by a *different*
    /// shard's workers: ids are meaningless across interners, content is
    /// not.
    pub fn adopt(&mut self, wire: WireConfig) -> CompactConfig {
        let WireConfig {
            nobjects,
            objs,
            procs,
        } = wire;
        let mut words = Vec::with_capacity(objs.len() + procs.len());
        for (hash, state) in objs {
            words.push(self.intern_obj_counted(hash, &state));
        }
        for (hash, state) in procs {
            words.push(self.intern_proc_counted(hash, &state));
        }
        CompactConfig {
            nobjects,
            words: words.into_boxed_slice(),
        }
    }

    /// Interns the fresh states of `pending` (produced by
    /// [`SystemSpec::compact_successors`](crate::SystemSpec::compact_successors))
    /// and returns the fully resolved id words.
    ///
    /// Call this on the single merge thread; worker threads only ever hold
    /// `&StateInterner`.
    pub fn finalize(&mut self, pending: PendingConfig) -> CompactConfig {
        let PendingConfig {
            nobjects,
            mut words,
            fresh,
        } = pending;
        for slot in fresh {
            let id = match slot.state {
                FreshState::Obj(v) => {
                    let arc = Arc::new(v);
                    self.intern_obj_counted(slot.hash, &arc)
                }
                FreshState::Proc(p) => {
                    let arc = Arc::new(p);
                    self.intern_proc_counted(slot.hash, &arc)
                }
            };
            words[slot.slot as usize] = id;
        }
        debug_assert!(!words.contains(&PLACEHOLDER));
        CompactConfig { nobjects, words }
    }

    /// Merges `other`'s arenas into this interner — states present in both
    /// are deduplicated (`Arc`s shared, nothing deep-copied) — and returns
    /// the id remappings (`old object id → new id`, `old process id → new
    /// id`, indexed by old id).
    ///
    /// The sharded explorer uses this when freezing a graph: per-shard
    /// arenas are stitched back into one interner and every node's id row
    /// is rewritten through the returned maps, so the frozen representation
    /// is identical in shape to a single-store exploration's.
    pub fn absorb_arenas(&mut self, other: &StateInterner) -> (Vec<u32>, Vec<u32>) {
        let mut omap = Vec::with_capacity(other.objs.arena.len());
        for (state, &hash) in other.objs.arena.iter().zip(&other.objs.hashes) {
            let state = state
                .as_ref()
                .expect("absorbing an interner with evicted segments — restore them first");
            omap.push(self.intern_obj_counted(hash, state));
        }
        let mut pmap = Vec::with_capacity(other.procs.arena.len());
        for (state, &hash) in other.procs.arena.iter().zip(&other.procs.hashes) {
            let state = state
                .as_ref()
                .expect("absorbing an interner with evicted segments — restore them first");
            pmap.push(self.intern_proc_counted(hash, state));
        }
        (omap, pmap)
    }

    /// Arena sizes, hit rates and footprint, for post-exploration reports.
    /// O(1): the state bytes are maintained incrementally at intern /
    /// evict / restore time, so budget-driven stores can call this per
    /// level without rescanning the arenas.
    pub fn stats(&self) -> InternerStats {
        let (object_states, ohits, omisses) = self.objs.stats();
        let (proc_states, phits, pmisses) = self.procs.stats();
        InternerStats {
            object_states,
            proc_states,
            hits: ohits + phits,
            requests: ohits + phits + omisses + pmisses,
            table_bytes: self.table_bytes(),
            state_bytes: self.resident_state_bytes(),
        }
    }

    /// Approximate bytes of the arena tables and hash indexes themselves
    /// (never evicted; O(1)).
    pub fn table_bytes(&self) -> usize {
        self.objs.table_bytes() + self.procs.table_bytes() + self.proc_enabled.len()
    }

    /// Deep bytes of the states currently resident in the arenas (O(1);
    /// equals the full state footprint when nothing is evicted).
    pub fn resident_state_bytes(&self) -> usize {
        self.objs.resident_bytes + self.procs.resident_bytes
    }

    /// Number of complete — hence evictable — object-arena segments.
    pub fn object_segments(&self) -> usize {
        self.objs.complete_segments()
    }

    /// Number of complete — hence evictable — proc-arena segments.
    pub fn proc_segments(&self) -> usize {
        self.procs.complete_segments()
    }

    /// Whether object segment `seg` is resident.
    pub fn object_segment_resident(&self, seg: usize) -> bool {
        self.objs.segment_resident(seg)
    }

    /// Whether proc segment `seg` is resident.
    pub fn proc_segment_resident(&self, seg: usize) -> bool {
        self.procs.segment_resident(seg)
    }

    /// Serializes object segment `seg` (resident, complete) into the
    /// std-only binary form [`restore_object_segment`](Self::restore_object_segment)
    /// reads back. Encoding is a pure function of the segment's values, so
    /// re-encoding a restored segment is byte-identical.
    pub fn encode_object_segment(&self, seg: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for slot in self.objs.segment_range(seg) {
            let v = self.objs.arena[slot]
                .as_deref()
                .expect("encoding an evicted object segment");
            encode_value(v, &mut out);
        }
        out
    }

    /// Serializes proc segment `seg` (see
    /// [`encode_object_segment`](Self::encode_object_segment)).
    pub fn encode_proc_segment(&self, seg: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for slot in self.procs.segment_range(seg) {
            let p = self.procs.arena[slot]
                .as_deref()
                .expect("encoding an evicted proc segment");
            encode_proc_state(p, &mut out);
        }
        out
    }

    /// Drops the values of object segment `seg`, returning the deep bytes
    /// freed. Ids, content hashes, the dedup index and the enabled-bit
    /// cache all stay — only dereferencing the values needs a restore.
    pub fn evict_object_segment(&mut self, seg: usize) -> usize {
        self.objs.evict_segment(seg, value_bytes)
    }

    /// Drops the values of proc segment `seg` (see
    /// [`evict_object_segment`](Self::evict_object_segment)).
    pub fn evict_proc_segment(&mut self, seg: usize) -> usize {
        self.procs.evict_segment(seg, proc_bytes)
    }

    /// Restores object segment `seg` from
    /// [`encode_object_segment`](Self::encode_object_segment) bytes,
    /// returning the deep bytes now resident again. Decoded values hash
    /// and compare identically to the originals, so every id keeps
    /// denoting the same state.
    ///
    /// # Panics
    ///
    /// Panics on malformed bytes or if the segment is already resident.
    pub fn restore_object_segment(&mut self, seg: usize, bytes: &[u8]) -> usize {
        let range = self.objs.segment_range(seg);
        let mut pos = 0;
        let mut restored = 0;
        for slot in range {
            assert!(
                self.objs.arena[slot].is_none(),
                "restoring an already-resident object segment"
            );
            let v = decode_value(bytes, &mut pos);
            debug_assert_eq!(
                hash_one(&v),
                self.objs.hashes[slot],
                "restored object state hashes differently than at intern time"
            );
            restored += value_bytes(&v);
            self.objs.arena[slot] = Some(Arc::new(v));
        }
        assert_eq!(pos, bytes.len(), "trailing bytes in object segment");
        self.objs.resident_bytes += restored;
        restored
    }

    /// Restores proc segment `seg` (see
    /// [`restore_object_segment`](Self::restore_object_segment)).
    pub fn restore_proc_segment(&mut self, seg: usize, bytes: &[u8]) -> usize {
        let range = self.procs.segment_range(seg);
        let mut pos = 0;
        let mut restored = 0;
        for slot in range {
            assert!(
                self.procs.arena[slot].is_none(),
                "restoring an already-resident proc segment"
            );
            let p = decode_proc_state(bytes, &mut pos);
            debug_assert_eq!(
                hash_one(&p),
                self.procs.hashes[slot],
                "restored proc state hashes differently than at intern time"
            );
            restored += proc_bytes(&p);
            self.procs.arena[slot] = Some(Arc::new(p));
        }
        assert_eq!(pos, bytes.len(), "trailing bytes in proc segment");
        self.procs.resident_bytes += restored;
        restored
    }

    /// The evicted segments that must be restored before
    /// [`finalize`](Self::finalize) may intern `pending`'s fresh states:
    /// every hash-colliding dedup candidate has to be resident for the
    /// merge-side compare (a cold candidate would otherwise either panic
    /// or, worse, let an equal state intern twice). Returns
    /// `(is_proc, segment)` pairs, deduplicated.
    pub fn cold_segments_for_pending(&self, pending: &PendingConfig, out: &mut Vec<(bool, usize)>) {
        for f in &pending.fresh {
            let (is_proc, pool_cold) = match f.state {
                FreshState::Obj(_) => (false, self.objs.cold_candidate_segments(f.hash)),
                FreshState::Proc(_) => (true, self.procs.cold_candidate_segments(f.hash)),
            };
            for seg in pool_cold {
                if !out.contains(&(is_proc, seg)) {
                    out.push((is_proc, seg));
                }
            }
        }
    }

    /// The evicted segments that must be restored before
    /// [`adopt`](Self::adopt) may intern `wire`'s slots (see
    /// [`cold_segments_for_pending`](Self::cold_segments_for_pending)).
    pub fn cold_segments_for_wire(&self, wire: &WireConfig, out: &mut Vec<(bool, usize)>) {
        for (hash, _) in &wire.objs {
            for seg in self.objs.cold_candidate_segments(*hash) {
                if !out.contains(&(false, seg)) {
                    out.push((false, seg));
                }
            }
        }
        for (hash, _) in &wire.procs {
            for seg in self.procs.cold_candidate_segments(*hash) {
                if !out.contains(&(true, seg)) {
                    out.push((true, seg));
                }
            }
        }
    }
}

/// Approximate deep heap size of one [`Value`].
fn value_bytes(v: &Value) -> usize {
    std::mem::size_of::<Value>()
        + match v {
            Value::Tup(items) => items.iter().map(value_bytes).sum(),
            _ => 0,
        }
}

/// Approximate deep heap size of one [`ProcState`].
fn proc_bytes(p: &ProcState) -> usize {
    let mut n = value_bytes(&p.local);
    n += std::mem::size_of::<Option<Value>>();
    if let Some(r) = &p.resp {
        n += match r {
            Value::Tup(items) => items.iter().map(value_bytes).sum(),
            _ => 0,
        };
    }
    n += std::mem::size_of::<ProcStatus>();
    if let ProcStatus::Decided(Value::Tup(items)) = &p.status {
        n += items.iter().map(value_bytes).sum::<usize>();
    }
    n
}

// --- arena segment codec -------------------------------------------------
//
// A std-only, self-delimiting binary form for the two arena state types,
// used by the disk store to spill cold segments. The encoding is a pure
// function of the value (no ids, no interner history), so encode →
// decode → encode is byte-stable, and decoded values are `Eq`/`Hash`
// identical to the originals — which is exactly what keeps interner ids
// meaningful across an evict/restore cycle.

const TAG_NIL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_SYM: u8 = 3;
const TAG_TUP: u8 = 4;

fn put_u32(n: u32, out: &mut Vec<u8>) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn take_u32(bytes: &[u8], pos: &mut usize) -> u32 {
    let n = u32::from_le_bytes(
        bytes[*pos..*pos + 4]
            .try_into()
            .expect("truncated u32 in segment"),
    );
    *pos += 4;
    n
}

fn take_u8(bytes: &[u8], pos: &mut usize) -> u8 {
    let b = bytes[*pos];
    *pos += 1;
    b
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Nil => out.push(TAG_NIL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Sym(s) => {
            out.push(TAG_SYM);
            put_u32(
                u32::try_from(s.len()).expect("symbol length exceeds u32"),
                out,
            );
            out.extend_from_slice(s.as_bytes());
        }
        Value::Tup(items) => {
            out.push(TAG_TUP);
            put_u32(
                u32::try_from(items.len()).expect("tuple length exceeds u32"),
                out,
            );
            for item in items {
                encode_value(item, out);
            }
        }
    }
}

fn decode_value(bytes: &[u8], pos: &mut usize) -> Value {
    match take_u8(bytes, pos) {
        TAG_NIL => Value::Nil,
        TAG_BOOL => Value::Bool(take_u8(bytes, pos) != 0),
        TAG_INT => {
            let i = i64::from_le_bytes(
                bytes[*pos..*pos + 8]
                    .try_into()
                    .expect("truncated i64 in segment"),
            );
            *pos += 8;
            Value::Int(i)
        }
        TAG_SYM => {
            let len = take_u32(bytes, pos) as usize;
            let s =
                std::str::from_utf8(&bytes[*pos..*pos + len]).expect("non-UTF-8 symbol in segment");
            *pos += len;
            Value::Sym(leak_symbol(s))
        }
        TAG_TUP => {
            let len = take_u32(bytes, pos) as usize;
            Value::Tup((0..len).map(|_| decode_value(bytes, pos)).collect())
        }
        tag => panic!("unknown value tag {tag} in segment"),
    }
}

const STATUS_FRESH: u8 = 0;
const STATUS_RUNNING: u8 = 1;
const STATUS_DECIDED: u8 = 2;
const STATUS_HUNG: u8 = 3;

fn encode_proc_state(p: &ProcState, out: &mut Vec<u8>) {
    encode_value(&p.local, out);
    match &p.resp {
        None => out.push(0),
        Some(r) => {
            out.push(1);
            encode_value(r, out);
        }
    }
    match &p.status {
        ProcStatus::Fresh => out.push(STATUS_FRESH),
        ProcStatus::Running => out.push(STATUS_RUNNING),
        ProcStatus::Decided(v) => {
            out.push(STATUS_DECIDED);
            encode_value(v, out);
        }
        ProcStatus::Hung => out.push(STATUS_HUNG),
    }
}

fn decode_proc_state(bytes: &[u8], pos: &mut usize) -> ProcState {
    let local = decode_value(bytes, pos);
    let resp = match take_u8(bytes, pos) {
        0 => None,
        1 => Some(decode_value(bytes, pos)),
        tag => panic!("unknown resp tag {tag} in segment"),
    };
    let status = match take_u8(bytes, pos) {
        STATUS_FRESH => ProcStatus::Fresh,
        STATUS_RUNNING => ProcStatus::Running,
        STATUS_DECIDED => ProcStatus::Decided(decode_value(bytes, pos)),
        STATUS_HUNG => ProcStatus::Hung,
        tag => panic!("unknown status tag {tag} in segment"),
    };
    ProcState {
        local,
        resp,
        status,
    }
}

/// Interns a decoded symbol string into a process-global `&'static str`
/// table. `Value::Sym` carries `&'static str` (normally string literals);
/// decode has to mint an equal one. `Value`'s `Eq`/`Hash` go through str
/// *content*, so a leaked copy is indistinguishable from the literal — and
/// the table bounds the leak at one allocation per distinct symbol per
/// process, no matter how many segments are restored.
fn leak_symbol(s: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::sync::OnceLock;
    static SYMBOLS: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut table = SYMBOLS
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("symbol table lock");
    match table.get(s) {
        Some(interned) => interned,
        None => {
            let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
            table.insert(leaked);
            leaked
        }
    }
}

/// A fully interned configuration: `nobjects` object-state ids followed by
/// one process-state id per process, relative to some [`StateInterner`].
///
/// Equality and hashing are over the id words — constant-time per word, and
/// (by the interning invariant) equivalent to deep [`Config`]
/// equality/hashing when both sides come from the same interner.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CompactConfig {
    nobjects: u32,
    words: Box<[u32]>,
}

impl CompactConfig {
    /// The id words: object ids first, then proc ids.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// The number of object slots.
    pub fn nobjects(&self) -> usize {
        self.nobjects as usize
    }

    /// The number of process slots.
    pub fn nprocs(&self) -> usize {
        self.words.len() - self.nobjects()
    }

    /// Rebuilds the deep [`Config`] (see
    /// [`StateInterner::materialize_words`]).
    pub fn materialize(&self, interner: &StateInterner) -> Config {
        interner.materialize_words(self.nobjects(), &self.words)
    }
}

/// A stepped-but-not-yet-interned configuration.
///
/// Produced by
/// [`SystemSpec::compact_successors`](crate::SystemSpec::compact_successors)
/// on (possibly parallel) worker threads, which may only *read* the
/// interner: slots whose new state is already interned carry its id, and
/// the rare genuinely fresh states ride along in full until
/// [`StateInterner::finalize`] interns them on the merge thread.
///
/// Equality compares resolved words plus the fresh states, which (over one
/// interner snapshot) coincides with deep equality of the configurations
/// they denote.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingConfig {
    nobjects: u32,
    words: Box<[u32]>,
    fresh: Vec<FreshSlot>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct FreshSlot {
    slot: u32,
    hash: u64,
    state: FreshState,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum FreshState {
    Obj(Value),
    Proc(ProcState),
}

impl PendingConfig {
    pub(crate) fn copy_of(nobjects: usize, words: &[u32]) -> Self {
        PendingConfig {
            nobjects: u32::try_from(nobjects).expect("object count exceeds u32"),
            words: words.into(),
            fresh: Vec::new(),
        }
    }

    /// The number of object slots.
    pub fn nobjects(&self) -> usize {
        self.nobjects as usize
    }

    /// The number of process slots.
    pub fn nprocs(&self) -> usize {
        self.words.len() - self.nobjects()
    }

    /// `true` when every slot already carries an interned id — the id
    /// words then fully identify the configuration, and
    /// [`PendingConfig::resolved_words`] returns them.
    pub fn is_resolved(&self) -> bool {
        self.fresh.is_empty()
    }

    /// The id words, if every slot is resolved (see
    /// [`PendingConfig::is_resolved`]).
    pub fn resolved_words(&self) -> Option<&[u32]> {
        self.is_resolved().then_some(&*self.words)
    }

    /// Points slot `slot` at `state`: an arena id if the interner already
    /// holds it, else a fresh ride-along.
    fn set_slot(
        &mut self,
        slot: usize,
        hash: u64,
        id: Option<u32>,
        state: impl FnOnce() -> FreshState,
    ) {
        self.fresh.retain(|f| f.slot as usize != slot);
        match id {
            Some(id) => self.words[slot] = id,
            None => {
                self.words[slot] = PLACEHOLDER;
                self.fresh.push(FreshSlot {
                    slot: u32::try_from(slot).expect("slot exceeds u32"),
                    hash,
                    state: state(),
                });
            }
        }
    }

    pub(crate) fn set_object_state(
        &mut self,
        interner: &StateInterner,
        index: usize,
        state: Value,
    ) {
        let hash = hash_one(&state);
        let id = interner.lookup_object_hashed(hash, &state);
        self.set_slot(index, hash, id, || FreshState::Obj(state));
    }

    pub(crate) fn set_proc_state(
        &mut self,
        interner: &StateInterner,
        index: usize,
        state: ProcState,
    ) {
        let slot = self.nobjects() + index;
        let hash = hash_one(&state);
        let id = interner.lookup_proc_hashed(hash, &state);
        self.set_slot(slot, hash, id, || FreshState::Proc(state));
    }

    /// The object state at `index`, resolving through the interner or the
    /// fresh ride-alongs.
    pub(crate) fn object_ref<'a>(&'a self, interner: &'a StateInterner, index: usize) -> &'a Value {
        match self.fresh_at(index) {
            Some(FreshState::Obj(v)) => v,
            _ => interner.object(self.words[index]),
        }
    }

    /// The process state at `index`, resolving through the interner or the
    /// fresh ride-alongs.
    pub(crate) fn proc_ref<'a>(
        &'a self,
        interner: &'a StateInterner,
        index: usize,
    ) -> &'a ProcState {
        let slot = self.nobjects() + index;
        match self.fresh_at(slot) {
            Some(FreshState::Proc(p)) => p,
            _ => interner.proc(self.words[slot]),
        }
    }

    /// `true` when processes `a` and `b` carry the same *resolved* id —
    /// by the interning invariant, a proof their states are equal. `false`
    /// says nothing (one side may be an unresolved fresh slot).
    pub(crate) fn procs_equal_ids(&self, a: usize, b: usize) -> bool {
        let (wa, wb) = (
            self.words[self.nobjects() + a],
            self.words[self.nobjects() + b],
        );
        wa != PLACEHOLDER && wa == wb
    }

    fn fresh_at(&self, slot: usize) -> Option<&FreshState> {
        self.fresh
            .iter()
            .find(|f| f.slot as usize == slot)
            .map(|f| &f.state)
    }

    /// The content hash of `slot`: the arena-recorded hash for interned
    /// slots, the ride-along hash for fresh ones.
    fn slot_content_hash(&self, interner: &StateInterner, slot: usize) -> u64 {
        let word = self.words[slot];
        if word != PLACEHOLDER {
            return if slot < self.nobjects() {
                interner.objs.hashes[word as usize]
            } else {
                interner.procs.hashes[word as usize]
            };
        }
        self.fresh
            .iter()
            .find(|f| f.slot as usize == slot)
            .map(|f| f.hash)
            .expect("placeholder slot without a fresh ride-along")
    }

    /// Content-based fingerprint, identical to
    /// [`StateInterner::content_fingerprint_words`] on the words
    /// [`StateInterner::finalize`] would produce — computable *before*
    /// finalizing, on worker threads holding only `&StateInterner`. Sharded
    /// exploration uses it to route a successor to its owner shard without
    /// touching any arena.
    pub fn content_fingerprint(&self, interner: &StateInterner) -> u64 {
        let mut h = DefaultHasher::new();
        self.nobjects().hash(&mut h);
        for slot in 0..self.words.len() {
            self.slot_content_hash(interner, slot).hash(&mut h);
        }
        h.finish()
    }

    /// Converts into the interner-independent wire form for hand-off to
    /// another shard: every slot resolved to its `Arc`'d state plus content
    /// hash (`Arc` clones out of the arena for interned slots, one
    /// allocation per genuinely fresh state).
    pub fn export(self, interner: &StateInterner) -> WireConfig {
        let nobjects = self.nobjects();
        let mut objs = Vec::with_capacity(nobjects);
        let mut procs = Vec::with_capacity(self.nprocs());
        for slot in 0..self.words.len() {
            let hash = self.slot_content_hash(interner, slot);
            let word = self.words[slot];
            if slot < nobjects {
                let state = match self.fresh_at(slot) {
                    Some(FreshState::Obj(v)) => Arc::new(v.clone()),
                    _ => interner.object_arc(word),
                };
                objs.push((hash, state));
            } else {
                let state = match self.fresh_at(slot) {
                    Some(FreshState::Proc(p)) => Arc::new(p.clone()),
                    _ => interner.proc_arc(word),
                };
                procs.push((hash, state));
            }
        }
        WireConfig {
            nobjects: self.nobjects,
            objs,
            procs,
        }
    }

    /// Rearranges the process slots by `perm` (`perm[old] = new`), exactly
    /// like [`Config::permuted`], rewriting fresh-slot positions too.
    pub(crate) fn permute_procs(&mut self, perm: &[usize]) {
        let nobjects = self.nobjects();
        debug_assert_eq!(perm.len(), self.nprocs(), "permutation length mismatch");
        let old = self.words.clone();
        for (old_i, &new_i) in perm.iter().enumerate() {
            self.words[nobjects + new_i] = old[nobjects + old_i];
        }
        for f in &mut self.fresh {
            let slot = f.slot as usize;
            if slot >= nobjects {
                f.slot = u32::try_from(nobjects + perm[slot - nobjects]).expect("slot exceeds u32");
            }
        }
    }
}

/// An interner-independent configuration in transit between shards.
///
/// Per-shard [`StateInterner`]s issue unrelated ids, so a successor crossing
/// shards cannot travel as id words. The wire form carries each slot's state
/// `Arc` together with its content hash — enough for the owning shard to
/// [`StateInterner::adopt`] it with pure arena lookups, and for the content
/// fingerprint to be recomputed without re-hashing any state.
#[derive(Clone, Debug)]
pub struct WireConfig {
    nobjects: u32,
    /// Object slots, in position order: (content hash, state).
    objs: Vec<(u64, Arc<Value>)>,
    /// Process slots, in position order: (content hash, state).
    procs: Vec<(u64, Arc<ProcState>)>,
}

impl WireConfig {
    /// Content-based fingerprint, equal to what
    /// [`PendingConfig::content_fingerprint`] reported before export and
    /// what [`StateInterner::content_fingerprint_words`] reports after
    /// adoption.
    pub fn content_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        (self.nobjects as usize).hash(&mut h);
        for (hash, _) in &self.objs {
            hash.hash(&mut h);
        }
        for (hash, _) in &self.procs {
            hash.hash(&mut h);
        }
        h.finish()
    }
}

/// Maps a content fingerprint to its owning shard (`fp mod shards`).
///
/// Shard routing must use the *content* fingerprint of the **canonical**
/// representative (when symmetry reduction is on), so every member of an
/// orbit lands in the same shard's dedup table; see
/// [`StateInterner::content_fingerprint_words`] for why id-based hashes
/// would break this.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_of_fingerprint(fp: u64, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    (fp % shards as u64) as usize
}

/// Arena sizes, hit rates and memory footprint of a [`StateInterner`],
/// reported after exploration (see the e9 bench's `INTERNER_STATS`
/// summary).
#[derive(Clone, Debug)]
pub struct InternerStats {
    /// Distinct object states interned.
    pub object_states: usize,
    /// Distinct process states interned.
    pub proc_states: usize,
    /// Total lookup/intern requests served.
    pub requests: u64,
    /// Requests answered with an already-interned id.
    pub hits: u64,
    /// Approximate bytes of the arenas and hash indexes themselves.
    pub table_bytes: usize,
    /// Approximate deep bytes of the unique states stored once each.
    pub state_bytes: usize,
}

impl InternerStats {
    /// Folds another interner's stats into this one (field-wise sums), for
    /// reporting sharded explorations as one summary. Per-shard arenas are
    /// independent, so a state present in two shards counts twice — the
    /// summed `object_states`/`proc_states`/`state_bytes` are the honest
    /// total footprint of the sharded run, not a distinct-state count.
    pub fn absorb(&mut self, other: &InternerStats) {
        self.object_states += other.object_states;
        self.proc_states += other.proc_states;
        self.requests += other.requests;
        self.hits += other.hits;
        self.table_bytes += other.table_bytes;
        self.state_bytes += other.state_bytes;
    }

    /// Fraction of requests answered from the arena (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Estimated bytes *not* allocated thanks to sharing: every hit would
    /// otherwise have materialized its own copy of an average-sized state.
    pub fn bytes_saved(&self) -> u64 {
        let unique = (self.object_states + self.proc_states) as u64;
        if unique == 0 {
            return 0;
        }
        self.hits * (self.state_bytes as u64 / unique)
    }

    /// The stats as one flat JSON object (the `interner` field of the e9
    /// bench rows).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"object_states\": {}, \"proc_states\": {}, \
             \"hit_rate\": {}, \"table_bytes\": {}, \"state_bytes\": {}, \
             \"bytes_saved\": {}}}",
            self.object_states,
            self.proc_states,
            crate::json::json_f64(self.hit_rate()),
            self.table_bytes,
            self.state_bytes,
            self.bytes_saved()
        )
    }
}

impl fmt::Display for InternerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interner: {} object states, {} proc states, {}/{} hits ({:.1}%), \
             ~{} table bytes, ~{} state bytes, ~{} bytes saved",
            self.object_states,
            self.proc_states,
            self.hits,
            self.requests,
            self.hit_rate() * 100.0,
            self.table_bytes,
            self.state_bytes,
            self.bytes_saved(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_interning_is_idempotent() {
        let mut pool: Pool<Value> = Pool::default();
        let a = Arc::new(Value::Int(1));
        let b = Arc::new(Value::Int(2));
        let ia = pool.intern_hashed(hash_one(&*a), &a, || Arc::clone(&a));
        let ib = pool.intern_hashed(hash_one(&*b), &b, || Arc::clone(&b));
        assert_ne!(ia, ib);
        let ia2 = pool.intern_hashed(hash_one(&*a), &a, || Arc::clone(&a));
        assert_eq!(ia, ia2);
        assert_eq!(pool.arena.len(), 2);
        assert_eq!(pool.lookup_hashed(hash_one(&*b), &b), Some(ib));
        assert_eq!(
            pool.lookup_hashed(hash_one(&Value::Int(3)), &Value::Int(3)),
            None
        );
    }

    #[test]
    fn stats_track_hits_and_sizes() {
        let mut interner = StateInterner::new();
        let v = Arc::new(Value::tup([Value::Int(1), Value::Nil]));
        interner.intern_object_arc(&v);
        interner.intern_object_arc(&v);
        let stats = interner.stats();
        assert_eq!(stats.object_states, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.requests, 2);
        assert!(stats.state_bytes > 0);
        assert!(stats.hit_rate() > 0.4 && stats.hit_rate() < 0.6);
        assert!(stats.bytes_saved() > 0);
        let shown = stats.to_string();
        assert!(shown.contains("object states"), "{shown}");
    }

    #[test]
    fn enabled_bits_follow_proc_status() {
        let mut interner = StateInterner::new();
        let running = Arc::new(ProcState {
            local: Value::Nil,
            resp: None,
            status: ProcStatus::Running,
        });
        let decided = Arc::new(ProcState {
            local: Value::Nil,
            resp: None,
            status: ProcStatus::Decided(Value::Int(0)),
        });
        let r = interner.intern_proc_arc(&running);
        let d = interner.intern_proc_arc(&decided);
        assert_eq!(interner.enabled_bits(0, &[r, d, r]), 0b101);
    }

    #[test]
    fn content_fingerprint_survives_export_adopt_round_trip() {
        // Two interners with *different* arena histories: pre-populate the
        // second with unrelated states so equal configs get different ids.
        let mut a = StateInterner::new();
        let mut b = StateInterner::new();
        for i in 0..5 {
            b.intern_object_arc(&Arc::new(Value::Int(100 + i)));
            b.intern_proc_arc(&Arc::new(ProcState {
                local: Value::Int(200 + i),
                resp: None,
                status: ProcStatus::Running,
            }));
        }
        let base = Arc::new(ProcState {
            local: Value::Nil,
            resp: None,
            status: ProcStatus::Fresh,
        });
        let id = a.intern_proc_arc(&base);
        let mut pending = PendingConfig::copy_of(0, &[id, id]);
        pending.set_proc_state(
            &a,
            1,
            ProcState {
                local: Value::Int(7),
                resp: None,
                status: ProcStatus::Running,
            },
        );
        let fp_pending = pending.content_fingerprint(&a);
        let wire = pending.clone().export(&a);
        assert_eq!(wire.content_fingerprint(), fp_pending);
        // Adopting into a differently-populated interner: different ids,
        // same content fingerprint, same materialized config.
        let adopted = b.adopt(wire);
        assert_eq!(
            b.content_fingerprint_words(0, adopted.words()),
            fp_pending,
            "content fingerprint must not depend on interner history"
        );
        let finalized = a.finalize(pending);
        assert_ne!(finalized.words(), adopted.words());
        assert_eq!(
            a.content_fingerprint_words(0, finalized.words()),
            fp_pending
        );
        assert_eq!(finalized.materialize(&a), adopted.materialize(&b));
        // Re-adoption dedups against the now-present states.
        assert!(shard_of_fingerprint(fp_pending, 4) < 4);
        assert_eq!(shard_of_fingerprint(fp_pending, 1), 0);
    }

    #[test]
    fn interner_stats_absorb_sums_fields() {
        let mut a = StateInterner::new();
        a.intern_object_arc(&Arc::new(Value::Int(1)));
        a.intern_object_arc(&Arc::new(Value::Int(1)));
        let mut total = a.stats();
        total.absorb(&a.stats());
        assert_eq!(total.object_states, 2);
        assert_eq!(total.requests, 4);
        assert_eq!(total.hits, 2);
        assert!(total.table_bytes >= 2 * a.stats().table_bytes);
    }

    #[test]
    fn absorb_arenas_dedups_and_remaps() {
        // Two arenas with overlapping contents interned in different
        // orders, so equal states carry different ids.
        let mut a = StateInterner::new();
        let mut b = StateInterner::new();
        let oa0 = a.intern_object_arc(&Arc::new(Value::Int(1)));
        let oa1 = a.intern_object_arc(&Arc::new(Value::Int(2)));
        let ob0 = b.intern_object_arc(&Arc::new(Value::Int(2)));
        let ob1 = b.intern_object_arc(&Arc::new(Value::Int(3)));
        let pa = a.intern_proc_arc(&Arc::new(ProcState {
            local: Value::Int(10),
            resp: None,
            status: ProcStatus::Running,
        }));
        let pb = b.intern_proc_arc(&Arc::new(ProcState {
            local: Value::Int(10),
            resp: None,
            status: ProcStatus::Running,
        }));
        let mut merged = StateInterner::new();
        let (omap_a, pmap_a) = merged.absorb_arenas(&a);
        let (omap_b, pmap_b) = merged.absorb_arenas(&b);
        // The shared states (Int(2), the Int(10) proc) must collapse to
        // single ids; the rest stay distinct.
        assert_eq!(omap_a[oa1 as usize], omap_b[ob0 as usize]);
        assert_ne!(omap_a[oa0 as usize], omap_b[ob1 as usize]);
        assert_eq!(pmap_a[pa as usize], pmap_b[pb as usize]);
        let stats = merged.stats();
        assert_eq!(stats.object_states, 3, "1, 2, 3");
        assert_eq!(stats.proc_states, 1);
        // Remapped ids resolve to the same states as the originals.
        assert_eq!(merged.object(omap_a[oa0 as usize]), a.object(oa0));
        assert_eq!(merged.object(omap_b[ob1 as usize]), b.object(ob1));
        assert_eq!(merged.proc(pmap_a[pa as usize]), a.proc(pa));
        // The enabled-bit cache covers the absorbed procs.
        assert_eq!(
            merged.enabled_bits(0, &[pmap_a[pa as usize]]),
            0b1,
            "a Running proc is enabled"
        );
    }

    #[test]
    fn value_codec_round_trips_all_variants() {
        let v = Value::tup([
            Value::Nil,
            Value::Bool(true),
            Value::Int(-42),
            Value::Sym("opened"),
            Value::tup([Value::Int(7), Value::Sym("x")]),
        ]);
        let mut bytes = Vec::new();
        encode_value(&v, &mut bytes);
        let mut pos = 0;
        let back = decode_value(&bytes, &mut pos);
        assert_eq!(pos, bytes.len());
        assert_eq!(back, v);
        assert_eq!(
            hash_one(&back),
            hash_one(&v),
            "decoded value must rehash equal"
        );
        // Re-encoding the decoded value is byte-identical.
        let mut again = Vec::new();
        encode_value(&back, &mut again);
        assert_eq!(again, bytes);
        // Proc states, through every status.
        for status in [
            ProcStatus::Fresh,
            ProcStatus::Running,
            ProcStatus::Decided(Value::Sym("yes")),
            ProcStatus::Hung,
        ] {
            let p = ProcState {
                local: v.clone(),
                resp: Some(Value::Int(1)),
                status,
            };
            let mut b = Vec::new();
            encode_proc_state(&p, &mut b);
            let mut pos = 0;
            let back = decode_proc_state(&b, &mut pos);
            assert_eq!(pos, b.len());
            assert_eq!(back, p);
            assert_eq!(hash_one(&back), hash_one(&p));
        }
    }

    #[test]
    fn segment_evict_restore_preserves_ids_and_bytes() {
        let mut interner = StateInterner::new();
        // Fill two complete object segments plus a partial tail.
        let total = 2 * ARENA_SEGMENT + 3;
        for i in 0..total {
            interner.intern_object_arc(&Arc::new(Value::Int(i as i64)));
        }
        assert_eq!(interner.object_segments(), 2);
        let full_bytes = interner.resident_state_bytes();
        let encoded = interner.encode_object_segment(0);
        let freed = interner.evict_object_segment(0);
        assert!(freed > 0);
        assert!(!interner.object_segment_resident(0));
        assert!(interner.object_segment_resident(1));
        assert_eq!(interner.resident_state_bytes(), full_bytes - freed);
        // Evicted candidates become worker-side false misses, never wrong
        // ids.
        let v = Value::Int(0);
        assert_eq!(interner.lookup_object_hashed(hash_one(&v), &v), None);
        // Restore: same ids denote the same states, bytes return exactly.
        let restored = interner.restore_object_segment(0, &encoded);
        assert_eq!(restored, freed);
        assert_eq!(interner.resident_state_bytes(), full_bytes);
        assert_eq!(interner.object(0), &Value::Int(0));
        assert_eq!(
            interner.lookup_object_hashed(hash_one(&v), &v),
            Some(0),
            "restored candidate deduplicates onto its original id"
        );
        // Re-encoding the restored segment is byte-identical.
        assert_eq!(interner.encode_object_segment(0), encoded);
    }

    #[test]
    fn cold_segments_name_exactly_the_evicted_candidates() {
        let mut interner = StateInterner::new();
        for i in 0..ARENA_SEGMENT + 1 {
            interner.intern_proc_arc(&Arc::new(ProcState {
                local: Value::Int(i as i64),
                resp: None,
                status: ProcStatus::Running,
            }));
        }
        let encoded = interner.encode_proc_segment(0);
        interner.evict_proc_segment(0);
        // A pending config whose fresh proc equals an evicted state must
        // name segment 0; one equal to the resident tail state must not.
        let mk_pending = |interner: &StateInterner, i: i64| {
            let mut pending = PendingConfig::copy_of(0, &[PLACEHOLDER]);
            pending.set_proc_state(
                interner,
                0,
                ProcState {
                    local: Value::Int(i),
                    resp: None,
                    status: ProcStatus::Running,
                },
            );
            pending
        };
        let cold_hit = mk_pending(&interner, 0);
        let mut cold = Vec::new();
        interner.cold_segments_for_pending(&cold_hit, &mut cold);
        assert_eq!(cold, vec![(true, 0)]);
        let warm = mk_pending(&interner, ARENA_SEGMENT as i64);
        assert!(
            warm.is_resolved(),
            "tail state is resident, worker lookup resolves it"
        );
        // After restoring, finalize dedups the cold-hit onto its old id.
        interner.restore_proc_segment(0, &encoded);
        let compact = interner.finalize(cold_hit);
        assert_eq!(compact.words(), &[0]);
    }

    #[test]
    #[should_panic(expected = "interning against an evicted candidate")]
    fn interning_against_cold_candidate_panics_instead_of_duplicating() {
        let mut interner = StateInterner::new();
        for i in 0..ARENA_SEGMENT {
            interner.intern_object_arc(&Arc::new(Value::Int(i as i64)));
        }
        interner.evict_object_segment(0);
        // Equal to an evicted state: blind interning would mint a second id
        // for it and break the id ⇔ value bijection. The pool refuses.
        interner.intern_object_arc(&Arc::new(Value::Int(5)));
    }

    #[test]
    fn pending_permute_moves_fresh_slots() {
        let mut interner = StateInterner::new();
        let base = Arc::new(ProcState {
            local: Value::Nil,
            resp: None,
            status: ProcStatus::Fresh,
        });
        let id = interner.intern_proc_arc(&base);
        let mut pending = PendingConfig::copy_of(0, &[id, id]);
        pending.set_proc_state(
            &interner,
            0,
            ProcState {
                local: Value::Int(7),
                resp: None,
                status: ProcStatus::Running,
            },
        );
        assert!(!pending.is_resolved());
        // Swap the two procs: the fresh state must follow slot 0 → 1.
        pending.permute_procs(&[1, 0]);
        assert_eq!(pending.proc_ref(&interner, 0).local, Value::Nil);
        assert_eq!(pending.proc_ref(&interner, 1).local, Value::Int(7));
        let compact = interner.finalize(pending);
        assert_eq!(compact.words()[0], id);
        assert_eq!(interner.proc(compact.words()[1]).local, Value::Int(7));
    }
}
