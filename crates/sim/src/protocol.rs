//! Per-process algorithms as explicit state machines.

use std::fmt;

use crate::error::ProtocolError;
use crate::ids::{ObjId, Pid};
use crate::op::Op;
use crate::value::Value;

/// The immutable per-process context handed to every protocol step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcCtx {
    /// The identity of the process running the protocol.
    pub pid: Pid,
    /// The number of processes in the system.
    pub nprocs: usize,
    /// The task input of this process ([`Value::Nil`] if the protocol takes
    /// no input).
    pub input: Value,
}

impl ProcCtx {
    /// Creates a context.
    pub fn new(pid: Pid, nprocs: usize, input: Value) -> Self {
        ProcCtx { pid, nprocs, input }
    }
}

/// The action a protocol takes on one step.
///
/// In the standard shared-memory model a *step* is exactly one atomic
/// operation on one shared object (local computation is folded into the
/// step), or the final, irrevocable decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Perform one atomic operation on a shared object and update the local
    /// state.
    Invoke {
        /// The local state to hold while the operation is in flight.
        local: Value,
        /// The target object.
        obj: ObjId,
        /// The operation to apply.
        op: Op,
    },
    /// Decide the given output value and halt.
    Decide(Value),
}

impl Action {
    /// Convenience constructor for [`Action::Invoke`].
    pub fn invoke(local: Value, obj: ObjId, op: Op) -> Self {
        Action::Invoke { local, obj, op }
    }
}

/// A deterministic per-process algorithm for a one-shot task.
///
/// A protocol is a pure transition function over an explicit, hashable local
/// state (a [`Value`]). The simulator calls [`Protocol::start`] once to
/// obtain the initial local state, then repeatedly calls [`Protocol::step`]:
/// each step receives the local state and the response to the previous
/// invocation (`None` on the very first step) and either invokes one atomic
/// operation or decides.
///
/// Keeping the local state an explicit `Value` (rather than hiding it in
/// `&mut self`) is what lets the model checker clone, hash and deduplicate
/// whole system configurations.
///
/// # Examples
///
/// A one-step protocol that writes its input to a register and decides it:
///
/// ```
/// use subconsensus_sim::{Action, ObjId, Op, ProcCtx, Protocol, ProtocolError, Value};
///
/// #[derive(Debug)]
/// struct WriteAndDecide { reg: ObjId }
///
/// impl Protocol for WriteAndDecide {
///     fn start(&self, _ctx: &ProcCtx) -> Value { Value::Sym("init") }
///
///     fn step(
///         &self,
///         ctx: &ProcCtx,
///         local: &Value,
///         _resp: Option<&Value>,
///     ) -> Result<Action, ProtocolError> {
///         match local.as_sym() {
///             Some("init") => Ok(Action::invoke(
///                 Value::Sym("wrote"),
///                 self.reg,
///                 Op::unary("write", ctx.input.clone()),
///             )),
///             Some("wrote") => Ok(Action::Decide(ctx.input.clone())),
///             _ => Err(ProtocolError::new("corrupt local state")),
///         }
///     }
/// }
/// ```
pub trait Protocol: fmt::Debug + Send + Sync {
    /// Returns the initial local state for the process described by `ctx`.
    fn start(&self, ctx: &ProcCtx) -> Value;

    /// Takes one step: given the local state and the response to the previous
    /// invocation (`None` on the first step), returns the next [`Action`].
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] if the local state or response has an
    /// unexpected shape — this indicates a bug in the protocol, not a
    /// property violation of the algorithm under study.
    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError>;

    /// Whether this protocol's behavior is independent of `ctx.pid`.
    ///
    /// A pid-symmetric protocol may read `ctx.input` and `ctx.nprocs` but
    /// must produce the same start state and the same step function for every
    /// process identity — so two processes running it with equal inputs are
    /// interchangeable, and the model checker may explore one representative
    /// per permutation orbit (see `SystemBuilder::build`). This is a
    /// *declaration*: the default is the conservative `false`, and an
    /// implementation that reads `ctx.pid` (even just to index an object
    /// array) must not override it.
    fn pid_symmetric(&self) -> bool {
        false
    }

    /// The set of objects this process may invoke at *any* point of *any*
    /// execution, or `None` if unknown.
    ///
    /// Partial-order reduction uses this static footprint to find groups of
    /// processes that can never interact: two processes with disjoint
    /// declared footprints are independent forever, so the checker may defer
    /// one group while exhausting another. The declaration must cover every
    /// object the process could ever touch — an under-declared footprint
    /// makes POR unsound (verdicts may silently change). The default `None`
    /// is always sound: an undeclared process is assumed to conflict with
    /// everyone.
    fn obj_footprint(&self, ctx: &ProcCtx) -> Option<Vec<ObjId>> {
        let _ = ctx;
        None
    }
}

impl Protocol for std::sync::Arc<dyn Protocol> {
    fn start(&self, ctx: &ProcCtx) -> Value {
        self.as_ref().start(ctx)
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        self.as_ref().step(ctx, local, resp)
    }

    fn pid_symmetric(&self) -> bool {
        self.as_ref().pid_symmetric()
    }

    fn obj_footprint(&self, ctx: &ProcCtx) -> Option<Vec<ObjId>> {
        self.as_ref().obj_footprint(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct DecideInput;

    impl Protocol for DecideInput {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Nil
        }

        fn step(
            &self,
            ctx: &ProcCtx,
            _local: &Value,
            _resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            Ok(Action::Decide(ctx.input.clone()))
        }
    }

    #[test]
    fn ctx_carries_identity_and_input() {
        let ctx = ProcCtx::new(Pid::new(1), 3, Value::Int(7));
        assert_eq!(ctx.pid, Pid::new(1));
        assert_eq!(ctx.nprocs, 3);
        let p = DecideInput;
        assert_eq!(
            p.step(&ctx, &Value::Nil, None).unwrap(),
            Action::Decide(Value::Int(7))
        );
    }

    #[test]
    fn arc_protocol_delegates() {
        let p: std::sync::Arc<dyn Protocol> = std::sync::Arc::new(DecideInput);
        let ctx = ProcCtx::new(Pid::new(0), 1, Value::Int(1));
        assert_eq!(p.start(&ctx), Value::Nil);
        assert_eq!(
            p.step(&ctx, &Value::Nil, None).unwrap(),
            Action::Decide(Value::Int(1))
        );
    }

    #[test]
    fn action_invoke_helper() {
        let a = Action::invoke(Value::Nil, ObjId::new(2), Op::new("read"));
        match a {
            Action::Invoke { obj, op, .. } => {
                assert_eq!(obj, ObjId::new(2));
                assert_eq!(op.name, "read");
            }
            Action::Decide(_) => panic!("expected invoke"),
        }
    }
}
