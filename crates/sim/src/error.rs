//! Error types for the simulator.

use std::error::Error;
use std::fmt;

use crate::ids::{ObjId, Pid};
use crate::op::Op;

/// An error raised by an [`ObjectSpec`](crate::ObjectSpec) when an operation
/// cannot be interpreted.
///
/// These errors indicate *mis-use* of an object (wrong operation name, wrong
/// arity, ill-typed arguments or a corrupted state value); legal-but-hanging
/// operations are expressed with [`Outcome::hang`](crate::Outcome::hang)
/// instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObjectError {
    /// The operation name is not supported by this object.
    UnknownOp {
        /// The object type that rejected the operation.
        object: &'static str,
        /// The rejected operation.
        op: Op,
    },
    /// The operation has the wrong number of arguments.
    BadArity {
        /// The object type that rejected the operation.
        object: &'static str,
        /// The rejected operation.
        op: Op,
        /// The number of arguments the operation requires.
        expected: usize,
    },
    /// An argument or the stored state had an unexpected shape.
    TypeMismatch {
        /// The object type that rejected the operation.
        object: &'static str,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// The operation is illegal in the current state (e.g. re-using a
    /// one-shot index).
    IllegalOp {
        /// The object type that rejected the operation.
        object: &'static str,
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::UnknownOp { object, op } => {
                write!(f, "object type `{object}` does not support operation `{op}`")
            }
            ObjectError::BadArity { object, op, expected } => write!(
                f,
                "operation `{op}` on object type `{object}` requires {expected} argument(s), got {}",
                op.args.len()
            ),
            ObjectError::TypeMismatch { object, detail } => {
                write!(f, "type mismatch on object type `{object}`: {detail}")
            }
            ObjectError::IllegalOp { object, detail } => {
                write!(f, "illegal operation on object type `{object}`: {detail}")
            }
        }
    }
}

impl Error for ObjectError {}

/// An error raised by a [`Protocol`](crate::Protocol) or
/// [`Implementation`](crate::Implementation) step function.
///
/// Protocol state machines are written by hand; this error signals an
/// internal inconsistency (e.g. a response of an unexpected shape) rather
/// than a property violation of the algorithm under study.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolError {
    message: String,
}

impl ProtocolError {
    /// Creates a protocol error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        ProtocolError {
            message: message.into(),
        }
    }

    /// Returns the error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.message)
    }
}

impl Error for ProtocolError {}

/// A top-level simulation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// An object rejected an operation.
    Object {
        /// The object that rejected the operation.
        obj: ObjId,
        /// The pid whose step triggered the rejection.
        pid: Pid,
        /// The underlying object error.
        source: ObjectError,
    },
    /// A protocol step function failed.
    Protocol {
        /// The failing process.
        pid: Pid,
        /// The underlying protocol error.
        source: ProtocolError,
    },
    /// A protocol invoked an operation on an object id that does not exist.
    UnknownObject {
        /// The failing process.
        pid: Pid,
        /// The unknown object id.
        obj: ObjId,
    },
    /// A step was requested for a process that cannot take one.
    ProcessNotEnabled(Pid),
    /// An object spec returned zero outcomes for a legal operation.
    NoOutcomes {
        /// The object that produced no outcome.
        obj: ObjId,
        /// The pid whose step triggered the evaluation.
        pid: Pid,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Object { obj, pid, source } => {
                write!(f, "step of {pid} on {obj} failed: {source}")
            }
            SimError::Protocol { pid, source } => write!(f, "step of {pid} failed: {source}"),
            SimError::UnknownObject { pid, obj } => {
                write!(f, "{pid} invoked an operation on unknown object {obj}")
            }
            SimError::ProcessNotEnabled(pid) => {
                write!(f, "{pid} is not enabled (decided, hung or crashed)")
            }
            SimError::NoOutcomes { obj, pid } => {
                write!(f, "object {obj} produced no outcome for a step of {pid}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Object { source, .. } => Some(source),
            SimError::Protocol { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn object_error_messages() {
        let e = ObjectError::UnknownOp {
            object: "register",
            op: Op::new("pop"),
        };
        assert!(e.to_string().contains("register"));
        assert!(e.to_string().contains("pop"));

        let e = ObjectError::BadArity {
            object: "register",
            op: Op::unary("write", Value::Nil),
            expected: 2,
        };
        assert!(e.to_string().contains("requires 2"));
        assert!(e.to_string().contains("got 1"));
    }

    #[test]
    fn sim_error_sources_chain() {
        let source = ObjectError::TypeMismatch {
            object: "counter",
            detail: "x".into(),
        };
        let e = SimError::Object {
            obj: ObjId::new(0),
            pid: Pid::new(1),
            source,
        };
        assert!(e.source().is_some());
        let e = SimError::ProcessNotEnabled(Pid::new(0));
        assert!(e.source().is_none());
        assert!(e.to_string().contains("P0"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ObjectError>();
        assert_send_sync::<ProtocolError>();
        assert_send_sync::<SimError>();
    }
}
