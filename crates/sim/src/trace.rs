//! Execution traces: what happened, step by step.

use std::fmt;

use crate::ids::Pid;
use crate::system::StepInfo;

/// One recorded step of an execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Position of the step in the execution (0-based).
    pub index: usize,
    /// The process that took the step.
    pub pid: Pid,
    /// What the step did.
    pub info: StepInfo,
}

/// A linear record of an execution, suitable for debugging and for replaying
/// a schedule via [`ReplayScheduler`](crate::ReplayScheduler).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a step.
    pub fn push(&mut self, pid: Pid, info: StepInfo) {
        let index = self.events.len();
        self.events.push(TraceEvent { index, pid, info });
    }

    /// Returns the recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Returns the number of recorded steps.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Extracts the schedule (the sequence of pids) for replay.
    pub fn schedule(&self) -> Vec<Pid> {
        self.events.iter().map(|e| e.pid).collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            match &e.info {
                StepInfo::Invoked {
                    obj,
                    op,
                    resp: Some(r),
                } => writeln!(f, "{:>4}  {}  {obj}.{op} -> {r}", e.index, e.pid)?,
                StepInfo::Invoked {
                    obj,
                    op,
                    resp: None,
                } => writeln!(f, "{:>4}  {}  {obj}.{op} -> HANGS", e.index, e.pid)?,
                StepInfo::Decided(v) => writeln!(f, "{:>4}  {}  decide {v}", e.index, e.pid)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ObjId;
    use crate::op::Op;
    use crate::value::Value;

    #[test]
    fn push_and_schedule() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(
            Pid::new(1),
            StepInfo::Invoked {
                obj: ObjId::new(0),
                op: Op::new("read"),
                resp: Some(Value::Nil),
            },
        );
        t.push(Pid::new(0), StepInfo::Decided(Value::Int(3)));
        assert_eq!(t.len(), 2);
        assert_eq!(t.schedule(), vec![Pid::new(1), Pid::new(0)]);
        assert_eq!(t.events()[1].index, 1);
    }

    #[test]
    fn display_renders_all_event_kinds() {
        let mut t = Trace::new();
        t.push(
            Pid::new(0),
            StepInfo::Invoked {
                obj: ObjId::new(2),
                op: Op::new("touch"),
                resp: None,
            },
        );
        t.push(Pid::new(1), StepInfo::Decided(Value::Sym("ok")));
        let s = t.to_string();
        assert!(s.contains("HANGS"));
        assert!(s.contains("decide ok"));
        assert!(s.contains("O2.touch()"));
    }
}
