//! Newtype identifiers for processes and shared objects.

use std::fmt;

/// The identifier of a simulated process.
///
/// Processes are numbered densely from `0` in the order they are added to a
/// [`SystemBuilder`](crate::SystemBuilder).
///
/// # Examples
///
/// ```
/// use subconsensus_sim::Pid;
/// let p = Pid::new(2);
/// assert_eq!(p.index(), 2);
/// assert_eq!(p.to_string(), "P2");
/// ```
// `u32` keeps pid-carrying structures compact: an `Edge` of the state graph
// is (Pid, u32) = 8 bytes instead of 16.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(u32);

impl Pid {
    /// Creates a process identifier from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` (identifiers are stored as
    /// `u32`; real systems have a few dozen processes at most).
    pub const fn new(index: usize) -> Self {
        assert!(index <= u32::MAX as usize, "Pid index exceeds u32");
        Pid(index as u32)
    }

    /// Returns the dense index of this process.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Enumerates the first `n` process identifiers, `P0 .. P(n-1)`.
    pub fn all(n: usize) -> impl Iterator<Item = Pid> {
        (0..n).map(Pid::new)
    }
}

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for Pid {
    fn from(index: usize) -> Self {
        Pid::new(index)
    }
}

/// The identifier of a shared base object.
///
/// Objects are numbered densely from `0` in the order they are added to a
/// [`SystemBuilder`](crate::SystemBuilder).
///
/// # Examples
///
/// ```
/// use subconsensus_sim::ObjId;
/// assert_eq!(ObjId::new(0).to_string(), "O0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(u32);

impl ObjId {
    /// Creates an object identifier from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    pub const fn new(index: usize) -> Self {
        assert!(index <= u32::MAX as usize, "ObjId index exceeds u32");
        ObjId(index as u32)
    }

    /// Returns the dense index of this object.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the identifier `offset` slots after this one.
    ///
    /// Convenient for protocols that are handed a contiguous block of objects
    /// (e.g. an array of registers) identified by its first element.
    pub const fn offset(self, offset: usize) -> Self {
        ObjId::new(self.0 as usize + offset)
    }
}

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

impl From<usize> for ObjId {
    fn from(index: usize) -> Self {
        ObjId::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_roundtrip_and_display() {
        let p = Pid::new(5);
        assert_eq!(p.index(), 5);
        assert_eq!(p.to_string(), "P5");
        assert_eq!(format!("{p:?}"), "P5");
        assert_eq!(Pid::from(5usize), p);
    }

    #[test]
    fn pid_all_enumerates_in_order() {
        let pids: Vec<Pid> = Pid::all(3).collect();
        assert_eq!(pids, vec![Pid::new(0), Pid::new(1), Pid::new(2)]);
    }

    #[test]
    fn objid_offset() {
        let base = ObjId::new(4);
        assert_eq!(base.offset(0), base);
        assert_eq!(base.offset(3).index(), 7);
        assert_eq!(base.to_string(), "O4");
    }
}
