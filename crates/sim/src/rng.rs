//! A small, dependency-free pseudo-random number generator.
//!
//! The simulator needs randomness in exactly two places: random adversary
//! schedules ([`RandomScheduler`](crate::RandomScheduler)) and randomized
//! tests. Neither needs cryptographic strength — they need *seeded
//! reproducibility* (same seed ⇒ same schedule) with no external
//! dependency, so the whole workspace builds offline. This is the
//! SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014): one 64-bit
//! word of state, full period 2⁶⁴, and excellent statistical quality for
//! simulation workloads.

/// A seeded SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use subconsensus_sim::SmallRng;
///
/// let mut a = SmallRng::seed_from_u64(42);
/// let mut b = SmallRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// assert!(a.gen_index(10) < 10);
/// ```
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a seed; equal seeds produce equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform index in `0..n`.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is at most
    /// `n / 2⁶⁴`, far below anything a simulation can observe.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index: empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Returns a uniform value in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "gen_range_i64: empty range");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(((self.next_u64() as u128 * span as u128) >> 64) as i64)
    }

    /// Returns a uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let sa: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn gen_index_stays_in_range_and_covers_it() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i = rng.gen_index(7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn gen_range_i64_covers_negative_ranges() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range_i64(-5, 5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_is_not_constant() {
        let mut rng = SmallRng::seed_from_u64(3);
        let heads = (0..1000).filter(|_| rng.gen_bool()).count();
        assert!((300..700).contains(&heads), "heads = {heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_index_range_panics() {
        SmallRng::seed_from_u64(0).gen_index(0);
    }
}
