//! Systems and configurations.
//!
//! A [`SystemSpec`] is the immutable description of a finite asynchronous
//! system: the shared base objects and the protocol + input of every process.
//! A [`Config`] is one point of the execution: the state of every object and
//! of every process. Configurations are plain hashable values; taking a step
//! is a *pure* function from a configuration to its successor
//! configuration(s), which serves both the runners and the model checker.

use std::sync::Arc;

use crate::error::SimError;
use crate::ids::{ObjId, Pid};
use crate::object::ObjectSpec;
use crate::op::Op;
use crate::protocol::{Action, ProcCtx, Protocol};
use crate::value::Value;

/// The execution status of a process inside a [`Config`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ProcStatus {
    /// The process has not yet taken its first step.
    Fresh,
    /// The process has taken at least one step and may take more.
    Running,
    /// The process decided the given value and halted.
    Decided(Value),
    /// The process is stuck forever inside an operation that hung.
    Hung,
}

impl ProcStatus {
    /// Returns `true` if the process may still take steps.
    pub fn is_enabled(&self) -> bool {
        matches!(self, ProcStatus::Fresh | ProcStatus::Running)
    }

    /// Returns the decided value, if any.
    pub fn decision(&self) -> Option<&Value> {
        match self {
            ProcStatus::Decided(v) => Some(v),
            _ => None,
        }
    }
}

/// The state of one process inside a [`Config`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ProcState {
    /// The protocol-local state.
    pub local: Value,
    /// The response to the most recent invocation, if any.
    pub resp: Option<Value>,
    /// The execution status.
    pub status: ProcStatus,
}

/// A word-sized set of process ids, iterated in ascending order.
///
/// The allocation-free replacement for collecting enabled pids into a
/// `Vec<Pid>` on the model checker's hot path. Capped at 64 processes —
/// far beyond anything an exhaustive state-space exploration can handle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnabledSet {
    bits: u64,
}

impl EnabledSet {
    /// Returns `true` if no process is in the set.
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Returns the number of processes in the set.
    pub fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Returns `true` if `pid` is in the set.
    pub fn contains(self, pid: Pid) -> bool {
        pid.index() < 64 && self.bits & (1 << pid.index()) != 0
    }

    /// Iterates the pids in ascending order.
    pub fn iter(self) -> EnabledIter {
        EnabledIter { bits: self.bits }
    }
}

impl IntoIterator for EnabledSet {
    type Item = Pid;
    type IntoIter = EnabledIter;

    fn into_iter(self) -> EnabledIter {
        self.iter()
    }
}

/// Ascending iterator over an [`EnabledSet`].
#[derive(Clone, Debug)]
pub struct EnabledIter {
    bits: u64,
}

impl Iterator for EnabledIter {
    type Item = Pid;

    fn next(&mut self) -> Option<Pid> {
        if self.bits == 0 {
            return None;
        }
        let i = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(Pid::new(i))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for EnabledIter {}

/// A configuration: the state of every shared object and every process.
///
/// Configurations are cheap to clone, hash and compare, which the model
/// checker exploits for visited-set deduplication. Object *and process*
/// states are held behind [`Arc`]s so cloning a configuration is shallow —
/// a step replaces one object `Arc` and one process `Arc` and shares the
/// rest, which keeps cloning O(objects + procs) pointer bumps regardless
/// of how large the individual states grow (e.g. the Algorithm-3 tables
/// of the `wrn` extension).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Config {
    objects: Vec<Arc<Value>>,
    procs: Vec<Arc<ProcState>>,
}

impl Config {
    /// Returns the state of object `obj`.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range for the system this configuration
    /// belongs to.
    pub fn object_state(&self, obj: ObjId) -> &Value {
        &self.objects[obj.index()]
    }

    /// Returns the state of process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn proc_state(&self, pid: Pid) -> &ProcState {
        &self.procs[pid.index()]
    }

    /// Returns the enabled processes as an allocation-free bitset.
    ///
    /// # Panics
    ///
    /// Panics if the system has more than 64 processes (well beyond the
    /// reach of exhaustive exploration).
    pub fn enabled_set(&self) -> EnabledSet {
        assert!(
            self.procs.len() <= 64,
            "EnabledSet supports at most 64 processes"
        );
        let mut bits = 0u64;
        for (i, p) in self.procs.iter().enumerate() {
            if p.status.is_enabled() {
                bits |= 1 << i;
            }
        }
        EnabledSet { bits }
    }

    /// Iterates the pids that may still take a step, in ascending order,
    /// without allocating.
    pub fn enabled_iter(&self) -> EnabledIter {
        self.enabled_set().iter()
    }

    /// Returns the pids that may still take a step.
    ///
    /// Allocates; hot paths should prefer [`Config::enabled_iter`].
    pub fn enabled(&self) -> Vec<Pid> {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.status.is_enabled())
            .map(|(i, _)| Pid::new(i))
            .collect()
    }

    /// Returns `true` if no process can take a step (everyone decided or
    /// hung).
    pub fn is_final(&self) -> bool {
        self.procs.iter().all(|p| !p.status.is_enabled())
    }

    /// Returns each process's decision (`None` for undecided processes).
    pub fn decisions(&self) -> Vec<Option<Value>> {
        self.procs
            .iter()
            .map(|p| p.status.decision().cloned())
            .collect()
    }

    /// Returns the sorted, deduplicated set of values decided so far.
    pub fn decided_values(&self) -> Vec<Value> {
        let mut vals: Vec<Value> = self
            .procs
            .iter()
            .filter_map(|p| p.status.decision().cloned())
            .collect();
        vals.sort();
        vals.dedup();
        vals
    }

    /// Returns the number of processes.
    pub fn nprocs(&self) -> usize {
        self.procs.len()
    }
}

/// A human-readable summary of what one step did, for traces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepInfo {
    /// The process applied `op` to `obj` and received `resp` (`None` = the
    /// operation hung).
    Invoked {
        /// The target object.
        obj: ObjId,
        /// The applied operation.
        op: Op,
        /// The response, or `None` if the operation hung.
        resp: Option<Value>,
    },
    /// The process decided.
    Decided(Value),
}

/// The immutable description of a system: objects, protocols and inputs.
#[derive(Clone)]
pub struct SystemSpec {
    objects: Arc<Vec<Box<dyn ObjectSpec>>>,
    protocols: Vec<Arc<dyn Protocol>>,
    inputs: Vec<Value>,
}

impl std::fmt::Debug for SystemSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemSpec")
            .field(
                "objects",
                &self
                    .objects
                    .iter()
                    .map(|o| o.type_name())
                    .collect::<Vec<_>>(),
            )
            .field("nprocs", &self.protocols.len())
            .field("inputs", &self.inputs)
            .finish()
    }
}

impl SystemSpec {
    /// Returns the number of processes.
    pub fn nprocs(&self) -> usize {
        self.protocols.len()
    }

    /// Returns the number of shared objects.
    pub fn nobjects(&self) -> usize {
        self.objects.len()
    }

    /// Returns the object spec registered under `obj`, if any.
    pub fn object(&self, obj: ObjId) -> Option<&dyn ObjectSpec> {
        self.objects
            .get(obj.index())
            .map(|b| b.as_ref() as &dyn ObjectSpec)
    }

    /// Returns the per-process context of `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn ctx(&self, pid: Pid) -> ProcCtx {
        ProcCtx::new(pid, self.nprocs(), self.inputs[pid.index()].clone())
    }

    /// Builds the initial configuration.
    pub fn initial_config(&self) -> Config {
        let objects = self
            .objects
            .iter()
            .map(|o| Arc::new(o.initial_state()))
            .collect();
        let procs = (0..self.nprocs())
            .map(|i| {
                let pid = Pid::new(i);
                Arc::new(ProcState {
                    local: self.protocols[i].start(&self.ctx(pid)),
                    resp: None,
                    status: ProcStatus::Fresh,
                })
            })
            .collect();
        Config { objects, procs }
    }

    /// Computes every successor configuration of scheduling `pid` in
    /// `config`, together with a trace summary of the step.
    ///
    /// Deterministic systems produce exactly one successor; a step whose
    /// operation targets a nondeterministic object produces one successor
    /// per *distinct* outcome — outcomes yielding identical configurations
    /// are deduplicated, so the model checker never records parallel edges
    /// to the same state.
    ///
    /// Cloning copies only `Arc` pointers; the stepped process (and the
    /// touched object, for invocations) get fresh `Arc`s, everything else
    /// is shared with `config`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProcessNotEnabled`] if `pid` cannot take a step,
    /// and propagates protocol and object errors.
    pub fn successors(
        &self,
        config: &Config,
        pid: Pid,
    ) -> Result<Vec<(Config, StepInfo)>, SimError> {
        let i = pid.index();
        let proc = config
            .procs
            .get(i)
            .ok_or(SimError::ProcessNotEnabled(pid))?;
        if !proc.status.is_enabled() {
            return Err(SimError::ProcessNotEnabled(pid));
        }
        let ctx = self.ctx(pid);
        let action = self.protocols[i]
            .step(&ctx, &proc.local, proc.resp.as_ref())
            .map_err(|source| SimError::Protocol { pid, source })?;
        match action {
            Action::Decide(v) => {
                let mut next = config.clone();
                next.procs[i] = Arc::new(ProcState {
                    local: proc.local.clone(),
                    resp: None,
                    status: ProcStatus::Decided(v.clone()),
                });
                Ok(vec![(next, StepInfo::Decided(v))])
            }
            Action::Invoke { local, obj, op } => {
                let spec = self
                    .objects
                    .get(obj.index())
                    .ok_or(SimError::UnknownObject { pid, obj })?;
                let outcomes = spec
                    .apply(&config.objects[obj.index()], &op)
                    .map_err(|source| SimError::Object { obj, pid, source })?;
                if outcomes.is_empty() {
                    return Err(SimError::NoOutcomes { obj, pid });
                }
                let mut succs: Vec<(Config, StepInfo)> = Vec::with_capacity(outcomes.len());
                for out in outcomes {
                    let mut next = config.clone();
                    next.objects[obj.index()] = Arc::new(out.state);
                    let (resp, status) = match out.response {
                        Some(resp) => (Some(resp), ProcStatus::Running),
                        None => (None, ProcStatus::Hung),
                    };
                    next.procs[i] = Arc::new(ProcState {
                        local: local.clone(),
                        resp: resp.clone(),
                        status,
                    });
                    // Identical configurations imply identical StepInfo
                    // (the response is part of the process state), so a
                    // pairwise config scan over the short outcome list
                    // suffices to dedup.
                    if succs.iter().any(|(c, _)| *c == next) {
                        continue;
                    }
                    succs.push((
                        next,
                        StepInfo::Invoked {
                            obj,
                            op: op.clone(),
                            resp,
                        },
                    ));
                }
                Ok(succs)
            }
        }
    }
}

/// Incremental builder for [`SystemSpec`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use subconsensus_sim::{Action, ProcCtx, Protocol, ProtocolError, SystemBuilder, Value};
///
/// #[derive(Debug)]
/// struct DecideInput;
/// impl Protocol for DecideInput {
///     fn start(&self, _ctx: &ProcCtx) -> Value { Value::Nil }
///     fn step(&self, ctx: &ProcCtx, _l: &Value, _r: Option<&Value>)
///         -> Result<Action, ProtocolError> {
///         Ok(Action::Decide(ctx.input.clone()))
///     }
/// }
///
/// let mut b = SystemBuilder::new();
/// b.add_process(Arc::new(DecideInput), Value::Int(3));
/// let spec = b.build();
/// assert_eq!(spec.nprocs(), 1);
/// ```
#[derive(Debug, Default)]
pub struct SystemBuilder {
    objects: Vec<Box<dyn ObjectSpec>>,
    protocols: Vec<Arc<dyn Protocol>>,
    inputs: Vec<Value>,
}

impl SystemBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a shared object and returns its id.
    pub fn add_object(&mut self, spec: impl ObjectSpec + 'static) -> ObjId {
        self.add_boxed_object(Box::new(spec))
    }

    /// Registers an already-boxed shared object and returns its id.
    pub fn add_boxed_object(&mut self, spec: Box<dyn ObjectSpec>) -> ObjId {
        let id = ObjId::new(self.objects.len());
        self.objects.push(spec);
        id
    }

    /// Registers `n` copies of an object produced by `make` and returns the
    /// id of the first; the copies occupy a contiguous id range.
    pub fn add_object_array<F>(&mut self, n: usize, mut make: F) -> ObjId
    where
        F: FnMut(usize) -> Box<dyn ObjectSpec>,
    {
        let base = ObjId::new(self.objects.len());
        for i in 0..n {
            self.objects.push(make(i));
        }
        base
    }

    /// Adds a process running `protocol` with task input `input`; returns its
    /// pid.
    pub fn add_process(&mut self, protocol: Arc<dyn Protocol>, input: Value) -> Pid {
        let pid = Pid::new(self.protocols.len());
        self.protocols.push(protocol);
        self.inputs.push(input);
        pid
    }

    /// Adds one process per input, all running the same `protocol`.
    pub fn add_processes<I>(&mut self, protocol: Arc<dyn Protocol>, inputs: I)
    where
        I: IntoIterator<Item = Value>,
    {
        for input in inputs {
            self.add_process(Arc::clone(&protocol), input);
        }
    }

    /// Finishes the build.
    pub fn build(self) -> SystemSpec {
        SystemSpec {
            objects: Arc::new(self.objects),
            protocols: self.protocols,
            inputs: self.inputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{ObjectError, ProtocolError};
    use crate::object::Outcome;

    /// A register supporting `read()` / `write(v)`.
    #[derive(Debug)]
    struct Reg;

    impl ObjectSpec for Reg {
        fn type_name(&self) -> &'static str {
            "reg"
        }

        fn initial_state(&self) -> Value {
            Value::Nil
        }

        fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            match op.name {
                "read" => Ok(vec![Outcome::ret(state.clone(), state.clone())]),
                "write" => {
                    let v = op.arg(0).cloned().unwrap_or(Value::Nil);
                    Ok(vec![Outcome::ret(v, Value::Nil)])
                }
                _ => Err(ObjectError::UnknownOp {
                    object: "reg",
                    op: op.clone(),
                }),
            }
        }
    }

    /// An object whose only operation hangs.
    #[derive(Debug)]
    struct Tarpit;

    impl ObjectSpec for Tarpit {
        fn type_name(&self) -> &'static str {
            "tarpit"
        }

        fn initial_state(&self) -> Value {
            Value::Nil
        }

        fn apply(&self, state: &Value, _op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            Ok(vec![Outcome::hang(state.clone())])
        }
    }

    /// Writes input, reads, decides what it read.
    #[derive(Debug)]
    struct WriteReadDecide {
        reg: ObjId,
    }

    impl Protocol for WriteReadDecide {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Int(0)
        }

        fn step(
            &self,
            ctx: &ProcCtx,
            local: &Value,
            resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            match local.as_int() {
                Some(0) => Ok(Action::invoke(
                    Value::Int(1),
                    self.reg,
                    Op::unary("write", ctx.input.clone()),
                )),
                Some(1) => Ok(Action::invoke(Value::Int(2), self.reg, Op::new("read"))),
                Some(2) => {
                    let read = resp
                        .cloned()
                        .ok_or_else(|| ProtocolError::new("missing resp"))?;
                    Ok(Action::Decide(read))
                }
                _ => Err(ProtocolError::new("corrupt pc")),
            }
        }
    }

    #[derive(Debug)]
    struct Toucher {
        obj: ObjId,
    }

    impl Protocol for Toucher {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Nil
        }

        fn step(
            &self,
            _ctx: &ProcCtx,
            _local: &Value,
            _resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            Ok(Action::invoke(Value::Nil, self.obj, Op::new("touch")))
        }
    }

    fn solo_system() -> SystemSpec {
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        b.add_process(Arc::new(WriteReadDecide { reg }), Value::Int(42));
        b.build()
    }

    #[test]
    fn solo_run_by_hand() {
        let spec = solo_system();
        let c0 = spec.initial_config();
        assert_eq!(c0.enabled(), vec![Pid::new(0)]);
        assert!(!c0.is_final());

        let (c1, info) = spec.successors(&c0, Pid::new(0)).unwrap().pop().unwrap();
        match info {
            StepInfo::Invoked { op, resp, .. } => {
                assert_eq!(op.name, "write");
                assert_eq!(resp, Some(Value::Nil));
            }
            StepInfo::Decided(_) => panic!("expected invoke"),
        }
        assert_eq!(c1.object_state(ObjId::new(0)), &Value::Int(42));

        let (c2, _) = spec.successors(&c1, Pid::new(0)).unwrap().pop().unwrap();
        let (c3, info) = spec.successors(&c2, Pid::new(0)).unwrap().pop().unwrap();
        assert_eq!(info, StepInfo::Decided(Value::Int(42)));
        assert!(c3.is_final());
        assert_eq!(c3.decided_values(), vec![Value::Int(42)]);
        assert_eq!(c3.decisions(), vec![Some(Value::Int(42))]);
    }

    #[test]
    fn stepping_a_decided_process_is_an_error() {
        let spec = solo_system();
        let mut c = spec.initial_config();
        for _ in 0..3 {
            c = spec.successors(&c, Pid::new(0)).unwrap().pop().unwrap().0;
        }
        let err = spec.successors(&c, Pid::new(0)).unwrap_err();
        assert_eq!(err, SimError::ProcessNotEnabled(Pid::new(0)));
    }

    #[test]
    fn hanging_outcome_hangs_the_process() {
        let mut b = SystemBuilder::new();
        let pit = b.add_object(Tarpit);
        b.add_process(Arc::new(Toucher { obj: pit }), Value::Nil);
        let spec = b.build();
        let c0 = spec.initial_config();
        let (c1, info) = spec.successors(&c0, Pid::new(0)).unwrap().pop().unwrap();
        assert_eq!(
            info,
            StepInfo::Invoked {
                obj: pit,
                op: Op::new("touch"),
                resp: None
            }
        );
        assert_eq!(c1.proc_state(Pid::new(0)).status, ProcStatus::Hung);
        assert!(c1.is_final());
        assert!(c1.decided_values().is_empty());
    }

    #[test]
    fn unknown_object_is_reported() {
        let mut b = SystemBuilder::new();
        b.add_process(Arc::new(Toucher { obj: ObjId::new(9) }), Value::Nil);
        let spec = b.build();
        let c0 = spec.initial_config();
        let err = spec.successors(&c0, Pid::new(0)).unwrap_err();
        assert_eq!(
            err,
            SimError::UnknownObject {
                pid: Pid::new(0),
                obj: ObjId::new(9)
            }
        );
    }

    #[test]
    fn object_array_allocates_contiguous_ids() {
        let mut b = SystemBuilder::new();
        let base = b.add_object_array(3, |_| Box::new(Reg));
        assert_eq!(base, ObjId::new(0));
        let next = b.add_object(Reg);
        assert_eq!(next, ObjId::new(3));
        let spec = b.build();
        assert_eq!(spec.nobjects(), 4);
        assert_eq!(spec.object(ObjId::new(2)).unwrap().type_name(), "reg");
        assert!(spec.object(ObjId::new(4)).is_none());
    }

    /// A register whose only operation nondeterministically flips to one of
    /// the given states — with deliberate duplicates among the outcomes.
    #[derive(Debug)]
    struct Flaky {
        states: Vec<Value>,
    }

    impl ObjectSpec for Flaky {
        fn type_name(&self) -> &'static str {
            "flaky"
        }

        fn initial_state(&self) -> Value {
            Value::Nil
        }

        fn apply(&self, _state: &Value, _op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            Ok(self
                .states
                .iter()
                .map(|s| Outcome::ret(s.clone(), Value::Nil))
                .collect())
        }
    }

    #[test]
    fn enabled_set_matches_enabled_vec() {
        let spec = solo_system();
        let mut c = spec.initial_config();
        for _ in 0..4 {
            let set = c.enabled_set();
            assert_eq!(set.iter().collect::<Vec<_>>(), c.enabled());
            assert_eq!(set.len(), c.enabled().len());
            assert_eq!(set.is_empty(), c.enabled().is_empty());
            for p in 0..c.nprocs() {
                assert_eq!(
                    set.contains(Pid::new(p)),
                    c.enabled().contains(&Pid::new(p))
                );
            }
            if c.is_final() {
                break;
            }
            c = spec.successors(&c, Pid::new(0)).unwrap().pop().unwrap().0;
        }
        assert!(c.is_final());
        assert!(c.enabled_set().is_empty());
        assert_eq!(c.enabled_iter().next(), None);
    }

    #[test]
    fn cloning_shares_unstepped_state() {
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        let p: Arc<dyn Protocol> = Arc::new(WriteReadDecide { reg });
        b.add_process(Arc::clone(&p), Value::Int(1));
        b.add_process(p, Value::Int(2));
        let spec = b.build();
        let c0 = spec.initial_config();
        let (c1, _) = spec.successors(&c0, Pid::new(0)).unwrap().pop().unwrap();
        // P0's state was rebuilt; P1's is pointer-shared with c0.
        assert!(!Arc::ptr_eq(&c0.procs[0], &c1.procs[0]));
        assert!(Arc::ptr_eq(&c0.procs[1], &c1.procs[1]));
    }

    #[test]
    fn duplicate_outcomes_yield_one_successor() {
        let mut b = SystemBuilder::new();
        let obj = b.add_object(Flaky {
            states: vec![Value::Int(1), Value::Int(2), Value::Int(1)],
        });
        b.add_process(Arc::new(Toucher { obj }), Value::Nil);
        let spec = b.build();
        let c0 = spec.initial_config();
        let succs = spec.successors(&c0, Pid::new(0)).unwrap();
        assert_eq!(succs.len(), 2, "the duplicated outcome must collapse");
        assert_ne!(succs[0].0, succs[1].0);
    }

    #[test]
    fn configs_hash_and_compare() {
        use std::collections::HashSet;
        let spec = solo_system();
        let c0 = spec.initial_config();
        let c0b = spec.initial_config();
        assert_eq!(c0, c0b);
        let mut set = HashSet::new();
        set.insert(c0.clone());
        assert!(set.contains(&c0b));
        let (c1, _) = spec.successors(&c0, Pid::new(0)).unwrap().pop().unwrap();
        assert!(!set.contains(&c1));
    }
}
