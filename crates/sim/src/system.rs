//! Systems and configurations.
//!
//! A [`SystemSpec`] is the immutable description of a finite asynchronous
//! system: the shared base objects and the protocol + input of every process.
//! A [`Config`] is one point of the execution: the state of every object and
//! of every process. Configurations are plain hashable values; taking a step
//! is a *pure* function from a configuration to its successor
//! configuration(s), which serves both the runners and the model checker.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::error::SimError;
use crate::ids::{ObjId, Pid};
use crate::intern::{CompactConfig, PendingConfig, StateInterner};
use crate::object::ObjectSpec;
use crate::op::Op;
use crate::protocol::{Action, ProcCtx, Protocol};
use crate::value::Value;

/// The execution status of a process inside a [`Config`].
///
/// The derived total order ([`Ord`]) has no semantic meaning; it exists so
/// process states can be sorted into a canonical arrangement by
/// [`Config::canonicalize`].
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProcStatus {
    /// The process has not yet taken its first step.
    Fresh,
    /// The process has taken at least one step and may take more.
    Running,
    /// The process decided the given value and halted.
    Decided(Value),
    /// The process is stuck forever inside an operation that hung.
    Hung,
}

impl ProcStatus {
    /// Returns `true` if the process may still take steps.
    pub fn is_enabled(&self) -> bool {
        matches!(self, ProcStatus::Fresh | ProcStatus::Running)
    }

    /// Returns the decided value, if any.
    pub fn decision(&self) -> Option<&Value> {
        match self {
            ProcStatus::Decided(v) => Some(v),
            _ => None,
        }
    }
}

/// The state of one process inside a [`Config`].
///
/// The derived total order ([`Ord`]) is an arbitrary but fixed tie-breaker
/// used by [`Config::canonicalize`] to pick one representative per
/// symmetry orbit; it carries no semantic meaning.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcState {
    /// The protocol-local state.
    pub local: Value,
    /// The response to the most recent invocation, if any.
    pub resp: Option<Value>,
    /// The execution status.
    pub status: ProcStatus,
}

/// A word-sized set of process ids, iterated in ascending order.
///
/// The allocation-free replacement for collecting enabled pids into a
/// `Vec<Pid>` on the model checker's hot path. Capped at 64 processes —
/// far beyond anything an exhaustive state-space exploration can handle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnabledSet {
    bits: u64,
}

impl EnabledSet {
    /// Returns `true` if no process is in the set.
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Returns the number of processes in the set.
    pub fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Returns `true` if `pid` is in the set.
    pub fn contains(self, pid: Pid) -> bool {
        pid.index() < 64 && self.bits & (1 << pid.index()) != 0
    }

    /// Returns the raw bit mask (bit `i` set ⇔ process `i` is in the set),
    /// for callers that keep their own word-sized pid masks (the partial-
    /// order-reduced model checker).
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Iterates the pids in ascending order.
    pub fn iter(self) -> EnabledIter {
        EnabledIter { bits: self.bits }
    }
}

impl IntoIterator for EnabledSet {
    type Item = Pid;
    type IntoIter = EnabledIter;

    fn into_iter(self) -> EnabledIter {
        self.iter()
    }
}

/// Ascending iterator over an [`EnabledSet`].
#[derive(Clone, Debug)]
pub struct EnabledIter {
    bits: u64,
}

impl Iterator for EnabledIter {
    type Item = Pid;

    fn next(&mut self) -> Option<Pid> {
        if self.bits == 0 {
            return None;
        }
        let i = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(Pid::new(i))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for EnabledIter {}

/// The process symmetry groups of a system: disjoint sets of pids that are
/// pairwise interchangeable.
///
/// Two processes are interchangeable when swapping their entire states in
/// any configuration yields a configuration with identical future behavior
/// (up to the same swap). In the oblivious object model this holds whenever
/// the processes run the same protocol with equal inputs and the protocol's
/// behavior is independent of `ctx.pid`
/// ([`Protocol::pid_symmetric`](crate::Protocol::pid_symmetric)): objects
/// never learn the caller's identity, so such processes cannot be told
/// apart by anything in the system.
///
/// [`SystemBuilder::build`] computes the groups automatically under exactly
/// that rule; [`SystemBuilder::set_symmetry_groups`] overrides them for
/// systems whose symmetry the automatic rule cannot see (e.g. per-block
/// symmetry of a partitioned system where the protocol reads `ctx.pid`
/// only to select a block-local object).
///
/// Only groups of two or more processes are stored — singletons are
/// trivially symmetric with themselves.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SymmetryGroups {
    groups: Vec<Vec<Pid>>,
}

impl SymmetryGroups {
    /// The trivial symmetry (no interchangeable processes).
    pub fn trivial() -> Self {
        Self::default()
    }

    /// Builds symmetry groups from explicit pid sets.
    ///
    /// Each group is sorted; groups with fewer than two pids are dropped.
    ///
    /// # Panics
    ///
    /// Panics if any pid occurs in more than one group.
    pub fn new<I, G>(groups: I) -> Self
    where
        I: IntoIterator<Item = G>,
        G: IntoIterator<Item = Pid>,
    {
        let mut seen = std::collections::HashSet::new();
        let mut out: Vec<Vec<Pid>> = Vec::new();
        for group in groups {
            let mut g: Vec<Pid> = group.into_iter().collect();
            g.sort_unstable();
            for &p in &g {
                assert!(
                    seen.insert(p),
                    "symmetry groups must be disjoint: {p} repeats"
                );
            }
            if g.len() >= 2 {
                out.push(g);
            }
        }
        SymmetryGroups { groups: out }
    }

    /// Returns `true` if there is no nontrivial group.
    pub fn is_trivial(&self) -> bool {
        self.groups.is_empty()
    }

    /// The nontrivial groups, each sorted ascending.
    pub fn groups(&self) -> &[Vec<Pid>] {
        &self.groups
    }

    /// The number of orbit members one canonical representative stands for:
    /// the product over groups of `|group|!`. This is the best-case
    /// state-space reduction factor of an orbit-quotient exploration.
    pub fn orbit_size_bound(&self) -> usize {
        self.groups
            .iter()
            .map(|g| (1..=g.len()).product::<usize>())
            .fold(1usize, usize::saturating_mul)
    }
}

/// A configuration: the state of every shared object and every process.
///
/// Configurations are cheap to clone, hash and compare, which the model
/// checker exploits for visited-set deduplication. Object *and process*
/// states are held behind [`Arc`]s so cloning a configuration is shallow —
/// a step replaces one object `Arc` and one process `Arc` and shares the
/// rest, which keeps cloning O(objects + procs) pointer bumps regardless
/// of how large the individual states grow (e.g. the Algorithm-3 tables
/// of the `wrn` extension).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Config {
    objects: Vec<Arc<Value>>,
    procs: Vec<Arc<ProcState>>,
}

impl Config {
    /// Returns the state of object `obj`.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range for the system this configuration
    /// belongs to.
    pub fn object_state(&self, obj: ObjId) -> &Value {
        &self.objects[obj.index()]
    }

    /// Returns the state of process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn proc_state(&self, pid: Pid) -> &ProcState {
        &self.procs[pid.index()]
    }

    /// Returns the enabled processes as an allocation-free bitset.
    ///
    /// # Panics
    ///
    /// Panics if the system has more than 64 processes (well beyond the
    /// reach of exhaustive exploration).
    pub fn enabled_set(&self) -> EnabledSet {
        assert!(
            self.procs.len() <= 64,
            "EnabledSet supports at most 64 processes"
        );
        let mut bits = 0u64;
        for (i, p) in self.procs.iter().enumerate() {
            if p.status.is_enabled() {
                bits |= 1 << i;
            }
        }
        EnabledSet { bits }
    }

    /// Iterates the pids that may still take a step, in ascending order,
    /// without allocating.
    pub fn enabled_iter(&self) -> EnabledIter {
        self.enabled_set().iter()
    }

    /// Returns the pids that may still take a step.
    ///
    /// Allocates; hot paths should prefer [`Config::enabled_iter`].
    pub fn enabled(&self) -> Vec<Pid> {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.status.is_enabled())
            .map(|(i, _)| Pid::new(i))
            .collect()
    }

    /// Returns `true` if no process can take a step (everyone decided or
    /// hung).
    pub fn is_final(&self) -> bool {
        self.procs.iter().all(|p| !p.status.is_enabled())
    }

    /// Returns each process's decision (`None` for undecided processes).
    pub fn decisions(&self) -> Vec<Option<Value>> {
        self.procs
            .iter()
            .map(|p| p.status.decision().cloned())
            .collect()
    }

    /// Returns the sorted, deduplicated set of values decided so far.
    pub fn decided_values(&self) -> Vec<Value> {
        let mut vals: Vec<Value> = self
            .procs
            .iter()
            .filter_map(|p| p.status.decision().cloned())
            .collect();
        vals.sort();
        vals.dedup();
        vals
    }

    /// Returns the number of processes.
    pub fn nprocs(&self) -> usize {
        self.procs.len()
    }

    /// Returns the number of shared objects.
    pub fn nobjects(&self) -> usize {
        self.objects.len()
    }

    /// Returns the canonical representative of this configuration's orbit
    /// under within-group pid permutations: each group's process states are
    /// sorted into ascending [`ProcState`] order.
    ///
    /// Because process states live behind [`Arc`]s, canonicalization is
    /// pointer swaps — no process state is deep-copied. Two configurations
    /// related by a within-group permutation canonicalize to the *same*
    /// configuration, and canonicalization is idempotent.
    ///
    /// This covers systems whose object states embed no pids (always true
    /// when the grouped processes are pid-independent, since oblivious
    /// objects only learn pids through operation arguments). When explicit
    /// override groups put pid-*dependent* processes in one group, use
    /// [`SystemSpec::canonicalize_config`], which additionally relabels
    /// pids inside object state via
    /// [`ObjectSpec::relabel_pids`](crate::ObjectSpec::relabel_pids).
    ///
    /// # Panics
    ///
    /// Panics if a group mentions a pid outside this configuration.
    pub fn canonicalize(&self, groups: &SymmetryGroups) -> Config {
        match self.canonical_perm(groups) {
            None => self.clone(),
            Some(perm) => self.permuted(&perm),
        }
    }

    /// Computes the pid permutation (`perm[old] = new`) that canonicalizes
    /// this configuration, or `None` if it is already canonical.
    pub(crate) fn canonical_perm(&self, groups: &SymmetryGroups) -> Option<Vec<usize>> {
        let mut perm: Option<Vec<usize>> = None;
        for group in groups.groups() {
            let sorted = group
                .windows(2)
                .all(|w| self.procs[w[0].index()] <= self.procs[w[1].index()]);
            if sorted {
                continue;
            }
            let perm = perm.get_or_insert_with(|| (0..self.procs.len()).collect());
            // Stable sort of the group's old indices by state; ties keep
            // ascending pid order, so the permutation is deterministic.
            let mut order: Vec<usize> = group.iter().map(|p| p.index()).collect();
            order.sort_by(|&a, &b| self.procs[a].cmp(&self.procs[b]));
            for (slot, &old) in group.iter().zip(&order) {
                perm[old] = slot.index();
            }
        }
        perm
    }

    /// Returns this configuration with process states rearranged by `perm`
    /// (`perm[old_pid] = new_pid`): the state of process `old` becomes the
    /// state of process `new`. Object states are shared untouched.
    ///
    /// Exposed so tests can exercise orbit membership directly; the model
    /// checker only applies permutations produced by canonicalization.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..nprocs()`.
    pub fn permuted(&self, perm: &[usize]) -> Config {
        assert_eq!(perm.len(), self.procs.len(), "permutation length mismatch");
        let mut procs = self.procs.clone();
        let mut hit = vec![false; perm.len()];
        for (old, &new) in perm.iter().enumerate() {
            assert!(!hit[new], "not a permutation: target {new} repeats");
            hit[new] = true;
            procs[new] = Arc::clone(&self.procs[old]);
        }
        Config {
            objects: self.objects.clone(),
            procs,
        }
    }

    /// The raw object/process state slices, for the interner
    /// (`crate::intern`), which hash-conses them without deep copies.
    pub(crate) fn parts(&self) -> (&[Arc<Value>], &[Arc<ProcState>]) {
        (&self.objects, &self.procs)
    }

    /// Reassembles a configuration from shared state `Arc`s — the
    /// materialization path out of an interner's arenas.
    pub(crate) fn from_parts(objects: Vec<Arc<Value>>, procs: Vec<Arc<ProcState>>) -> Config {
        Config { objects, procs }
    }
}

/// A human-readable summary of what one step did, for traces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepInfo {
    /// The process applied `op` to `obj` and received `resp` (`None` = the
    /// operation hung).
    Invoked {
        /// The target object.
        obj: ObjId,
        /// The applied operation.
        op: Op,
        /// The response, or `None` if the operation hung.
        resp: Option<Value>,
    },
    /// The process decided.
    Decided(Value),
}

/// What one enabled step touches, for commutativity reasoning.
///
/// Computed by [`SystemSpec::step_footprint`] without mutating anything: it
/// runs the protocol's (pure) transition function to see what the process
/// *would* do next. Two steps with "disjoint" footprints commute — see
/// [`SystemSpec::footprints_independent`] for the exact relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepFootprint {
    /// The step only touches the process's own state (a `Decide`): it is
    /// independent of every step by every other process.
    Local,
    /// The step applies `op` to shared object `obj`.
    Object {
        /// The target object.
        obj: ObjId,
        /// The operation that would be applied.
        op: Op,
    },
}

/// The immutable description of a system: objects, protocols and inputs.
#[derive(Clone)]
pub struct SystemSpec {
    objects: Arc<Vec<Box<dyn ObjectSpec>>>,
    protocols: Vec<Arc<dyn Protocol>>,
    inputs: Vec<Value>,
    symmetry: Arc<SymmetryGroups>,
    /// `static_indep[p]` has bit `q` set iff processes `p` and `q` declared
    /// disjoint whole-execution object footprints (see
    /// [`Protocol::obj_footprint`]); empty masks when `nprocs > 64`.
    static_indep: Arc<Vec<u64>>,
}

impl std::fmt::Debug for SystemSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemSpec")
            .field(
                "objects",
                &self
                    .objects
                    .iter()
                    .map(|o| o.type_name())
                    .collect::<Vec<_>>(),
            )
            .field("nprocs", &self.protocols.len())
            .field("inputs", &self.inputs)
            .field("symmetry", &self.symmetry)
            .finish()
    }
}

impl SystemSpec {
    /// Returns the number of processes.
    pub fn nprocs(&self) -> usize {
        self.protocols.len()
    }

    /// Returns the number of shared objects.
    pub fn nobjects(&self) -> usize {
        self.objects.len()
    }

    /// Returns the object spec registered under `obj`, if any.
    pub fn object(&self, obj: ObjId) -> Option<&dyn ObjectSpec> {
        self.objects
            .get(obj.index())
            .map(|b| b.as_ref() as &dyn ObjectSpec)
    }

    /// Returns the per-process context of `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn ctx(&self, pid: Pid) -> ProcCtx {
        ProcCtx::new(pid, self.nprocs(), self.inputs[pid.index()].clone())
    }

    /// Returns the process symmetry groups of this system.
    ///
    /// Computed by [`SystemBuilder::build`] (automatically, or from an
    /// explicit [`SystemBuilder::set_symmetry_groups`] override).
    pub fn symmetry_groups(&self) -> &SymmetryGroups {
        &self.symmetry
    }

    /// Canonical content fingerprint of this system, stable across
    /// processes and runs of the same binary: the run-ledger key under
    /// which a future checking-as-a-service queue can cache verdicts
    /// (`std`'s `DefaultHasher` uses fixed SipHash keys, so equal specs
    /// hash equally everywhere).
    ///
    /// Covers the system's observable surface — process and object
    /// counts, object type names, per-process inputs, symmetry groups and
    /// the initial configuration (which embeds every initial object and
    /// process state). Protocol *code* is not hashable through `dyn
    /// Protocol`, so two systems differing only in unexecuted protocol
    /// logic collide; for cache keying, pair the hash with the binary's
    /// git revision (the run ledger records both).
    pub fn spec_fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.nprocs().hash(&mut h);
        self.nobjects().hash(&mut h);
        for obj in self.objects.iter() {
            obj.type_name().hash(&mut h);
        }
        for input in &self.inputs {
            input.hash(&mut h);
        }
        for group in self.symmetry.groups() {
            group.hash(&mut h);
        }
        self.initial_config().hash(&mut h);
        h.finish()
    }

    /// Canonicalizes `config` under this system's symmetry groups,
    /// additionally relabeling pids embedded in object states through
    /// [`ObjectSpec::relabel_pids`] when the applied permutation is
    /// nontrivial.
    ///
    /// For the automatic (pid-independent) groups the relabeling step is a
    /// no-op — oblivious objects only learn pids through operation
    /// arguments, which pid-independent protocols never pass — so this is
    /// exactly [`Config::canonicalize`]. Takes `config` by value so the
    /// already-canonical fast path costs nothing.
    pub fn canonicalize_config(&self, config: Config) -> Config {
        self.canonicalize_config_perm(config).0
    }

    /// Like [`SystemSpec::canonicalize_config`], but also returns the pid
    /// permutation that was applied (`perm[old] = new`), or `None` when the
    /// configuration was already canonical.
    ///
    /// The partial-order-reduced model checker needs the permutation to
    /// relabel its per-edge pid masks (sleep sets) into the canonical
    /// successor's naming.
    pub fn canonicalize_config_perm(&self, config: Config) -> (Config, Option<Vec<usize>>) {
        let Some(perm) = config.canonical_perm(&self.symmetry) else {
            return (config, None);
        };
        let mut next = config.permuted(&perm);
        for (i, obj) in self.objects.iter().enumerate() {
            if let Some(state) = obj.relabel_pids(&next.objects[i], &perm) {
                next.objects[i] = Arc::new(state);
            }
        }
        (next, Some(perm))
    }

    /// Computes what `pid`'s next step would touch in `config`, without
    /// taking the step.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProcessNotEnabled`] if `pid` cannot take a step,
    /// and propagates protocol errors.
    pub fn step_footprint(&self, config: &Config, pid: Pid) -> Result<StepFootprint, SimError> {
        let proc = config
            .procs
            .get(pid.index())
            .ok_or(SimError::ProcessNotEnabled(pid))?;
        let action = self.action_of(pid, proc)?;
        Ok(match action {
            Action::Decide(_) => StepFootprint::Local,
            Action::Invoke { obj, op, .. } => StepFootprint::Object { obj, op },
        })
    }

    /// Runs `pid`'s pure protocol transition on `proc` without mutating
    /// anything — the single source of truth for "what would this process
    /// do next", shared by the deep and interned stepping paths so the two
    /// can never disagree.
    fn action_of(&self, pid: Pid, proc: &ProcState) -> Result<Action, SimError> {
        if !proc.status.is_enabled() {
            return Err(SimError::ProcessNotEnabled(pid));
        }
        let ctx = self.ctx(pid);
        self.protocols[pid.index()]
            .step(&ctx, &proc.local, proc.resp.as_ref())
            .map_err(|source| SimError::Protocol { pid, source })
    }

    /// Returns `true` if two steps with the given footprints are
    /// *independent* in `config`: executing them in either order reaches the
    /// same configuration with the same responses.
    ///
    /// A [`StepFootprint::Local`] step (a decide) only touches its own
    /// process state, so it is independent of everything. Steps on different
    /// objects are always independent (each rewrites a disjoint part of the
    /// configuration). Steps on the *same* object are independent exactly
    /// when the object declares the two operations commuting in its current
    /// state ([`ObjectSpec::commutes`], default: never).
    pub fn footprints_independent(
        &self,
        config: &Config,
        a: &StepFootprint,
        b: &StepFootprint,
    ) -> bool {
        match (a, b) {
            (StepFootprint::Local, _) | (_, StepFootprint::Local) => true,
            (
                StepFootprint::Object { obj: oa, op: pa },
                StepFootprint::Object { obj: ob, op: pb },
            ) => {
                if oa != ob {
                    return true;
                }
                self.ops_commute(*oa, &config.objects[oa.index()], pa, pb)
            }
        }
    }

    /// Returns `true` if operations `a` and `b` commute on object `obj` in
    /// state `state` ([`ObjectSpec::commutes`], default: never), `false`
    /// for unknown object ids.
    ///
    /// This is [`SystemSpec::footprints_independent`] with the state
    /// supplied explicitly, so callers holding interned configurations can
    /// resolve the object state themselves.
    pub fn ops_commute(&self, obj: ObjId, state: &Value, a: &Op, b: &Op) -> bool {
        match self.objects.get(obj.index()) {
            Some(spec) => spec.commutes(state, a, b),
            None => false,
        }
    }

    /// Returns `true` if the next steps of enabled processes `p` and `q`
    /// are independent in `config` (see
    /// [`SystemSpec::footprints_independent`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProcessNotEnabled`] if either process cannot take
    /// a step, and propagates protocol errors.
    pub fn steps_independent(&self, config: &Config, p: Pid, q: Pid) -> Result<bool, SimError> {
        let fa = self.step_footprint(config, p)?;
        let fb = self.step_footprint(config, q)?;
        Ok(self.footprints_independent(config, &fa, &fb))
    }

    /// Returns the mask of processes statically independent of `pid`: bit
    /// `q` is set iff `pid` and `q` declared disjoint whole-execution object
    /// footprints via [`Protocol::obj_footprint`], so no step of one can
    /// ever conflict with a step of the other.
    ///
    /// All-zero (no static independence) when a protocol declines to
    /// declare a footprint, when `pid` is out of range, or when the system
    /// has more than 64 processes.
    pub fn static_independent(&self, pid: Pid) -> u64 {
        self.static_indep.get(pid.index()).copied().unwrap_or(0)
    }

    /// Builds the initial configuration.
    pub fn initial_config(&self) -> Config {
        let objects = self
            .objects
            .iter()
            .map(|o| Arc::new(o.initial_state()))
            .collect();
        let procs = (0..self.nprocs())
            .map(|i| {
                let pid = Pid::new(i);
                Arc::new(ProcState {
                    local: self.protocols[i].start(&self.ctx(pid)),
                    resp: None,
                    status: ProcStatus::Fresh,
                })
            })
            .collect();
        Config { objects, procs }
    }

    /// Computes every successor configuration of scheduling `pid` in
    /// `config`, together with a trace summary of the step.
    ///
    /// Deterministic systems produce exactly one successor; a step whose
    /// operation targets a nondeterministic object produces one successor
    /// per *distinct* outcome — outcomes yielding identical configurations
    /// are deduplicated, so the model checker never records parallel edges
    /// to the same state.
    ///
    /// Cloning copies only `Arc` pointers; the stepped process (and the
    /// touched object, for invocations) get fresh `Arc`s, everything else
    /// is shared with `config`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProcessNotEnabled`] if `pid` cannot take a step,
    /// and propagates protocol and object errors.
    pub fn successors(
        &self,
        config: &Config,
        pid: Pid,
    ) -> Result<Vec<(Config, StepInfo)>, SimError> {
        let i = pid.index();
        let proc = config
            .procs
            .get(i)
            .ok_or(SimError::ProcessNotEnabled(pid))?;
        let action = self.action_of(pid, proc)?;
        match action {
            Action::Decide(v) => {
                let mut next = config.clone();
                next.procs[i] = Arc::new(ProcState {
                    local: proc.local.clone(),
                    resp: None,
                    status: ProcStatus::Decided(v.clone()),
                });
                Ok(vec![(next, StepInfo::Decided(v))])
            }
            Action::Invoke { local, obj, op } => {
                let spec = self
                    .objects
                    .get(obj.index())
                    .ok_or(SimError::UnknownObject { pid, obj })?;
                let outcomes = spec
                    .apply(&config.objects[obj.index()], &op)
                    .map_err(|source| SimError::Object { obj, pid, source })?;
                if outcomes.is_empty() {
                    return Err(SimError::NoOutcomes { obj, pid });
                }
                let mut succs: Vec<(Config, StepInfo)> = Vec::with_capacity(outcomes.len());
                for out in outcomes {
                    let mut next = config.clone();
                    next.objects[obj.index()] = Arc::new(out.state);
                    let (resp, status) = match out.response {
                        Some(resp) => (Some(resp), ProcStatus::Running),
                        None => (None, ProcStatus::Hung),
                    };
                    next.procs[i] = Arc::new(ProcState {
                        local: local.clone(),
                        resp: resp.clone(),
                        status,
                    });
                    // Identical configurations imply identical StepInfo
                    // (the response is part of the process state), so a
                    // pairwise config scan over the short outcome list
                    // suffices to dedup.
                    if succs.iter().any(|(c, _)| *c == next) {
                        continue;
                    }
                    succs.push((
                        next,
                        StepInfo::Invoked {
                            obj,
                            op: op.clone(),
                            resp,
                        },
                    ));
                }
                Ok(succs)
            }
        }
    }

    // ---- interned (hash-consed) stepping ---------------------------------
    //
    // The `compact_*` methods are id-space twins of `initial_config` /
    // `step_footprint` / `successors` / `canonicalize_config_perm`: they
    // operate on rows of interner id words instead of deep `Config`s, are
    // read-only on the interner (fresh states ride along in a
    // `PendingConfig` until the merge thread interns them), and share
    // `action_of` / `ObjectSpec` hooks with the deep path so the two can
    // never diverge.

    /// Builds and interns the initial configuration.
    pub fn compact_initial(&self, interner: &mut StateInterner) -> CompactConfig {
        interner.intern_config(&self.initial_config())
    }

    /// The footprint of `pid`'s next step in the interned configuration
    /// `words` — the id-space twin of [`SystemSpec::step_footprint`].
    ///
    /// # Errors
    ///
    /// Exactly those of [`SystemSpec::step_footprint`].
    pub fn compact_footprint(
        &self,
        interner: &StateInterner,
        words: &[u32],
        pid: Pid,
    ) -> Result<StepFootprint, SimError> {
        let proc_id = *words
            .get(self.nobjects() + pid.index())
            .ok_or(SimError::ProcessNotEnabled(pid))?;
        let action = self.action_of(pid, interner.proc(proc_id))?;
        Ok(match action {
            Action::Decide(_) => StepFootprint::Local,
            Action::Invoke { obj, op, .. } => StepFootprint::Object { obj, op },
        })
    }

    /// Computes every successor of scheduling `pid` in the interned
    /// configuration `words`, as [`PendingConfig`]s: unchanged slots keep
    /// their id words, and only the stepped process (plus the touched
    /// object, for invocations) is resolved against the interner — already
    /// known states become id copies, genuinely fresh ones ride along for
    /// [`StateInterner::finalize`].
    ///
    /// Outcome deduplication matches [`SystemSpec::successors`]: outcomes
    /// denoting equal configurations collapse to the first occurrence.
    ///
    /// # Errors
    ///
    /// Exactly those of [`SystemSpec::successors`].
    pub fn compact_successors(
        &self,
        interner: &StateInterner,
        words: &[u32],
        pid: Pid,
    ) -> Result<Vec<PendingConfig>, SimError> {
        let nobjects = self.nobjects();
        let i = pid.index();
        let proc_id = *words
            .get(nobjects + i)
            .ok_or(SimError::ProcessNotEnabled(pid))?;
        let proc = interner.proc(proc_id);
        let action = self.action_of(pid, proc)?;
        match action {
            Action::Decide(v) => {
                let mut next = PendingConfig::copy_of(nobjects, words);
                next.set_proc_state(
                    interner,
                    i,
                    ProcState {
                        local: proc.local.clone(),
                        resp: None,
                        status: ProcStatus::Decided(v),
                    },
                );
                Ok(vec![next])
            }
            Action::Invoke { local, obj, op } => {
                let spec = self
                    .objects
                    .get(obj.index())
                    .ok_or(SimError::UnknownObject { pid, obj })?;
                let outcomes = spec
                    .apply(interner.object(words[obj.index()]), &op)
                    .map_err(|source| SimError::Object { obj, pid, source })?;
                if outcomes.is_empty() {
                    return Err(SimError::NoOutcomes { obj, pid });
                }
                let mut succs: Vec<PendingConfig> = Vec::with_capacity(outcomes.len());
                for out in outcomes {
                    let mut next = PendingConfig::copy_of(nobjects, words);
                    next.set_object_state(interner, obj.index(), out.state);
                    let (resp, status) = match out.response {
                        Some(resp) => (Some(resp), ProcStatus::Running),
                        None => (None, ProcStatus::Hung),
                    };
                    next.set_proc_state(
                        interner,
                        i,
                        ProcState {
                            local: local.clone(),
                            resp,
                            status,
                        },
                    );
                    if succs.contains(&next) {
                        continue;
                    }
                    succs.push(next);
                }
                Ok(succs)
            }
        }
    }

    /// Canonicalizes `pending` in id space — the twin of
    /// [`SystemSpec::canonicalize_config_perm`] — returning the applied pid
    /// permutation (`perm[old] = new`), or `None` when the configuration
    /// was already canonical.
    ///
    /// Group members are ordered by their underlying [`ProcState`]s with an
    /// id shortcut (equal resolved ids ⇒ equal states, by the interning
    /// invariant), so the chosen permutation — and hence the canonical
    /// representative — is identical to the deep path's.
    pub fn compact_canonicalize(
        &self,
        interner: &StateInterner,
        pending: &mut PendingConfig,
    ) -> Option<Vec<usize>> {
        let nprocs = pending.nprocs();
        let mut perm: Option<Vec<usize>> = None;
        {
            let cmp = |a: usize, b: usize| -> Ordering {
                if pending.procs_equal_ids(a, b) {
                    return Ordering::Equal;
                }
                pending
                    .proc_ref(interner, a)
                    .cmp(pending.proc_ref(interner, b))
            };
            for group in self.symmetry.groups() {
                let sorted = group
                    .windows(2)
                    .all(|w| cmp(w[0].index(), w[1].index()) != Ordering::Greater);
                if sorted {
                    continue;
                }
                let perm = perm.get_or_insert_with(|| (0..nprocs).collect());
                // Stable sort of the group's old indices by state; ties keep
                // ascending pid order, matching `Config::canonical_perm`.
                let mut order: Vec<usize> = group.iter().map(|p| p.index()).collect();
                order.sort_by(|&a, &b| cmp(a, b));
                for (slot, &old) in group.iter().zip(&order) {
                    perm[old] = slot.index();
                }
            }
        }
        let perm = perm?;
        pending.permute_procs(&perm);
        for idx in 0..self.objects.len() {
            if let Some(state) =
                self.objects[idx].relabel_pids(pending.object_ref(interner, idx), &perm)
            {
                pending.set_object_state(interner, idx, state);
            }
        }
        Some(perm)
    }
}

/// Incremental builder for [`SystemSpec`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use subconsensus_sim::{Action, ProcCtx, Protocol, ProtocolError, SystemBuilder, Value};
///
/// #[derive(Debug)]
/// struct DecideInput;
/// impl Protocol for DecideInput {
///     fn start(&self, _ctx: &ProcCtx) -> Value { Value::Nil }
///     fn step(&self, ctx: &ProcCtx, _l: &Value, _r: Option<&Value>)
///         -> Result<Action, ProtocolError> {
///         Ok(Action::Decide(ctx.input.clone()))
///     }
/// }
///
/// let mut b = SystemBuilder::new();
/// b.add_process(Arc::new(DecideInput), Value::Int(3));
/// let spec = b.build();
/// assert_eq!(spec.nprocs(), 1);
/// ```
#[derive(Debug, Default)]
pub struct SystemBuilder {
    objects: Vec<Box<dyn ObjectSpec>>,
    protocols: Vec<Arc<dyn Protocol>>,
    inputs: Vec<Value>,
    symmetry_override: Option<SymmetryGroups>,
}

impl SystemBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a shared object and returns its id.
    pub fn add_object(&mut self, spec: impl ObjectSpec + 'static) -> ObjId {
        self.add_boxed_object(Box::new(spec))
    }

    /// Registers an already-boxed shared object and returns its id.
    pub fn add_boxed_object(&mut self, spec: Box<dyn ObjectSpec>) -> ObjId {
        let id = ObjId::new(self.objects.len());
        self.objects.push(spec);
        id
    }

    /// Registers `n` copies of an object produced by `make` and returns the
    /// id of the first; the copies occupy a contiguous id range.
    pub fn add_object_array<F>(&mut self, n: usize, mut make: F) -> ObjId
    where
        F: FnMut(usize) -> Box<dyn ObjectSpec>,
    {
        let base = ObjId::new(self.objects.len());
        for i in 0..n {
            self.objects.push(make(i));
        }
        base
    }

    /// Adds a process running `protocol` with task input `input`; returns its
    /// pid.
    pub fn add_process(&mut self, protocol: Arc<dyn Protocol>, input: Value) -> Pid {
        let pid = Pid::new(self.protocols.len());
        self.protocols.push(protocol);
        self.inputs.push(input);
        pid
    }

    /// Adds one process per input, all running the same `protocol`.
    pub fn add_processes<I>(&mut self, protocol: Arc<dyn Protocol>, inputs: I)
    where
        I: IntoIterator<Item = Value>,
    {
        for input in inputs {
            self.add_process(Arc::clone(&protocol), input);
        }
    }

    /// Overrides the automatically computed process symmetry groups.
    ///
    /// Use this when the automatic rule (same protocol pointer + equal
    /// input + [`Protocol::pid_symmetric`]) is too conservative — e.g. a
    /// partitioned system whose protocol reads `ctx.pid` only to pick a
    /// block-local object is still symmetric *within* each equal-input
    /// block — or to disable symmetry entirely with
    /// [`SymmetryGroups::trivial`]. The caller asserts the declared
    /// processes really are interchangeable (and that objects whose states
    /// embed pids implement
    /// [`ObjectSpec::relabel_pids`](crate::ObjectSpec::relabel_pids));
    /// an unsound override makes orbit-quotient exploration merge
    /// configurations that are not equivalent.
    ///
    /// # Panics
    ///
    /// [`SystemBuilder::build`] panics if a group mentions a pid that was
    /// never added.
    pub fn set_symmetry_groups(&mut self, groups: SymmetryGroups) {
        self.symmetry_override = Some(groups);
    }

    /// Computes the automatic symmetry groups: maximal sets of processes
    /// sharing one protocol instance (pointer-equal `Arc`) and equal
    /// inputs, where the protocol declares pid-independence.
    // `j` indexes three parallel arrays (`grouped`, `protocols`, `inputs`);
    // an enumerate over one of them would hide that.
    #[allow(clippy::needless_range_loop)]
    fn auto_symmetry(&self) -> SymmetryGroups {
        let n = self.protocols.len();
        let mut grouped = vec![false; n];
        let mut groups: Vec<Vec<Pid>> = Vec::new();
        for i in 0..n {
            if grouped[i] || !self.protocols[i].pid_symmetric() {
                continue;
            }
            let mut g = vec![Pid::new(i)];
            for j in (i + 1)..n {
                if grouped[j] {
                    continue;
                }
                let same_protocol = std::ptr::eq(
                    Arc::as_ptr(&self.protocols[i]) as *const u8,
                    Arc::as_ptr(&self.protocols[j]) as *const u8,
                );
                if same_protocol && self.inputs[i] == self.inputs[j] {
                    grouped[j] = true;
                    g.push(Pid::new(j));
                }
            }
            if g.len() >= 2 {
                groups.push(g);
            }
        }
        SymmetryGroups { groups }
    }

    /// Finishes the build.
    ///
    /// Process symmetry groups are computed here: automatically (processes
    /// added with one [`SystemBuilder::add_processes`] call sharing a
    /// protocol instance and input, when the protocol is
    /// [`pid_symmetric`](Protocol::pid_symmetric)), or from the
    /// [`SystemBuilder::set_symmetry_groups`] override.
    ///
    /// # Panics
    ///
    /// Panics if an override group mentions a pid that was never added.
    pub fn build(self) -> SystemSpec {
        let symmetry = match &self.symmetry_override {
            Some(groups) => {
                for g in groups.groups() {
                    for p in g {
                        assert!(
                            p.index() < self.protocols.len(),
                            "symmetry group mentions unknown process {p}"
                        );
                    }
                }
                groups.clone()
            }
            None => self.auto_symmetry(),
        };
        let static_indep = Self::static_independence(&self.protocols, &self.inputs);
        SystemSpec {
            objects: Arc::new(self.objects),
            protocols: self.protocols,
            inputs: self.inputs,
            symmetry: Arc::new(symmetry),
            static_indep: Arc::new(static_indep),
        }
    }

    /// Pairwise static independence from declared whole-execution object
    /// footprints ([`Protocol::obj_footprint`]): `masks[p]` bit `q` ⇔ the
    /// declared footprints of `p` and `q` are disjoint. A process without a
    /// declaration is conservatively dependent on everyone.
    fn static_independence(protocols: &[Arc<dyn Protocol>], inputs: &[Value]) -> Vec<u64> {
        let n = protocols.len();
        let mut masks = vec![0u64; n];
        if n > 64 {
            return masks;
        }
        let fps: Vec<Option<Vec<ObjId>>> = (0..n)
            .map(|i| {
                let ctx = ProcCtx::new(Pid::new(i), n, inputs[i].clone());
                protocols[i].obj_footprint(&ctx).map(|mut objs| {
                    objs.sort_unstable();
                    objs.dedup();
                    objs
                })
            })
            .collect();
        for p in 0..n {
            for q in (p + 1)..n {
                if let (Some(a), Some(b)) = (&fps[p], &fps[q]) {
                    if a.iter().all(|o| !b.contains(o)) {
                        masks[p] |= 1 << q;
                        masks[q] |= 1 << p;
                    }
                }
            }
        }
        masks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{ObjectError, ProtocolError};
    use crate::object::Outcome;

    /// A register supporting `read()` / `write(v)`.
    #[derive(Debug)]
    struct Reg;

    impl ObjectSpec for Reg {
        fn type_name(&self) -> &'static str {
            "reg"
        }

        fn initial_state(&self) -> Value {
            Value::Nil
        }

        fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            match op.name {
                "read" => Ok(vec![Outcome::ret(state.clone(), state.clone())]),
                "write" => {
                    let v = op.arg(0).cloned().unwrap_or(Value::Nil);
                    Ok(vec![Outcome::ret(v, Value::Nil)])
                }
                _ => Err(ObjectError::UnknownOp {
                    object: "reg",
                    op: op.clone(),
                }),
            }
        }
    }

    /// An object whose only operation hangs.
    #[derive(Debug)]
    struct Tarpit;

    impl ObjectSpec for Tarpit {
        fn type_name(&self) -> &'static str {
            "tarpit"
        }

        fn initial_state(&self) -> Value {
            Value::Nil
        }

        fn apply(&self, state: &Value, _op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            Ok(vec![Outcome::hang(state.clone())])
        }
    }

    /// Writes input, reads, decides what it read.
    #[derive(Debug)]
    struct WriteReadDecide {
        reg: ObjId,
    }

    impl Protocol for WriteReadDecide {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Int(0)
        }

        fn step(
            &self,
            ctx: &ProcCtx,
            local: &Value,
            resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            match local.as_int() {
                Some(0) => Ok(Action::invoke(
                    Value::Int(1),
                    self.reg,
                    Op::unary("write", ctx.input.clone()),
                )),
                Some(1) => Ok(Action::invoke(Value::Int(2), self.reg, Op::new("read"))),
                Some(2) => {
                    let read = resp
                        .cloned()
                        .ok_or_else(|| ProtocolError::new("missing resp"))?;
                    Ok(Action::Decide(read))
                }
                _ => Err(ProtocolError::new("corrupt pc")),
            }
        }
    }

    #[derive(Debug)]
    struct Toucher {
        obj: ObjId,
    }

    impl Protocol for Toucher {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Nil
        }

        fn step(
            &self,
            _ctx: &ProcCtx,
            _local: &Value,
            _resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            Ok(Action::invoke(Value::Nil, self.obj, Op::new("touch")))
        }
    }

    fn solo_system() -> SystemSpec {
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        b.add_process(Arc::new(WriteReadDecide { reg }), Value::Int(42));
        b.build()
    }

    #[test]
    fn solo_run_by_hand() {
        let spec = solo_system();
        let c0 = spec.initial_config();
        assert_eq!(c0.enabled(), vec![Pid::new(0)]);
        assert!(!c0.is_final());

        let (c1, info) = spec.successors(&c0, Pid::new(0)).unwrap().pop().unwrap();
        match info {
            StepInfo::Invoked { op, resp, .. } => {
                assert_eq!(op.name, "write");
                assert_eq!(resp, Some(Value::Nil));
            }
            StepInfo::Decided(_) => panic!("expected invoke"),
        }
        assert_eq!(c1.object_state(ObjId::new(0)), &Value::Int(42));

        let (c2, _) = spec.successors(&c1, Pid::new(0)).unwrap().pop().unwrap();
        let (c3, info) = spec.successors(&c2, Pid::new(0)).unwrap().pop().unwrap();
        assert_eq!(info, StepInfo::Decided(Value::Int(42)));
        assert!(c3.is_final());
        assert_eq!(c3.decided_values(), vec![Value::Int(42)]);
        assert_eq!(c3.decisions(), vec![Some(Value::Int(42))]);
    }

    #[test]
    fn stepping_a_decided_process_is_an_error() {
        let spec = solo_system();
        let mut c = spec.initial_config();
        for _ in 0..3 {
            c = spec.successors(&c, Pid::new(0)).unwrap().pop().unwrap().0;
        }
        let err = spec.successors(&c, Pid::new(0)).unwrap_err();
        assert_eq!(err, SimError::ProcessNotEnabled(Pid::new(0)));
    }

    #[test]
    fn hanging_outcome_hangs_the_process() {
        let mut b = SystemBuilder::new();
        let pit = b.add_object(Tarpit);
        b.add_process(Arc::new(Toucher { obj: pit }), Value::Nil);
        let spec = b.build();
        let c0 = spec.initial_config();
        let (c1, info) = spec.successors(&c0, Pid::new(0)).unwrap().pop().unwrap();
        assert_eq!(
            info,
            StepInfo::Invoked {
                obj: pit,
                op: Op::new("touch"),
                resp: None
            }
        );
        assert_eq!(c1.proc_state(Pid::new(0)).status, ProcStatus::Hung);
        assert!(c1.is_final());
        assert!(c1.decided_values().is_empty());
    }

    #[test]
    fn unknown_object_is_reported() {
        let mut b = SystemBuilder::new();
        b.add_process(Arc::new(Toucher { obj: ObjId::new(9) }), Value::Nil);
        let spec = b.build();
        let c0 = spec.initial_config();
        let err = spec.successors(&c0, Pid::new(0)).unwrap_err();
        assert_eq!(
            err,
            SimError::UnknownObject {
                pid: Pid::new(0),
                obj: ObjId::new(9)
            }
        );
    }

    #[test]
    fn object_array_allocates_contiguous_ids() {
        let mut b = SystemBuilder::new();
        let base = b.add_object_array(3, |_| Box::new(Reg));
        assert_eq!(base, ObjId::new(0));
        let next = b.add_object(Reg);
        assert_eq!(next, ObjId::new(3));
        let spec = b.build();
        assert_eq!(spec.nobjects(), 4);
        assert_eq!(spec.object(ObjId::new(2)).unwrap().type_name(), "reg");
        assert!(spec.object(ObjId::new(4)).is_none());
    }

    /// A register whose only operation nondeterministically flips to one of
    /// the given states — with deliberate duplicates among the outcomes.
    #[derive(Debug)]
    struct Flaky {
        states: Vec<Value>,
    }

    impl ObjectSpec for Flaky {
        fn type_name(&self) -> &'static str {
            "flaky"
        }

        fn initial_state(&self) -> Value {
            Value::Nil
        }

        fn apply(&self, _state: &Value, _op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            Ok(self
                .states
                .iter()
                .map(|s| Outcome::ret(s.clone(), Value::Nil))
                .collect())
        }
    }

    #[test]
    fn enabled_set_matches_enabled_vec() {
        let spec = solo_system();
        let mut c = spec.initial_config();
        for _ in 0..4 {
            let set = c.enabled_set();
            assert_eq!(set.iter().collect::<Vec<_>>(), c.enabled());
            assert_eq!(set.len(), c.enabled().len());
            assert_eq!(set.is_empty(), c.enabled().is_empty());
            for p in 0..c.nprocs() {
                assert_eq!(
                    set.contains(Pid::new(p)),
                    c.enabled().contains(&Pid::new(p))
                );
            }
            if c.is_final() {
                break;
            }
            c = spec.successors(&c, Pid::new(0)).unwrap().pop().unwrap().0;
        }
        assert!(c.is_final());
        assert!(c.enabled_set().is_empty());
        assert_eq!(c.enabled_iter().next(), None);
    }

    #[test]
    fn cloning_shares_unstepped_state() {
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        let p: Arc<dyn Protocol> = Arc::new(WriteReadDecide { reg });
        b.add_process(Arc::clone(&p), Value::Int(1));
        b.add_process(p, Value::Int(2));
        let spec = b.build();
        let c0 = spec.initial_config();
        let (c1, _) = spec.successors(&c0, Pid::new(0)).unwrap().pop().unwrap();
        // P0's state was rebuilt; P1's is pointer-shared with c0.
        assert!(!Arc::ptr_eq(&c0.procs[0], &c1.procs[0]));
        assert!(Arc::ptr_eq(&c0.procs[1], &c1.procs[1]));
    }

    #[test]
    fn duplicate_outcomes_yield_one_successor() {
        let mut b = SystemBuilder::new();
        let obj = b.add_object(Flaky {
            states: vec![Value::Int(1), Value::Int(2), Value::Int(1)],
        });
        b.add_process(Arc::new(Toucher { obj }), Value::Nil);
        let spec = b.build();
        let c0 = spec.initial_config();
        let succs = spec.successors(&c0, Pid::new(0)).unwrap();
        assert_eq!(succs.len(), 2, "the duplicated outcome must collapse");
        assert_ne!(succs[0].0, succs[1].0);
    }

    #[test]
    fn configs_hash_and_compare() {
        use std::collections::HashSet;
        let spec = solo_system();
        let c0 = spec.initial_config();
        let c0b = spec.initial_config();
        assert_eq!(c0, c0b);
        let mut set = HashSet::new();
        set.insert(c0.clone());
        assert!(set.contains(&c0b));
        let (c1, _) = spec.successors(&c0, Pid::new(0)).unwrap().pop().unwrap();
        assert!(!set.contains(&c1));
    }

    /// Pid-independent version of [`WriteReadDecide`]: same steps, but
    /// declares symmetry so the builder may group equal-input processes.
    #[derive(Debug)]
    struct SymWriteReadDecide {
        reg: ObjId,
    }

    impl Protocol for SymWriteReadDecide {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Int(0)
        }

        fn step(
            &self,
            ctx: &ProcCtx,
            local: &Value,
            resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            WriteReadDecide { reg: self.reg }.step(ctx, local, resp)
        }

        fn pid_symmetric(&self) -> bool {
            true
        }
    }

    fn sym_system(inputs: &[i64]) -> SystemSpec {
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        let p: Arc<dyn Protocol> = Arc::new(SymWriteReadDecide { reg });
        b.add_processes(p, inputs.iter().map(|&i| Value::Int(i)));
        b.build()
    }

    #[test]
    fn symmetry_groups_sort_dedup_and_bound() {
        let g = SymmetryGroups::new([vec![Pid::new(2), Pid::new(0)], vec![Pid::new(1)]]);
        assert_eq!(g.groups(), &[vec![Pid::new(0), Pid::new(2)]]);
        assert!(!g.is_trivial());
        assert_eq!(g.orbit_size_bound(), 2);
        assert!(SymmetryGroups::trivial().is_trivial());
        assert_eq!(SymmetryGroups::trivial().orbit_size_bound(), 1);
        let g3 = SymmetryGroups::new([
            vec![Pid::new(0), Pid::new(1), Pid::new(2)],
            vec![Pid::new(3), Pid::new(4)],
        ]);
        assert_eq!(g3.orbit_size_bound(), 12);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_symmetry_groups_panic() {
        let _ = SymmetryGroups::new([
            vec![Pid::new(0), Pid::new(1)],
            vec![Pid::new(1), Pid::new(2)],
        ]);
    }

    #[test]
    fn builder_groups_equal_input_symmetric_processes() {
        // All-equal inputs through one declared-symmetric protocol: one group.
        let spec = sym_system(&[7, 7, 7]);
        assert_eq!(
            spec.symmetry_groups().groups(),
            &[vec![Pid::new(0), Pid::new(1), Pid::new(2)]]
        );
        // Inputs split the processes into per-input groups.
        let spec = sym_system(&[1, 2, 1, 2]);
        assert_eq!(
            spec.symmetry_groups().groups(),
            &[
                vec![Pid::new(0), Pid::new(2)],
                vec![Pid::new(1), Pid::new(3)]
            ]
        );
        // All-distinct inputs: trivial.
        assert!(sym_system(&[1, 2, 3]).symmetry_groups().is_trivial());
    }

    #[test]
    fn builder_requires_symmetry_declaration_and_shared_instance() {
        // Same shape, same inputs, but the protocol does not declare
        // pid-independence: no grouping.
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        let p: Arc<dyn Protocol> = Arc::new(WriteReadDecide { reg });
        b.add_processes(p, [Value::Int(7), Value::Int(7)]);
        assert!(b.build().symmetry_groups().is_trivial());

        // Two separate (if identical-looking) protocol instances: no grouping
        // — pointer equality is the conservative identity test.
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        b.add_process(Arc::new(SymWriteReadDecide { reg }), Value::Int(7));
        b.add_process(Arc::new(SymWriteReadDecide { reg }), Value::Int(7));
        assert!(b.build().symmetry_groups().is_trivial());
    }

    #[test]
    fn builder_override_replaces_auto_groups() {
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        let p: Arc<dyn Protocol> = Arc::new(SymWriteReadDecide { reg });
        b.add_processes(p, [Value::Int(7), Value::Int(7)]);
        b.set_symmetry_groups(SymmetryGroups::trivial());
        assert!(b.build().symmetry_groups().is_trivial());
    }

    #[test]
    #[should_panic(expected = "unknown process")]
    fn builder_override_validates_pids() {
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        b.add_process(Arc::new(SymWriteReadDecide { reg }), Value::Int(7));
        b.add_process(Arc::new(SymWriteReadDecide { reg }), Value::Int(7));
        b.set_symmetry_groups(SymmetryGroups::new([vec![Pid::new(0), Pid::new(5)]]));
        let _ = b.build();
    }

    #[test]
    fn canonicalize_merges_orbit_and_is_idempotent() {
        let spec = sym_system(&[7, 7, 7]);
        let groups = spec.symmetry_groups().clone();
        let c0 = spec.initial_config();
        // Step p0 once vs. step p2 once: same orbit, different configs.
        let (a, _) = spec.successors(&c0, Pid::new(0)).unwrap().pop().unwrap();
        let (b, _) = spec.successors(&c0, Pid::new(2)).unwrap().pop().unwrap();
        assert_ne!(a, b);
        let ca = a.canonicalize(&groups);
        let cb = b.canonicalize(&groups);
        assert_eq!(ca, cb, "orbit members must share one representative");
        assert_eq!(ca.canonicalize(&groups), ca, "canonicalize is idempotent");
        // The canonical form is untouched object-wise.
        assert_eq!(
            ca.object_state(ObjId::new(0)),
            a.object_state(ObjId::new(0))
        );
        // The initial config is symmetric, hence already canonical.
        assert_eq!(c0.canonicalize(&groups), c0);
    }

    #[test]
    fn canonicalize_shares_proc_state_arcs() {
        let spec = sym_system(&[7, 7]);
        let c0 = spec.initial_config();
        let (c1, _) = spec.successors(&c0, Pid::new(1)).unwrap().pop().unwrap();
        let canon = c1.canonicalize(spec.symmetry_groups());
        // Pointer swaps only: every proc Arc in `canon` is one of c1's.
        for p in &canon.procs {
            assert!(c1.procs.iter().any(|q| Arc::ptr_eq(p, q)));
        }
    }

    #[test]
    fn permuted_rearranges_and_validates() {
        let spec = sym_system(&[1, 2, 3]);
        let c0 = spec.initial_config();
        let (c1, _) = spec.successors(&c0, Pid::new(0)).unwrap().pop().unwrap();
        let rotated = c1.permuted(&[1, 2, 0]);
        assert_eq!(rotated.proc_state(Pid::new(1)), c1.proc_state(Pid::new(0)));
        assert_eq!(rotated.proc_state(Pid::new(2)), c1.proc_state(Pid::new(1)));
        assert_eq!(rotated.proc_state(Pid::new(0)), c1.proc_state(Pid::new(2)));
        // Identity round-trip.
        assert_eq!(rotated.permuted(&[2, 0, 1]), c1);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permuted_rejects_non_permutations() {
        let spec = sym_system(&[1, 2]);
        let _ = spec.initial_config().permuted(&[0, 0]);
    }

    /// A register that stores the pid passed to its `claim(p)` op — used to
    /// check that [`SystemSpec::canonicalize_config`] relabels object state.
    #[derive(Debug)]
    struct PidCell;

    impl ObjectSpec for PidCell {
        fn type_name(&self) -> &'static str {
            "pid-cell"
        }

        fn initial_state(&self) -> Value {
            Value::Nil
        }

        fn apply(&self, _state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            let v = op.arg(0).cloned().unwrap_or(Value::Nil);
            // The response must stay pid-free: responses live in process
            // state, which `relabel_pids` does not rewrite.
            Ok(vec![Outcome::ret(v, Value::Nil)])
        }

        fn relabel_pids(&self, state: &Value, perm: &[usize]) -> Option<Value> {
            let old = state.as_index()?;
            Some(Value::Int(perm[old] as i64))
        }
    }

    /// Claims the cell with its own pid, then decides.
    #[derive(Debug)]
    struct ClaimOwnPid {
        cell: ObjId,
    }

    impl Protocol for ClaimOwnPid {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Int(0)
        }

        fn step(
            &self,
            ctx: &ProcCtx,
            local: &Value,
            _resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            match local.as_int() {
                Some(0) => Ok(Action::invoke(
                    Value::Int(1),
                    self.cell,
                    Op::unary("claim", Value::Int(ctx.pid.index() as i64)),
                )),
                _ => Ok(Action::Decide(Value::Nil)),
            }
        }
    }

    #[test]
    fn canonicalize_config_relabels_object_pids() {
        // The protocol reads ctx.pid, so automatic grouping refuses it; an
        // explicit override plus `relabel_pids` restores the symmetry: after
        // one `claim`, "p0 claimed 0" and "p1 claimed 1" are the same orbit.
        let mut b = SystemBuilder::new();
        let cell = b.add_object(PidCell);
        let p: Arc<dyn Protocol> = Arc::new(ClaimOwnPid { cell });
        b.add_processes(p, [Value::Nil, Value::Nil]);
        assert!(b.symmetry_override.is_none());
        b.set_symmetry_groups(SymmetryGroups::new([vec![Pid::new(0), Pid::new(1)]]));
        let spec = b.build();

        let c0 = spec.initial_config();
        let (a, _) = spec.successors(&c0, Pid::new(0)).unwrap().pop().unwrap();
        let (b_, _) = spec.successors(&c0, Pid::new(1)).unwrap().pop().unwrap();
        assert_eq!(a.object_state(cell), &Value::Int(0));
        assert_eq!(b_.object_state(cell), &Value::Int(1));
        let ca = spec.canonicalize_config(a);
        let cb = spec.canonicalize_config(b_);
        assert_eq!(ca, cb, "relabeling must merge the claim orbit");
        // Without relabeling the configs would differ in the cell state.
        assert_eq!(ca.object_state(cell), cb.object_state(cell));
    }

    /// A protocol that pokes one fixed object forever and declares it.
    #[derive(Debug)]
    struct DeclaredToucher {
        obj: ObjId,
    }

    impl Protocol for DeclaredToucher {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Nil
        }

        fn step(
            &self,
            _ctx: &ProcCtx,
            _local: &Value,
            _resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            Ok(Action::invoke(Value::Nil, self.obj, Op::new("read")))
        }

        fn obj_footprint(&self, _ctx: &ProcCtx) -> Option<Vec<ObjId>> {
            Some(vec![self.obj])
        }
    }

    #[test]
    fn step_footprint_sees_the_next_action() {
        let spec = solo_system();
        let mut c = spec.initial_config();
        // pc 0 / pc 1: register ops.
        for expect_op in ["write", "read"] {
            match spec.step_footprint(&c, Pid::new(0)).unwrap() {
                StepFootprint::Object { obj, op } => {
                    assert_eq!(obj, ObjId::new(0));
                    assert_eq!(op.name, expect_op);
                }
                StepFootprint::Local => panic!("expected an object step"),
            }
            c = spec.successors(&c, Pid::new(0)).unwrap().pop().unwrap().0;
        }
        // pc 2: decide — a local footprint.
        assert_eq!(
            spec.step_footprint(&c, Pid::new(0)).unwrap(),
            StepFootprint::Local
        );
        c = spec.successors(&c, Pid::new(0)).unwrap().pop().unwrap().0;
        assert_eq!(
            spec.step_footprint(&c, Pid::new(0)),
            Err(SimError::ProcessNotEnabled(Pid::new(0)))
        );
    }

    #[test]
    fn independence_distinguishes_objects_and_defers_to_commutes() {
        // Two registers, two writers on different objects: independent.
        let mut b = SystemBuilder::new();
        let r0 = b.add_object(Reg);
        let r1 = b.add_object(Reg);
        b.add_process(Arc::new(WriteReadDecide { reg: r0 }), Value::Int(1));
        b.add_process(Arc::new(WriteReadDecide { reg: r1 }), Value::Int(2));
        let spec = b.build();
        let c0 = spec.initial_config();
        assert!(spec
            .steps_independent(&c0, Pid::new(0), Pid::new(1))
            .unwrap());

        // Same object, and the test `Reg` has no `commutes` override: two
        // writes are conservatively dependent.
        let mut b = SystemBuilder::new();
        let r = b.add_object(Reg);
        b.add_process(Arc::new(WriteReadDecide { reg: r }), Value::Int(1));
        b.add_process(Arc::new(WriteReadDecide { reg: r }), Value::Int(2));
        let spec = b.build();
        let c0 = spec.initial_config();
        assert!(!spec
            .steps_independent(&c0, Pid::new(0), Pid::new(1))
            .unwrap());

        // A decide is independent of anything.
        let c = spec.successors(&c0, Pid::new(0)).unwrap().pop().unwrap().0;
        let c = spec.successors(&c, Pid::new(0)).unwrap().pop().unwrap().0;
        assert_eq!(
            spec.step_footprint(&c, Pid::new(0)).unwrap(),
            StepFootprint::Local
        );
        assert!(spec
            .steps_independent(&c, Pid::new(0), Pid::new(1))
            .unwrap());
    }

    #[test]
    fn static_independence_requires_declared_disjoint_footprints() {
        // Declared, disjoint: statically independent.
        let mut b = SystemBuilder::new();
        let r0 = b.add_object(Reg);
        let r1 = b.add_object(Reg);
        b.add_process(Arc::new(DeclaredToucher { obj: r0 }), Value::Nil);
        b.add_process(Arc::new(DeclaredToucher { obj: r1 }), Value::Nil);
        let spec = b.build();
        assert_eq!(spec.static_independent(Pid::new(0)), 0b10);
        assert_eq!(spec.static_independent(Pid::new(1)), 0b01);

        // Declared, overlapping: dependent.
        let mut b = SystemBuilder::new();
        let r = b.add_object(Reg);
        b.add_process(Arc::new(DeclaredToucher { obj: r }), Value::Nil);
        b.add_process(Arc::new(DeclaredToucher { obj: r }), Value::Nil);
        let spec = b.build();
        assert_eq!(spec.static_independent(Pid::new(0)), 0);

        // Undeclared (default `obj_footprint` = None): dependent on everyone
        // even if the dynamic steps never share an object.
        let mut b = SystemBuilder::new();
        let r0 = b.add_object(Reg);
        let r1 = b.add_object(Reg);
        b.add_process(Arc::new(WriteReadDecide { reg: r0 }), Value::Int(1));
        b.add_process(Arc::new(WriteReadDecide { reg: r1 }), Value::Int(2));
        let spec = b.build();
        assert_eq!(spec.static_independent(Pid::new(0)), 0);
        // Out of range: no mask.
        assert_eq!(spec.static_independent(Pid::new(7)), 0);
    }

    #[test]
    fn canonicalize_config_perm_reports_the_applied_permutation() {
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        let p: Arc<dyn Protocol> = Arc::new(WriteReadDecide { reg });
        b.add_processes(p, [Value::Int(1), Value::Int(1)]);
        b.set_symmetry_groups(SymmetryGroups::new([vec![Pid::new(0), Pid::new(1)]]));
        let spec = b.build();
        let c0 = spec.initial_config();
        // Already canonical: no permutation.
        let (_, perm) = spec.canonicalize_config_perm(c0.clone());
        assert_eq!(perm, None);
        // Step p0 only: p0's local (1) now sorts after p1's (0), so
        // canonicalization swaps them and must say so.
        let (c, _) = spec.successors(&c0, Pid::new(0)).unwrap().pop().unwrap();
        let (canon, perm) = spec.canonicalize_config_perm(c.clone());
        assert_eq!(perm, Some(vec![1, 0]));
        assert_eq!(canon, c.permuted(&[1, 0]));
    }
}
