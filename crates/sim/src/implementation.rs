//! Implementations of high-level objects from base objects.
//!
//! Where a [`Protocol`](crate::Protocol) solves a one-shot *task* (each
//! process decides once), an [`Implementation`] realizes a long-lived
//! *object*: each process performs a sequence of high-level operations, and
//! each high-level operation is executed as a series of atomic steps on base
//! objects. The [`ConcurrentRunner`](crate::ConcurrentRunner) drives
//! implementations under a scheduler and records the resulting concurrent
//! [`History`](crate::History) for linearizability checking.

use std::fmt;

use crate::error::ProtocolError;
use crate::ids::ObjId;
use crate::op::Op;
use crate::protocol::ProcCtx;
use crate::value::Value;

/// The action an implementation takes on one step of a high-level operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImplStep {
    /// Perform one atomic operation on a base object.
    Invoke {
        /// Local state to hold while the base operation is in flight.
        local: Value,
        /// Target base object.
        obj: ObjId,
        /// Base operation.
        op: Op,
    },
    /// Complete the current high-level operation.
    Return {
        /// The high-level response.
        response: Value,
        /// The per-process memory to carry into the next high-level
        /// operation (e.g. a cached sequence number).
        memory: Value,
    },
}

impl ImplStep {
    /// Convenience constructor for [`ImplStep::Invoke`].
    pub fn invoke(local: Value, obj: ObjId, op: Op) -> Self {
        ImplStep::Invoke { local, obj, op }
    }

    /// Convenience constructor for [`ImplStep::Return`].
    pub fn ret(response: Value, memory: Value) -> Self {
        ImplStep::Return { response, memory }
    }
}

/// A deterministic, linearizable implementation of a high-level object from
/// base objects.
///
/// Per-process state comes in two flavors:
///
/// * **memory** — persists across high-level operations of the same process
///   (initialized by [`Implementation::init_memory`], updated by each
///   [`ImplStep::Return`]);
/// * **local** — scoped to one high-level operation (initialized by
///   [`Implementation::start_op`], threaded through [`Implementation::step`]).
///
/// Both are explicit [`Value`]s so that executions remain hashable.
pub trait Implementation: fmt::Debug + Send + Sync {
    /// Returns the initial per-process memory (defaults to [`Value::Nil`]).
    fn init_memory(&self, _ctx: &ProcCtx) -> Value {
        Value::Nil
    }

    /// Begins a high-level operation: returns the initial op-local state.
    fn start_op(&self, ctx: &ProcCtx, op: &Op, memory: &Value) -> Value;

    /// Takes one step of the current high-level operation.
    ///
    /// `resp` is the response to the previous base invocation (`None` on the
    /// first step of the operation).
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] on an internal inconsistency.
    fn step(
        &self,
        ctx: &ProcCtx,
        op: &Op,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<ImplStep, ProtocolError>;
}

impl Implementation for std::sync::Arc<dyn Implementation> {
    fn init_memory(&self, ctx: &ProcCtx) -> Value {
        self.as_ref().init_memory(ctx)
    }

    fn start_op(&self, ctx: &ProcCtx, op: &Op, memory: &Value) -> Value {
        self.as_ref().start_op(ctx, op, memory)
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        op: &Op,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<ImplStep, ProtocolError> {
        self.as_ref().step(ctx, op, local, resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Pid;

    /// Trivial implementation: every op returns its own first argument and
    /// counts ops in memory.
    #[derive(Debug)]
    struct Echo;

    impl Implementation for Echo {
        fn init_memory(&self, _ctx: &ProcCtx) -> Value {
            Value::Int(0)
        }

        fn start_op(&self, _ctx: &ProcCtx, _op: &Op, _memory: &Value) -> Value {
            Value::Nil
        }

        fn step(
            &self,
            _ctx: &ProcCtx,
            op: &Op,
            _local: &Value,
            _resp: Option<&Value>,
        ) -> Result<ImplStep, ProtocolError> {
            Ok(ImplStep::ret(
                op.arg(0).cloned().unwrap_or(Value::Nil),
                Value::Int(1),
            ))
        }
    }

    #[test]
    fn arc_impl_delegates() {
        let e: std::sync::Arc<dyn Implementation> = std::sync::Arc::new(Echo);
        let ctx = ProcCtx::new(Pid::new(0), 1, Value::Nil);
        assert_eq!(e.init_memory(&ctx), Value::Int(0));
        assert_eq!(e.start_op(&ctx, &Op::new("x"), &Value::Int(0)), Value::Nil);
        let s = e
            .step(&ctx, &Op::unary("x", Value::Int(9)), &Value::Nil, None)
            .unwrap();
        assert_eq!(s, ImplStep::ret(Value::Int(9), Value::Int(1)));
    }

    #[test]
    fn step_constructors() {
        let s = ImplStep::invoke(Value::Nil, ObjId::new(1), Op::new("read"));
        assert!(matches!(s, ImplStep::Invoke { .. }));
        let r = ImplStep::ret(Value::Int(1), Value::Nil);
        assert!(matches!(r, ImplStep::Return { .. }));
    }
}
