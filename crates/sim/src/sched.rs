//! Schedulers: the adversary that decides which process steps next.

use std::collections::HashMap;
use std::fmt;

use crate::ids::Pid;
use crate::rng::SmallRng;

/// A scheduler picks, at each point of the execution, which enabled process
/// takes the next step — this is the *adversary* of the asynchronous model.
///
/// `next_pid` receives the (non-empty, ascending) list of currently enabled
/// processes and returns one of them, or `None` to stop the execution early
/// (modeling a fail-stop of all remaining processes).
pub trait Scheduler: fmt::Debug {
    /// Picks the next process to step among `enabled`, or `None` to stop.
    fn next_pid(&mut self, enabled: &[Pid]) -> Option<Pid>;
}

/// Chooses among the possible outcomes of a nondeterministic object step.
///
/// Deterministic objects — the subject of the paper — always produce a single
/// outcome, in which case the chooser is never consulted.
pub trait OutcomeChooser: fmt::Debug {
    /// Returns an index in `0..count` (`count` ≥ 2).
    fn choose(&mut self, count: usize) -> usize;
}

/// Schedules enabled processes in cyclic pid order.
///
/// # Examples
///
/// ```
/// use subconsensus_sim::{Pid, RoundRobin, Scheduler};
/// let mut s = RoundRobin::new();
/// let ps = [Pid::new(0), Pid::new(2)];
/// assert_eq!(s.next_pid(&ps), Some(Pid::new(0)));
/// assert_eq!(s.next_pid(&ps), Some(Pid::new(2)));
/// assert_eq!(s.next_pid(&ps), Some(Pid::new(0)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler starting at pid 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn next_pid(&mut self, enabled: &[Pid]) -> Option<Pid> {
        if enabled.is_empty() {
            return None;
        }
        // First enabled pid with index >= self.next, else wrap to the first.
        let pick = enabled
            .iter()
            .copied()
            .find(|p| p.index() >= self.next)
            .unwrap_or(enabled[0]);
        self.next = pick.index() + 1;
        Some(pick)
    }
}

/// Schedules uniformly at random from a seed; doubles as a random
/// [`OutcomeChooser`].
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    rng: SmallRng,
}

impl RandomScheduler {
    /// Creates a random scheduler from a seed (same seed ⇒ same schedule).
    pub fn seeded(seed: u64) -> Self {
        RandomScheduler {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn next_pid(&mut self, enabled: &[Pid]) -> Option<Pid> {
        if enabled.is_empty() {
            return None;
        }
        Some(enabled[self.rng.gen_index(enabled.len())])
    }
}

impl OutcomeChooser for RandomScheduler {
    fn choose(&mut self, count: usize) -> usize {
        self.rng.gen_index(count)
    }
}

/// Always schedules the enabled process of highest priority.
///
/// With priority order `[p, q, r]` this produces the classic "solo run of
/// `p`, then `q` runs solo, …" adversary.
#[derive(Clone, Debug)]
pub struct PriorityScheduler {
    order: Vec<Pid>,
}

impl PriorityScheduler {
    /// Creates a scheduler with the given priority order (first = highest).
    pub fn new(order: Vec<Pid>) -> Self {
        PriorityScheduler { order }
    }
}

impl Scheduler for PriorityScheduler {
    fn next_pid(&mut self, enabled: &[Pid]) -> Option<Pid> {
        self.order
            .iter()
            .copied()
            .find(|p| enabled.contains(p))
            .or_else(|| enabled.first().copied())
    }
}

/// Replays a fixed schedule, then stops.
///
/// Entries whose process is no longer enabled are skipped; when the recorded
/// schedule is exhausted, `None` is returned (remaining processes fail-stop).
#[derive(Clone, Debug)]
pub struct ReplayScheduler {
    seq: Vec<Pid>,
    pos: usize,
}

impl ReplayScheduler {
    /// Creates a scheduler that replays `seq`.
    pub fn new(seq: Vec<Pid>) -> Self {
        ReplayScheduler { seq, pos: 0 }
    }
}

impl Scheduler for ReplayScheduler {
    fn next_pid(&mut self, enabled: &[Pid]) -> Option<Pid> {
        while self.pos < self.seq.len() {
            let pid = self.seq[self.pos];
            self.pos += 1;
            if enabled.contains(&pid) {
                return Some(pid);
            }
        }
        None
    }
}

/// Wraps an inner scheduler and fail-stops selected processes after a given
/// number of their own steps.
///
/// A crashed process is simply never scheduled again, which is exactly the
/// fail-stop model: no other process can distinguish a crashed process from a
/// very slow one.
#[derive(Clone, Debug)]
pub struct CrashScheduler<S> {
    inner: S,
    budget: HashMap<Pid, usize>,
    taken: HashMap<Pid, usize>,
}

impl<S: Scheduler> CrashScheduler<S> {
    /// Creates a crash adversary over `inner`; `budget` maps each process to
    /// the number of steps it takes before crashing (processes absent from
    /// the map never crash).
    pub fn new(inner: S, budget: HashMap<Pid, usize>) -> Self {
        CrashScheduler {
            inner,
            budget,
            taken: HashMap::new(),
        }
    }

    /// Convenience: crash `pid` before it takes any step at all.
    pub fn crash_initially(inner: S, pids: impl IntoIterator<Item = Pid>) -> Self {
        Self::new(inner, pids.into_iter().map(|p| (p, 0)).collect())
    }
}

impl<S: Scheduler> Scheduler for CrashScheduler<S> {
    fn next_pid(&mut self, enabled: &[Pid]) -> Option<Pid> {
        let alive: Vec<Pid> = enabled
            .iter()
            .copied()
            .filter(|p| {
                let taken = self.taken.get(p).copied().unwrap_or(0);
                // `Option::is_none_or` needs Rust 1.82; stay on MSRV 1.75.
                !self.budget.get(p).is_some_and(|b| taken >= *b)
            })
            .collect();
        if alive.is_empty() {
            return None;
        }
        let pick = self.inner.next_pid(&alive)?;
        *self.taken.entry(pick).or_insert(0) += 1;
        Some(pick)
    }
}

/// An [`OutcomeChooser`] that always picks the first outcome.
///
/// Useful as the chooser for purely deterministic systems, where it is never
/// actually consulted.
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstOutcome;

impl OutcomeChooser for FirstOutcome {
    fn choose(&mut self, _count: usize) -> usize {
        0
    }
}

/// Replays a fixed list of outcome choices (then falls back to 0).
#[derive(Clone, Debug)]
pub struct ReplayChooser {
    seq: Vec<usize>,
    pos: usize,
}

impl ReplayChooser {
    /// Creates a chooser replaying `seq`.
    pub fn new(seq: Vec<usize>) -> Self {
        ReplayChooser { seq, pos: 0 }
    }
}

impl OutcomeChooser for ReplayChooser {
    fn choose(&mut self, count: usize) -> usize {
        let c = self.seq.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        c.min(count - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(ix: &[usize]) -> Vec<Pid> {
        ix.iter().map(|&i| Pid::new(i)).collect()
    }

    #[test]
    fn round_robin_cycles_and_skips_disabled() {
        let mut s = RoundRobin::new();
        assert_eq!(s.next_pid(&pids(&[0, 1, 2])), Some(Pid::new(0)));
        assert_eq!(s.next_pid(&pids(&[0, 1, 2])), Some(Pid::new(1)));
        // P2 became disabled: wrap around.
        assert_eq!(s.next_pid(&pids(&[0, 1])), Some(Pid::new(0)));
        assert_eq!(s.next_pid(&pids(&[])), None);
    }

    #[test]
    fn random_is_reproducible_across_seeds() {
        let mut a = RandomScheduler::seeded(7);
        let mut b = RandomScheduler::seeded(7);
        let enabled = pids(&[0, 1, 2, 3]);
        for _ in 0..50 {
            assert_eq!(a.next_pid(&enabled), b.next_pid(&enabled));
        }
        let mut c = RandomScheduler::seeded(8);
        let seq_a: Vec<_> = (0..50).map(|_| a.next_pid(&enabled)).collect();
        let seq_c: Vec<_> = (0..50).map(|_| c.next_pid(&enabled)).collect();
        assert_ne!(seq_a, seq_c, "different seeds should (a.s.) differ");
    }

    #[test]
    fn priority_prefers_head_of_order() {
        let mut s = PriorityScheduler::new(pids(&[2, 0, 1]));
        assert_eq!(s.next_pid(&pids(&[0, 1, 2])), Some(Pid::new(2)));
        assert_eq!(s.next_pid(&pids(&[0, 1])), Some(Pid::new(0)));
        // Unknown pids fall back to the first enabled.
        assert_eq!(s.next_pid(&pids(&[5])), Some(Pid::new(5)));
    }

    #[test]
    fn replay_skips_disabled_then_stops() {
        let mut s = ReplayScheduler::new(pids(&[1, 1, 0]));
        assert_eq!(s.next_pid(&pids(&[0, 1])), Some(Pid::new(1)));
        // P1 disabled now: skip the second 1, take 0.
        assert_eq!(s.next_pid(&pids(&[0])), Some(Pid::new(0)));
        assert_eq!(s.next_pid(&pids(&[0])), None);
    }

    #[test]
    fn crash_scheduler_respects_budgets() {
        let mut budget = HashMap::new();
        budget.insert(Pid::new(0), 2);
        let mut s = CrashScheduler::new(RoundRobin::new(), budget);
        let enabled = pids(&[0, 1]);
        let mut p0_steps = 0;
        for _ in 0..10 {
            if let Some(p) = s.next_pid(&enabled) {
                if p == Pid::new(0) {
                    p0_steps += 1;
                }
            }
        }
        assert_eq!(p0_steps, 2, "P0 must crash after its budget");
    }

    #[test]
    fn crash_initially_never_schedules() {
        let mut s = CrashScheduler::crash_initially(RoundRobin::new(), [Pid::new(1)]);
        for _ in 0..5 {
            assert_eq!(s.next_pid(&pids(&[0, 1])), Some(Pid::new(0)));
        }
        assert_eq!(s.next_pid(&pids(&[1])), None);
    }

    #[test]
    fn choosers() {
        let mut f = FirstOutcome;
        assert_eq!(f.choose(5), 0);
        let mut r = ReplayChooser::new(vec![3, 99]);
        assert_eq!(r.choose(5), 3);
        assert_eq!(r.choose(2), 1, "out-of-range choices clamp");
        assert_eq!(r.choose(2), 0, "exhausted replay falls back to 0");
    }

    #[test]
    fn random_chooser_in_range() {
        let mut r = RandomScheduler::seeded(3);
        for _ in 0..100 {
            assert!(r.choose(4) < 4);
        }
    }
}
