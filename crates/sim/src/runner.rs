//! Executing a system under a scheduler.

use crate::error::SimError;
use crate::sched::{OutcomeChooser, Scheduler};
use crate::system::{Config, SystemSpec};
use crate::trace::Trace;
use crate::value::Value;

/// Options controlling a single run.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Stop after this many steps even if processes are still enabled.
    pub max_steps: usize,
    /// Record a [`Trace`] of the execution.
    pub record_trace: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_steps: 100_000,
            record_trace: false,
        }
    }
}

impl RunOptions {
    /// Default options with the given step bound.
    pub fn with_max_steps(max_steps: usize) -> Self {
        RunOptions {
            max_steps,
            ..Self::default()
        }
    }

    /// Enables trace recording.
    pub fn traced(mut self) -> Self {
        self.record_trace = true;
        self
    }
}

/// The result of a completed (or truncated) run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The final configuration.
    pub config: Config,
    /// The number of steps taken.
    pub steps: usize,
    /// Whether the run reached a final configuration (nobody enabled), as
    /// opposed to hitting the step bound or the scheduler stopping early.
    pub reached_final: bool,
    /// The recorded trace (empty unless requested).
    pub trace: Trace,
}

impl RunOutcome {
    /// Returns each process's decision (`None` for undecided).
    pub fn decisions(&self) -> Vec<Option<Value>> {
        self.config.decisions()
    }

    /// Returns the sorted set of distinct decided values.
    pub fn decided_values(&self) -> Vec<Value> {
        self.config.decided_values()
    }
}

/// Runs `spec` from its initial configuration under `scheduler`, resolving
/// nondeterministic object outcomes with `chooser`.
///
/// The run stops when no process is enabled, when the scheduler returns
/// `None` (remaining processes fail-stop), or after `opts.max_steps` steps.
///
/// # Errors
///
/// Propagates any [`SimError`] raised while stepping (protocol bugs, illegal
/// operations).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use subconsensus_sim::{
///     run, Action, FirstOutcome, ProcCtx, Protocol, ProtocolError, RoundRobin, RunOptions,
///     SystemBuilder, Value,
/// };
///
/// #[derive(Debug)]
/// struct DecideInput;
/// impl Protocol for DecideInput {
///     fn start(&self, _ctx: &ProcCtx) -> Value { Value::Nil }
///     fn step(&self, ctx: &ProcCtx, _l: &Value, _r: Option<&Value>)
///         -> Result<Action, ProtocolError> {
///         Ok(Action::Decide(ctx.input.clone()))
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SystemBuilder::new();
/// b.add_processes(Arc::new(DecideInput), [Value::Int(1), Value::Int(2)]);
/// let spec = b.build();
/// let out = run(&spec, &mut RoundRobin::new(), &mut FirstOutcome, &RunOptions::default())?;
/// assert!(out.reached_final);
/// assert_eq!(out.decided_values(), vec![Value::Int(1), Value::Int(2)]);
/// # Ok(())
/// # }
/// ```
pub fn run(
    spec: &SystemSpec,
    scheduler: &mut dyn Scheduler,
    chooser: &mut dyn OutcomeChooser,
    opts: &RunOptions,
) -> Result<RunOutcome, SimError> {
    run_from(spec, spec.initial_config(), scheduler, chooser, opts)
}

/// Like [`run`], but starting from an arbitrary configuration.
///
/// # Errors
///
/// Propagates any [`SimError`] raised while stepping.
pub fn run_from(
    spec: &SystemSpec,
    mut config: Config,
    scheduler: &mut dyn Scheduler,
    chooser: &mut dyn OutcomeChooser,
    opts: &RunOptions,
) -> Result<RunOutcome, SimError> {
    let mut trace = Trace::new();
    let mut steps = 0;
    while steps < opts.max_steps {
        let enabled = config.enabled();
        if enabled.is_empty() {
            return Ok(RunOutcome {
                config,
                steps,
                reached_final: true,
                trace,
            });
        }
        let Some(pid) = scheduler.next_pid(&enabled) else {
            return Ok(RunOutcome {
                config,
                steps,
                reached_final: false,
                trace,
            });
        };
        let mut succs = spec.successors(&config, pid)?;
        let idx = if succs.len() == 1 {
            0
        } else {
            chooser.choose(succs.len())
        };
        let (next, info) = succs.swap_remove(idx.min(succs.len() - 1));
        if opts.record_trace {
            trace.push(pid, info);
        }
        config = next;
        steps += 1;
    }
    let reached_final = config.is_final();
    Ok(RunOutcome {
        config,
        steps,
        reached_final,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{ObjectError, ProtocolError};
    use crate::ids::ObjId;
    use crate::object::{ObjectSpec, Outcome};
    use crate::op::Op;
    use crate::protocol::{Action, ProcCtx, Protocol};
    use crate::sched::{FirstOutcome, RandomScheduler, ReplayChooser, RoundRobin};
    use crate::system::SystemBuilder;
    use std::sync::Arc;

    /// A register supporting read/write.
    #[derive(Debug)]
    struct Reg;

    impl ObjectSpec for Reg {
        fn type_name(&self) -> &'static str {
            "reg"
        }

        fn initial_state(&self) -> Value {
            Value::Nil
        }

        fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            match op.name {
                "read" => Ok(vec![Outcome::ret(state.clone(), state.clone())]),
                "write" => Ok(vec![Outcome::ret(
                    op.arg(0).cloned().unwrap_or(Value::Nil),
                    Value::Nil,
                )]),
                _ => Err(ObjectError::UnknownOp {
                    object: "reg",
                    op: op.clone(),
                }),
            }
        }
    }

    /// A nondeterministic coin: flip() returns 0 or 1.
    #[derive(Debug)]
    struct Coin;

    impl ObjectSpec for Coin {
        fn type_name(&self) -> &'static str {
            "coin"
        }

        fn initial_state(&self) -> Value {
            Value::Nil
        }

        fn apply(&self, state: &Value, _op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            Ok(vec![
                Outcome::ret(state.clone(), Value::Int(0)),
                Outcome::ret(state.clone(), Value::Int(1)),
            ])
        }

        fn is_deterministic(&self) -> bool {
            false
        }
    }

    /// Flip the coin once and decide the result.
    #[derive(Debug)]
    struct FlipOnce {
        coin: ObjId,
    }

    impl Protocol for FlipOnce {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Int(0)
        }

        fn step(
            &self,
            _ctx: &ProcCtx,
            local: &Value,
            resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            match local.as_int() {
                Some(0) => Ok(Action::invoke(Value::Int(1), self.coin, Op::new("flip"))),
                Some(1) => Ok(Action::Decide(resp.cloned().unwrap_or(Value::Nil))),
                _ => Err(ProtocolError::new("bad pc")),
            }
        }
    }

    /// Spin on reads forever.
    #[derive(Debug)]
    struct Spinner {
        reg: ObjId,
    }

    impl Protocol for Spinner {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Nil
        }

        fn step(
            &self,
            _ctx: &ProcCtx,
            _local: &Value,
            _resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            Ok(Action::invoke(Value::Nil, self.reg, Op::new("read")))
        }
    }

    #[test]
    fn chooser_resolves_nondeterminism() {
        let mut b = SystemBuilder::new();
        let coin = b.add_object(Coin);
        b.add_process(Arc::new(FlipOnce { coin }), Value::Nil);
        let spec = b.build();

        let mut heads = ReplayChooser::new(vec![1]);
        let out = run(
            &spec,
            &mut RoundRobin::new(),
            &mut heads,
            &RunOptions::default(),
        )
        .unwrap();
        assert_eq!(out.decided_values(), vec![Value::Int(1)]);

        let mut tails = ReplayChooser::new(vec![0]);
        let out = run(
            &spec,
            &mut RoundRobin::new(),
            &mut tails,
            &RunOptions::default(),
        )
        .unwrap();
        assert_eq!(out.decided_values(), vec![Value::Int(0)]);
    }

    #[test]
    fn step_bound_truncates_nonterminating_runs() {
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        b.add_process(Arc::new(Spinner { reg }), Value::Nil);
        let spec = b.build();
        let out = run(
            &spec,
            &mut RoundRobin::new(),
            &mut FirstOutcome,
            &RunOptions::with_max_steps(17),
        )
        .unwrap();
        assert_eq!(out.steps, 17);
        assert!(!out.reached_final);
    }

    #[test]
    fn trace_is_recorded_when_requested() {
        let mut b = SystemBuilder::new();
        let coin = b.add_object(Coin);
        b.add_process(Arc::new(FlipOnce { coin }), Value::Nil);
        let spec = b.build();
        let out = run(
            &spec,
            &mut RoundRobin::new(),
            &mut FirstOutcome,
            &RunOptions::default().traced(),
        )
        .unwrap();
        assert_eq!(out.trace.len(), 2);
        assert_eq!(
            out.trace.schedule(),
            vec![crate::Pid::new(0), crate::Pid::new(0)]
        );
    }

    #[test]
    fn random_runs_complete_and_agree_with_replay() {
        let mut b = SystemBuilder::new();
        let coin = b.add_object(Coin);
        let p = Arc::new(FlipOnce { coin });
        b.add_processes(p, [Value::Nil, Value::Nil, Value::Nil]);
        let spec = b.build();

        let mut sched = RandomScheduler::seeded(11);
        let mut chooser = RandomScheduler::seeded(12);
        let out = run(
            &spec,
            &mut sched,
            &mut chooser,
            &RunOptions::default().traced(),
        )
        .unwrap();
        assert!(out.reached_final);
        assert_eq!(out.decisions().iter().filter(|d| d.is_some()).count(), 3);
    }
}
