//! Sequential specifications of shared objects.

use std::fmt;

use crate::error::ObjectError;
use crate::op::Op;
use crate::value::Value;

/// One possible result of applying an operation to an object.
///
/// An outcome is a successor state plus either a response value or a *hang*:
/// the paper's objects (e.g. set-consensus objects past their access bound)
/// may "hang the system in a manner that cannot be detected by the
/// processes". A hanging outcome updates the object state but never delivers
/// a response, so the invoking process takes no further steps.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Outcome {
    /// The successor state of the object.
    pub state: Value,
    /// The response delivered to the caller, or `None` if the operation
    /// hangs.
    pub response: Option<Value>,
}

impl Outcome {
    /// An outcome that returns `response` and moves the object to `state`.
    pub fn ret(state: Value, response: Value) -> Self {
        Outcome {
            state,
            response: Some(response),
        }
    }

    /// An outcome that hangs the caller forever and moves the object to
    /// `state`.
    pub fn hang(state: Value) -> Self {
        Outcome {
            state,
            response: None,
        }
    }

    /// Returns `true` if this outcome hangs the caller.
    pub fn is_hang(&self) -> bool {
        self.response.is_none()
    }
}

/// The sequential specification of a shared object in the *oblivious* object
/// model.
///
/// An object is a state (a [`Value`]) plus, for every operation, a set of
/// possible outcomes. A **deterministic** object — the subject of the paper —
/// has exactly one outcome for every (state, operation) pair; a
/// nondeterministic object (such as the `(n, k)`-set-consensus object used as
/// a comparison point) may have several, and the simulator or model checker
/// branches over them.
///
/// Obliviousness is enforced structurally: `apply` is not told which process
/// is performing the operation, so no implementation of this trait can
/// discriminate between callers (there are no "ports").
///
/// # Examples
///
/// Implementing a sticky bit:
///
/// ```
/// use subconsensus_sim::{ObjectError, ObjectSpec, Op, Outcome, Value};
///
/// #[derive(Debug)]
/// struct StickyBit;
///
/// impl ObjectSpec for StickyBit {
///     fn type_name(&self) -> &'static str { "sticky-bit" }
///     fn initial_state(&self) -> Value { Value::Nil }
///     fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
///         match op.name {
///             "set" => {
///                 let new = if state.is_nil() {
///                     op.arg(0).cloned().unwrap_or(Value::Nil)
///                 } else {
///                     state.clone()
///                 };
///                 Ok(vec![Outcome::ret(new.clone(), new)])
///             }
///             _ => Err(ObjectError::UnknownOp { object: self.type_name(), op: op.clone() }),
///         }
///     }
/// }
///
/// let bit = StickyBit;
/// let outs = bit.apply(&Value::Nil, &Op::unary("set", Value::Int(1))).unwrap();
/// assert_eq!(outs[0].response, Some(Value::Int(1)));
/// ```
pub trait ObjectSpec: fmt::Debug + Send + Sync {
    /// A short name for the object type, used in error messages and traces.
    fn type_name(&self) -> &'static str;

    /// The initial state of a fresh instance.
    fn initial_state(&self) -> Value;

    /// All possible outcomes of applying `op` in `state`.
    ///
    /// Deterministic objects return exactly one outcome. The returned vector
    /// must be non-empty for a legal operation.
    ///
    /// # Errors
    ///
    /// Returns an [`ObjectError`] if the operation cannot be interpreted
    /// (unknown name, bad arity, ill-typed argument or state).
    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError>;

    /// Whether every (state, operation) pair has exactly one outcome.
    ///
    /// This is a *declaration* used by determinism audits; the default is
    /// `true`. [`audit_determinism`] cross-checks the declaration on sampled
    /// applications.
    fn is_deterministic(&self) -> bool {
        true
    }

    /// Whether two operations *commute* in `state`: applying `a` then `b`
    /// reaches the same object state and delivers the same responses (for a
    /// nondeterministic object, the same set of joint outcomes) as applying
    /// `b` then `a`.
    ///
    /// Partial-order reduction uses this to declare two steps on the *same*
    /// object independent — e.g. two reads of a register commute, a read and
    /// a write do not. The default is the conservative `false` (never
    /// commute), which is always sound; an override that answers `true` for a
    /// non-commuting pair makes POR unsound, so only answer `true` when the
    /// diamond property above genuinely holds.
    fn commutes(&self, state: &Value, a: &Op, b: &Op) -> bool {
        let _ = (state, a, b);
        false
    }

    /// Rewrites process identities embedded in an object state under a
    /// process permutation, for symmetry-reduced exploration.
    ///
    /// `perm[old]` is the new index of process `old`. Returns `Some(state)`
    /// with every embedded pid rewritten, or `None` if the state embeds no
    /// pids (the default, and the common case: `apply` never learns the
    /// caller's identity, so pids can only enter object state through
    /// operation *arguments* chosen by a protocol — which a pid-symmetric
    /// protocol never does). An object used under an explicit
    /// `SystemBuilder::set_symmetry_groups` override whose protocols pass
    /// pids as arguments must implement this, or the quotient is unsound.
    fn relabel_pids(&self, state: &Value, perm: &[usize]) -> Option<Value> {
        let _ = (state, perm);
        None
    }
}

impl ObjectSpec for Box<dyn ObjectSpec> {
    fn type_name(&self) -> &'static str {
        self.as_ref().type_name()
    }

    fn initial_state(&self) -> Value {
        self.as_ref().initial_state()
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        self.as_ref().apply(state, op)
    }

    fn is_deterministic(&self) -> bool {
        self.as_ref().is_deterministic()
    }

    fn commutes(&self, state: &Value, a: &Op, b: &Op) -> bool {
        self.as_ref().commutes(state, a, b)
    }

    fn relabel_pids(&self, state: &Value, perm: &[usize]) -> Option<Value> {
        self.as_ref().relabel_pids(state, perm)
    }
}

/// A violation found by [`audit_determinism`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeterminismViolation {
    /// The state in which the violation was observed.
    pub state: Value,
    /// The operation whose application was not deterministic.
    pub op: Op,
    /// The number of distinct outcomes observed.
    pub outcomes: usize,
}

impl fmt::Display for DeterminismViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "operation {} in state {} produced {} outcomes (expected exactly 1)",
            self.op, self.state, self.outcomes
        )
    }
}

/// Audits that an object that declares itself deterministic really produces
/// exactly one outcome on every reachable (state, operation) pair, by closing
/// the given seed operations under application up to `depth` steps.
///
/// Returns the first violation found, or `None` if the explored fragment is
/// deterministic.
///
/// # Errors
///
/// Propagates any [`ObjectError`] raised while exploring.
pub fn audit_determinism(
    spec: &dyn ObjectSpec,
    ops: &[Op],
    depth: usize,
) -> Result<Option<DeterminismViolation>, ObjectError> {
    use std::collections::HashSet;

    let mut frontier = vec![spec.initial_state()];
    let mut seen: HashSet<Value> = frontier.iter().cloned().collect();
    for _ in 0..depth {
        let mut next = Vec::new();
        for state in &frontier {
            for op in ops {
                let outcomes = spec.apply(state, op)?;
                if spec.is_deterministic() && outcomes.len() != 1 {
                    return Ok(Some(DeterminismViolation {
                        state: state.clone(),
                        op: op.clone(),
                        outcomes: outcomes.len(),
                    }));
                }
                for out in outcomes {
                    if seen.insert(out.state.clone()) {
                        next.push(out.state);
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately nondeterministic coin for testing the audit.
    #[derive(Debug)]
    struct BrokenCoin;

    impl ObjectSpec for BrokenCoin {
        fn type_name(&self) -> &'static str {
            "broken-coin"
        }

        fn initial_state(&self) -> Value {
            Value::Nil
        }

        fn apply(&self, _state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            match op.name {
                "flip" => Ok(vec![
                    Outcome::ret(Value::Int(0), Value::Int(0)),
                    Outcome::ret(Value::Int(1), Value::Int(1)),
                ]),
                _ => Err(ObjectError::UnknownOp {
                    object: "broken-coin",
                    op: op.clone(),
                }),
            }
        }
    }

    #[derive(Debug)]
    struct Latch;

    impl ObjectSpec for Latch {
        fn type_name(&self) -> &'static str {
            "latch"
        }

        fn initial_state(&self) -> Value {
            Value::Bool(false)
        }

        fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            match op.name {
                "latch" => Ok(vec![Outcome::ret(Value::Bool(true), state.clone())]),
                _ => Err(ObjectError::UnknownOp {
                    object: "latch",
                    op: op.clone(),
                }),
            }
        }
    }

    #[test]
    fn outcome_constructors() {
        let o = Outcome::ret(Value::Int(1), Value::Nil);
        assert!(!o.is_hang());
        let h = Outcome::hang(Value::Int(1));
        assert!(h.is_hang());
        assert_eq!(h.state, Value::Int(1));
    }

    #[test]
    fn audit_flags_hidden_nondeterminism() {
        let violation = audit_determinism(&BrokenCoin, &[Op::new("flip")], 3).unwrap();
        let v = violation.expect("audit must flag the broken coin");
        assert_eq!(v.outcomes, 2);
        assert!(v.to_string().contains("flip"));
    }

    #[test]
    fn audit_passes_deterministic_object() {
        let violation = audit_determinism(&Latch, &[Op::new("latch")], 5).unwrap();
        assert_eq!(violation, None);
    }

    #[test]
    fn audit_propagates_object_errors() {
        let err = audit_determinism(&Latch, &[Op::new("bogus")], 2).unwrap_err();
        assert!(matches!(err, ObjectError::UnknownOp { .. }));
    }

    #[test]
    fn boxed_spec_delegates() {
        let boxed: Box<dyn ObjectSpec> = Box::new(Latch);
        assert_eq!(boxed.type_name(), "latch");
        assert_eq!(boxed.initial_state(), Value::Bool(false));
        assert!(boxed.is_deterministic());
        let outs = boxed.apply(&Value::Bool(false), &Op::new("latch")).unwrap();
        assert_eq!(outs.len(), 1);
    }
}
