//! Randomized tests for configuration canonicalization: on random reachable
//! configurations of a symmetric system, `canonicalize` is idempotent and
//! invariant under random within-group pid permutations — the two algebraic
//! facts orbit-quotient exploration rests on.
//!
//! Written over the in-tree seeded [`SmallRng`] (repo style: seeded loops,
//! no external property-testing dependency).

use std::sync::Arc;

use subconsensus_sim::{
    Action, Config, ObjId, ObjectError, ObjectSpec, Op, Outcome, Pid, ProcCtx, Protocol,
    ProtocolError, SmallRng, SymmetryGroups, SystemBuilder, SystemSpec, Value,
};

/// A sticky agreement cell: the first proposal wins, later proposals read it.
#[derive(Debug)]
struct Sticky;

impl ObjectSpec for Sticky {
    fn type_name(&self) -> &'static str {
        "sticky"
    }

    fn initial_state(&self) -> Value {
        Value::Nil
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        let v = op.arg(0).cloned().unwrap_or(Value::Nil);
        let winner = if state.is_nil() { v } else { state.clone() };
        Ok(vec![Outcome::ret(winner.clone(), winner)])
    }
}

/// Propose the input, decide the answer. Never reads `ctx.pid`.
#[derive(Debug)]
struct SymPropose {
    obj: ObjId,
}

impl Protocol for SymPropose {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        Value::Int(0)
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        match local.as_int() {
            Some(0) => Ok(Action::invoke(
                Value::Int(1),
                self.obj,
                Op::unary("propose", ctx.input.clone()),
            )),
            _ => Ok(Action::Decide(resp.cloned().unwrap_or(Value::Nil))),
        }
    }

    fn pid_symmetric(&self) -> bool {
        true
    }
}

/// Five proposers with inputs (1, 1, 1, 2, 2): two nontrivial symmetry
/// groups of different sizes, detected automatically by the builder.
fn two_group_system() -> SystemSpec {
    let mut b = SystemBuilder::new();
    let obj = b.add_object(Sticky);
    let p: Arc<dyn Protocol> = Arc::new(SymPropose { obj });
    b.add_processes(p, [1i64, 1, 1, 2, 2].into_iter().map(Value::Int));
    let spec = b.build();
    assert_eq!(
        spec.symmetry_groups().groups(),
        &[
            vec![Pid::new(0), Pid::new(1), Pid::new(2)],
            vec![Pid::new(3), Pid::new(4)]
        ]
    );
    spec
}

/// Walks a uniformly random schedule for at most `steps` steps.
fn random_reachable_config(spec: &SystemSpec, rng: &mut SmallRng, steps: usize) -> Config {
    let mut config = spec.initial_config();
    for _ in 0..steps {
        let enabled: Vec<Pid> = config.enabled_iter().collect();
        if enabled.is_empty() {
            break;
        }
        let pid = enabled[rng.gen_index(enabled.len())];
        let mut succs = spec.successors(&config, pid).expect("legal step");
        let pick = rng.gen_index(succs.len());
        config = succs.swap_remove(pick).0;
    }
    config
}

/// A uniformly random permutation moving pids only within their groups
/// (identity outside), as `perm[old] = new`.
fn random_within_group_perm(
    groups: &SymmetryGroups,
    nprocs: usize,
    rng: &mut SmallRng,
) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..nprocs).collect();
    for group in groups.groups() {
        // Fisher–Yates over the group's slots.
        let mut slots: Vec<usize> = group.iter().map(|p| p.index()).collect();
        for i in (1..slots.len()).rev() {
            let j = rng.gen_index(i + 1);
            slots.swap(i, j);
        }
        for (member, slot) in group.iter().zip(slots) {
            perm[member.index()] = slot;
        }
    }
    perm
}

#[test]
fn canonicalize_is_idempotent_on_random_configs() {
    let spec = two_group_system();
    let groups = spec.symmetry_groups().clone();
    for seed in 0..200u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let steps = rng.gen_index(11);
        let config = random_reachable_config(&spec, &mut rng, steps);
        let once = config.canonicalize(&groups);
        let twice = once.canonicalize(&groups);
        assert_eq!(once, twice, "seed {seed}: canonicalize must be idempotent");
    }
}

#[test]
fn canonicalize_is_invariant_under_within_group_permutations() {
    let spec = two_group_system();
    let groups = spec.symmetry_groups().clone();
    for seed in 0..200u64 {
        let mut rng = SmallRng::seed_from_u64(1_000 + seed);
        let steps = rng.gen_index(11);
        let config = random_reachable_config(&spec, &mut rng, steps);
        let perm = random_within_group_perm(&groups, spec.nprocs(), &mut rng);
        let shuffled = config.permuted(&perm);
        assert_eq!(
            config.canonicalize(&groups),
            shuffled.canonicalize(&groups),
            "seed {seed}: orbit members must share a representative (perm {perm:?})"
        );
        // The spec-level entry point agrees (no object here embeds pids,
        // so relabeling is a no-op by construction).
        assert_eq!(
            spec.canonicalize_config(config),
            spec.canonicalize_config(shuffled),
            "seed {seed}: spec canonicalization must agree"
        );
    }
}

#[test]
fn canonical_representative_is_within_group_sorted() {
    // The representative's defining property, checked directly: inside each
    // group the process states ascend.
    let spec = two_group_system();
    let groups = spec.symmetry_groups().clone();
    for seed in 0..100u64 {
        let mut rng = SmallRng::seed_from_u64(2_000 + seed);
        let config = random_reachable_config(&spec, &mut rng, 10);
        let canon = config.canonicalize(&groups);
        for group in groups.groups() {
            for w in group.windows(2) {
                assert!(
                    canon.proc_state(w[0]) <= canon.proc_state(w[1]),
                    "seed {seed}: group states must be sorted"
                );
            }
        }
    }
}
