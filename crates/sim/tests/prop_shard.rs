//! Randomized tests for the fingerprint→shard routing the sharded
//! explorer rests on: content fingerprints must be *interner-independent*
//! (stable under re-interning in any arena order), must collapse whole
//! symmetry orbits onto one owning shard (canonicalize-then-fingerprint),
//! and must spread real reachable state sets roughly evenly across shards.
//!
//! Written over the in-tree seeded [`SmallRng`] (repo style: seeded loops,
//! no external property-testing dependency).

use std::sync::Arc;

use subconsensus_sim::{
    shard_of_fingerprint, Action, Config, ObjId, ObjectError, ObjectSpec, Op, Outcome, Pid,
    ProcCtx, Protocol, ProtocolError, SmallRng, StateInterner, SystemBuilder, SystemSpec, Value,
};

/// A sticky agreement cell: the first proposal wins, later proposals read it.
#[derive(Debug)]
struct Sticky;

impl ObjectSpec for Sticky {
    fn type_name(&self) -> &'static str {
        "sticky"
    }

    fn initial_state(&self) -> Value {
        Value::Nil
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        let v = op.arg(0).cloned().unwrap_or(Value::Nil);
        let winner = if state.is_nil() { v } else { state.clone() };
        Ok(vec![Outcome::ret(winner.clone(), winner)])
    }
}

/// A nondeterministic coin: `flip` lands 0 or 1.
#[derive(Debug)]
struct Coin;

impl ObjectSpec for Coin {
    fn type_name(&self) -> &'static str {
        "coin"
    }

    fn initial_state(&self) -> Value {
        Value::Int(0)
    }

    fn apply(&self, _state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        match op.name {
            "flip" => Ok(vec![
                Outcome::ret(Value::Int(0), Value::Int(0)),
                Outcome::ret(Value::Int(1), Value::Int(1)),
            ]),
            _ => Err(ObjectError::UnknownOp {
                object: "coin",
                op: op.clone(),
            }),
        }
    }
}

/// Flip the coin, propose the input, decide the sticky answer. Never reads
/// `ctx.pid`, so equal-input processes are symmetric.
#[derive(Debug)]
struct FlipPropose {
    coin: ObjId,
    sticky: ObjId,
}

impl Protocol for FlipPropose {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        Value::Int(0)
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        match local.as_int() {
            Some(0) => Ok(Action::invoke(Value::Int(1), self.coin, Op::new("flip"))),
            Some(1) => Ok(Action::invoke(
                Value::Int(2),
                self.sticky,
                Op::unary("propose", ctx.input.clone()),
            )),
            _ => Ok(Action::Decide(resp.cloned().unwrap_or(Value::Nil))),
        }
    }

    fn pid_symmetric(&self) -> bool {
        true
    }
}

/// `procs` flip-proposers; `equal` of them share input 1 (one nontrivial
/// symmetry group), the rest get distinct inputs.
fn flip_system(procs: usize, equal: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let coin = b.add_object(Coin);
    let sticky = b.add_object(Sticky);
    let p: Arc<dyn Protocol> = Arc::new(FlipPropose { coin, sticky });
    b.add_processes(
        p,
        (0..procs).map(|i| Value::Int(if i < equal { 1 } else { i as i64 + 1 })),
    );
    b.build()
}

/// Walks a uniformly random schedule for at most `steps` steps.
fn random_reachable_config(spec: &SystemSpec, rng: &mut SmallRng, steps: usize) -> Config {
    let mut config = spec.initial_config();
    for _ in 0..steps {
        let enabled: Vec<Pid> = config.enabled_iter().collect();
        if enabled.is_empty() {
            break;
        }
        let pid = enabled[rng.gen_index(enabled.len())];
        let mut succs = spec.successors(&config, pid).expect("legal step");
        let pick = rng.gen_index(succs.len());
        config = succs.swap_remove(pick).0;
    }
    config
}

/// The content fingerprint of `config` as seen through `interner` — the
/// value the sharded explorer routes on.
fn fp_via(interner: &mut StateInterner, config: &Config) -> u64 {
    let compact = interner.intern_config(config);
    let words = compact.words().to_vec();
    interner.content_fingerprint_words(compact.nobjects(), &words)
}

#[test]
fn fingerprint_stable_under_reinterning() {
    // The same configuration interned into arenas populated in different
    // orders gets different id words but must fingerprint identically —
    // otherwise a configuration's owning shard would depend on which
    // shard's arena happened to see its states first.
    let spec = flip_system(3, 2);
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    let configs: Vec<Config> = (0..120)
        .map(|_| {
            let steps = rng.gen_index(13);
            random_reachable_config(&spec, &mut rng, steps)
        })
        .collect();

    let mut forward = StateInterner::new();
    let mut backward = StateInterner::new();
    let fps_fwd: Vec<u64> = configs.iter().map(|c| fp_via(&mut forward, c)).collect();
    let fps_bwd: Vec<u64> = {
        let mut v: Vec<u64> = configs
            .iter()
            .rev()
            .map(|c| fp_via(&mut backward, c))
            .collect();
        v.reverse();
        v
    };
    for (i, (a, b)) in fps_fwd.iter().zip(&fps_bwd).enumerate() {
        assert_eq!(a, b, "config {i}: fingerprint depends on arena order");
        // Re-interning into the same arena is idempotent too.
        assert_eq!(*a, fp_via(&mut forward, &configs[i]), "config {i}: rehash");
        // And the shard assignment is therefore interner-independent for
        // every shard count the explorer accepts.
        for shards in 1..=8 {
            assert_eq!(
                shard_of_fingerprint(*a, shards),
                shard_of_fingerprint(*b, shards),
                "config {i}: owner diverged at {shards} shards"
            );
        }
    }
    // Distinct configurations (almost) never collide: the routing spreads.
    let mut uniq = fps_fwd.clone();
    uniq.sort_unstable();
    uniq.dedup();
    let mut distinct: Vec<&Config> = configs.iter().collect();
    distinct.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    distinct.dedup_by(|a, b| a == b);
    assert_eq!(uniq.len(), distinct.len(), "fingerprint collision");
}

#[test]
fn canonical_orbit_members_share_an_owner() {
    // Routing fingerprints the *canonical* form: every member of a
    // symmetry orbit canonicalizes to the same representative, so the
    // whole orbit maps to one shard — the property that lets symmetry
    // reduction compose with sharding without splitting orbits.
    let spec = flip_system(3, 3);
    assert!(!spec.symmetry_groups().is_trivial());
    // The full S3 on {0,1,2}: all processes share one symmetry group.
    let perms: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    let mut interner = StateInterner::new();
    for seed in 0..60u64 {
        let mut rng = SmallRng::seed_from_u64(31_000 + seed);
        let steps = rng.gen_index(11);
        let config = random_reachable_config(&spec, &mut rng, steps);
        let canon = spec.canonicalize_config(config.clone());
        let base_fp = fp_via(&mut interner, &canon);
        for perm in &perms {
            let member = config.permuted(perm);
            let member_canon = spec.canonicalize_config(member);
            assert_eq!(member_canon, canon, "seed {seed} {perm:?}: representative");
            let fp = fp_via(&mut interner, &member_canon);
            assert_eq!(fp, base_fp, "seed {seed} {perm:?}: orbit fingerprint");
            for shards in 2..=8 {
                assert_eq!(
                    shard_of_fingerprint(fp, shards),
                    shard_of_fingerprint(base_fp, shards),
                    "seed {seed} {perm:?}: orbit split across {shards} shards"
                );
            }
        }
    }
}

#[test]
fn shards_roughly_balanced_on_reachable_sets() {
    // BFS the real reachable sets of the two fixture shapes (the sim-crate
    // stand-ins for the e1/e4 fixtures) and check the canonical
    // fingerprints spread across shards without hot spots: no shard owns
    // more than 4× or less than ¼ of its fair share.
    for (label, spec, symmetry) in [
        ("flip4-distinct", flip_system(4, 0), false),
        ("flip4-sym", flip_system(4, 4), true),
    ] {
        let mut interner = StateInterner::new();
        let mut seen = std::collections::HashSet::new();
        let mut queue = vec![if symmetry {
            spec.canonicalize_config(spec.initial_config())
        } else {
            spec.initial_config()
        }];
        let mut fps = Vec::new();
        while let Some(config) = queue.pop() {
            if fps.len() >= 4_000 {
                break;
            }
            let fp = fp_via(&mut interner, &config);
            if !seen.insert(fp) {
                continue;
            }
            fps.push(fp);
            for pid in config.enabled_iter().collect::<Vec<_>>() {
                for (succ, _) in spec.successors(&config, pid).expect("legal step") {
                    queue.push(if symmetry {
                        spec.canonicalize_config(succ)
                    } else {
                        succ
                    });
                }
            }
        }
        assert!(fps.len() > 100, "{label}: nontrivial reachable set");
        for shards in [2usize, 4, 8] {
            let mut counts = vec![0usize; shards];
            for &fp in &fps {
                counts[shard_of_fingerprint(fp, shards)] += 1;
            }
            let fair = fps.len() / shards;
            for (k, &c) in counts.iter().enumerate() {
                assert!(
                    c >= fair / 4 && c <= fair * 4,
                    "{label}: shard {k}/{shards} owns {c} of {} (fair {fair})",
                    fps.len()
                );
            }
        }
    }
}

#[test]
fn shard_of_fingerprint_covers_all_shards_and_only_them() {
    for shards in 1..=16 {
        let mut hit = vec![false; shards];
        for fp in 0..(shards as u64 * 8) {
            let s = shard_of_fingerprint(fp, shards);
            assert!(s < shards);
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "{shards} shards: some never owner");
    }
}

#[test]
#[should_panic(expected = "positive")]
fn zero_shards_rejected() {
    shard_of_fingerprint(42, 0);
}
