//! Randomized tests for hash-consed configurations: interning round-trips,
//! id equality coincides with deep equality, and the compact stepping /
//! canonicalization path stays in lockstep with the deep one under random
//! schedules — the invariants the id-native model checker rests on.
//!
//! Written over the in-tree seeded [`SmallRng`] (repo style: seeded loops,
//! no external property-testing dependency).

use std::sync::Arc;

use subconsensus_sim::{
    Action, CompactConfig, Config, ObjId, ObjectError, ObjectSpec, Op, Outcome, Pid, ProcCtx,
    Protocol, ProtocolError, SmallRng, StateInterner, SystemBuilder, SystemSpec, Value,
};

/// A sticky agreement cell: the first proposal wins, later proposals read it.
#[derive(Debug)]
struct Sticky;

impl ObjectSpec for Sticky {
    fn type_name(&self) -> &'static str {
        "sticky"
    }

    fn initial_state(&self) -> Value {
        Value::Nil
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        let v = op.arg(0).cloned().unwrap_or(Value::Nil);
        let winner = if state.is_nil() { v } else { state.clone() };
        Ok(vec![Outcome::ret(winner.clone(), winner)])
    }
}

/// A nondeterministic coin: `flip` lands 0 or 1. The outcome list repeats
/// the 0-branch so successor deduplication is exercised on both paths.
#[derive(Debug)]
struct Coin;

impl ObjectSpec for Coin {
    fn type_name(&self) -> &'static str {
        "coin"
    }

    fn initial_state(&self) -> Value {
        Value::Int(0)
    }

    fn apply(&self, _state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        match op.name {
            "flip" => Ok(vec![
                Outcome::ret(Value::Int(0), Value::Int(0)),
                Outcome::ret(Value::Int(1), Value::Int(1)),
                // Duplicate of the first outcome: both stepping paths must
                // collapse it.
                Outcome::ret(Value::Int(0), Value::Int(0)),
            ]),
            _ => Err(ObjectError::UnknownOp {
                object: "coin",
                op: op.clone(),
            }),
        }
    }
}

/// Flip the coin, propose the input, decide the sticky answer. Never reads
/// `ctx.pid`, so equal-input processes are symmetric.
#[derive(Debug)]
struct FlipPropose {
    coin: ObjId,
    sticky: ObjId,
}

impl Protocol for FlipPropose {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        Value::Int(0)
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        match local.as_int() {
            Some(0) => Ok(Action::invoke(Value::Int(1), self.coin, Op::new("flip"))),
            Some(1) => Ok(Action::invoke(
                Value::Int(2),
                self.sticky,
                Op::unary("propose", ctx.input.clone()),
            )),
            _ => Ok(Action::Decide(resp.cloned().unwrap_or(Value::Nil))),
        }
    }

    fn pid_symmetric(&self) -> bool {
        true
    }
}

/// Three flip-proposers with inputs (1, 1, 2): one nontrivial symmetry
/// group, a nondeterministic object and a sticky one.
fn mixed_system() -> SystemSpec {
    let mut b = SystemBuilder::new();
    let coin = b.add_object(Coin);
    let sticky = b.add_object(Sticky);
    let p: Arc<dyn Protocol> = Arc::new(FlipPropose { coin, sticky });
    b.add_processes(p, [1i64, 1, 2].into_iter().map(Value::Int));
    let spec = b.build();
    assert!(!spec.symmetry_groups().is_trivial());
    spec
}

/// Walks a uniformly random schedule for at most `steps` steps.
fn random_reachable_config(spec: &SystemSpec, rng: &mut SmallRng, steps: usize) -> Config {
    let mut config = spec.initial_config();
    for _ in 0..steps {
        let enabled: Vec<Pid> = config.enabled_iter().collect();
        if enabled.is_empty() {
            break;
        }
        let pid = enabled[rng.gen_index(enabled.len())];
        let mut succs = spec.successors(&config, pid).expect("legal step");
        let pick = rng.gen_index(succs.len());
        config = succs.swap_remove(pick).0;
    }
    config
}

#[test]
fn interning_round_trips_and_is_idempotent() {
    let spec = mixed_system();
    let mut interner = StateInterner::new();
    for seed in 0..150u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let steps = rng.gen_index(13);
        let config = random_reachable_config(&spec, &mut rng, steps);
        let compact = interner.intern_config(&config);
        // Materializing and re-interning yields byte-identical id words.
        let materialized = compact.materialize(&interner);
        assert_eq!(materialized, config, "seed {seed}: round trip");
        let again = interner.intern_config(&materialized);
        assert_eq!(compact, again, "seed {seed}: identical ids");
        // The enabled bitset computed from ids matches the deep one.
        assert_eq!(
            interner.enabled_bits(compact.nobjects(), compact.words()),
            config.enabled_set().bits(),
            "seed {seed}: enabled bits"
        );
    }
}

#[test]
fn id_equality_coincides_with_deep_equality() {
    let spec = mixed_system();
    let mut interner = StateInterner::new();
    let mut pairs: Vec<(Config, CompactConfig)> = Vec::new();
    for seed in 0..80u64 {
        let mut rng = SmallRng::seed_from_u64(10_000 + seed);
        let steps = rng.gen_index(9);
        let config = random_reachable_config(&spec, &mut rng, steps);
        let compact = interner.intern_config(&config);
        pairs.push((config, compact));
    }
    for (i, (ca, xa)) in pairs.iter().enumerate() {
        for (cb, xb) in pairs.iter().skip(i) {
            assert_eq!(
                ca == cb,
                xa == xb,
                "id equality must coincide with deep equality"
            );
        }
    }
}

/// Random lockstep walk: the compact stepping path (footprints, successor
/// sets, canonicalization) must agree with the deep path at every step.
#[test]
fn compact_stepping_stays_in_lockstep_with_deep() {
    let spec = mixed_system();
    for seed in 0..100u64 {
        let mut rng = SmallRng::seed_from_u64(20_000 + seed);
        let mut interner = StateInterner::new();
        let mut deep = spec.initial_config();
        let mut words: Vec<u32> = spec.compact_initial(&mut interner).words().to_vec();
        let nobjects = spec.nobjects();
        for _ in 0..12 {
            assert_eq!(
                interner.materialize_words(nobjects, &words),
                deep,
                "seed {seed}: representations diverged"
            );
            let enabled: Vec<Pid> = deep.enabled_iter().collect();
            if enabled.is_empty() {
                break;
            }
            let pid = enabled[rng.gen_index(enabled.len())];
            // Footprints agree.
            assert_eq!(
                spec.compact_footprint(&interner, &words, pid).unwrap(),
                spec.step_footprint(&deep, pid).unwrap(),
                "seed {seed}: footprint"
            );
            // Successor sets agree element-for-element, including the
            // dedup of the coin's duplicate outcome.
            let deep_succs = spec.successors(&deep, pid).unwrap();
            let pendings = spec.compact_successors(&interner, &words, pid).unwrap();
            assert_eq!(deep_succs.len(), pendings.len(), "seed {seed}: fanout");
            let mut finalized = Vec::new();
            for ((d, _info), p) in deep_succs.iter().zip(pendings) {
                // Canonicalization chooses the same permutation on a
                // cloned copy of both.
                let mut canon_pending = p.clone();
                let perm_c = spec.compact_canonicalize(&interner, &mut canon_pending);
                let (canon_deep, perm_d) = spec.canonicalize_config_perm(d.clone());
                assert_eq!(perm_c, perm_d, "seed {seed}: canonical perm");
                let canon_compact = interner.finalize(canon_pending);
                assert_eq!(
                    canon_compact.materialize(&interner),
                    canon_deep,
                    "seed {seed}: canonical representative"
                );
                // The plain (uncanonicalized) successor round-trips too.
                let compact = interner.finalize(p);
                assert_eq!(compact.materialize(&interner), *d, "seed {seed}: successor");
                finalized.push(compact);
            }
            // Take the same branch on both sides.
            let pick = rng.gen_index(deep_succs.len());
            deep = deep_succs.into_iter().nth(pick).unwrap().0;
            words = finalized.swap_remove(pick).words().to_vec();
        }
    }
}
