//! Property-based tests for the universal value domain.

use proptest::prelude::*;
use subconsensus_sim::Value;

/// Strategy producing arbitrary (bounded-depth) values.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Nil),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        prop_oneof![Just("a"), Just("b"), Just("opened")].prop_map(Value::Sym),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Value::Tup)
    })
}

proptest! {
    #[test]
    fn ordering_is_total_and_consistent(a in value_strategy(), b in value_strategy()) {
        use std::cmp::Ordering;
        let ord = a.cmp(&b);
        prop_assert_eq!(b.cmp(&a), ord.reverse());
        prop_assert_eq!(ord == Ordering::Equal, a == b);
    }

    #[test]
    fn hash_respects_equality(a in value_strategy()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let b = a.clone();
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        prop_assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn with_index_then_index_roundtrips(
        items in prop::collection::vec(value_strategy(), 1..6),
        replacement in value_strategy(),
        idx in 0usize..6,
    ) {
        let t = Value::Tup(items.clone());
        match t.with_index(idx, replacement.clone()) {
            Some(updated) => {
                prop_assert!(idx < items.len());
                prop_assert_eq!(updated.index(idx), Some(&replacement));
                // All other positions unchanged.
                for (i, orig) in items.iter().enumerate() {
                    if i != idx {
                        prop_assert_eq!(updated.index(i), Some(orig));
                    }
                }
            }
            None => prop_assert!(idx >= items.len()),
        }
    }

    #[test]
    fn display_is_stable_under_clone(a in value_strategy()) {
        prop_assert_eq!(a.to_string(), a.clone().to_string());
    }

    #[test]
    fn accessors_partition_the_variants(a in value_strategy()) {
        let hits = [
            a.is_nil(),
            a.as_bool().is_some(),
            a.as_int().is_some(),
            a.as_sym().is_some(),
            a.as_tup().is_some(),
        ];
        prop_assert_eq!(hits.iter().filter(|h| **h).count(), 1);
    }
}
