//! Randomized property tests for the universal value domain.
//!
//! Formerly written with `proptest`; rewritten over the in-tree seeded
//! [`SmallRng`] so the workspace builds with no external dependencies.
//! Each test fixes a seed per case, so failures replay deterministically.

use subconsensus_sim::{SmallRng, Value};

const CASES: u64 = 512;

/// Generates an arbitrary value of bounded depth.
fn arb_value(rng: &mut SmallRng, depth: usize) -> Value {
    let variants = if depth == 0 { 4 } else { 5 };
    match rng.gen_index(variants) {
        0 => Value::Nil,
        1 => Value::Bool(rng.gen_bool()),
        2 => Value::Int(rng.gen_range_i64(i64::MIN / 2, i64::MAX / 2)),
        3 => Value::Sym(["a", "b", "opened"][rng.gen_index(3)]),
        _ => {
            let len = rng.gen_index(4);
            Value::Tup((0..len).map(|_| arb_value(rng, depth - 1)).collect())
        }
    }
}

#[test]
fn ordering_is_total_and_consistent() {
    use std::cmp::Ordering;
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let a = arb_value(&mut rng, 3);
        let b = arb_value(&mut rng, 3);
        let ord = a.cmp(&b);
        assert_eq!(b.cmp(&a), ord.reverse(), "case {case}: {a} vs {b}");
        assert_eq!(ord == Ordering::Equal, a == b, "case {case}: {a} vs {b}");
    }
}

#[test]
fn hash_respects_equality() {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let a = arb_value(&mut rng, 3);
        let b = a.clone();
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish(), "case {case}: {a}");
    }
}

#[test]
fn with_index_then_index_roundtrips() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let items: Vec<Value> = (0..1 + rng.gen_index(5))
            .map(|_| arb_value(&mut rng, 2))
            .collect();
        let replacement = arb_value(&mut rng, 2);
        let idx = rng.gen_index(6);
        let t = Value::Tup(items.clone());
        match t.with_index(idx, replacement.clone()) {
            Some(updated) => {
                assert!(idx < items.len(), "case {case}");
                assert_eq!(updated.index(idx), Some(&replacement), "case {case}");
                // All other positions unchanged.
                for (i, orig) in items.iter().enumerate() {
                    if i != idx {
                        assert_eq!(updated.index(i), Some(orig), "case {case}");
                    }
                }
            }
            None => assert!(idx >= items.len(), "case {case}"),
        }
    }
}

#[test]
fn display_is_stable_under_clone() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let a = arb_value(&mut rng, 3);
        assert_eq!(a.to_string(), a.clone().to_string(), "case {case}");
    }
}

#[test]
fn accessors_partition_the_variants() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let a = arb_value(&mut rng, 3);
        let hits = [
            a.is_nil(),
            a.as_bool().is_some(),
            a.as_int().is_some(),
            a.as_sym().is_some(),
            a.as_tup().is_some(),
        ];
        assert_eq!(
            hits.iter().filter(|h| **h).count(),
            1,
            "case {case}: {a} must match exactly one accessor"
        );
    }
}
