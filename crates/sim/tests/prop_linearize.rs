//! Randomized tests for the linearizability checker: histories obtained
//! by *sequentially applying* a spec are always accepted; corrupting a
//! response in a sequential history is always rejected.
//!
//! Formerly `proptest`-based; rewritten over the in-tree seeded
//! [`SmallRng`] so the workspace builds with no external dependencies.

use subconsensus_sim::{
    check_linearizable, History, ObjectError, ObjectSpec, Op, Outcome, Pid, SmallRng, Value,
};

/// A FIFO queue spec for reference.
#[derive(Debug)]
struct Queue;

impl ObjectSpec for Queue {
    fn type_name(&self) -> &'static str {
        "queue"
    }

    fn initial_state(&self) -> Value {
        Value::tup([])
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        let items = state.as_tup().unwrap_or(&[]).to_vec();
        match op.name {
            "enq" => {
                let mut items = items;
                items.push(op.arg(0).cloned().unwrap_or(Value::Nil));
                Ok(vec![Outcome::ret(Value::Tup(items), Value::Nil)])
            }
            _ => {
                if items.is_empty() {
                    Ok(vec![Outcome::ret(state.clone(), Value::Nil)])
                } else {
                    Ok(vec![Outcome::ret(
                        Value::Tup(items[1..].to_vec()),
                        items[0].clone(),
                    )])
                }
            }
        }
    }
}

#[derive(Clone, Debug)]
enum QOp {
    Enq(i64),
    Deq,
}

fn arb_qop(rng: &mut SmallRng) -> QOp {
    if rng.gen_bool() {
        QOp::Enq(rng.gen_range_i64(0, 5))
    } else {
        QOp::Deq
    }
}

fn to_op(qop: &QOp) -> Op {
    match qop {
        QOp::Enq(v) => Op::unary("enq", Value::Int(*v)),
        QOp::Deq => Op::new("deq"),
    }
}

/// Builds the sequential history of applying `ops` round-robin across
/// `nprocs` processes, with responses computed by the spec itself.
fn sequential_history(ops: &[QOp], nprocs: usize) -> History {
    let spec = Queue;
    let mut state = spec.initial_state();
    let mut h = History::new();
    for (i, qop) in ops.iter().enumerate() {
        let op = to_op(qop);
        let pid = Pid::new(i % nprocs);
        let id = h.invoke(pid, op.clone()).unwrap();
        let out = spec.apply(&state, &op).unwrap().remove(0);
        state = out.state;
        h.respond(id, out.response.unwrap()).unwrap();
    }
    h
}

#[test]
fn sequential_histories_always_linearize() {
    for case in 0..64 {
        let mut rng = SmallRng::seed_from_u64(case);
        let ops: Vec<QOp> = (0..rng.gen_index(10)).map(|_| arb_qop(&mut rng)).collect();
        let nprocs = 1 + rng.gen_index(3);
        let h = sequential_history(&ops, nprocs);
        assert!(
            check_linearizable(&h, &Queue).unwrap().is_some(),
            "case {case}:\n{h}"
        );
    }
}

#[test]
fn corrupting_a_nonempty_dequeue_is_rejected() {
    for case in 0..64 {
        let mut rng = SmallRng::seed_from_u64(case);
        // enq…enq deq — then lie about the dequeued value.
        let mut ops: Vec<QOp> = (0..1 + rng.gen_index(5))
            .map(|_| QOp::Enq(rng.gen_range_i64(0, 5)))
            .collect();
        ops.push(QOp::Deq);
        let spec = Queue;
        let mut state = spec.initial_state();
        let mut h = History::new();
        for (i, qop) in ops.iter().enumerate() {
            let op = to_op(qop);
            let id = h.invoke(Pid::new(i % 2), op.clone()).unwrap();
            let out = spec.apply(&state, &op).unwrap().remove(0);
            state = out.state;
            let resp = match qop {
                // Lie: report a value that was never enqueued.
                QOp::Deq => Value::Int(999),
                QOp::Enq(_) => out.response.unwrap(),
            };
            h.respond(id, resp).unwrap();
        }
        assert!(
            check_linearizable(&h, &Queue).unwrap().is_none(),
            "case {case}:\n{h}"
        );
    }
}

#[test]
fn dropping_the_final_response_keeps_linearizability() {
    for case in 0..64 {
        let mut rng = SmallRng::seed_from_u64(case);
        let ops: Vec<QOp> = (0..1 + rng.gen_index(7))
            .map(|_| arb_qop(&mut rng))
            .collect();
        // Rebuild the sequential history but leave the last op pending:
        // pending ops may take effect or be dropped, so this must stay
        // linearizable.
        let spec = Queue;
        let mut state = spec.initial_state();
        let mut h = History::new();
        let last = ops.len() - 1;
        for (i, qop) in ops.iter().enumerate() {
            let op = to_op(qop);
            let id = h.invoke(Pid::new(i % 3), op.clone()).unwrap();
            let out = spec.apply(&state, &op).unwrap().remove(0);
            state = out.state;
            if i != last {
                h.respond(id, out.response.unwrap()).unwrap();
            }
        }
        assert!(
            check_linearizable(&h, &Queue).unwrap().is_some(),
            "case {case}:\n{h}"
        );
    }
}
