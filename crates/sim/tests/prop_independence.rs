//! Randomized tests for step independence: whenever the spec declares two
//! enabled steps independent ([`SystemSpec::steps_independent`]), firing
//! them in either order from a random reachable configuration must land in
//! the *same* configuration — the Mazurkiewicz-trace fact partial-order
//! reduction rests on.
//!
//! Written over the in-tree seeded [`SmallRng`] (repo style: seeded loops,
//! no external property-testing dependency).

use std::sync::Arc;

use subconsensus_sim::{
    Action, Config, ObjId, ObjectError, ObjectSpec, Op, Outcome, Pid, ProcCtx, Protocol,
    ProtocolError, SmallRng, SystemBuilder, SystemSpec, Value,
};

/// A register whose `commutes` declares read/read and equal-value
/// write/write pairs independent — the kernel of the real `Register`'s
/// rule, kept local because `sim` cannot depend on the objects crate.
#[derive(Debug)]
struct Cell;

impl ObjectSpec for Cell {
    fn type_name(&self) -> &'static str {
        "cell"
    }

    fn initial_state(&self) -> Value {
        Value::Nil
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        match op.name {
            "read" => Ok(vec![Outcome::ret(state.clone(), state.clone())]),
            "write" => Ok(vec![Outcome::ret(
                op.arg(0).cloned().unwrap_or(Value::Nil),
                Value::Nil,
            )]),
            _ => Err(ObjectError::UnknownOp {
                object: "cell",
                op: op.clone(),
            }),
        }
    }

    fn commutes(&self, _state: &Value, a: &Op, b: &Op) -> bool {
        match (a.name, b.name) {
            ("read", "read") => true,
            ("write", "write") => a.arg(0) == b.arg(0),
            _ => false,
        }
    }
}

/// Write the input to one cell, read the other, decide the read.
#[derive(Debug)]
struct WriteAcrossRead {
    mine: ObjId,
    other: ObjId,
}

impl Protocol for WriteAcrossRead {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        Value::Int(0)
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        match local.as_int() {
            Some(0) => Ok(Action::invoke(
                Value::Int(1),
                self.mine,
                Op::unary("write", ctx.input.clone()),
            )),
            Some(1) => Ok(Action::invoke(Value::Int(2), self.other, Op::new("read"))),
            _ => Ok(Action::Decide(resp.cloned().unwrap_or(Value::Nil))),
        }
    }
}

/// Four processes over two cells, inputs (1, 1, 1, 2): every independence
/// source occurs along random walks — different objects, same-object
/// read/read, same-object equal writes (p0/p2 both write 1 to cell 0), and
/// local decide steps — alongside genuinely dependent pairs (p1/p3 race
/// writes 1 vs 2 on cell 1; read-vs-write on a shared cell).
fn two_cell_system() -> SystemSpec {
    let mut b = SystemBuilder::new();
    let c0 = b.add_object(Cell);
    let c1 = b.add_object(Cell);
    let even: Arc<dyn Protocol> = Arc::new(WriteAcrossRead {
        mine: c0,
        other: c1,
    });
    let odd: Arc<dyn Protocol> = Arc::new(WriteAcrossRead {
        mine: c1,
        other: c0,
    });
    b.add_process(even.clone(), Value::Int(1));
    b.add_process(odd.clone(), Value::Int(1));
    b.add_process(even, Value::Int(1));
    b.add_process(odd, Value::Int(2));
    b.build()
}

/// Steps `pid`, asserting the step is deterministic (all objects here are).
fn step(spec: &SystemSpec, config: &Config, pid: Pid) -> Config {
    let mut succs = spec.successors(config, pid).expect("legal step");
    assert_eq!(succs.len(), 1, "deterministic objects: one successor");
    succs.swap_remove(0).0
}

/// Walks a uniformly random schedule for at most `steps` steps.
fn random_reachable_config(spec: &SystemSpec, rng: &mut SmallRng, steps: usize) -> Config {
    let mut config = spec.initial_config();
    for _ in 0..steps {
        let enabled: Vec<Pid> = config.enabled_iter().collect();
        if enabled.is_empty() {
            break;
        }
        let pid = enabled[rng.gen_index(enabled.len())];
        config = step(spec, &config, pid);
    }
    config
}

#[test]
fn independent_steps_commute_to_the_same_config() {
    let spec = two_cell_system();
    let (mut independent, mut dependent) = (0usize, 0usize);
    for seed in 0..300u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let steps = rng.gen_index(9);
        let config = random_reachable_config(&spec, &mut rng, steps);
        let enabled: Vec<Pid> = config.enabled_iter().collect();
        for (a, &p) in enabled.iter().enumerate() {
            for &q in &enabled[a + 1..] {
                if !spec.steps_independent(&config, p, q).expect("both enabled") {
                    dependent += 1;
                    continue;
                }
                independent += 1;
                let pq = step(&spec, &step(&spec, &config, p), q);
                let qp = step(&spec, &step(&spec, &config, q), p);
                assert_eq!(
                    pq, qp,
                    "seed {seed}: independent steps {p:?}, {q:?} must commute"
                );
            }
        }
    }
    // The fixture must actually exercise both sides of the declaration.
    assert!(independent > 200, "only {independent} independent pairs");
    assert!(dependent > 200, "only {dependent} dependent pairs");
}

#[test]
fn footprint_independence_is_symmetric() {
    let spec = two_cell_system();
    for seed in 0..100u64 {
        let mut rng = SmallRng::seed_from_u64(5_000 + seed);
        let steps = rng.gen_index(9);
        let config = random_reachable_config(&spec, &mut rng, steps);
        let enabled: Vec<Pid> = config.enabled_iter().collect();
        for &p in &enabled {
            for &q in &enabled {
                if p == q {
                    continue;
                }
                assert_eq!(
                    spec.steps_independent(&config, p, q).unwrap(),
                    spec.steps_independent(&config, q, p).unwrap(),
                    "seed {seed}: independence must be symmetric ({p:?}, {q:?})"
                );
            }
        }
    }
}
