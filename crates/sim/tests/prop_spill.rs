//! Randomized tests for arena spill primitives: encode → evict → restore
//! cycles must be bit-exact, conserve the resident-byte accounting, and
//! leave every id denoting the same state — the invariants the disk-backed
//! exploration store (`MC_STORE=disk`) rests on.
//!
//! Written over the in-tree seeded [`SmallRng`] (repo style: seeded loops,
//! no external property-testing dependency).

use std::sync::Arc;

use subconsensus_sim::{
    Action, CompactConfig, Config, ObjId, ObjectError, ObjectSpec, Op, Outcome, Pid, ProcCtx,
    Protocol, ProtocolError, SmallRng, StateInterner, SystemBuilder, SystemSpec, Value,
    ARENA_SEGMENT,
};

/// A counter: every `inc` makes a brand-new state, so long walks populate
/// whole arena segments with distinct values (the segment tests need more
/// than [`ARENA_SEGMENT`] distinct states per pool).
#[derive(Debug)]
struct Counter;

impl ObjectSpec for Counter {
    fn type_name(&self) -> &'static str {
        "counter"
    }

    fn initial_state(&self) -> Value {
        Value::Int(0)
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        match op.name {
            "inc" => {
                let n = state.as_int().unwrap_or(0) + 1;
                Ok(vec![Outcome::ret(Value::Int(n), Value::Int(n))])
            }
            _ => Err(ObjectError::UnknownOp {
                object: "counter",
                op: op.clone(),
            }),
        }
    }
}

/// Increment `rounds` times, then decide the last response.
#[derive(Debug)]
struct IncMany {
    counter: ObjId,
    rounds: i64,
}

impl Protocol for IncMany {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        Value::Int(0)
    }

    fn step(
        &self,
        _ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        match local.as_int() {
            Some(i) if i < self.rounds => Ok(Action::invoke(
                Value::Int(i + 1),
                self.counter,
                Op::new("inc"),
            )),
            _ => Ok(Action::Decide(resp.cloned().unwrap_or(Value::Nil))),
        }
    }
}

/// Two 80-round incrementers: walks reach up to 160 distinct counter
/// states and a comparable spread of proc states — several complete
/// [`ARENA_SEGMENT`]-sized segments in each pool.
fn counter_system() -> SystemSpec {
    let mut b = SystemBuilder::new();
    let counter = b.add_object(Counter);
    let p: Arc<dyn Protocol> = Arc::new(IncMany {
        counter,
        rounds: 80,
    });
    b.add_processes(p, [1i64, 2].into_iter().map(Value::Int));
    b.build()
}

/// Walks a uniformly random schedule for at most `steps` steps.
fn random_reachable_config(spec: &SystemSpec, rng: &mut SmallRng, steps: usize) -> Config {
    let mut config = spec.initial_config();
    for _ in 0..steps {
        let enabled: Vec<Pid> = config.enabled_iter().collect();
        if enabled.is_empty() {
            break;
        }
        let pid = enabled[rng.gen_index(enabled.len())];
        let mut succs = spec.successors(&config, pid).expect("legal step");
        let pick = rng.gen_index(succs.len());
        config = succs.swap_remove(pick).0;
    }
    config
}

/// Interns configs from seeded random walks (plus one exhaustive run to
/// the end) until both pools hold at least `min_segments` complete
/// segments; returns the (deep, compact) pairs seen.
fn populate(
    spec: &SystemSpec,
    interner: &mut StateInterner,
    base_seed: u64,
    min_segments: usize,
) -> Vec<(Config, CompactConfig)> {
    let mut pairs = Vec::new();
    // One full-length walk guarantees the counter sweeps 0..=160.
    let mut config = spec.initial_config();
    let mut rng = SmallRng::seed_from_u64(base_seed);
    loop {
        pairs.push((config.clone(), interner.intern_config(&config)));
        let enabled: Vec<Pid> = config.enabled_iter().collect();
        if enabled.is_empty() {
            break;
        }
        let pid = enabled[rng.gen_index(enabled.len())];
        let mut succs = spec.successors(&config, pid).expect("legal step");
        let pick = rng.gen_index(succs.len());
        config = succs.swap_remove(pick).0;
    }
    // Short random walks diversify proc-state interleavings.
    for seed in 0..40u64 {
        let mut rng = SmallRng::seed_from_u64(base_seed + 1000 + seed);
        let steps = rng.gen_index(60);
        let config = random_reachable_config(spec, &mut rng, steps);
        let compact = interner.intern_config(&config);
        pairs.push((config, compact));
    }
    assert!(
        interner.object_segments() >= min_segments,
        "fixture too small: {} complete object segments (need {min_segments}, \
         segment = {ARENA_SEGMENT} ids)",
        interner.object_segments()
    );
    assert!(
        interner.proc_segments() >= min_segments,
        "fixture too small: {} complete proc segments",
        interner.proc_segments()
    );
    pairs
}

#[test]
fn segment_encode_evict_restore_round_trips_bit_exact() {
    let spec = counter_system();
    for seed in 0..8u64 {
        let mut interner = StateInterner::new();
        let pairs = populate(&spec, &mut interner, seed * 7919, 2);
        let before_bytes = interner.resident_state_bytes();
        // Every complete segment in both pools: encode → evict → restore
        // must conserve the byte accounting and re-encode identically.
        for seg in 0..interner.object_segments() {
            let bytes = interner.encode_object_segment(seg);
            let freed = interner.evict_object_segment(seg);
            assert!(freed > 0, "seed {seed}: object segment {seg} freed bytes");
            assert!(!interner.object_segment_resident(seg));
            let restored = interner.restore_object_segment(seg, &bytes);
            assert_eq!(freed, restored, "seed {seed}: object bytes conserved");
            assert!(interner.object_segment_resident(seg));
            assert_eq!(
                bytes,
                interner.encode_object_segment(seg),
                "seed {seed}: object segment {seg} re-encodes bit-exact"
            );
        }
        for seg in 0..interner.proc_segments() {
            let bytes = interner.encode_proc_segment(seg);
            let freed = interner.evict_proc_segment(seg);
            assert!(freed > 0, "seed {seed}: proc segment {seg} freed bytes");
            assert!(!interner.proc_segment_resident(seg));
            let restored = interner.restore_proc_segment(seg, &bytes);
            assert_eq!(freed, restored, "seed {seed}: proc bytes conserved");
            assert_eq!(
                bytes,
                interner.encode_proc_segment(seg),
                "seed {seed}: proc segment {seg} re-encodes bit-exact"
            );
        }
        assert_eq!(
            before_bytes,
            interner.resident_state_bytes(),
            "seed {seed}: resident accounting round-trips"
        );
        // After the full cycle every compact config still materializes to
        // its original deep form and re-interns to the same ids.
        for (i, (config, compact)) in pairs.iter().enumerate() {
            assert_eq!(
                compact.materialize(&interner),
                *config,
                "seed {seed}: pair {i} materializes"
            );
            assert_eq!(
                &interner.intern_config(config),
                compact,
                "seed {seed}: pair {i} keeps its ids"
            );
        }
    }
}

#[test]
fn id_equality_and_fingerprints_survive_reload() {
    let spec = counter_system();
    for seed in 0..4u64 {
        let mut interner = StateInterner::new();
        let pairs = populate(&spec, &mut interner, 50_000 + seed * 104_729, 2);
        let fps: Vec<u64> = pairs
            .iter()
            .map(|(_, x)| interner.content_fingerprint_words(x.nobjects(), x.words()))
            .collect();
        // Evict every complete segment in both pools at once — the worst
        // case the disk store's eviction pass can produce.
        let mut obj_bytes = Vec::new();
        for seg in 0..interner.object_segments() {
            obj_bytes.push(interner.encode_object_segment(seg));
            interner.evict_object_segment(seg);
        }
        let mut proc_bytes = Vec::new();
        for seg in 0..interner.proc_segments() {
            proc_bytes.push(interner.encode_proc_segment(seg));
            interner.evict_proc_segment(seg);
        }
        // Content fingerprints never dereference values, so they must be
        // computable — and unchanged — while the states are cold. Shard
        // routing relies on exactly this.
        for ((_, x), fp) in pairs.iter().zip(&fps) {
            assert_eq!(
                interner.content_fingerprint_words(x.nobjects(), x.words()),
                *fp,
                "seed {seed}: fingerprint stable under eviction"
            );
        }
        for (seg, bytes) in obj_bytes.iter().enumerate() {
            interner.restore_object_segment(seg, bytes);
        }
        for (seg, bytes) in proc_bytes.iter().enumerate() {
            interner.restore_proc_segment(seg, bytes);
        }
        // Id equality still coincides with deep equality after the reload:
        // re-interning takes the dedup path through restored values.
        for (i, (config, compact)) in pairs.iter().enumerate() {
            assert_eq!(
                &interner.intern_config(config),
                compact,
                "seed {seed}: pair {i} dedups onto its restored states"
            );
        }
        for (i, (ca, xa)) in pairs.iter().enumerate() {
            for (cb, xb) in pairs.iter().skip(i) {
                assert_eq!(
                    ca == cb,
                    xa == xb,
                    "seed {seed}: id equality must coincide with deep equality"
                );
            }
        }
    }
}
