//! Seeded property suite for the streaming-verdict engine
//! ([`ExploreGoal::Verdict`]): against ground truth computed from a full
//! (`ExploreGoal::FullGraph`) exploration of the same spec under the same
//! reductions, the streaming answer must
//!
//! 1. *agree* — `holds()` decides exactly the full-graph answer on every
//!    untruncated run, across shard counts × POR × symmetry;
//! 2. stay *one-sided sound* when truncated — never `Some(true)`, any
//!    `Some(false)` backed by the full graph, and every bound
//!    (`max_distinct.lower`, `root_valence`) a valid lower approximation;
//! 3. leave the graph *verdict-only* — CSR-consuming analyses
//!    (`edges`, `find_critical`, sharded `node`) panic with an actionable
//!    message instead of reading adjacency that was never frozen.
//!
//! Written over the in-tree seeded [`SmallRng`] (repo style: seeded loops,
//! no external property-testing dependency).

use std::collections::BTreeSet;
use std::sync::Arc;

use subconsensus_modelcheck::{
    check_wait_freedom, find_critical, max_distinct_decisions, ExploreGoal, ExploreOptions,
    StateGraph, TerminalReport, Valency, VerdictCause, VerdictQuery, WaitFreedom,
};
use subconsensus_sim::{
    Action, ObjId, ObjectError, ObjectSpec, Op, Outcome, Pid, ProcCtx, Protocol, ProtocolError,
    SmallRng, SymmetryGroups, SystemBuilder, SystemSpec, Value,
};

// ---------------------------------------------------------------------------
// Fixture zoo: one wait-free agreeing family, one wait-free disagreeing
// family, one diverging (spin) family, one hanging family — so every
// refutation path of the engine (cycle, hung terminal, distinct-count,
// validity) has a spec that triggers it and a spec that does not.
// ---------------------------------------------------------------------------

/// A sticky agreement cell: the first proposal wins, later proposals read it.
#[derive(Debug)]
struct Sticky;

impl ObjectSpec for Sticky {
    fn type_name(&self) -> &'static str {
        "sticky"
    }

    fn initial_state(&self) -> Value {
        Value::Nil
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        let v = op.arg(0).cloned().unwrap_or(Value::Nil);
        let winner = if state.is_nil() { v } else { state.clone() };
        Ok(vec![Outcome::ret(winner.clone(), winner)])
    }
}

/// A one-shot sticky cell: the first proposal wins and returns, every later
/// proposal hangs inside the object — the capped-capacity shape that refutes
/// wait-freedom through a hung terminal rather than a cycle.
#[derive(Debug)]
struct OneShotSticky;

impl ObjectSpec for OneShotSticky {
    fn type_name(&self) -> &'static str {
        "one-shot-sticky"
    }

    fn initial_state(&self) -> Value {
        Value::Nil
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        if state.is_nil() {
            let v = op.arg(0).cloned().unwrap_or(Value::Nil);
            Ok(vec![Outcome::ret(v.clone(), v)])
        } else {
            Ok(vec![Outcome::hang(state.clone())])
        }
    }
}

/// A nondeterministic coin: `flip` lands 0 or 1.
#[derive(Debug)]
struct Coin;

impl ObjectSpec for Coin {
    fn type_name(&self) -> &'static str {
        "coin"
    }

    fn initial_state(&self) -> Value {
        Value::Int(0)
    }

    fn apply(&self, _state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        match op.name {
            "flip" => Ok(vec![
                Outcome::ret(Value::Int(0), Value::Int(0)),
                Outcome::ret(Value::Int(1), Value::Int(1)),
            ]),
            _ => Err(ObjectError::UnknownOp {
                object: "coin",
                op: op.clone(),
            }),
        }
    }
}

/// A one-cell flag: `read` returns the state, `set` raises it to 1.
#[derive(Debug)]
struct Flag;

impl ObjectSpec for Flag {
    fn type_name(&self) -> &'static str {
        "flag"
    }

    fn initial_state(&self) -> Value {
        Value::Int(0)
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        match op.name {
            "read" => Ok(vec![Outcome::ret(state.clone(), state.clone())]),
            "set" => Ok(vec![Outcome::ret(Value::Int(1), Value::Int(1))]),
            _ => Err(ObjectError::UnknownOp {
                object: "flag",
                op: op.clone(),
            }),
        }
    }
}

/// Flip the coin, propose the input, decide the sticky answer. Never reads
/// `ctx.pid`, so equal-input processes are symmetric.
#[derive(Debug)]
struct FlipPropose {
    coin: ObjId,
    sticky: ObjId,
}

impl Protocol for FlipPropose {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        Value::Int(0)
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        match local.as_int() {
            Some(0) => Ok(Action::invoke(Value::Int(1), self.coin, Op::new("flip"))),
            Some(1) => Ok(Action::invoke(
                Value::Int(2),
                self.sticky,
                Op::unary("propose", ctx.input.clone()),
            )),
            _ => Ok(Action::Decide(resp.cloned().unwrap_or(Value::Nil))),
        }
    }

    fn pid_symmetric(&self) -> bool {
        true
    }
}

/// Flip the coin and decide the flip: wait-free, but terminals where the
/// coins disagree carry two distinct decisions — the fixture whose
/// `max_distinct(1)` and `valid_values([1])` queries are refuted while
/// wait-freedom holds.
#[derive(Debug)]
struct FlipDecide {
    coin: ObjId,
}

impl Protocol for FlipDecide {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        Value::Int(0)
    }

    fn step(
        &self,
        _ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        match local.as_int() {
            Some(0) => Ok(Action::invoke(Value::Int(1), self.coin, Op::new("flip"))),
            _ => Ok(Action::Decide(resp.cloned().unwrap_or(Value::Nil))),
        }
    }

    fn pid_symmetric(&self) -> bool {
        true
    }
}

/// The sim-crate stand-in for the bench gate fixtures: pid 0 proposes to
/// the sticky cell and raises the flag; everyone else spin-reads the flag
/// and decides once it is up. Non-blocking but not wait-free — the spin is
/// a self-loop configuration, the cycle a streaming wait-freedom check
/// refutes a few levels in.
#[derive(Debug)]
struct MiniGate {
    sticky: ObjId,
    flag: ObjId,
}

impl Protocol for MiniGate {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        Value::Int(0)
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        let pc = local.as_int().unwrap_or(-1);
        if ctx.pid.index() == 0 {
            match pc {
                0 => Ok(Action::invoke(
                    Value::Int(1),
                    self.sticky,
                    Op::unary("propose", ctx.input.clone()),
                )),
                1 => Ok(Action::invoke(Value::Int(2), self.flag, Op::new("set"))),
                _ => Ok(Action::Decide(ctx.input.clone())),
            }
        } else if pc == 0 || !resp.is_some_and(|r| r.as_int() == Some(1)) {
            // Flag still down (or first step): poll. Re-invoking from the
            // same local state makes the successor configuration equal to
            // this one — the spin cycle.
            Ok(Action::invoke(Value::Int(1), self.flag, Op::new("read")))
        } else {
            Ok(Action::Decide(ctx.input.clone()))
        }
    }

    // Writer and spinners share the flag, so POR cannot serialize the spin
    // cycle out of the reduced graph.
    fn obj_footprint(&self, ctx: &ProcCtx) -> Option<Vec<ObjId>> {
        if ctx.pid.index() == 0 {
            Some(vec![self.sticky, self.flag])
        } else {
            Some(vec![self.flag])
        }
    }
}

/// Propose the input to the one-shot cell, decide the answer. With ≥ 2
/// processes every schedule hangs all but the first proposer.
#[derive(Debug)]
struct OneShotPropose {
    cell: ObjId,
}

impl Protocol for OneShotPropose {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        Value::Int(0)
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        match local.as_int() {
            Some(0) => Ok(Action::invoke(
                Value::Int(1),
                self.cell,
                Op::unary("propose", ctx.input.clone()),
            )),
            _ => Ok(Action::Decide(resp.cloned().unwrap_or(Value::Nil))),
        }
    }

    fn pid_symmetric(&self) -> bool {
        true
    }
}

/// `procs` flip-proposers; `equal` of them share input 1 (one nontrivial
/// symmetry group), the rest get distinct inputs.
fn flip_system(procs: usize, equal: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let coin = b.add_object(Coin);
    let sticky = b.add_object(Sticky);
    let p: Arc<dyn Protocol> = Arc::new(FlipPropose { coin, sticky });
    b.add_processes(
        p,
        (0..procs).map(|i| Value::Int(if i < equal { 1 } else { i as i64 + 1 })),
    );
    b.build()
}

fn flip_decide_system(procs: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let coin = b.add_object(Coin);
    let p: Arc<dyn Protocol> = Arc::new(FlipDecide { coin });
    b.add_processes(p, (0..procs).map(|_| Value::Int(1)));
    b.build()
}

fn gate_system(procs: usize) -> SystemSpec {
    assert!(procs >= 2);
    let mut b = SystemBuilder::new();
    let sticky = b.add_object(Sticky);
    let flag = b.add_object(Flag);
    let p: Arc<dyn Protocol> = Arc::new(MiniGate { sticky, flag });
    b.add_processes(p, (0..procs).map(|_| Value::Int(1)));
    // The protocol reads `ctx.pid` to pick its role, so declare the
    // spinner group explicitly.
    b.set_symmetry_groups(SymmetryGroups::new([(1..procs)
        .map(Pid::new)
        .collect::<Vec<_>>()]));
    b.build()
}

fn one_shot_system(procs: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let cell = b.add_object(OneShotSticky);
    let p: Arc<dyn Protocol> = Arc::new(OneShotPropose { cell });
    b.add_processes(p, (0..procs).map(|_| Value::Int(1)));
    b.build()
}

// ---------------------------------------------------------------------------
// Ground truth from the full graph.
// ---------------------------------------------------------------------------

/// Full-graph facts under the same reductions the verdict run will use.
struct GroundTruth {
    graph_len: usize,
    wait_free: bool,
    max_distinct: usize,
    /// Union of decided values over all terminals (the exact root valence).
    valence: BTreeSet<Value>,
}

fn ground_truth(spec: &SystemSpec, opts: &ExploreOptions) -> GroundTruth {
    let full = StateGraph::explore(spec, opts).expect("full explore");
    assert!(!full.is_truncated(), "ground-truth graph must complete");
    let report = TerminalReport::of(&full);
    GroundTruth {
        graph_len: full.len(),
        wait_free: check_wait_freedom(&full).is_wait_free(),
        max_distinct: max_distinct_decisions(&full),
        valence: report
            .decision_sets
            .iter()
            .flat_map(|s| s.iter().cloned())
            .collect(),
    }
}

/// What `holds()` must decide for `query` given the full-graph facts.
fn expected_answer(query: &VerdictQuery, truth: &GroundTruth) -> bool {
    let mut ok = true;
    if query.wait_freedom {
        ok &= truth.wait_free;
    }
    if let Some(k) = query.max_distinct {
        ok &= truth.max_distinct <= k;
    }
    if let Some(valid) = &query.valid_values {
        ok &= truth.valence.iter().all(|v| valid.contains(v));
    }
    if query.univalent {
        ok &= truth.valence.len() <= 1;
    }
    ok
}

/// Seeded random query with at least one conjunct.
fn random_query(rng: &mut SmallRng) -> VerdictQuery {
    loop {
        let mut q = VerdictQuery::new();
        if rng.gen_index(2) == 0 {
            q = q.require_wait_freedom();
        }
        if rng.gen_index(2) == 0 {
            q = q.require_max_distinct(1 + rng.gen_index(2));
        }
        if rng.gen_index(2) == 0 {
            // {1} refutes validity on the distinct-input and coin-deciding
            // fixtures; {0, 1, …, 4} covers every decided value.
            q = q.require_valid_values(if rng.gen_index(2) == 0 {
                vec![Value::Int(1)]
            } else {
                (0..5).map(Value::Int).collect()
            });
        }
        if rng.gen_index(2) == 0 {
            q = q.require_univalent();
        }
        if q.wait_freedom || q.max_distinct.is_some() || q.valid_values.is_some() || q.univalent {
            return q;
        }
    }
}

fn fixtures() -> Vec<(&'static str, SystemSpec)> {
    vec![
        ("flip-propose sym p3", flip_system(3, 3)),
        ("flip-propose distinct p3", flip_system(3, 0)),
        ("flip-decide p3", flip_decide_system(3)),
        ("gate p3", gate_system(3)),
        ("one-shot p3", one_shot_system(3)),
    ]
}

/// Bound soundness shared by every verdict, partial or complete.
fn assert_bounds_sound(
    vd: &subconsensus_modelcheck::StreamingVerdict,
    truth: &GroundTruth,
    label: &str,
) {
    assert!(
        vd.max_distinct.lower <= truth.max_distinct,
        "{label}: lower bound {} exceeds true max distinct {}",
        vd.max_distinct.lower,
        truth.max_distinct
    );
    assert!(
        vd.root_valence.is_subset(&truth.valence),
        "{label}: observed valence {:?} not within true valence {:?}",
        vd.root_valence,
        truth.valence
    );
    if let Some(wf) = &vd.wait_freedom {
        assert_eq!(
            wf.is_wait_free(),
            truth.wait_free,
            "{label}: decided wait-freedom {wf:?} contradicts the full graph"
        );
    }
    if !vd.complete() {
        assert_eq!(
            vd.max_distinct.upper, None,
            "{label}: partial run claims an exact distinct count"
        );
    }
    assert!(
        vd.configs <= truth.graph_len,
        "{label}: verdict explored {} configs, full graph has {}",
        vd.configs,
        truth.graph_len
    );
}

// ---------------------------------------------------------------------------
// 1. Agreement on untruncated runs, across shards × POR × symmetry.
// ---------------------------------------------------------------------------

#[test]
fn streaming_verdicts_agree_with_full_graph_across_reductions() {
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    for (name, spec) in fixtures() {
        for symmetry in [false, true] {
            for por in [false, true] {
                let base = ExploreOptions::default()
                    .with_symmetry(symmetry)
                    .with_por(por);
                let truth = ground_truth(&spec, &base);
                for _ in 0..4 {
                    let query = random_query(&mut rng);
                    let expected = expected_answer(&query, &truth);
                    for shards in [1usize, 4] {
                        let label =
                            format!("{name} sym={symmetry} por={por} x{shards} query={query:?}");
                        let g = StateGraph::explore(
                            &spec,
                            &base
                                .clone()
                                .with_shards(shards)
                                .with_goal(ExploreGoal::Verdict(query.clone())),
                        )
                        .expect("verdict explore");
                        assert!(g.is_verdict_only(), "{label}: graph not verdict-only");
                        let vd = g.verdict().expect("verdict present");
                        assert!(
                            !matches!(vd.cause, VerdictCause::Truncated { .. }),
                            "{label}: unexpectedly truncated"
                        );
                        assert_eq!(
                            vd.holds(),
                            Some(expected),
                            "{label}: streaming answer diverges from the full graph \
                             (cause {:?})",
                            vd.cause
                        );
                        assert_bounds_sound(vd, &truth, &label);
                        if vd.complete() {
                            assert_eq!(
                                vd.max_distinct.exact(),
                                Some(truth.max_distinct),
                                "{label}: complete run's exact distinct count"
                            );
                            assert_eq!(
                                vd.root_valence, truth.valence,
                                "{label}: complete run's root valence"
                            );
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Truncated runs stay one-sided sound.
// ---------------------------------------------------------------------------

#[test]
fn truncated_verdicts_are_sound_partials() {
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ 0x7121C);
    for (name, spec) in fixtures() {
        let base = ExploreOptions::default();
        let truth = ground_truth(&spec, &base);
        for _ in 0..6 {
            let query = random_query(&mut rng);
            let expected = expected_answer(&query, &truth);
            // Caps strictly below the full size force either an early exit
            // (the answer was decided first) or a truncation.
            let cap = 1 + rng.gen_index(truth.graph_len - 1);
            let g = StateGraph::explore(
                &spec,
                &ExploreOptions::with_max_configs(cap)
                    .with_goal(ExploreGoal::Verdict(query.clone())),
            )
            .expect("verdict explore");
            let vd = g.verdict().expect("verdict present");
            let label = format!("{name} cap={cap} query={query:?} cause={:?}", vd.cause);
            assert_bounds_sound(vd, &truth, &label);
            match vd.cause {
                VerdictCause::Exhausted => {
                    // The level-granular cap can still finish the graph
                    // exactly; then the answer must be decided and right.
                    assert_eq!(vd.holds(), Some(expected), "{label}");
                }
                VerdictCause::EarlyExit { .. } => {
                    // Early exit only happens on a decided refutation.
                    assert_eq!(vd.holds(), Some(false), "{label}");
                    assert!(!expected, "{label}: refuted a property that holds");
                }
                VerdictCause::Truncated { cap: c } => {
                    assert_eq!(c, cap, "{label}: cause records the wrong cap");
                    assert!(!vd.complete(), "{label}");
                    assert_ne!(
                        vd.holds(),
                        Some(true),
                        "{label}: positive claim from a truncated run"
                    );
                    if vd.holds() == Some(false) {
                        assert!(!expected, "{label}: refuted a property that holds");
                    }
                }
            }
        }
    }
}

/// A hung-terminal refutation is decided mid-graph even when the cap would
/// have truncated the run later: the one-shot fixture hangs every schedule.
#[test]
fn hung_terminals_refute_before_truncation_matters() {
    let spec = one_shot_system(3);
    let g = StateGraph::explore(
        &spec,
        &ExploreOptions::default().with_goal(ExploreGoal::Verdict(
            VerdictQuery::new().require_wait_freedom(),
        )),
    )
    .expect("verdict explore");
    let vd = g.verdict().expect("verdict present");
    assert_eq!(vd.holds(), Some(false));
    assert_eq!(vd.wait_freedom, Some(WaitFreedom::Hangs));
}

// ---------------------------------------------------------------------------
// 3. Verdict-only graphs refuse CSR-consuming analyses with clear panics.
// ---------------------------------------------------------------------------

fn verdict_only_graph() -> StateGraph {
    StateGraph::explore(
        &gate_system(3),
        &ExploreOptions::default().with_goal(ExploreGoal::Verdict(
            VerdictQuery::new().require_wait_freedom(),
        )),
    )
    .expect("verdict explore")
}

#[test]
#[should_panic(expected = "ExploreGoal::FullGraph")]
fn find_critical_panics_on_verdict_only_graph() {
    // A valency computed on the *full* graph is irrelevant here: the
    // verdict-only guard must fire before any index is touched.
    let full =
        StateGraph::explore(&flip_system(2, 0), &ExploreOptions::default()).expect("full explore");
    let valency = Valency::compute(&full);
    let g = verdict_only_graph();
    let _ = find_critical(&g, &valency);
}

#[test]
#[should_panic(expected = "frozen CSR adjacency")]
fn edges_panic_on_verdict_only_graph() {
    let g = verdict_only_graph();
    let _ = g.edges(0);
}

#[test]
#[should_panic(expected = "never gathered")]
fn node_contents_panic_on_sharded_verdict_only_graph() {
    let g = StateGraph::explore(
        &gate_system(3),
        &ExploreOptions::default()
            .with_shards(4)
            .with_goal(ExploreGoal::Verdict(
                VerdictQuery::new().require_wait_freedom(),
            )),
    )
    .expect("verdict explore");
    let _ = g.node(0);
}
