//! Round-trip tests for every hand-built JSON emitter in the crate.
//!
//! The workspace has no serde: `ExploreMetrics`, its component snapshots,
//! the run-ledger `RunRecord`, and the `MC_STATUS_FILE` snapshot are all
//! formatted by hand. Each emitter here is fed through the in-tree
//! [`subconsensus_sim::json`] parser — the same one `mc-report` uses — so
//! a malformed escape, a missing comma, or a field rename that would break
//! downstream tooling fails in-tree first.

use subconsensus_sim::json::JsonValue;
use subconsensus_sim::{
    warn_once, ExploreMetrics, InternerStats, LevelMetrics, Recorder, RunRecord, ShardMetrics,
    StoreMetrics, TruncationCause,
};

fn parse(json: &str) -> JsonValue {
    JsonValue::parse(json).unwrap_or_else(|e| panic!("emitter produced invalid JSON: {e}\n{json}"))
}

fn u(v: &JsonValue, key: &str) -> u64 {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("missing integer key {key:?}"))
}

#[test]
fn level_metrics_round_trip() {
    let level = LevelMetrics {
        level: 3,
        items: 10,
        new_nodes: 7,
        nodes_total: 42,
        edges_total: 99,
        elapsed_ns: 123_456,
    };
    let v = parse(&level.to_json());
    assert_eq!(u(&v, "level"), 3);
    assert_eq!(u(&v, "items"), 10);
    assert_eq!(u(&v, "new_nodes"), 7);
    assert_eq!(u(&v, "nodes"), 42);
    assert_eq!(u(&v, "edges"), 99);
    assert_eq!(u(&v, "elapsed_ns"), 123_456);
}

#[test]
fn shard_metrics_round_trip() {
    let shard = ShardMetrics {
        shard: 2,
        expand_ns: 1,
        canonicalize_ns: 2,
        por_ns: 3,
        dedup_ns: 4,
        merge_ns: 5,
        nodes: 6,
        edges: 7,
        sent: 8,
        received: 9,
        max_outbox: 10,
        outbox_flushes: 11,
    };
    let v = parse(&shard.to_json());
    assert_eq!(u(&v, "shard"), 2);
    assert_eq!(u(&v, "nodes"), 6);
    assert_eq!(u(&v, "sent"), 8);
    assert_eq!(u(&v, "outbox_flushes"), 11);
}

#[test]
fn store_metrics_round_trip() {
    let store = StoreMetrics {
        spilled_bytes: 65_536,
        reload_count: 12,
        hot_hits: 30,
        hot_misses: 10,
        spill_write_ns: 100,
        spill_read_ns: 200,
    };
    let v = parse(&store.to_json());
    assert_eq!(u(&v, "spilled_bytes"), 65_536);
    assert_eq!(u(&v, "reload_count"), 12);
    let rate = v.get("hot_hit_rate").and_then(JsonValue::as_f64).unwrap();
    assert!((rate - 0.75).abs() < 1e-9, "hot_hit_rate {rate}");
}

#[test]
fn interner_stats_round_trip() {
    let stats = InternerStats {
        object_states: 100,
        proc_states: 50,
        requests: 1000,
        hits: 900,
        table_bytes: 4096,
        state_bytes: 1024,
    };
    let v = parse(&stats.to_json());
    assert_eq!(u(&v, "object_states"), 100);
    assert_eq!(u(&v, "proc_states"), 50);
    assert_eq!(u(&v, "table_bytes"), 4096);
    assert_eq!(u(&v, "state_bytes"), 1024);
    assert_eq!(u(&v, "bytes_saved"), stats.bytes_saved());
    let rate = v.get("hit_rate").and_then(JsonValue::as_f64).unwrap();
    assert!((rate - 0.9).abs() < 1e-4, "hit_rate {rate}");
}

/// A fully-populated snapshot: every optional branch (levels, shards,
/// store, truncation) on at once.
fn busy_metrics() -> ExploreMetrics {
    ExploreMetrics {
        expand_ns: 11,
        canonicalize_ns: 12,
        por_ns: 13,
        dedup_ns: 14,
        merge_ns: 15,
        freeze_ns: 16,
        reverse_csr_ns: 17,
        freeze_calls: 1,
        reverse_csr_calls: 1,
        total_ns: 200,
        timed: true,
        configs: 1000,
        edges: 2500,
        generated: 3000,
        dedup_hits: 2000,
        added: 1000,
        capped: 0,
        symmetry_hits: 5,
        sleep_pruned: 6,
        expansions: 999,
        levels: vec![
            LevelMetrics {
                level: 0,
                items: 1,
                new_nodes: 3,
                nodes_total: 4,
                edges_total: 3,
                elapsed_ns: 10,
            },
            LevelMetrics {
                level: 1,
                items: 3,
                new_nodes: 996,
                nodes_total: 1000,
                edges_total: 2500,
                elapsed_ns: 20,
            },
        ],
        shards: vec![ShardMetrics {
            shard: 0,
            nodes: 1000,
            edges: 2500,
            ..Default::default()
        }],
        peak_bytes: 123_456,
        store: Some(StoreMetrics {
            spilled_bytes: 777,
            ..Default::default()
        }),
        truncation: TruncationCause::MaxConfigs { cap: 1000 },
    }
}

#[test]
fn explore_metrics_round_trip() {
    let v = parse(&busy_metrics().to_json());
    assert_eq!(u(&v, "configs"), 1000);
    assert_eq!(u(&v, "edges"), 2500);
    assert_eq!(u(&v, "peak_bytes"), 123_456);
    assert_eq!(v.get("timed").and_then(JsonValue::as_bool), Some(true));
    let phases = v.get("phases").expect("phases object");
    assert_eq!(u(phases, "total_ns"), 200);
    assert_eq!(
        u(phases, "other_ns"),
        200 - (11 + 12 + 13 + 14 + 15 + 16 + 17)
    );
    let levels = v.get("levels").and_then(JsonValue::as_array).unwrap();
    assert_eq!(levels.len(), 2);
    assert_eq!(u(&levels[1], "nodes"), 1000);
    let shards = v.get("shards").and_then(JsonValue::as_array).unwrap();
    assert_eq!(shards.len(), 1);
    let trunc = v.get("truncation").expect("truncation object");
    assert_eq!(
        trunc.get("cause").and_then(JsonValue::as_str),
        Some("max_configs")
    );
    assert_eq!(u(trunc, "cap"), 1000);
    assert_eq!(u(v.get("store").unwrap(), "spilled_bytes"), 777);
}

#[test]
fn explore_metrics_null_branches() {
    let metrics = ExploreMetrics::default();
    let v = parse(&metrics.to_json());
    assert!(v.get("truncation").unwrap().is_null(), "Complete => null");
    assert!(v.get("store").unwrap().is_null(), "memory store => null");
    assert!(v
        .get("levels")
        .and_then(JsonValue::as_array)
        .unwrap()
        .is_empty());
    let budget = ExploreMetrics {
        truncation: TruncationCause::MemoryBudget { budget: 4096 },
        ..Default::default()
    };
    let v = parse(&budget.to_json());
    let trunc = v.get("truncation").unwrap();
    assert_eq!(
        trunc.get("cause").and_then(JsonValue::as_str),
        Some("memory_budget")
    );
    assert_eq!(u(trunc, "budget"), 4096);
}

#[test]
fn run_record_round_trip() {
    let record = RunRecord {
        spec_hash: 0x0123_4567_89ab_cdef,
        started_unix_ms: 1_700_000_000_000,
        ended_unix_ms: 1_700_000_001_500,
        git_revision: "abc123def456".to_string(),
        options_json: "{\"max_configs\": 200000, \"shards\": 4}".to_string(),
        outcome_json: "{\"kind\": \"graph\", \"configs\": 42, \"edges\": 99, \
                       \"terminals\": 3, \"truncated\": false}"
            .to_string(),
        metrics_json: busy_metrics().to_json(),
    };
    let v = parse(&record.to_json());
    assert_eq!(
        v.get("spec_hash").and_then(JsonValue::as_str),
        Some("0123456789abcdef"),
        "spec hash must be the 16-hex-digit string form (u64s overflow JSON numbers)"
    );
    assert_eq!(u(&v, "started_unix_ms"), 1_700_000_000_000);
    assert_eq!(u(&v, "ended_unix_ms"), 1_700_000_001_500);
    assert_eq!(
        v.get("git_revision").and_then(JsonValue::as_str),
        Some("abc123def456")
    );
    assert!(v.get("env").and_then(JsonValue::as_object).is_some());
    assert_eq!(u(v.get("options").unwrap(), "shards"), 4);
    assert_eq!(
        v.get("outcome")
            .unwrap()
            .get("kind")
            .and_then(JsonValue::as_str),
        Some("graph")
    );
    assert_eq!(u(v.get("metrics").unwrap(), "configs"), 1000);
}

#[test]
fn run_log_appends_parseable_lines() {
    let dir = std::env::temp_dir().join(format!("mc_rt_runlog_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("runs.jsonl");
    let rec = Recorder::new().with_run_log(&path);
    let record = RunRecord {
        spec_hash: 7,
        started_unix_ms: 1,
        ended_unix_ms: 2,
        git_revision: "r".to_string(),
        options_json: "{}".to_string(),
        outcome_json: "{\"kind\": \"graph\"}".to_string(),
        metrics_json: ExploreMetrics::default().to_json(),
    };
    rec.append_run_record(&record);
    rec.append_run_record(&record);
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "one JSONL line per record");
    for line in lines {
        let v = parse(line);
        assert_eq!(
            v.get("spec_hash").and_then(JsonValue::as_str),
            Some("0000000000000007")
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn status_file_round_trip() {
    let dir = std::env::temp_dir().join(format!("mc_rt_status_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("status.json");
    let rec = Recorder::new().with_status_file(&path);
    rec.finalize_status(1234);
    let text = std::fs::read_to_string(&path).unwrap();
    let v = parse(&text);
    assert_eq!(v.get("state").and_then(JsonValue::as_str), Some("done"));
    assert_eq!(u(&v, "explored"), 1234);
    assert_eq!(u(&v, "frontier"), 0);
    assert_eq!(u(&v, "bound_remaining"), 0);
    assert_eq!(u(&v, "pid"), u64::from(std::process::id()));
    assert!(v.get("eta_secs").and_then(JsonValue::as_f64).is_some());
    // The atomic-rename protocol must leave no temp file behind.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warn_once_fires_at_most_once_per_key() {
    assert!(warn_once("rt_test_key", "first"), "first call emits");
    assert!(!warn_once("rt_test_key", "second"), "second call is silent");
    assert!(!warn_once("rt_test_key", "third"), "and stays silent");
    assert!(
        warn_once("rt_test_other_key", "other"),
        "distinct keys are independent"
    );
}
