//! Determinism, replay and crash-adversary integration tests for the
//! simulator: a recorded schedule replays to the identical outcome, and
//! fail-stop subsets behave like never-scheduled processes.

use std::sync::Arc;

use subconsensus_sim::{
    run, Action, CrashScheduler, FirstOutcome, ObjId, ObjectError, ObjectSpec, Op, Outcome, Pid,
    ProcCtx, Protocol, ProtocolError, RandomScheduler, ReplayScheduler, RoundRobin, RunOptions,
    SystemBuilder, SystemSpec, Value,
};

/// A register object.
#[derive(Debug)]
struct Reg;

impl ObjectSpec for Reg {
    fn type_name(&self) -> &'static str {
        "reg"
    }

    fn initial_state(&self) -> Value {
        Value::Nil
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        match op.name {
            "read" => Ok(vec![Outcome::ret(state.clone(), state.clone())]),
            "write" => Ok(vec![Outcome::ret(
                op.arg(0).cloned().unwrap_or(Value::Nil),
                Value::Nil,
            )]),
            _ => Err(ObjectError::UnknownOp {
                object: "reg",
                op: op.clone(),
            }),
        }
    }
}

/// Write own input, read, decide what was read.
#[derive(Debug)]
struct WriteReadDecide {
    reg: ObjId,
}

impl Protocol for WriteReadDecide {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        Value::Int(0)
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        match local.as_int() {
            Some(0) => Ok(Action::invoke(
                Value::Int(1),
                self.reg,
                Op::unary("write", ctx.input.clone()),
            )),
            Some(1) => Ok(Action::invoke(Value::Int(2), self.reg, Op::new("read"))),
            _ => Ok(Action::Decide(resp.cloned().unwrap_or(Value::Nil))),
        }
    }
}

fn race(nprocs: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let reg = b.add_object(Reg);
    let p: Arc<dyn Protocol> = Arc::new(WriteReadDecide { reg });
    b.add_processes(p, (0..nprocs).map(|i| Value::Int(i as i64 + 1)));
    b.build()
}

#[test]
fn recorded_schedules_replay_to_identical_outcomes() {
    let spec = race(3);
    for seed in 0..50 {
        let mut sched = RandomScheduler::seeded(seed);
        let original = run(
            &spec,
            &mut sched,
            &mut FirstOutcome,
            &RunOptions::default().traced(),
        )
        .unwrap();
        assert!(original.reached_final);

        let mut replay = ReplayScheduler::new(original.trace.schedule());
        let replayed = run(
            &spec,
            &mut replay,
            &mut FirstOutcome,
            &RunOptions::default().traced(),
        )
        .unwrap();
        assert_eq!(original.decisions(), replayed.decisions(), "seed {seed}");
        assert_eq!(
            original.trace, replayed.trace,
            "seed {seed}: step-identical"
        );
        assert_eq!(
            original.config, replayed.config,
            "seed {seed}: same final config"
        );
    }
}

#[test]
fn crashed_subsets_leave_survivors_unharmed() {
    let n = 4;
    let spec = race(n);
    // Crash every proper subset of processes initially: survivors decide.
    for mask in 0u32..(1 << n) - 1 {
        let crashed: Vec<Pid> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(Pid::new)
            .collect();
        let mut sched = CrashScheduler::crash_initially(RoundRobin::new(), crashed.clone());
        let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
        for i in 0..n {
            let pid = Pid::new(i);
            if crashed.contains(&pid) {
                assert_eq!(out.decisions()[i], None, "crashed {pid} must not decide");
            } else {
                assert!(out.decisions()[i].is_some(), "survivor {pid} must decide");
            }
        }
    }
}

#[test]
fn mid_run_crashes_are_prefix_consistent() {
    // Crashing P0 after s steps produces the same decisions for P0 as some
    // prefix-truncated run: in particular, if P0 decided before crashing
    // the decision persists.
    let spec = race(2);
    for budget in 0..=3 {
        let mut sched = CrashScheduler::new(
            RoundRobin::new(),
            [(Pid::new(0), budget)].into_iter().collect(),
        );
        let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
        if budget >= 3 {
            assert!(out.decisions()[0].is_some(), "3 steps suffice to decide");
        } else {
            assert_eq!(out.decisions()[0], None);
        }
        assert!(out.decisions()[1].is_some(), "P1 always finishes");
    }
}

#[test]
fn crash_scheduler_composes_with_random_inner() {
    let spec = race(3);
    for seed in 0..30 {
        let mut sched = CrashScheduler::new(
            RandomScheduler::seeded(seed),
            [(Pid::new(2), 2usize)].into_iter().collect(),
        );
        let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
        assert!(out.decisions()[0].is_some());
        assert!(out.decisions()[1].is_some());
        assert_eq!(
            out.decisions()[2],
            None,
            "P2 crashed after 2 of its 3 steps"
        );
    }
}
