//! Randomized tests across the protocol library: randomized schedules,
//! participant subsets and workloads, with the task/linearizability
//! validators as oracles.
//!
//! Formerly `proptest`-based; rewritten over the in-tree seeded
//! [`SmallRng`] so the workspace builds with no external dependencies.

use std::sync::Arc;

use subconsensus_objects::{RegisterArray, Snapshot};
use subconsensus_protocols::{
    grid_cells, GridRenaming, ImmediateSnapshot, SafeAgreement, SnapshotFromRegisters,
};
use subconsensus_sim::{
    check_linearizable, run, run_concurrent, BaseObjects, FirstOutcome, Implementation, Op,
    Protocol, RandomScheduler, RunOptions, SmallRng, SystemBuilder, Value,
};
use subconsensus_tasks::{ImmediateSnapshotTask, RenamingTask, Task};

const CASES: u64 = 48;

#[test]
fn renaming_names_distinct_for_any_participants_and_schedule() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let k = 2 + rng.gen_index(3);
        let seed = rng.next_u64() % 10_000;
        let name_salt = rng.gen_range_i64(1, 1_000_000);
        let mut b = SystemBuilder::new();
        let regs = b.add_object(RegisterArray::new(GridRenaming::registers_needed(k)));
        let p: Arc<dyn Protocol> = Arc::new(GridRenaming::new(regs, k));
        b.add_processes(p, (0..k).map(|i| Value::Int(name_salt + 31 * i as i64)));
        let spec = b.build();
        let mut sched = RandomScheduler::seeded(seed);
        let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
        assert!(out.reached_final, "case {case}");
        let inputs: Vec<Value> = (0..k)
            .map(|i| Value::Int(name_salt + 31 * i as i64))
            .collect();
        RenamingTask::new(grid_cells(k))
            .check(&inputs, &out.decisions())
            .unwrap_or_else(|v| panic!("case {case}: {v}"));
    }
}

#[test]
fn immediate_snapshot_views_are_well_formed_under_any_schedule() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let n = 2 + rng.gen_index(3);
        let seed = rng.next_u64() % 10_000;
        let mut b = SystemBuilder::new();
        let snap = b.add_object(Snapshot::new(n));
        let p: Arc<dyn Protocol> = Arc::new(ImmediateSnapshot::new(snap, n));
        b.add_processes(p, (0..n).map(|i| Value::Int(100 + i as i64)));
        let spec = b.build();
        let mut sched = RandomScheduler::seeded(seed);
        let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
        assert!(out.reached_final, "case {case}");
        let inputs: Vec<Value> = (0..n).map(|i| Value::Int(100 + i as i64)).collect();
        ImmediateSnapshotTask::new()
            .check(&inputs, &out.decisions())
            .unwrap_or_else(|v| panic!("case {case}: {v}"));
    }
}

#[test]
fn safe_agreement_agrees_under_any_fair_schedule() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let n = 2 + rng.gen_index(3);
        let seed = rng.next_u64() % 10_000;
        let mut b = SystemBuilder::new();
        let snap = b.add_object(Snapshot::new(n));
        let p: Arc<dyn Protocol> = Arc::new(SafeAgreement::new(snap, n));
        b.add_processes(p, (0..n).map(|i| Value::Int(100 + i as i64)));
        let spec = b.build();
        let mut sched = RandomScheduler::seeded(seed);
        let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
        assert!(out.reached_final, "case {case}: fair schedules terminate");
        assert_eq!(out.decided_values().len(), 1, "case {case}: agreement");
    }
}

#[test]
fn snapshot_linearizes_under_random_small_workloads() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let n = 2 + rng.gen_index(2);
        let seed = rng.next_u64() % 10_000;
        let plan: Vec<u8> = (0..2 + rng.gen_index(5))
            .map(|_| rng.gen_index(3) as u8)
            .collect();
        // Build a workload: each plan entry assigns an op to a process.
        let mut bank = BaseObjects::new();
        let regs = bank.add(RegisterArray::new(n));
        let im: Arc<dyn Implementation> = Arc::new(SnapshotFromRegisters::new(regs, n));
        let mut workload: Vec<Vec<Op>> = vec![Vec::new(); n];
        for (step, &kind) in plan.iter().enumerate() {
            let p = step % n;
            let op = match kind {
                0 => Op::new("scan"),
                _ => Op::binary("update", Value::from(p), Value::Int(1000 + step as i64)),
            };
            workload[p].push(op);
        }
        let mut sched = RandomScheduler::seeded(seed);
        let out = run_concurrent(
            &bank,
            &im,
            workload,
            &mut sched,
            &mut FirstOutcome,
            1_000_000,
        )
        .unwrap();
        assert!(out.reached_final, "case {case}");
        let spec = Snapshot::new(n);
        assert!(
            check_linearizable(&out.history, &spec).unwrap().is_some(),
            "case {case}, history:\n{}",
            out.history
        );
    }
}
