//! Property-based tests across the protocol library: randomized schedules,
//! participant subsets and workloads, with the task/linearizability
//! validators as oracles.

use std::sync::Arc;

use proptest::prelude::*;
use subconsensus_objects::{RegisterArray, Snapshot};
use subconsensus_protocols::{
    grid_cells, GridRenaming, ImmediateSnapshot, SafeAgreement, SnapshotFromRegisters,
};
use subconsensus_sim::{
    check_linearizable, run, run_concurrent, BaseObjects, FirstOutcome, Implementation, Op,
    Protocol, RandomScheduler, RunOptions, SystemBuilder, Value,
};
use subconsensus_tasks::{ImmediateSnapshotTask, RenamingTask, Task};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn renaming_names_distinct_for_any_participants_and_schedule(
        k in 2usize..5,
        seed in 0u64..10_000,
        name_salt in 1i64..1_000_000,
    ) {
        let mut b = SystemBuilder::new();
        let regs = b.add_object(RegisterArray::new(GridRenaming::registers_needed(k)));
        let p: Arc<dyn Protocol> = Arc::new(GridRenaming::new(regs, k));
        b.add_processes(p, (0..k).map(|i| Value::Int(name_salt + 31 * i as i64)));
        let spec = b.build();
        let mut sched = RandomScheduler::seeded(seed);
        let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
        prop_assert!(out.reached_final);
        let inputs: Vec<Value> =
            (0..k).map(|i| Value::Int(name_salt + 31 * i as i64)).collect();
        RenamingTask::new(grid_cells(k))
            .check(&inputs, &out.decisions())
            .map_err(|v| TestCaseError::fail(v.to_string()))?;
    }

    #[test]
    fn immediate_snapshot_views_are_well_formed_under_any_schedule(
        n in 2usize..5,
        seed in 0u64..10_000,
    ) {
        let mut b = SystemBuilder::new();
        let snap = b.add_object(Snapshot::new(n));
        let p: Arc<dyn Protocol> = Arc::new(ImmediateSnapshot::new(snap, n));
        b.add_processes(p, (0..n).map(|i| Value::Int(100 + i as i64)));
        let spec = b.build();
        let mut sched = RandomScheduler::seeded(seed);
        let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
        prop_assert!(out.reached_final);
        let inputs: Vec<Value> = (0..n).map(|i| Value::Int(100 + i as i64)).collect();
        ImmediateSnapshotTask::new()
            .check(&inputs, &out.decisions())
            .map_err(|v| TestCaseError::fail(v.to_string()))?;
    }

    #[test]
    fn safe_agreement_agrees_under_any_fair_schedule(
        n in 2usize..5,
        seed in 0u64..10_000,
    ) {
        let mut b = SystemBuilder::new();
        let snap = b.add_object(Snapshot::new(n));
        let p: Arc<dyn Protocol> = Arc::new(SafeAgreement::new(snap, n));
        b.add_processes(p, (0..n).map(|i| Value::Int(100 + i as i64)));
        let spec = b.build();
        let mut sched = RandomScheduler::seeded(seed);
        let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
        prop_assert!(out.reached_final, "fair schedules terminate");
        prop_assert_eq!(out.decided_values().len(), 1, "agreement");
    }

    #[test]
    fn snapshot_linearizes_under_random_small_workloads(
        n in 2usize..4,
        seed in 0u64..10_000,
        plan in prop::collection::vec(0u8..3, 2..7),
    ) {
        // Build a workload: each plan entry assigns an op to a process.
        let mut bank = BaseObjects::new();
        let regs = bank.add(RegisterArray::new(n));
        let im: Arc<dyn Implementation> = Arc::new(SnapshotFromRegisters::new(regs, n));
        let mut workload: Vec<Vec<Op>> = vec![Vec::new(); n];
        for (step, &kind) in plan.iter().enumerate() {
            let p = step % n;
            let op = match kind {
                0 => Op::new("scan"),
                _ => Op::binary(
                    "update",
                    Value::from(p),
                    Value::Int(1000 + step as i64),
                ),
            };
            workload[p].push(op);
        }
        let mut sched = RandomScheduler::seeded(seed);
        let out = run_concurrent(&bank, &im, workload, &mut sched, &mut FirstOutcome, 1_000_000)
            .unwrap();
        prop_assert!(out.reached_final);
        let spec = Snapshot::new(n);
        prop_assert!(
            check_linearizable(&out.history, &spec).unwrap().is_some(),
            "history:\n{}", out.history
        );
    }
}
