//! Internal helpers for writing protocol state machines.
//!
//! Protocol-local state is encoded as `(pc, field₀, field₁, …)` tuples; these
//! helpers keep the encode/decode noise down and turn shape violations into
//! [`ProtocolError`]s.

use subconsensus_sim::{ProtocolError, Value};

/// Builds a local state `(pc, fields…)`.
pub(crate) fn state<I: IntoIterator<Item = Value>>(pc: i64, fields: I) -> Value {
    let mut items = vec![Value::Int(pc)];
    items.extend(fields);
    Value::Tup(items)
}

/// Extracts the program counter of a local state.
pub(crate) fn pc_of(local: &Value) -> Result<i64, ProtocolError> {
    local
        .index(0)
        .and_then(Value::as_int)
        .ok_or_else(|| ProtocolError::new(format!("local state {local} has no pc")))
}

/// Extracts field `i` (0-based, after the pc) of a local state.
pub(crate) fn field(local: &Value, i: usize) -> Result<&Value, ProtocolError> {
    local
        .index(i + 1)
        .ok_or_else(|| ProtocolError::new(format!("local state {local} has no field {i}")))
}

/// Extracts field `i` as an integer.
pub(crate) fn int_field(local: &Value, i: usize) -> Result<i64, ProtocolError> {
    field(local, i)?
        .as_int()
        .ok_or_else(|| ProtocolError::new(format!("field {i} of {local} is not an integer")))
}

/// Extracts field `i` as a non-negative index.
pub(crate) fn index_field(local: &Value, i: usize) -> Result<usize, ProtocolError> {
    field(local, i)?
        .as_index()
        .ok_or_else(|| ProtocolError::new(format!("field {i} of {local} is not an index")))
}

/// Extracts the response to the previous invocation, failing if absent.
pub(crate) fn need_resp(resp: Option<&Value>) -> Result<&Value, ProtocolError> {
    resp.ok_or_else(|| ProtocolError::new("expected a response from the previous step"))
}

/// Views a value as a tuple.
pub(crate) fn tup_of(v: &Value) -> Result<&[Value], ProtocolError> {
    v.as_tup()
        .ok_or_else(|| ProtocolError::new(format!("{v} is not a tuple")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let s = state(3, [Value::Int(7), Value::Sym("x")]);
        assert_eq!(pc_of(&s).unwrap(), 3);
        assert_eq!(field(&s, 0).unwrap(), &Value::Int(7));
        assert_eq!(int_field(&s, 0).unwrap(), 7);
        assert_eq!(field(&s, 1).unwrap(), &Value::Sym("x"));
        assert!(field(&s, 2).is_err());
        assert!(int_field(&s, 1).is_err());
    }

    #[test]
    fn bad_shapes_are_errors() {
        assert!(pc_of(&Value::Nil).is_err());
        assert!(need_resp(None).is_err());
        assert_eq!(need_resp(Some(&Value::Int(1))).unwrap(), &Value::Int(1));
        assert!(tup_of(&Value::Int(1)).is_err());
        assert!(index_field(&state(0, [Value::Int(-4)]), 0).is_err());
    }
}
