//! One-shot immediate snapshot (Borowsky–Gafni).
//!
//! The immediate-snapshot task is the combinatorial engine of the
//! BG-simulation arguments behind the set-consensus characterization the
//! paper builds on. Each process writes its value and obtains a *view* (a
//! set of values) such that:
//!
//! * **self-inclusion** — a process's view contains its own value;
//! * **containment** — any two views are ordered by inclusion;
//! * **immediacy** — if `j`'s value is in `i`'s view, then `j`'s view is a
//!   subset of `i`'s view.
//!
//! The classic level-descent algorithm: starting at level `n`, a process
//! writes `(value, level)` and snapshots; if the number of processes at
//! levels `≤ level` equals `level`, it returns their values, otherwise it
//! descends one level and repeats. A process terminates within `n`
//! iterations (wait-free).

use subconsensus_sim::{Action, ObjId, Op, ProcCtx, Protocol, ProtocolError, Value};

use crate::util::{index_field, need_resp, pc_of, state};

/// The one-shot immediate-snapshot protocol for `n` processes over a
/// [`Snapshot`](subconsensus_objects::Snapshot)`(n)` object whose segments
/// hold `(value, level)` pairs.
///
/// Each process decides its view as a sorted tuple of the values it saw at
/// levels `≤` its exit level.
#[derive(Clone, Copy, Debug)]
pub struct ImmediateSnapshot {
    snap: ObjId,
    n: usize,
}

impl ImmediateSnapshot {
    /// Creates the protocol over snapshot object `snap` with `n` segments.
    pub fn new(snap: ObjId, n: usize) -> Self {
        ImmediateSnapshot { snap, n }
    }
}

// Local state: (pc, level). pc 0 — write (value, level); pc 1 — scan;
// pc 2 — analyze scan.
impl Protocol for ImmediateSnapshot {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        state(0, [Value::from(self.n)])
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        let pc = pc_of(local)?;
        let level = index_field(local, 0)?;
        match pc {
            0 => Ok(Action::invoke(
                state(1, [Value::from(level)]),
                self.snap,
                Op::binary(
                    "update",
                    Value::from(ctx.pid.index()),
                    Value::tup([ctx.input.clone(), Value::from(level)]),
                ),
            )),
            1 => Ok(Action::invoke(
                state(2, [Value::from(level)]),
                self.snap,
                Op::new("scan"),
            )),
            2 => {
                let scan = need_resp(resp)?;
                let cells = scan
                    .as_tup()
                    .ok_or_else(|| ProtocolError::new("immediate-snapshot: bad scan"))?;
                let mut seen: Vec<Value> = Vec::new();
                for cell in cells {
                    if cell.is_nil() {
                        continue;
                    }
                    let v = cell
                        .index(0)
                        .cloned()
                        .ok_or_else(|| ProtocolError::new("immediate-snapshot: bad cell"))?;
                    let l = cell
                        .index(1)
                        .and_then(Value::as_index)
                        .ok_or_else(|| ProtocolError::new("immediate-snapshot: bad level"))?;
                    if l <= level {
                        seen.push(v);
                    }
                }
                if seen.len() == level {
                    seen.sort();
                    return Ok(Action::Decide(Value::Tup(seen)));
                }
                if level == 1 {
                    return Err(ProtocolError::new(
                        "immediate-snapshot: descended below level 1 — more than n processes?",
                    ));
                }
                // Descend and rewrite at the lower level.
                Ok(Action::invoke(
                    state(1, [Value::from(level - 1)]),
                    self.snap,
                    Op::binary(
                        "update",
                        Value::from(ctx.pid.index()),
                        Value::tup([ctx.input.clone(), Value::from(level - 1)]),
                    ),
                ))
            }
            pc => Err(ProtocolError::new(format!(
                "immediate-snapshot: bad pc {pc}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use subconsensus_modelcheck::{check_wait_freedom, ExploreOptions, StateGraph, WaitFreedom};
    use subconsensus_objects::Snapshot;
    use subconsensus_sim::{run, FirstOutcome, RandomScheduler, RunOptions, SystemBuilder};
    use subconsensus_tasks::{check_exhaustive, ImmediateSnapshotTask, Task};

    fn is_system(n: usize) -> subconsensus_sim::SystemSpec {
        let mut b = SystemBuilder::new();
        let snap = b.add_object(Snapshot::new(n));
        let p: Arc<dyn Protocol> = Arc::new(ImmediateSnapshot::new(snap, n));
        b.add_processes(p, (0..n).map(|i| Value::Int(10 + i as i64)));
        b.build()
    }

    #[test]
    fn solo_view_is_a_singleton() {
        let spec = is_system(1);
        let g = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        assert_eq!(check_wait_freedom(&g), WaitFreedom::WaitFree);
        for &t in g.terminals() {
            assert_eq!(
                g.config(t).decided_values(),
                vec![Value::tup([Value::Int(10)])]
            );
        }
    }

    #[test]
    fn exhaustive_immediate_snapshot_properties() {
        for n in [2usize, 3] {
            let spec = is_system(n);
            let report = check_exhaustive(
                &spec,
                &ImmediateSnapshotTask::new(),
                &ExploreOptions::default(),
            )
            .unwrap();
            assert!(report.solved(), "n={n}: {report:?}");
        }
    }

    #[test]
    fn random_larger_systems_satisfy_the_task() {
        let n = 5;
        let spec = is_system(n);
        let task = ImmediateSnapshotTask::new();
        let inputs: Vec<Value> = (0..n).map(|i| Value::Int(10 + i as i64)).collect();
        for seed in 0..300 {
            let mut sched = RandomScheduler::seeded(seed);
            let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
            assert!(out.reached_final, "seed {seed}");
            task.check(&inputs, &out.decisions()).unwrap_or_else(|v| {
                panic!("seed {seed}: {v}");
            });
        }
    }

    #[test]
    fn full_concurrency_yields_the_full_view() {
        // All n processes lockstep to the bottom: every view is everything.
        let n = 3;
        let spec = is_system(n);
        // Round-robin interleaves writes and scans so everyone sees all.
        let out = run(
            &spec,
            &mut subconsensus_sim::RoundRobin::new(),
            &mut FirstOutcome,
            &RunOptions::default(),
        )
        .unwrap();
        for d in out.decisions().into_iter().flatten() {
            assert_eq!(d.len(), Some(n), "lockstep run gives full views: {d}");
        }
    }
}
