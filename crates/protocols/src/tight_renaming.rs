//! Tight `(2k-1)`-renaming from snapshots (Attiya et al.).
//!
//! The splitter-grid renaming of [`GridRenaming`](crate::GridRenaming) is
//! simple but uses a `k(k+1)/2` namespace. The classic snapshot-based
//! algorithm referenced by the paper lineage ([4, 6]) achieves the optimal
//! `2k - 1` namespace, *adaptively*: `p` actual participants acquire names
//! in `{0 .. 2p-2}`.
//!
//! Each process repeatedly publishes `(id, proposal)` in its snapshot
//! segment and scans: on a proposal conflict with another participant it
//! re-proposes the `r`-th smallest *free* name, where `r` is the rank of
//! its id among the participants it saw; with no conflict it decides.
//! Scan containment gives uniqueness; ranks bound the namespace.

use subconsensus_sim::{Action, ObjId, Op, ProcCtx, Protocol, ProtocolError, Value};

use crate::util::{int_field, need_resp, pc_of, state};

/// Snapshot-based tight renaming over a
/// [`Snapshot`](subconsensus_objects::Snapshot)`(n)` whose segments hold
/// `(id, proposal)` pairs. Decides a 0-based name in `{0 .. 2p-2}` for `p`
/// participants.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotRenaming {
    snap: ObjId,
}

impl SnapshotRenaming {
    /// Creates the protocol over snapshot object `snap` (with one segment
    /// per potential process).
    pub fn new(snap: ObjId) -> Self {
        SnapshotRenaming { snap }
    }
}

// Local state: (pc, proposal) — proposals are 1-based internally; the
// decided name is `proposal - 1`.
//   pc 0 — publish (id, proposal); pc 1 — scan; pc 2 — analyze.
impl Protocol for SnapshotRenaming {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        state(0, [Value::Int(1)])
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        let pc = pc_of(local)?;
        let proposal = int_field(local, 0)?;
        match pc {
            0 => Ok(Action::invoke(
                state(1, [Value::Int(proposal)]),
                self.snap,
                Op::binary(
                    "update",
                    Value::from(ctx.pid.index()),
                    Value::tup([ctx.input.clone(), Value::Int(proposal)]),
                ),
            )),
            1 => Ok(Action::invoke(
                state(2, [Value::Int(proposal)]),
                self.snap,
                Op::new("scan"),
            )),
            2 => {
                let cells = need_resp(resp)?
                    .as_tup()
                    .ok_or_else(|| ProtocolError::new("tight-renaming: bad scan"))?;
                let mut others: Vec<(Value, i64)> = Vec::new();
                for (seg, cell) in cells.iter().enumerate() {
                    if cell.is_nil() || seg == ctx.pid.index() {
                        continue;
                    }
                    let id = cell
                        .index(0)
                        .cloned()
                        .ok_or_else(|| ProtocolError::new("tight-renaming: bad cell"))?;
                    let prop = cell
                        .index(1)
                        .and_then(Value::as_int)
                        .ok_or_else(|| ProtocolError::new("tight-renaming: bad proposal"))?;
                    others.push((id, prop));
                }
                let conflict = others.iter().any(|(_, p)| *p == proposal);
                if !conflict {
                    return Ok(Action::Decide(Value::Int(proposal - 1)));
                }
                // Rank of own id among all participant ids seen (1-based).
                let mut ids: Vec<&Value> = others.iter().map(|(id, _)| id).collect();
                ids.push(&ctx.input);
                ids.sort();
                let rank = ids
                    .iter()
                    .position(|id| **id == ctx.input)
                    .expect("own id present") as i64
                    + 1;
                // r-th smallest positive integer not proposed by others.
                let taken: std::collections::BTreeSet<i64> =
                    others.iter().map(|(_, p)| *p).collect();
                let mut remaining = rank;
                let mut candidate = 0;
                while remaining > 0 {
                    candidate += 1;
                    if !taken.contains(&candidate) {
                        remaining -= 1;
                    }
                }
                Ok(Action::invoke(
                    state(1, [Value::Int(candidate)]),
                    self.snap,
                    Op::binary(
                        "update",
                        Value::from(ctx.pid.index()),
                        Value::tup([ctx.input.clone(), Value::Int(candidate)]),
                    ),
                ))
            }
            pc => Err(ProtocolError::new(format!("tight-renaming: bad pc {pc}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use subconsensus_modelcheck::{
        check_nonblocking, check_wait_freedom, ExploreOptions, StateGraph, WaitFreedom,
    };
    use subconsensus_objects::Snapshot;
    use subconsensus_sim::{
        run, CrashScheduler, FirstOutcome, Pid, RandomScheduler, RoundRobin, RunOptions,
        SystemBuilder, SystemSpec,
    };
    use subconsensus_tasks::{check_exhaustive, RenamingTask, Task};

    fn system(names: &[i64]) -> SystemSpec {
        let n = names.len();
        let mut b = SystemBuilder::new();
        let snap = b.add_object(Snapshot::new(n));
        let p: Arc<dyn Protocol> = Arc::new(SnapshotRenaming::new(snap));
        b.add_processes(p, names.iter().map(|&v| Value::Int(v)));
        b.build()
    }

    #[test]
    fn solo_takes_name_zero() {
        let spec = system(&[777]);
        let out = run(
            &spec,
            &mut RoundRobin::new(),
            &mut FirstOutcome,
            &RunOptions::default(),
        )
        .unwrap();
        assert_eq!(out.decisions()[0], Some(Value::Int(0)));
    }

    #[test]
    fn two_participants_exhaustive_tight_namespace() {
        let spec = system(&[100, 200]);
        let report = check_exhaustive(
            &spec,
            &RenamingTask::new(3), // 2k-1 = 3
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(report.solved(), "{report:?}");
        // Also confirm the graph is wait-free + non-blocking.
        let g = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        assert_eq!(check_wait_freedom(&g), WaitFreedom::WaitFree);
        assert!(check_nonblocking(&g));
    }

    #[test]
    fn random_schedules_stay_in_2k_minus_1() {
        for names in [vec![5i64, 3, 9], vec![1, 2, 3, 4]] {
            let k = names.len();
            let spec = system(&names);
            let task = RenamingTask::new(2 * k - 1);
            let inputs: Vec<Value> = names.iter().map(|&v| Value::Int(v)).collect();
            for seed in 0..300 {
                let mut sched = RandomScheduler::seeded(seed);
                let out =
                    run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
                assert!(out.reached_final, "seed {seed}");
                task.check(&inputs, &out.decisions())
                    .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            }
        }
    }

    #[test]
    fn adaptivity_fewer_participants_smaller_names() {
        // 4 slots but only 2 participants: names within {0..2·2-2} = {0..2}.
        let n = 4;
        let mut b = SystemBuilder::new();
        let snap = b.add_object(Snapshot::new(n));
        let p: Arc<dyn Protocol> = Arc::new(SnapshotRenaming::new(snap));
        b.add_processes(p, (0..n).map(|i| Value::Int(50 + i as i64)));
        let spec = b.build();
        // Crash P2, P3 before any step.
        for seed in 0..100 {
            let mut sched = CrashScheduler::crash_initially(
                RandomScheduler::seeded(seed),
                [Pid::new(2), Pid::new(3)],
            );
            let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
            for i in [0usize, 1] {
                let name = out.decisions()[i].as_ref().unwrap().as_index().unwrap();
                assert!(
                    name <= 2,
                    "adaptive bound violated: name {name} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn mid_run_crashes_preserve_uniqueness() {
        let names = [11i64, 22, 33];
        let spec = system(&names);
        let task = RenamingTask::new(5);
        let inputs: Vec<Value> = names.iter().map(|&v| Value::Int(v)).collect();
        for victim in 0..3 {
            for budget in 0..5 {
                let mut sched = CrashScheduler::new(
                    RoundRobin::new(),
                    [(Pid::new(victim), budget)].into_iter().collect(),
                );
                let out =
                    run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
                task.check(&inputs, &out.decisions()).unwrap();
            }
        }
    }
}
