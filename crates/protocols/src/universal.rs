//! Herlihy's universal construction: any deterministic object from
//! `n`-consensus objects, wait-free for `n` processes.
//!
//! This is the positive backbone of the consensus hierarchy: `n`-consensus
//! objects are *universal* for `n` processes. Together with the paper's
//! result it frames the whole landscape — universality says consensus power
//! `n` suffices to implement everything *at level ≤ n process counts*, while
//! the paper shows consensus power alone does not *characterize* objects.
//!
//! The construction maintains a shared log of operations:
//!
//! * `announce[i]` — a register where process `i` publishes its pending
//!   operation as `(seq, op)`;
//! * `slot[t]` — one `n`-bounded consensus object per log position deciding
//!   which announced operation is the `t`-th to take effect (each process
//!   proposes at most once per slot, so `n`-bounded capacity suffices).
//!
//! Processes replay the log in order, maintaining a local copy of the
//! implemented object's state. **Helping** makes it wait-free: at slot `t`
//! every process first offers the pending announcement of process
//! `t mod n`, so an announced operation is chosen within `n` slots.

use std::sync::Arc;

use subconsensus_sim::{
    ImplStep, Implementation, ObjId, ObjectSpec, Op, ProcCtx, ProtocolError, Value,
};

use crate::util::{field, int_field, need_resp, pc_of, state, tup_of};

/// Universal construction implementing the deterministic object `inner` for
/// `n` processes from one announce
/// [`RegisterArray`](subconsensus_objects::RegisterArray)`(n)` and `nslots`
/// [`Consensus::bounded`](subconsensus_objects::Consensus::bounded)`(n)`
/// objects laid out contiguously from `slots`.
///
/// High-level operations are passed through verbatim to `inner`'s sequential
/// specification, so the implemented object supports exactly the operations
/// `inner` does and is validated against `inner` itself as the
/// linearizability reference.
#[derive(Clone, Debug)]
pub struct UniversalConstruction {
    inner: Arc<dyn ObjectSpec>,
    announce: ObjId,
    slots: ObjId,
    nslots: usize,
    n: usize,
}

impl UniversalConstruction {
    /// Creates the construction.
    ///
    /// `announce` must be a register array of length `n`; `slots` must be the
    /// first of `nslots` contiguous `n`-bounded consensus objects. `nslots`
    /// bounds the total number of operations the object can serve; exceeding
    /// it is reported as a [`ProtocolError`].
    pub fn new(
        inner: Arc<dyn ObjectSpec>,
        announce: ObjId,
        slots: ObjId,
        nslots: usize,
        n: usize,
    ) -> Self {
        UniversalConstruction {
            inner,
            announce,
            slots,
            nslots,
            n,
        }
    }

    fn apply_inner(&self, hl_state: &Value, op: &Op) -> Result<(Value, Value), ProtocolError> {
        let mut outs = self
            .inner
            .apply(hl_state, op)
            .map_err(|e| ProtocolError::new(format!("inner object rejected `{op}`: {e}")))?;
        if outs.len() != 1 {
            return Err(ProtocolError::new(format!(
                "universal construction requires a deterministic inner object; `{op}` had {} outcomes",
                outs.len()
            )));
        }
        let out = outs.remove(0);
        let resp = out
            .response
            .ok_or_else(|| ProtocolError::new("universal construction: inner operation hangs"))?;
        Ok((out.state, resp))
    }
}

fn encode_op(op: &Op) -> Value {
    Value::tup([Value::Sym(op.name), Value::Tup(op.args.clone())])
}

fn decode_op(v: &Value) -> Result<Op, ProtocolError> {
    let name = v
        .index(0)
        .and_then(Value::as_sym)
        .ok_or_else(|| ProtocolError::new(format!("bad encoded op {v}")))?;
    let args = v
        .index(1)
        .and_then(Value::as_tup)
        .ok_or_else(|| ProtocolError::new(format!("bad encoded op {v}")))?;
    Ok(Op::with_args(name, args.to_vec()))
}

fn triple(pid: usize, seq: i64, encop: Value) -> Value {
    Value::tup([Value::from(pid), Value::Int(seq), encop])
}

// Memory: (pos, applied, hl_state) — log position replayed so far, the last
// applied seq of every process, and the replayed inner state.
//
// Op-local: (pc, pos, applied, hl_state, seq)
//   pc 0 — announce (seq, op)
//   pc 1 — announce write acked; read announce[pos mod n]
//   pc 2 — got announcement; propose a candidate to slot[pos]
//   pc 3 — got the slot winner; replay it, finish or loop to pc 1
impl Implementation for UniversalConstruction {
    fn init_memory(&self, _ctx: &ProcCtx) -> Value {
        Value::tup([
            Value::Int(0),
            Value::Tup(vec![Value::Int(0); self.n]),
            self.inner.initial_state(),
        ])
    }

    fn start_op(&self, ctx: &ProcCtx, _op: &Op, memory: &Value) -> Value {
        let pos = memory.index(0).cloned().unwrap_or(Value::Int(0));
        let applied = memory.index(1).cloned().unwrap_or(Value::Nil);
        let hl_state = memory.index(2).cloned().unwrap_or(Value::Nil);
        let my_applied = applied
            .index(ctx.pid.index())
            .and_then(Value::as_int)
            .unwrap_or(0);
        state(0, [pos, applied, hl_state, Value::Int(my_applied + 1)])
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        op: &Op,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<ImplStep, ProtocolError> {
        let pc = pc_of(local)?;
        let me = ctx.pid.index();
        let pos = int_field(local, 0)? as usize;
        let applied = field(local, 1)?.clone();
        let hl_state = field(local, 2)?.clone();
        let seq = int_field(local, 3)?;
        let fields = |pos: usize, applied: Value, hl: Value| {
            [Value::from(pos), applied, hl, Value::Int(seq)]
        };
        match pc {
            0 => Ok(ImplStep::invoke(
                state(1, fields(pos, applied, hl_state)),
                self.announce,
                Op::binary(
                    "write",
                    Value::from(me),
                    Value::tup([Value::Int(seq), encode_op(op)]),
                ),
            )),
            1 => Ok(ImplStep::invoke(
                state(2, fields(pos, applied, hl_state)),
                self.announce,
                Op::unary("read", Value::from(pos % self.n)),
            )),
            2 => {
                let a = need_resp(resp)?;
                let helpee = pos % self.n;
                let helpee_applied = applied.index(helpee).and_then(Value::as_int).unwrap_or(0);
                let cand = match (a.index(0).and_then(Value::as_int), a.index(1)) {
                    (Some(aseq), Some(encop)) if aseq > helpee_applied => {
                        triple(helpee, aseq, encop.clone())
                    }
                    _ => triple(me, seq, encode_op(op)),
                };
                if pos >= self.nslots {
                    return Err(ProtocolError::new("universal construction: log exhausted"));
                }
                Ok(ImplStep::invoke(
                    state(3, fields(pos, applied, hl_state)),
                    self.slots.offset(pos),
                    Op::unary("propose", cand),
                ))
            }
            3 => {
                let winner = need_resp(resp)?;
                let wpid = winner
                    .index(0)
                    .and_then(Value::as_index)
                    .ok_or_else(|| ProtocolError::new(format!("bad winner {winner}")))?;
                let wseq = winner
                    .index(1)
                    .and_then(Value::as_int)
                    .ok_or_else(|| ProtocolError::new(format!("bad winner {winner}")))?;
                let wop = decode_op(
                    winner
                        .index(2)
                        .ok_or_else(|| ProtocolError::new(format!("bad winner {winner}")))?,
                )?;
                let (hl_next, hl_resp) = self.apply_inner(&hl_state, &wop)?;
                let mut applied_v = tup_of(&applied)?.to_vec();
                if wpid >= applied_v.len() {
                    return Err(ProtocolError::new(format!(
                        "winner pid {wpid} out of range"
                    )));
                }
                applied_v[wpid] = Value::Int(wseq);
                let applied_next = Value::Tup(applied_v);
                let pos_next = pos + 1;
                if wpid == me && wseq == seq {
                    // Our own operation took effect; commit memory.
                    let memory = Value::tup([Value::from(pos_next), applied_next, hl_next]);
                    return Ok(ImplStep::ret(hl_resp, memory));
                }
                // Keep replaying: read the next slot's helpee announcement.
                Ok(ImplStep::invoke(
                    state(2, fields(pos_next, applied_next, hl_next)),
                    self.announce,
                    Op::unary("read", Value::from(pos_next % self.n)),
                ))
            }
            pc => Err(ProtocolError::new(format!("universal: bad pc {pc}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subconsensus_objects::{Consensus, FetchAdd, Queue, RegisterArray, Swap};
    use subconsensus_sim::{
        check_linearizable, run_concurrent, BaseObjects, FirstOutcome, Pid, PriorityScheduler,
        RandomScheduler, RoundRobin, Scheduler,
    };

    fn setup(
        inner: Arc<dyn ObjectSpec>,
        n: usize,
        nslots: usize,
    ) -> (BaseObjects, Arc<dyn Implementation>) {
        let mut bank = BaseObjects::new();
        let announce = bank.add(RegisterArray::new(n));
        let slots = bank.add_array(nslots, |_| {
            Box::new(Consensus::bounded(n)) as Box<dyn ObjectSpec>
        });
        let im: Arc<dyn Implementation> = Arc::new(UniversalConstruction::new(
            inner, announce, slots, nslots, n,
        ));
        (bank, im)
    }

    #[test]
    fn op_codec_roundtrips() {
        let op = Op::binary("cas", Value::Nil, Value::Int(3));
        assert_eq!(decode_op(&encode_op(&op)).unwrap(), op);
        assert!(decode_op(&Value::Int(1)).is_err());
    }

    #[test]
    fn sequential_queue_behaves() {
        let inner: Arc<dyn ObjectSpec> = Arc::new(Queue::new());
        let (bank, im) = setup(inner, 1, 16);
        let workload = vec![vec![
            Op::unary("enq", Value::Int(1)),
            Op::unary("enq", Value::Int(2)),
            Op::new("deq"),
            Op::new("deq"),
            Op::new("deq"),
        ]];
        let out = run_concurrent(
            &bank,
            &im,
            workload,
            &mut RoundRobin::new(),
            &mut FirstOutcome,
            100_000,
        )
        .unwrap();
        assert!(out.reached_final);
        assert_eq!(
            out.results[0],
            vec![
                Value::Nil,
                Value::Nil,
                Value::Int(1),
                Value::Int(2),
                Value::Nil
            ]
        );
    }

    #[test]
    fn concurrent_queue_linearizes_under_random_schedules() {
        let spec = Queue::new();
        for seed in 0..120 {
            let inner: Arc<dyn ObjectSpec> = Arc::new(Queue::new());
            let (bank, im) = setup(inner, 3, 32);
            let workload = vec![
                vec![Op::unary("enq", Value::Int(1)), Op::new("deq")],
                vec![Op::unary("enq", Value::Int(2)), Op::new("deq")],
                vec![Op::unary("enq", Value::Int(3)), Op::new("deq")],
            ];
            let mut sched = RandomScheduler::seeded(seed);
            let out = run_concurrent(
                &bank,
                &im,
                workload,
                &mut sched,
                &mut FirstOutcome,
                1_000_000,
            )
            .unwrap();
            assert!(out.reached_final, "seed {seed}");
            assert!(
                check_linearizable(&out.history, &spec).unwrap().is_some(),
                "seed {seed}: history not linearizable:\n{}",
                out.history
            );
        }
    }

    #[test]
    fn concurrent_swap_and_fetch_add_linearize() {
        for seed in 0..60 {
            let inner: Arc<dyn ObjectSpec> = Arc::new(Swap::new());
            let (bank, im) = setup(inner, 2, 16);
            let workload = vec![
                vec![
                    Op::unary("swap", Value::Int(1)),
                    Op::unary("swap", Value::Int(3)),
                ],
                vec![Op::unary("swap", Value::Int(2))],
            ];
            let mut sched = RandomScheduler::seeded(seed);
            let out = run_concurrent(
                &bank,
                &im,
                workload,
                &mut sched,
                &mut FirstOutcome,
                1_000_000,
            )
            .unwrap();
            assert!(check_linearizable(&out.history, &Swap::new())
                .unwrap()
                .is_some());

            let inner: Arc<dyn ObjectSpec> = Arc::new(FetchAdd::new());
            let (bank, im) = setup(inner, 2, 16);
            let workload = vec![
                vec![Op::unary("fetch_add", Value::Int(5))],
                vec![Op::unary("fetch_add", Value::Int(7)), Op::new("read")],
            ];
            let mut sched = RandomScheduler::seeded(seed);
            let out = run_concurrent(
                &bank,
                &im,
                workload,
                &mut sched,
                &mut FirstOutcome,
                1_000_000,
            )
            .unwrap();
            assert!(check_linearizable(&out.history, &FetchAdd::new())
                .unwrap()
                .is_some());
        }
    }

    /// A scheduler that starves P1 after its announce: P0 must help.
    #[derive(Debug)]
    struct StarveAfter {
        inner: PriorityScheduler,
        victim: Pid,
        victim_steps: usize,
        taken: usize,
    }

    impl Scheduler for StarveAfter {
        fn next_pid(&mut self, enabled: &[Pid]) -> Option<Pid> {
            if self.taken < self.victim_steps && enabled.contains(&self.victim) {
                self.taken += 1;
                return Some(self.victim);
            }
            let rest: Vec<Pid> = enabled
                .iter()
                .copied()
                .filter(|p| *p != self.victim)
                .collect();
            if rest.is_empty() {
                // Only the victim remains (it is completing via helping).
                return enabled.first().copied();
            }
            self.inner.next_pid(&rest)
        }
    }

    #[test]
    fn helping_lets_a_fast_process_finish_past_a_stalled_one() {
        // P1 announces its enq then stalls. P0 runs many ops; thanks to
        // helping, P1's operation is applied by P0, and P0's log replay
        // completes without P1 taking further steps.
        let inner: Arc<dyn ObjectSpec> = Arc::new(Queue::new());
        let (bank, im) = setup(inner, 2, 32);
        let workload = vec![
            vec![
                Op::unary("enq", Value::Int(10)),
                Op::new("deq"),
                Op::new("deq"),
            ],
            vec![Op::unary("enq", Value::Int(99))],
        ];
        let mut sched = StarveAfter {
            inner: PriorityScheduler::new(vec![Pid::new(0)]),
            victim: Pid::new(1),
            victim_steps: 2, // announce write + first read
            taken: 0,
        };
        let out = run_concurrent(
            &bank,
            &im,
            workload,
            &mut sched,
            &mut FirstOutcome,
            1_000_000,
        )
        .unwrap();
        // P0 completed all three of its ops.
        assert_eq!(out.results[0].len(), 3);
        // P1's enq(99) was applied by helping: one of P0's deqs returned 99
        // or the queue still holds it — but the element must be in the log,
        // so the two deqs drained {10, 99} in some order.
        let drained: std::collections::BTreeSet<Value> =
            out.results[0][1..].iter().cloned().collect();
        assert!(
            drained.contains(&Value::Int(99)),
            "P1's op was never helped: {drained:?}"
        );
    }

    #[test]
    fn log_exhaustion_is_an_error() {
        let inner: Arc<dyn ObjectSpec> = Arc::new(Queue::new());
        let (bank, im) = setup(inner, 1, 1);
        let workload = vec![vec![Op::unary("enq", Value::Int(1)), Op::new("deq")]];
        let err = run_concurrent(
            &bank,
            &im,
            workload,
            &mut RoundRobin::new(),
            &mut FirstOutcome,
            100_000,
        )
        .unwrap_err();
        assert!(err.to_string().contains("log exhausted"));
    }
}
