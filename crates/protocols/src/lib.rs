//! Wait-free shared-memory protocols for the `subconsensus` workspace.
//!
//! Every algorithm is an executable state machine over the
//! [`subconsensus_sim`] substrate — a [`Protocol`](subconsensus_sim::Protocol)
//! (one-shot task) or an [`Implementation`](subconsensus_sim::Implementation)
//! (long-lived object) — and every module carries exhaustive or randomized
//! correctness tests driven by the model checker and the linearizability
//! checker.
//!
//! | module | algorithm | role in the paper's landscape |
//! |---|---|---|
//! | [`ProposeDecide`] | propose input, decide answer | Algorithm-2 shape: set consensus from one agreement object |
//! | [`PartitionPropose`] | propose to `⌊pid/m⌋`-th object | Algorithm-6 shape / Theorem-41 positive direction |
//! | [`AdoptCommit`] | Gafni's commit–adopt from registers | what registers *can* do towards agreement |
//! | [`WriteReadMin`] | broken register consensus | what registers *cannot* do (model-checked) |
//! | [`GridRenaming`] | Moir–Anderson splitter grid | bounded renaming substrate assumed by [4, 6] |
//! | [`SnapshotRenaming`] | Attiya et al. tight `(2k-1)`-renaming | the exact bound cited by the lineage |
//! | [`Tournament`] | test-and-set from 2-consensus | Common2 positive side |
//! | [`SnapshotFromRegisters`] | Afek et al. atomic snapshot | consensus-number-1 power tool |
//! | [`RepeatedAdoptCommit`] | obstruction-free consensus from registers | the wait-free/obstruction-free boundary |
//! | [`ImmediateSnapshot`] | Borowsky–Gafni one-shot immediate snapshot | the engine of BG-simulation arguments |
//! | [`SafeAgreement`] | Borowsky–Gafni safe agreement | BG simulation's crash-for-blocking trade |
//! | [`ApproximateAgreement`] | snapshot-round averaging | registers agree to within any ε |
//! | [`UniversalConstruction`] | Herlihy universal construction | `n`-consensus is universal for `n` processes |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adopt_commit;
mod approximate;
mod immediate_snapshot;
mod naive;
mod propose;
mod renaming;
mod repeated_ac;
mod safe_agreement;
mod snapshot_impl;
mod tight_renaming;
mod tournament;
mod universal;
pub(crate) mod util;

pub use adopt_commit::{AdoptCommit, ADOPT, COMMIT};
pub use approximate::ApproximateAgreement;
pub use immediate_snapshot::ImmediateSnapshot;
pub use naive::WriteReadMin;
pub use propose::{PartitionPropose, ProposeDecide};
pub use renaming::{cell_index, grid_cells, GridRenaming};
pub use repeated_ac::RepeatedAdoptCommit;
pub use safe_agreement::SafeAgreement;
pub use snapshot_impl::SnapshotFromRegisters;
pub use tight_renaming::SnapshotRenaming;
pub use tournament::{tournament_nodes, Tournament};
pub use universal::UniversalConstruction;
