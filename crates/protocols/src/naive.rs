//! A deliberately *incorrect* register-only consensus protocol.
//!
//! Registers cannot solve consensus for two processes (FLP / Herlihy — and
//! the starting point of the paper's whole question). This module contains
//! the natural-but-wrong attempt — write your value, read the other's, take
//! the minimum — so that the model checker can *exhibit* the disagreeing
//! schedule, mirroring how the impossibility proofs chase the adversary.

use subconsensus_sim::{Action, ObjId, Op, ProcCtx, Protocol, ProtocolError, Value};

use crate::util::{need_resp, pc_of, state};

/// The broken "write–read–min" consensus attempt for 2 processes over a
/// [`RegisterArray`](subconsensus_objects::RegisterArray)`(2)`.
///
/// Process `i` writes its input to cell `i`, reads cell `1 - i`, and decides
/// the minimum of what it wrote and what it read (its own value if the other
/// cell is still `⊥`). Some schedules disagree — see the tests, where the
/// model checker finds them all.
#[derive(Clone, Copy, Debug)]
pub struct WriteReadMin {
    regs: ObjId,
}

impl WriteReadMin {
    /// Creates the protocol over register array `regs` (length ≥ 2).
    pub fn new(regs: ObjId) -> Self {
        WriteReadMin { regs }
    }
}

impl Protocol for WriteReadMin {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        state(0, [])
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        let me = ctx.pid.index();
        match pc_of(local)? {
            0 => Ok(Action::invoke(
                state(1, []),
                self.regs,
                Op::binary("write", Value::from(me), ctx.input.clone()),
            )),
            1 => Ok(Action::invoke(
                state(2, []),
                self.regs,
                Op::unary("read", Value::from(1 - me)),
            )),
            2 => {
                let other = need_resp(resp)?;
                let decision = if other.is_nil() {
                    ctx.input.clone()
                } else {
                    std::cmp::min(other.clone(), ctx.input.clone())
                };
                Ok(Action::Decide(decision))
            }
            pc => Err(ProtocolError::new(format!("write-read-min: bad pc {pc}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use subconsensus_modelcheck::{
        check_wait_freedom, find_critical, ExploreOptions, StateGraph, TerminalReport, Valency,
        WaitFreedom,
    };
    use subconsensus_objects::RegisterArray;
    use subconsensus_sim::SystemBuilder;

    fn broken_system() -> subconsensus_sim::SystemSpec {
        let mut b = SystemBuilder::new();
        let regs = b.add_object(RegisterArray::new(2));
        let p: Arc<dyn Protocol> = Arc::new(WriteReadMin::new(regs));
        b.add_processes(p, [Value::Int(1), Value::Int(2)]);
        b.build()
    }

    #[test]
    fn it_terminates_but_disagrees_somewhere() {
        let g = StateGraph::explore(&broken_system(), &ExploreOptions::default()).unwrap();
        assert_eq!(
            check_wait_freedom(&g),
            WaitFreedom::WaitFree,
            "it does terminate"
        );
        let r = TerminalReport::of(&g);
        assert!(
            r.max_distinct_decisions >= 2,
            "the model checker exhibits a disagreeing schedule"
        );
        // And the disagreeing terminal is the one where P1 ran solo first.
        assert!(r
            .decision_sets
            .contains(&vec![Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn no_critical_configuration_with_clean_valency_exists() {
        // Valency analysis on a broken protocol: terminals themselves can be
        // "bivalent" in the decided-set sense (two values decided at once),
        // so the classic critical-configuration structure degenerates.
        let g = StateGraph::explore(&broken_system(), &ExploreOptions::default()).unwrap();
        let v = Valency::compute(&g);
        assert!(v.is_bivalent(0), "initially both values are in play");
        // Some terminal contains BOTH values (disagreement), so bivalence
        // does not resolve the way it would for a correct protocol.
        let degenerate = g
            .terminals()
            .iter()
            .any(|&t| g.config(t).decided_values().len() == 2);
        assert!(degenerate);
        // A critical configuration may or may not exist for a broken
        // protocol; merely exercising the search here.
        let _ = find_critical(&g, &v);
    }
}
