//! Wait-free atomic snapshot from single-writer registers (Afek, Attiya,
//! Dolev, Gafni, Merritt, Shavit).
//!
//! The snapshot object is the canonical consensus-number-1 power tool: it is
//! implementable from registers (this module), so anything separated from
//! registers is also separated from snapshots. The construction here is the
//! classic unbounded-sequence-number algorithm:
//!
//! * each segment register holds `(value, seq, view)`;
//! * `scan` repeatedly double-collects; two identical collects are a valid
//!   view, and a scanner that observes some updater move **twice** may
//!   borrow that updater's embedded view (the updater's second update
//!   started after the scanner did, so its embedded scan is fresh);
//! * `update` performs an embedded `scan`, then writes
//!   `(new value, seq + 1, scanned view)`.
//!
//! Every operation finishes within `n + 2` collects, hence wait-free.

use subconsensus_sim::{ImplStep, Implementation, ObjId, Op, ProcCtx, ProtocolError, Value};

use crate::util::{field, int_field, need_resp, pc_of, state, tup_of};

/// Atomic snapshot with `n` segments over a
/// [`RegisterArray`](subconsensus_objects::RegisterArray)`(n)`.
///
/// High-level operations (validated against the primitive
/// [`Snapshot`](subconsensus_objects::Snapshot) spec):
///
/// * `update(i, v)` → `⊥` — process `i` writes `v` to its own segment
///   (callers must pass their own pid as `i`: segments are single-writer);
/// * `scan()` → the vector of all `n` segment values.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotFromRegisters {
    regs: ObjId,
    n: usize,
}

impl SnapshotFromRegisters {
    /// Creates the implementation over register array `regs` of length `n`.
    pub fn new(regs: ObjId, n: usize) -> Self {
        SnapshotFromRegisters { regs, n }
    }

    /// Completes the operation once a valid view has been obtained: scans
    /// return it; updates write `(value, seq + 1, view)` to their segment.
    fn finish(
        &self,
        ctx: &ProcCtx,
        op: &Op,
        seq: i64,
        view: Value,
    ) -> Result<ImplStep, ProtocolError> {
        match op.name {
            "scan" => Ok(ImplStep::ret(view, Value::Int(seq))),
            "update" => {
                let seg = op
                    .arg(0)
                    .and_then(Value::as_index)
                    .ok_or_else(|| ProtocolError::new("update needs a segment index"))?;
                if seg != ctx.pid.index() {
                    return Err(ProtocolError::new(format!(
                        "update({seg}, _) issued by {}: segments are single-writer",
                        ctx.pid
                    )));
                }
                let v = op
                    .arg(1)
                    .cloned()
                    .ok_or_else(|| ProtocolError::new("update needs a value"))?;
                let cell = Value::tup([v, Value::Int(seq + 1), view]);
                Ok(ImplStep::invoke(
                    state(2, [Value::Int(seq + 1)]),
                    self.regs,
                    Op::binary("write", Value::from(seg), cell),
                ))
            }
            other => Err(ProtocolError::new(format!(
                "snapshot: unknown operation `{other}`"
            ))),
        }
    }
}

fn cell_seq(cell: &Value) -> i64 {
    cell.index(1).and_then(Value::as_int).unwrap_or(0)
}

fn cell_val(cell: &Value) -> Value {
    cell.index(0).cloned().unwrap_or(Value::Nil)
}

fn cell_view(cell: &Value) -> Option<Value> {
    cell.index(2).cloned()
}

fn vals_of(collect: &[Value]) -> Value {
    Value::tup(collect.iter().map(cell_val))
}

// Local state: (pc, seq, cprev, cpartial, moved)
//   pc 0 — fresh op: issue the first read.
//   pc 1 — collecting: the response is the read of cell `cpartial.len()`.
//   pc 2 — update only: the final write was issued; fields: (new_seq).
// `cprev` is ⊥ during the very first collect.
impl Implementation for SnapshotFromRegisters {
    fn init_memory(&self, _ctx: &ProcCtx) -> Value {
        Value::Int(0) // own sequence number
    }

    fn start_op(&self, _ctx: &ProcCtx, _op: &Op, memory: &Value) -> Value {
        state(
            0,
            [
                memory.clone(),
                Value::Nil,
                Value::tup([]),
                Value::Tup(vec![Value::Int(0); self.n]),
            ],
        )
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        op: &Op,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<ImplStep, ProtocolError> {
        let pc = pc_of(local)?;
        match pc {
            0 => {
                let seq = field(local, 0)?.clone();
                Ok(ImplStep::invoke(
                    state(
                        1,
                        [
                            seq,
                            Value::Nil,
                            Value::tup([]),
                            Value::Tup(vec![Value::Int(0); self.n]),
                        ],
                    ),
                    self.regs,
                    Op::unary("read", Value::from(0usize)),
                ))
            }
            1 => {
                let seq = int_field(local, 0)?;
                let cprev = field(local, 1)?.clone();
                let mut cpartial = tup_of(field(local, 2)?)?.to_vec();
                let mut moved = tup_of(field(local, 3)?)?.to_vec();
                cpartial.push(need_resp(resp)?.clone());
                if cpartial.len() < self.n {
                    let next = cpartial.len();
                    return Ok(ImplStep::invoke(
                        state(
                            1,
                            [
                                Value::Int(seq),
                                cprev,
                                Value::Tup(cpartial),
                                Value::Tup(moved),
                            ],
                        ),
                        self.regs,
                        Op::unary("read", Value::from(next)),
                    ));
                }
                // A full collect is in hand.
                let ccur = cpartial;
                let Some(prev) = cprev.as_tup() else {
                    // First collect: keep it, collect again.
                    return Ok(ImplStep::invoke(
                        state(
                            1,
                            [
                                Value::Int(seq),
                                Value::Tup(ccur),
                                Value::tup([]),
                                Value::Tup(moved),
                            ],
                        ),
                        self.regs,
                        Op::unary("read", Value::from(0usize)),
                    ));
                };
                let changed: Vec<usize> = (0..self.n)
                    .filter(|&j| cell_seq(&prev[j]) != cell_seq(&ccur[j]))
                    .collect();
                if changed.is_empty() {
                    // Clean double collect.
                    return self.finish(ctx, op, seq, vals_of(&ccur));
                }
                for &j in &changed {
                    let m = moved[j].as_int().unwrap_or(0) + 1;
                    if m >= 2 {
                        // `j` moved twice: borrow its embedded view.
                        let view = cell_view(&ccur[j]).ok_or_else(|| {
                            ProtocolError::new("snapshot: moved cell has no view")
                        })?;
                        return self.finish(ctx, op, seq, view);
                    }
                    moved[j] = Value::Int(m);
                }
                Ok(ImplStep::invoke(
                    state(
                        1,
                        [
                            Value::Int(seq),
                            Value::Tup(ccur),
                            Value::tup([]),
                            Value::Tup(moved),
                        ],
                    ),
                    self.regs,
                    Op::unary("read", Value::from(0usize)),
                ))
            }
            2 => {
                let new_seq = field(local, 0)?.clone();
                Ok(ImplStep::ret(Value::Nil, new_seq))
            }
            pc => Err(ProtocolError::new(format!("snapshot: bad pc {pc}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use subconsensus_objects::{RegisterArray, Snapshot};
    use subconsensus_sim::{
        check_linearizable, run_concurrent, BaseObjects, FirstOutcome, Implementation,
        RandomScheduler, RoundRobin,
    };

    fn setup(n: usize) -> (BaseObjects, Arc<dyn Implementation>) {
        let mut bank = BaseObjects::new();
        let regs = bank.add(RegisterArray::new(n));
        let im: Arc<dyn Implementation> = Arc::new(SnapshotFromRegisters::new(regs, n));
        (bank, im)
    }

    fn upd(i: usize, v: i64) -> Op {
        Op::binary("update", Value::from(i), Value::Int(v))
    }

    #[test]
    fn cell_helpers_tolerate_nil() {
        assert_eq!(cell_seq(&Value::Nil), 0);
        assert_eq!(cell_val(&Value::Nil), Value::Nil);
        assert_eq!(cell_view(&Value::Nil), None);
    }

    #[test]
    fn sequential_scan_sees_all_updates() {
        let (bank, im) = setup(2);
        let workload = vec![
            vec![upd(0, 10), Op::new("scan")],
            vec![upd(1, 20), Op::new("scan")],
        ];
        let out = run_concurrent(
            &bank,
            &im,
            workload,
            &mut RoundRobin::new(),
            &mut FirstOutcome,
            100_000,
        )
        .unwrap();
        assert!(out.reached_final);
        // The later scans see both values.
        let spec = Snapshot::new(2);
        assert!(check_linearizable(&out.history, &spec).unwrap().is_some());
    }

    #[test]
    fn own_update_visible_to_own_scan() {
        let (bank, im) = setup(1);
        let workload = vec![vec![upd(0, 5), Op::new("scan"), upd(0, 6), Op::new("scan")]];
        let out = run_concurrent(
            &bank,
            &im,
            workload,
            &mut RoundRobin::new(),
            &mut FirstOutcome,
            100_000,
        )
        .unwrap();
        assert_eq!(out.results[0][1], Value::tup([Value::Int(5)]));
        assert_eq!(out.results[0][3], Value::tup([Value::Int(6)]));
    }

    #[test]
    fn wrong_segment_is_rejected() {
        let (bank, im) = setup(2);
        let workload = vec![vec![upd(1, 5)]]; // P0 writing segment 1
        let err = run_concurrent(
            &bank,
            &im,
            workload,
            &mut RoundRobin::new(),
            &mut FirstOutcome,
            100_000,
        )
        .unwrap_err();
        assert!(err.to_string().contains("single-writer"));
    }

    #[test]
    fn random_interleavings_linearize_against_snapshot_spec() {
        let spec = Snapshot::new(3);
        for seed in 0..150 {
            let (bank, im) = setup(3);
            let workload = vec![
                vec![upd(0, 1), Op::new("scan"), upd(0, 2), Op::new("scan")],
                vec![upd(1, 10), Op::new("scan"), upd(1, 20)],
                vec![Op::new("scan"), upd(2, 100), Op::new("scan")],
            ];
            let mut sched = RandomScheduler::seeded(seed);
            let out = run_concurrent(
                &bank,
                &im,
                workload,
                &mut sched,
                &mut FirstOutcome,
                1_000_000,
            )
            .unwrap();
            assert!(out.reached_final, "wait-freedom (seed {seed})");
            let w = check_linearizable(&out.history, &spec).unwrap();
            assert!(
                w.is_some(),
                "history not linearizable (seed {seed}):\n{}",
                out.history
            );
        }
    }
}
