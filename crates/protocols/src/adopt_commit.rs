//! The adopt–commit protocol from registers (Gafni's commit–adopt).
//!
//! Adopt–commit is the canonical register-only agreement weakener: every
//! process outputs `(commit, v)` or `(adopt, v)` such that
//!
//! * **Validity** — `v` is some process's input;
//! * **CA-agreement** — if any process outputs `(commit, v)` then every
//!   output carries the very same `v`;
//! * **Solo commitment** — a process that runs alone (or whose input is
//!   shared by everyone) commits.
//!
//! It is a substrate for round-based agreement protocols and a useful foil
//! in this reproduction: it shows how far *registers alone* go (they weaken
//! agreement but never reach consensus, by the paper's Section-6-style
//! impossibility).

use subconsensus_sim::{Action, ObjId, Op, ProcCtx, Protocol, ProtocolError, Value};

use crate::util::{field, need_resp, pc_of, state, tup_of};

/// Symbol used in the `(commit, v)` output.
pub const COMMIT: &str = "commit";
/// Symbol used in the `(adopt, v)` output.
pub const ADOPT: &str = "adopt";

/// The adopt–commit protocol for `n` processes over two
/// [`RegisterArray`](subconsensus_objects::RegisterArray)`(n)` objects.
///
/// Decisions are `(commit|adopt, v)` tuples. See the module docs for the
/// guarantees.
///
/// Phase 1 writes the input to `round1[pid]` and collects `round1`; if only
/// one distinct value was seen the process *prefers* it (flag `true`), else
/// it prefers the smallest value seen with flag `false`. Phase 2 writes the
/// preference to `round2[pid]`, collects `round2`, and commits iff every
/// collected preference is flagged `true` for the same value.
#[derive(Clone, Copy, Debug)]
pub struct AdoptCommit {
    round1: ObjId,
    round2: ObjId,
    n: usize,
}

impl AdoptCommit {
    /// Creates the protocol for `n` processes over register arrays `round1`
    /// and `round2`, each of length `n`.
    pub fn new(round1: ObjId, round2: ObjId, n: usize) -> Self {
        AdoptCommit { round1, round2, n }
    }
}

// pc layout:
//   0              — write input to round1[pid]
//   10 + i         — read round1[i] (collect phase 1); fields: (collected so far)
//   1              — analyze phase-1 collect, write pref to round2[pid]
//   20 + i         — read round2[i] (collect phase 2); fields: (pref, collected)
//   2              — analyze phase-2 collect, decide
impl Protocol for AdoptCommit {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        state(0, [])
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        let pc = pc_of(local)?;
        let me = ctx.pid.index();
        match pc {
            0 => Ok(Action::invoke(
                state(10, [Value::tup([])]),
                self.round1,
                Op::binary("write", Value::from(me), ctx.input.clone()),
            )),
            _ if (10..10 + self.n as i64).contains(&pc) => {
                let i = (pc - 10) as usize;
                let mut collected = tup_of(field(local, 0)?)?.to_vec();
                if i > 0 {
                    collected.push(need_resp(resp)?.clone());
                }
                // Issue read of round1[i]; the response lands in the next pc.
                let next_pc = if i + 1 < self.n {
                    10 + (i as i64) + 1
                } else {
                    1
                };
                Ok(Action::invoke(
                    state(next_pc, [Value::Tup(collected)]),
                    self.round1,
                    Op::unary("read", Value::from(i)),
                ))
            }
            1 => {
                let mut collected = tup_of(field(local, 0)?)?.to_vec();
                collected.push(need_resp(resp)?.clone());
                let mut seen: Vec<Value> =
                    collected.iter().filter(|v| !v.is_nil()).cloned().collect();
                seen.sort();
                seen.dedup();
                let pref = if seen.len() == 1 {
                    Value::tup([Value::Bool(true), seen[0].clone()])
                } else {
                    // Prefer the smallest value seen, unflagged.
                    let v = seen
                        .first()
                        .cloned()
                        .ok_or_else(|| ProtocolError::new("adopt-commit: empty collect"))?;
                    Value::tup([Value::Bool(false), v])
                };
                Ok(Action::invoke(
                    state(20, [pref.clone(), Value::tup([])]),
                    self.round2,
                    Op::binary("write", Value::from(me), pref),
                ))
            }
            _ if (20..20 + self.n as i64).contains(&pc) => {
                let i = (pc - 20) as usize;
                let pref = field(local, 0)?.clone();
                let mut collected = tup_of(field(local, 1)?)?.to_vec();
                if i > 0 {
                    collected.push(need_resp(resp)?.clone());
                }
                let next_pc = if i + 1 < self.n {
                    20 + (i as i64) + 1
                } else {
                    2
                };
                Ok(Action::invoke(
                    state(next_pc, [pref, Value::Tup(collected)]),
                    self.round2,
                    Op::unary("read", Value::from(i)),
                ))
            }
            2 => {
                let pref = field(local, 0)?.clone();
                let mut collected = tup_of(field(local, 1)?)?.to_vec();
                collected.push(need_resp(resp)?.clone());
                let prefs: Vec<(bool, Value)> = collected
                    .iter()
                    .filter(|v| !v.is_nil())
                    .map(|p| -> Result<(bool, Value), ProtocolError> {
                        let flag = p
                            .index(0)
                            .and_then(Value::as_bool)
                            .ok_or_else(|| ProtocolError::new("bad preference shape"))?;
                        let v = p
                            .index(1)
                            .cloned()
                            .ok_or_else(|| ProtocolError::new("bad preference shape"))?;
                        Ok((flag, v))
                    })
                    .collect::<Result<_, _>>()?;
                let flagged: Vec<&Value> =
                    prefs.iter().filter(|(f, _)| *f).map(|(_, v)| v).collect();
                let all_same_flagged =
                    !flagged.is_empty() && prefs.iter().all(|(f, v)| *f && *v == *flagged[0]);
                let decision = if all_same_flagged {
                    Value::tup([Value::Sym(COMMIT), flagged[0].clone()])
                } else if let Some(v) = flagged.first() {
                    Value::tup([Value::Sym(ADOPT), (*v).clone()])
                } else {
                    // Nobody committed-prefers: adopt own preference value.
                    let v = pref
                        .index(1)
                        .cloned()
                        .ok_or_else(|| ProtocolError::new("bad own preference"))?;
                    Value::tup([Value::Sym(ADOPT), v])
                };
                Ok(Action::Decide(decision))
            }
            pc => Err(ProtocolError::new(format!("adopt-commit: bad pc {pc}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use subconsensus_modelcheck::{
        check_wait_freedom, ExploreOptions, StateGraph, TerminalReport, WaitFreedom,
    };
    use subconsensus_objects::RegisterArray;
    use subconsensus_sim::{SystemBuilder, SystemSpec};

    fn ac_system(inputs: &[i64]) -> SystemSpec {
        let n = inputs.len();
        let mut b = SystemBuilder::new();
        let r1 = b.add_object(RegisterArray::new(n));
        let r2 = b.add_object(RegisterArray::new(n));
        let p: Arc<dyn Protocol> = Arc::new(AdoptCommit::new(r1, r2, n));
        b.add_processes(p, inputs.iter().map(|&i| Value::Int(i)));
        b.build()
    }

    fn decode(d: &Value) -> (&'static str, i64) {
        (
            d.index(0).and_then(Value::as_sym).unwrap(),
            d.index(1).and_then(Value::as_int).unwrap(),
        )
    }

    #[test]
    fn solo_process_commits_its_input() {
        let g = StateGraph::explore(&ac_system(&[7]), &ExploreOptions::default()).unwrap();
        assert_eq!(check_wait_freedom(&g), WaitFreedom::WaitFree);
        let r = TerminalReport::of(&g);
        for set in &r.decision_sets {
            assert_eq!(set.len(), 1);
            assert_eq!(decode(&set[0]), (COMMIT, 7));
        }
    }

    #[test]
    fn identical_inputs_always_commit() {
        let g = StateGraph::explore(&ac_system(&[4, 4]), &ExploreOptions::default()).unwrap();
        assert_eq!(check_wait_freedom(&g), WaitFreedom::WaitFree);
        for set in &TerminalReport::of(&g).decision_sets {
            for d in set {
                assert_eq!(decode(d), (COMMIT, 4));
            }
        }
    }

    #[test]
    fn ca_agreement_holds_in_every_schedule() {
        // Exhaustive over 2 processes with different inputs: if anyone
        // commits v, every decision carries v; and every carried value is an
        // input (validity).
        let g = StateGraph::explore(&ac_system(&[1, 2]), &ExploreOptions::default()).unwrap();
        assert_eq!(check_wait_freedom(&g), WaitFreedom::WaitFree);
        for &t in g.terminals() {
            let cfg = g.config(t);
            let decisions: Vec<(&'static str, i64)> = cfg
                .decisions()
                .iter()
                .map(|d| decode(d.as_ref().unwrap()))
                .collect();
            for &(_, v) in &decisions {
                assert!(v == 1 || v == 2, "validity");
            }
            let committed: Vec<i64> = decisions
                .iter()
                .filter(|(s, _)| *s == COMMIT)
                .map(|&(_, v)| v)
                .collect();
            if let Some(&cv) = committed.first() {
                for &(_, v) in &decisions {
                    assert_eq!(v, cv, "CA-agreement violated in terminal {t}");
                }
            }
        }
    }

    #[test]
    fn three_processes_exhaustive_ca_agreement() {
        let g = StateGraph::explore(&ac_system(&[1, 2, 3]), &ExploreOptions::default()).unwrap();
        assert_eq!(check_wait_freedom(&g), WaitFreedom::WaitFree);
        let mut disagreeing_adopts = 0usize;
        for &t in g.terminals() {
            let cfg = g.config(t);
            let decisions: Vec<(&'static str, i64)> = cfg
                .decisions()
                .iter()
                .map(|d| decode(d.as_ref().unwrap()))
                .collect();
            let committed: Vec<i64> = decisions
                .iter()
                .filter(|(s, _)| *s == COMMIT)
                .map(|&(_, v)| v)
                .collect();
            if let Some(&cv) = committed.first() {
                for &(_, v) in &decisions {
                    assert_eq!(v, cv);
                }
            } else {
                let distinct: std::collections::BTreeSet<i64> =
                    decisions.iter().map(|&(_, v)| v).collect();
                if distinct.len() > 1 {
                    disagreeing_adopts += 1;
                }
            }
        }
        assert!(
            disagreeing_adopts > 0,
            "adopt-commit is weaker than consensus: some schedules disagree on adopted values"
        );
    }
}
