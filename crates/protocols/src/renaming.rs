//! Wait-free one-shot renaming via a Moir–Anderson splitter grid.
//!
//! The paper's lineage (Algorithm-3-style constructions) assumes processes
//! with names from a huge namespace `{0..M-1}` can first be renamed into a
//! small bounded namespace using registers only ([4, 6] in the paper's
//! bibliography). This module provides the classic grid-of-splitters
//! renaming: `k` participants acquire distinct names in
//! `{0 .. k(k+1)/2 - 1}` wait-free, from registers only.
//!
//! (The tight `(2k-1)`-renaming of Afek–Merritt needs snapshots and a more
//! intricate protocol; the grid bound `k(k+1)/2` is what the constructions
//! here need — a *bounded* namespace — and keeps the state space small
//! enough to model-check.)
//!
//! A **splitter** (Lamport / Moir–Anderson) is built from two registers `X`
//! and `Y` and routes each of `c` concurrent entrants to `stop`, `right` or
//! `down` such that at most one stops, at most `c-1` go right, and at most
//! `c-1` go down:
//!
//! ```text
//!   X := my-id
//!   if Y: return RIGHT
//!   Y := true
//!   if X == my-id: return STOP else return DOWN
//! ```

use subconsensus_sim::{Action, ObjId, Op, ProcCtx, Protocol, ProtocolError, Value};

use crate::util::{index_field, need_resp, pc_of, state};

/// Returns the number of splitter cells (= size of the acquired namespace)
/// of a grid for `k` participants: `k(k+1)/2`.
pub fn grid_cells(k: usize) -> usize {
    k * (k + 1) / 2
}

/// Returns the linear index of grid cell `(r, c)` (row, column) in a grid
/// for `k` participants, where cells satisfy `r + c ≤ k - 1`.
///
/// Cells are numbered along anti-diagonals: `(0,0)`, `(0,1)`, `(1,0)`,
/// `(0,2)`, `(1,1)`, `(2,0)`, … so that every cell reachable within the grid
/// has a valid index.
///
/// # Panics
///
/// Panics if `r + c ≥ k`.
pub fn cell_index(r: usize, c: usize, k: usize) -> usize {
    let d = r + c;
    assert!(d < k, "cell ({r},{c}) outside grid for k={k}");
    // Cells on diagonals 0..d plus the position within diagonal d.
    d * (d + 1) / 2 + r
}

/// Grid renaming for up to `k` participants over a
/// [`RegisterArray`](subconsensus_objects::RegisterArray) of length
/// `2 · k(k+1)/2` (cell `i` uses registers `2i` as `X` and `2i + 1` as `Y`).
///
/// Each participant decides the linear index of the cell where it stopped —
/// a unique name in `{0 .. k(k+1)/2 - 1}`.
///
/// The protocol is *adaptive to the identifier domain*: it uses `ctx.input`
/// (an arbitrary distinct value, e.g. a huge original name) as the splitter
/// id, not the pid.
#[derive(Clone, Copy, Debug)]
pub struct GridRenaming {
    regs: ObjId,
    k: usize,
}

impl GridRenaming {
    /// Creates the protocol for at most `k` participants over the register
    /// array `regs` (which must have `2 · k(k+1)/2` cells).
    pub fn new(regs: ObjId, k: usize) -> Self {
        GridRenaming { regs, k }
    }

    /// Returns the register-array length this protocol requires.
    pub fn registers_needed(k: usize) -> usize {
        2 * grid_cells(k)
    }
}

// Local state: (pc, r, c). pc:
//   0 — write X := id            (X of current cell)
//   1 — read Y
//   2 — after read Y: if true → move right; else write Y := true
//   3 — read X
//   4 — after read X: if X == id → decide cell index; else move down
impl Protocol for GridRenaming {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        state(0, [Value::from(0usize), Value::from(0usize)])
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        let pc = pc_of(local)?;
        let r = index_field(local, 0)?;
        let c = index_field(local, 1)?;
        if r + c >= self.k {
            return Err(ProtocolError::new(format!(
                "renaming: walked off the grid at ({r},{c}) — more than k={} participants?",
                self.k
            )));
        }
        let cell = cell_index(r, c, self.k);
        let x_reg = Value::from(2 * cell);
        let y_reg = Value::from(2 * cell + 1);
        let pos = [Value::from(r), Value::from(c)];
        match pc {
            0 => Ok(Action::invoke(
                state(1, pos),
                self.regs,
                Op::binary("write", x_reg, ctx.input.clone()),
            )),
            1 => Ok(Action::invoke(
                state(2, pos),
                self.regs,
                Op::unary("read", y_reg),
            )),
            2 => {
                let y = need_resp(resp)?;
                if y.as_bool() == Some(true) {
                    // RIGHT: restart the splitter at (r, c+1).
                    Ok(Action::invoke(
                        state(1, [Value::from(r), Value::from(c + 1)]),
                        self.regs,
                        Op::binary(
                            "write",
                            Value::from(2 * cell_index(r, c + 1, self.k)),
                            ctx.input.clone(),
                        ),
                    ))
                } else {
                    Ok(Action::invoke(
                        state(3, pos),
                        self.regs,
                        Op::binary("write", y_reg, Value::Bool(true)),
                    ))
                }
            }
            3 => Ok(Action::invoke(
                state(4, pos),
                self.regs,
                Op::unary("read", x_reg),
            )),
            4 => {
                let x = need_resp(resp)?;
                if *x == ctx.input {
                    // STOP: the cell index is the new name.
                    Ok(Action::Decide(Value::from(cell)))
                } else {
                    // DOWN: restart the splitter at (r+1, c).
                    Ok(Action::invoke(
                        state(1, [Value::from(r + 1), Value::from(c)]),
                        self.regs,
                        Op::binary(
                            "write",
                            Value::from(2 * cell_index(r + 1, c, self.k)),
                            ctx.input.clone(),
                        ),
                    ))
                }
            }
            pc => Err(ProtocolError::new(format!("renaming: bad pc {pc}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use subconsensus_modelcheck::{check_wait_freedom, ExploreOptions, StateGraph, WaitFreedom};
    use subconsensus_objects::RegisterArray;
    use subconsensus_sim::{
        run, FirstOutcome, RandomScheduler, RunOptions, SystemBuilder, SystemSpec,
    };

    fn renaming_system(k: usize, names: &[i64]) -> SystemSpec {
        let mut b = SystemBuilder::new();
        let regs = b.add_object(RegisterArray::new(GridRenaming::registers_needed(k)));
        let p: Arc<dyn subconsensus_sim::Protocol> = Arc::new(GridRenaming::new(regs, k));
        b.add_processes(p, names.iter().map(|&v| Value::Int(v)));
        b.build()
    }

    #[test]
    fn cell_indexing_is_dense_and_unique() {
        let k = 4;
        let mut seen = std::collections::BTreeSet::new();
        for r in 0..k {
            for c in 0..k {
                if r + c < k {
                    assert!(seen.insert(cell_index(r, c, k)));
                }
            }
        }
        assert_eq!(seen.len(), grid_cells(k));
        assert_eq!(*seen.iter().next_back().unwrap(), grid_cells(k) - 1);
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn off_grid_cell_panics() {
        let _ = cell_index(2, 2, 4);
    }

    #[test]
    fn solo_participant_stops_at_origin() {
        let g =
            StateGraph::explore(&renaming_system(2, &[100]), &ExploreOptions::default()).unwrap();
        assert_eq!(check_wait_freedom(&g), WaitFreedom::WaitFree);
        for &t in g.terminals() {
            assert_eq!(g.config(t).decided_values(), vec![Value::Int(0)]);
        }
    }

    #[test]
    fn two_participants_get_distinct_names_in_range_exhaustively() {
        let k = 2;
        let g = StateGraph::explore(
            &renaming_system(k, &[1000, 2000]),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert_eq!(check_wait_freedom(&g), WaitFreedom::WaitFree);
        for &t in g.terminals() {
            let cfg = g.config(t);
            let names: Vec<usize> = cfg
                .decisions()
                .into_iter()
                .map(|d| d.unwrap().as_index().unwrap())
                .collect();
            assert_eq!(names.len(), 2);
            assert_ne!(names[0], names[1], "names must be distinct");
            for &name in &names {
                assert!(name < grid_cells(k), "name {name} out of range");
            }
        }
    }

    #[test]
    fn three_participants_random_schedules() {
        let k = 3;
        for seed in 0..200 {
            let spec = renaming_system(k, &[7, 42, 99]);
            let mut sched = RandomScheduler::seeded(seed);
            let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
            assert!(out.reached_final);
            let names: std::collections::BTreeSet<usize> = out
                .decisions()
                .into_iter()
                .map(|d| d.unwrap().as_index().unwrap())
                .collect();
            assert_eq!(names.len(), 3, "distinct names (seed {seed})");
            assert!(names.iter().all(|&n| n < grid_cells(k)));
        }
    }
}
