//! Safe agreement (Borowsky–Gafni): consensus whose only weakness is a
//! small *unsafe window*.
//!
//! Safe agreement is the other half of the BG-simulation machinery behind
//! the paper's lineage: it guarantees **agreement** and **validity**
//! unconditionally, and **termination for everyone** provided no process
//! fails inside its (two-step) unsafe section. The adversary can block the
//! object forever only by crashing a process at exactly the wrong moment —
//! which is how BG simulation trades one simulator crash per blocked
//! agreement.
//!
//! Protocol (snapshot-based, one-shot):
//!
//! 1. *(unsafe section begins)* write `(value, level 1)`;
//! 2. scan; if somebody is already at level 2, retreat to level 0,
//!    else advance to level 2 *(unsafe section ends either way)*;
//! 3. spin: scan until no process is at level 1, then decide the value of
//!    the level-2 process with the smallest pid.
//!
//! A process that crashes between steps 1 and 2 leaves a permanent level-1
//! entry and blocks step-3 spinners forever — exactly the specified unsafe
//! window. With no crash inside the window, every process terminates.

use subconsensus_sim::{Action, ObjId, Op, ProcCtx, Protocol, ProtocolError, Value};

use crate::util::{need_resp, pc_of, state};

/// One-shot safe agreement for `n` processes over a
/// [`Snapshot`](subconsensus_objects::Snapshot)`(n)` whose segments hold
/// `(value, level)`.
#[derive(Clone, Copy, Debug)]
pub struct SafeAgreement {
    snap: ObjId,
    n: usize,
}

impl SafeAgreement {
    /// Creates the protocol over snapshot object `snap` with `n` segments.
    pub fn new(snap: ObjId, n: usize) -> Self {
        SafeAgreement { snap, n }
    }

    fn decode(cells: &[Value]) -> Result<Vec<Option<(Value, usize)>>, ProtocolError> {
        cells
            .iter()
            .map(|c| {
                if c.is_nil() {
                    return Ok(None);
                }
                let v = c
                    .index(0)
                    .cloned()
                    .ok_or_else(|| ProtocolError::new("safe-agreement: bad cell"))?;
                let l = c
                    .index(1)
                    .and_then(Value::as_index)
                    .ok_or_else(|| ProtocolError::new("safe-agreement: bad level"))?;
                Ok(Some((v, l)))
            })
            .collect()
    }
}

// pc 0 — write (v, 1)                       [unsafe section begins]
// pc 1 — scan
// pc 2 — advance to level 2 or retreat to 0 [unsafe section ends]
// pc 3 — spin-scan until no level-1 entries, then decide
impl Protocol for SafeAgreement {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        state(0, [])
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        let me = Value::from(ctx.pid.index());
        match pc_of(local)? {
            0 => Ok(Action::invoke(
                state(1, []),
                self.snap,
                Op::binary(
                    "update",
                    me,
                    Value::tup([ctx.input.clone(), Value::from(1usize)]),
                ),
            )),
            1 => Ok(Action::invoke(state(2, []), self.snap, Op::new("scan"))),
            2 => {
                let cells = need_resp(resp)?
                    .as_tup()
                    .ok_or_else(|| ProtocolError::new("safe-agreement: bad scan"))?
                    .to_vec();
                let decoded = Self::decode(&cells)?;
                let someone_committed = decoded.iter().flatten().any(|(_, l)| *l == 2);
                let level = if someone_committed { 0usize } else { 2 };
                Ok(Action::invoke(
                    state(3, []),
                    self.snap,
                    Op::binary(
                        "update",
                        me,
                        Value::tup([ctx.input.clone(), Value::from(level)]),
                    ),
                ))
            }
            3 => Ok(Action::invoke(state(4, []), self.snap, Op::new("scan"))),
            4 => {
                let cells = need_resp(resp)?
                    .as_tup()
                    .ok_or_else(|| ProtocolError::new("safe-agreement: bad scan"))?
                    .to_vec();
                let decoded = Self::decode(&cells)?;
                if decoded.iter().flatten().any(|(_, l)| *l == 1) {
                    // Someone is still in the unsafe section: spin.
                    return Ok(Action::invoke(state(4, []), self.snap, Op::new("scan")));
                }
                let winner = decoded
                    .iter()
                    .flatten()
                    .find(|(_, l)| *l == 2)
                    .map(|(v, _)| v.clone())
                    .ok_or_else(|| {
                        ProtocolError::new("safe-agreement: nobody committed — impossible")
                    })?;
                Ok(Action::Decide(winner))
            }
            pc => Err(ProtocolError::new(format!("safe-agreement: bad pc {pc}"))),
        }
    }

    // Suppress dead-code warnings for `n`, kept for symmetry/debugging.
}

impl SafeAgreement {
    /// Returns the number of processes this instance was built for.
    pub fn capacity(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use subconsensus_modelcheck::{check_wait_freedom, ExploreOptions, StateGraph, WaitFreedom};
    use subconsensus_objects::Snapshot;
    use subconsensus_sim::{
        run, CrashScheduler, FirstOutcome, Pid, RandomScheduler, RoundRobin, RunOptions,
        SystemBuilder, SystemSpec,
    };
    use subconsensus_tasks::{check_exhaustive, SetConsensusTask};

    fn sa_system(inputs: &[i64]) -> SystemSpec {
        let n = inputs.len();
        let mut b = SystemBuilder::new();
        let snap = b.add_object(Snapshot::new(n));
        let p: Arc<dyn Protocol> = Arc::new(SafeAgreement::new(snap, n));
        b.add_processes(p, inputs.iter().map(|&v| Value::Int(v)));
        b.build()
    }

    #[test]
    fn crash_free_executions_decide_and_agree() {
        // Exhaustive for 2 processes: note the graph has cycles (the spin
        // loop), but under *fair* schedules everyone decides; we check
        // agreement + validity on every terminal, and termination under
        // 300 random (fair with probability 1) schedules.
        let spec = sa_system(&[1, 2]);
        let report = check_exhaustive(
            &spec,
            &SetConsensusTask::consensus(),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(report.safe(), "{report:?}");
        for seed in 0..300 {
            let mut sched = RandomScheduler::seeded(seed);
            let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
            assert!(out.reached_final, "seed {seed}");
            assert_eq!(out.decided_values().len(), 1, "agreement (seed {seed})");
        }
        assert_eq!(
            SafeAgreement::new(subconsensus_sim::ObjId::new(0), 2).capacity(),
            2
        );
    }

    #[test]
    fn three_processes_random_schedules_agree() {
        let spec = sa_system(&[7, 8, 9]);
        for seed in 0..300 {
            let mut sched = RandomScheduler::seeded(seed);
            let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
            assert!(out.reached_final, "seed {seed}");
            let vals = out.decided_values();
            assert_eq!(vals.len(), 1, "seed {seed}");
            assert!(matches!(vals[0], Value::Int(7..=9)), "validity");
        }
    }

    #[test]
    fn crash_outside_the_unsafe_window_is_harmless() {
        // P1 crashes before taking any step: the survivor still decides.
        let spec = sa_system(&[1, 2]);
        let mut sched = CrashScheduler::crash_initially(RoundRobin::new(), [Pid::new(1)]);
        let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
        assert_eq!(out.decisions()[0], Some(Value::Int(1)));
    }

    #[test]
    fn crash_inside_the_unsafe_window_blocks_survivors() {
        // P1 crashes right after its level-1 write (1 boundary-free step:
        // the write is its first step): P0 spins forever — the specified
        // unsafe window, observable as a truncated run.
        let spec = sa_system(&[1, 2]);
        let mut budget = std::collections::HashMap::new();
        budget.insert(Pid::new(1), 1usize); // exactly the level-1 write
        let mut sched = CrashScheduler::new(RoundRobin::new(), budget);
        let out = run(
            &spec,
            &mut sched,
            &mut FirstOutcome,
            &RunOptions::with_max_steps(5_000),
        )
        .unwrap();
        assert!(!out.reached_final, "survivor must spin forever");
        assert!(out.decisions()[0].is_none());
    }

    #[test]
    fn graph_has_spin_cycles_but_safety_everywhere() {
        let spec = sa_system(&[1, 2]);
        let graph = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        // The spin loop shows up as divergence in the unfair graph...
        assert_eq!(check_wait_freedom(&graph), WaitFreedom::Diverges);
        // ...but every decision ever made is consistent.
        for i in 0..graph.len() {
            assert!(graph.config(i).decided_values().len() <= 1);
        }
    }
}
