//! Tournament-tree leader election / test-and-set from 2-process consensus
//! objects.
//!
//! This is the positive half of the Common2 story the paper engages with:
//! objects at level 2 of the consensus hierarchy *can* implement one-shot
//! test-and-set for any number of processes, via a binary tournament whose
//! internal nodes are 2-bounded consensus objects. Exactly one process wins
//! (returns 0); everyone else loses (returns 1).
//!
//! Each internal node is contested by at most two processes — the winners of
//! the two subtrees — so a 2-consensus object per node suffices: each
//! contender proposes its *side* (0 = left subtree, 1 = right subtree) and
//! advances iff its side wins.

use subconsensus_sim::{Action, ObjId, Op, ProcCtx, Protocol, ProtocolError, Value};

use crate::util::{index_field, need_resp, pc_of, state};

/// Returns the number of internal nodes (= 2-consensus objects) needed by a
/// tournament over `n` processes: `L - 1` where `L` is `n` rounded up to a
/// power of two.
pub fn tournament_nodes(n: usize) -> usize {
    leaf_base(n) - 1
}

/// Returns the heap index of the first leaf (`L`, the padded leaf count).
fn leaf_base(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Returns the range of pids covered by heap node `x` in a tournament with
/// leaf base `base` (leaves are `base ..= 2*base - 1`, leaf `base + p` is
/// pid `p`).
fn pid_range(x: usize, base: usize) -> (usize, usize) {
    // Depth of x: node x covers leaves x·2^h .. (x+1)·2^h - 1 where
    // 2^h = base / msb-span. Walk down: multiply until reaching leaf level.
    let mut lo = x;
    let mut hi = x;
    while lo < base {
        lo *= 2;
        hi = hi * 2 + 1;
    }
    (lo - base, hi - base)
}

/// One-shot test-and-set (single-winner election) over a contiguous array of
/// `tournament_nodes(n)` 2-bounded [`Consensus`](subconsensus_objects::Consensus)
/// objects laid out as a binary heap: node `x ∈ {1 .. L-1}` lives at
/// `base + (x - 1)`.
///
/// Each process decides `0` if it wins the tournament, `1` otherwise.
#[derive(Clone, Copy, Debug)]
pub struct Tournament {
    base: ObjId,
    n: usize,
}

impl Tournament {
    /// Creates the protocol for `n` processes over consensus objects starting
    /// at `base`.
    pub fn new(base: ObjId, n: usize) -> Self {
        Tournament { base, n }
    }

    /// Returns the object holding heap node `x` (`1 ≤ x < L`).
    fn node_obj(&self, x: usize) -> ObjId {
        self.base.offset(x - 1)
    }

    /// Returns `true` if heap node `x` covers no live pid (a bye).
    fn is_empty_subtree(&self, x: usize) -> bool {
        let (lo, _hi) = pid_range(x, leaf_base(self.n));
        lo >= self.n
    }
}

// Local state: (pc, node) where node is the heap node whose match the
// process is about to play (node = current child position; the match is at
// its parent). pc:
//   0 — about to contest the parent of `node` (or decide, at the root)
//   1 — received the match verdict
impl Protocol for Tournament {
    fn start(&self, ctx: &ProcCtx) -> Value {
        // Begin at our leaf.
        state(0, [Value::from(leaf_base(self.n) + ctx.pid.index())])
    }

    fn step(
        &self,
        _ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        let pc = pc_of(local)?;
        let node = index_field(local, 0)?;
        match pc {
            0 => {
                if node == 1 {
                    // Reached the root as a winner of every contested match.
                    return Ok(Action::Decide(Value::Int(0)));
                }
                let sibling = node ^ 1;
                if self.is_empty_subtree(sibling) {
                    // Bye: advance without touching the object.
                    return self.step(_ctx, &state(0, [Value::from(node / 2)]), None);
                }
                let side = Value::from(node & 1);
                Ok(Action::invoke(
                    state(1, [Value::from(node)]),
                    self.node_obj(node / 2),
                    Op::unary("propose", Value::tup([Value::Sym("side"), side])),
                ))
            }
            1 => {
                let verdict = need_resp(resp)?;
                let my_side = Value::tup([Value::Sym("side"), Value::from(node & 1)]);
                if *verdict == my_side {
                    // Won the match: move up.
                    self.step(_ctx, &state(0, [Value::from(node / 2)]), None)
                } else {
                    Ok(Action::Decide(Value::Int(1)))
                }
            }
            pc => Err(ProtocolError::new(format!("tournament: bad pc {pc}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use subconsensus_modelcheck::{check_wait_freedom, ExploreOptions, StateGraph, WaitFreedom};
    use subconsensus_objects::Consensus;
    use subconsensus_sim::{
        run, FirstOutcome, ObjectSpec, RandomScheduler, RunOptions, SystemBuilder, SystemSpec,
    };

    fn tournament_system(n: usize) -> SystemSpec {
        let mut b = SystemBuilder::new();
        let base = b.add_object_array(tournament_nodes(n), |_| {
            Box::new(Consensus::bounded(2)) as Box<dyn ObjectSpec>
        });
        let p: Arc<dyn Protocol> = Arc::new(Tournament::new(base, n));
        b.add_processes(p, (0..n).map(Value::from));
        b.build()
    }

    fn winners(decisions: &[Option<Value>]) -> usize {
        decisions
            .iter()
            .filter(|d| **d == Some(Value::Int(0)))
            .count()
    }

    #[test]
    fn geometry() {
        assert_eq!(tournament_nodes(1), 0);
        assert_eq!(tournament_nodes(2), 1);
        assert_eq!(tournament_nodes(3), 3);
        assert_eq!(tournament_nodes(4), 3);
        assert_eq!(tournament_nodes(5), 7);
        assert_eq!(pid_range(1, 4), (0, 3));
        assert_eq!(pid_range(2, 4), (0, 1));
        assert_eq!(pid_range(7, 4), (3, 3));
    }

    #[test]
    fn solo_process_wins() {
        let g = StateGraph::explore(&tournament_system(1), &ExploreOptions::default()).unwrap();
        assert_eq!(check_wait_freedom(&g), WaitFreedom::WaitFree);
        for &t in g.terminals() {
            assert_eq!(winners(&g.config(t).decisions()), 1);
        }
    }

    #[test]
    fn exactly_one_winner_exhaustive_2_and_3() {
        for n in [2usize, 3] {
            let g = StateGraph::explore(&tournament_system(n), &ExploreOptions::default()).unwrap();
            assert_eq!(check_wait_freedom(&g), WaitFreedom::WaitFree, "n = {n}");
            for &t in g.terminals() {
                let ds = g.config(t).decisions();
                assert_eq!(winners(&ds), 1, "exactly one winner, n = {n}");
                assert!(ds.iter().all(|d| d.is_some()));
            }
        }
    }

    #[test]
    fn five_processes_random_schedules_single_winner() {
        for seed in 0..100 {
            let spec = tournament_system(5);
            let mut sched = RandomScheduler::seeded(seed);
            let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
            assert!(out.reached_final);
            assert_eq!(winners(&out.decisions()), 1, "seed {seed}");
        }
    }
}
