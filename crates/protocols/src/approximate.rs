//! Wait-free approximate agreement from registers (snapshot rounds).
//!
//! The positive counterpart to the consensus impossibility: registers
//! cannot give *exact* agreement, but they give agreement to within any
//! `ε > 0`. This rounds out the map of what lives below the paper's
//! deterministic sub-consensus objects: registers solve approximate
//! agreement and adopt–commit, the sub-consensus objects add bounded
//! *exact* disagreement (`k`-set consensus), and 2-consensus adds full
//! agreement for pairs.
//!
//! Integer formulation with `ε = 1`: outputs lie within the input range
//! (validity) and pairwise differ by at most 1 (1-agreement). Every
//! process runs exactly `R` rounds; round `r` has its own snapshot object:
//! write your estimate, scan, move to the midpoint of the scanned
//! estimates. Because scans of one snapshot object are totally ordered by
//! containment, the diameter of round-`(r+1)` estimates is at most half
//! (rounded up) the diameter of round-`r` estimates, so
//! `R ≥ ⌈log₂ D⌉ + 1` rounds shrink an initial diameter `D` to ≤ 1.
//! (No early deciding: a process that decided on a solo view while others
//! keep averaging would break agreement — the classic pitfall.)

use subconsensus_sim::{Action, ObjId, Op, ProcCtx, Protocol, ProtocolError, Value};

use crate::util::{int_field, need_resp, pc_of, state};

/// Approximate agreement to within 1, over one
/// [`Snapshot`](subconsensus_objects::Snapshot)`(n)` **per round**, laid
/// out contiguously from `snaps`.
///
/// Every process executes exactly `rounds` rounds and decides its final
/// estimate. 1-agreement is guaranteed when
/// `rounds ≥ ⌈log₂(max input − min input)⌉ + 1`; use
/// [`ApproximateAgreement::rounds_for_range`].
#[derive(Clone, Copy, Debug)]
pub struct ApproximateAgreement {
    snaps: ObjId,
    rounds: usize,
}

impl ApproximateAgreement {
    /// Creates the protocol with the given per-round snapshot array base
    /// and round count.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn new(snaps: ObjId, rounds: usize) -> Self {
        assert!(rounds > 0, "need at least one round");
        ApproximateAgreement { snaps, rounds }
    }

    /// Returns the number of snapshot objects required.
    pub fn snapshots_needed(rounds: usize) -> usize {
        rounds
    }

    /// Returns a sufficient round count for inputs spanning `range`
    /// (`max − min`).
    pub fn rounds_for_range(range: u64) -> usize {
        let mut rounds = 1;
        let mut d = range;
        while d > 1 {
            d = d.div_ceil(2);
            rounds += 1;
        }
        rounds
    }
}

// Local state: (pc, round, estimate).
//   pc 0 — write estimate into round-snapshot; pc 1 — scan; pc 2 — step.
impl Protocol for ApproximateAgreement {
    fn start(&self, ctx: &ProcCtx) -> Value {
        state(0, [Value::from(0usize), ctx.input.clone()])
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        let pc = pc_of(local)?;
        let round = int_field(local, 0)? as usize;
        let est = int_field(local, 1)?;
        match pc {
            0 => Ok(Action::invoke(
                state(1, [Value::from(round), Value::Int(est)]),
                self.snaps.offset(round),
                Op::binary("update", Value::from(ctx.pid.index()), Value::Int(est)),
            )),
            1 => Ok(Action::invoke(
                state(2, [Value::from(round), Value::Int(est)]),
                self.snaps.offset(round),
                Op::new("scan"),
            )),
            2 => {
                let cells = need_resp(resp)?
                    .as_tup()
                    .ok_or_else(|| ProtocolError::new("approx: bad scan"))?;
                let seen: Vec<i64> = cells
                    .iter()
                    .filter(|c| !c.is_nil())
                    .map(|c| {
                        c.as_int()
                            .ok_or_else(|| ProtocolError::new("approx: bad estimate"))
                    })
                    .collect::<Result<_, _>>()?;
                let lo = *seen.iter().min().expect("own estimate present");
                let hi = *seen.iter().max().expect("own estimate present");
                // `i64::midpoint` needs Rust 1.87; stay on MSRV 1.75.
                // `lo <= hi`, so `lo + (hi - lo) / 2` cannot overflow.
                let mid = lo + (hi - lo) / 2;
                let next_round = round + 1;
                if next_round >= self.rounds {
                    return Ok(Action::Decide(Value::Int(mid)));
                }
                Ok(Action::invoke(
                    state(1, [Value::from(next_round), Value::Int(mid)]),
                    self.snaps.offset(next_round),
                    Op::binary("update", Value::from(ctx.pid.index()), Value::Int(mid)),
                ))
            }
            pc => Err(ProtocolError::new(format!("approx: bad pc {pc}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use subconsensus_objects::Snapshot;
    use subconsensus_sim::{
        run, FirstOutcome, RandomScheduler, RunOptions, SystemBuilder, SystemSpec,
    };

    fn system(inputs: &[i64], rounds: usize) -> SystemSpec {
        let n = inputs.len();
        let mut b = SystemBuilder::new();
        let snaps = b.add_object_array(ApproximateAgreement::snapshots_needed(rounds), |_| {
            Box::new(Snapshot::new(n)) as Box<dyn subconsensus_sim::ObjectSpec>
        });
        let p: Arc<dyn Protocol> = Arc::new(ApproximateAgreement::new(snaps, rounds));
        b.add_processes(p, inputs.iter().map(|&v| Value::Int(v)));
        b.build()
    }

    fn rounds_for(inputs: &[i64]) -> usize {
        let lo = *inputs.iter().min().unwrap();
        let hi = *inputs.iter().max().unwrap();
        ApproximateAgreement::rounds_for_range((hi - lo) as u64)
    }

    fn check_outcome(inputs: &[i64], decisions: &[Option<Value>]) {
        let lo = *inputs.iter().min().unwrap();
        let hi = *inputs.iter().max().unwrap();
        let outs: Vec<i64> = decisions
            .iter()
            .map(|d| d.as_ref().and_then(Value::as_int).expect("decided int"))
            .collect();
        for &o in &outs {
            assert!((lo..=hi).contains(&o), "validity: {o} outside [{lo},{hi}]");
        }
        for &a in &outs {
            for &b in &outs {
                assert!((a - b).abs() <= 1, "1-agreement: {a} vs {b} ({outs:?})");
            }
        }
    }

    #[test]
    fn rounds_formula() {
        assert_eq!(ApproximateAgreement::rounds_for_range(0), 1);
        assert_eq!(ApproximateAgreement::rounds_for_range(1), 1);
        assert_eq!(ApproximateAgreement::rounds_for_range(2), 2);
        assert_eq!(ApproximateAgreement::rounds_for_range(16), 5);
        assert_eq!(ApproximateAgreement::rounds_for_range(100), 8);
    }

    #[test]
    fn identical_inputs_stay_put() {
        let inputs = [5i64, 5, 5];
        let spec = system(&inputs, 2);
        let out = run(
            &spec,
            &mut subconsensus_sim::RoundRobin::new(),
            &mut FirstOutcome,
            &RunOptions::default(),
        )
        .unwrap();
        assert!(out.reached_final);
        check_outcome(&inputs, &out.decisions());
        assert_eq!(out.decided_values(), vec![Value::Int(5)]);
    }

    #[test]
    fn random_schedules_satisfy_validity_and_1_agreement() {
        for inputs in [vec![0i64, 16], vec![0, 7, 100], vec![-50, 0, 50, 99]] {
            let spec = system(&inputs, rounds_for(&inputs));
            for seed in 0..150 {
                let mut sched = RandomScheduler::seeded(seed);
                let out =
                    run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
                assert!(out.reached_final, "seed {seed}");
                check_outcome(&inputs, &out.decisions());
            }
        }
    }

    #[test]
    fn exhaustive_two_processes() {
        use subconsensus_modelcheck::{
            check_wait_freedom, ExploreOptions, StateGraph, WaitFreedom,
        };
        let inputs = [0i64, 4];
        let spec = system(&inputs, rounds_for(&inputs));
        let g = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        assert!(!g.is_truncated());
        assert_eq!(check_wait_freedom(&g), WaitFreedom::WaitFree);
        for &t in g.terminals() {
            check_outcome(&inputs, &g.config(t).decisions());
        }
    }

    #[test]
    fn too_few_rounds_really_can_disagree_by_more_than_1() {
        // Control experiment justifying the round bound: with only 1 round
        // and a gap of 100, a solo-first schedule leaves outputs far apart.
        let inputs = [0i64, 100];
        let spec = system(&inputs, 1);
        let mut worst = 0i64;
        for seed in 0..100 {
            let mut sched = RandomScheduler::seeded(seed);
            let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
            let outs: Vec<i64> = out
                .decisions()
                .iter()
                .map(|d| d.as_ref().and_then(Value::as_int).unwrap())
                .collect();
            worst = worst.max((outs[0] - outs[1]).abs());
        }
        assert!(
            worst > 1,
            "one round must be insufficient somewhere (worst {worst})"
        );
    }
}
