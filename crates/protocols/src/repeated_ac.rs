//! Obstruction-free consensus from registers: repeated adopt–commit.
//!
//! Registers cannot solve consensus *wait-free* (the paper's baseline), but
//! they can solve it **obstruction-free**: run adopt–commit instances in a
//! loop, carrying the adopted value into the next instance; decide on
//! commit. From any configuration, a process running alone commits within
//! one full instance (after the first, everyone prefers a single value), so
//! solo runs always terminate — while an adversary alternating two
//! processes can keep the loop adopting forever.
//!
//! This module makes the wait-free / obstruction-free boundary of the
//! model section *observable*: the round budget is finite and exhausting it
//! diverts the process into a [`Sink`](subconsensus_objects::Sink) (an
//! explicit "never returns" in a finite configuration graph), so the model
//! checker reports `Hangs` for the adversarial schedules and termination
//! for all solo extensions.

use subconsensus_sim::{Action, ObjId, Op, ProcCtx, Protocol, ProtocolError, Value};

use crate::adopt_commit::{AdoptCommit, ADOPT, COMMIT};
use crate::util::{field, pc_of, state};

/// Repeated adopt–commit over `max_rounds` instances.
///
/// Requires `2 · max_rounds` [`RegisterArray`](subconsensus_objects::RegisterArray)`(n)`
/// objects laid out contiguously from `base` (instance `i` uses
/// `base + 2i` and `base + 2i + 1`), plus one
/// [`Sink`](subconsensus_objects::Sink) at `sink` for the
/// budget-exhausted path.
#[derive(Clone, Copy, Debug)]
pub struct RepeatedAdoptCommit {
    base: ObjId,
    sink: ObjId,
    n: usize,
    max_rounds: usize,
}

impl RepeatedAdoptCommit {
    /// Creates the protocol.
    ///
    /// # Panics
    ///
    /// Panics if `max_rounds == 0`.
    pub fn new(base: ObjId, sink: ObjId, n: usize, max_rounds: usize) -> Self {
        assert!(max_rounds > 0, "need at least one round");
        RepeatedAdoptCommit {
            base,
            sink,
            n,
            max_rounds,
        }
    }

    /// Returns the number of register arrays required before the sink.
    pub fn register_arrays_needed(max_rounds: usize) -> usize {
        2 * max_rounds
    }

    fn instance(&self, round: usize) -> AdoptCommit {
        AdoptCommit::new(
            self.base.offset(2 * round),
            self.base.offset(2 * round + 1),
            self.n,
        )
    }
}

// Local state: (pc=0, round, pref, inner_local).
impl Protocol for RepeatedAdoptCommit {
    fn start(&self, ctx: &ProcCtx) -> Value {
        let sub = ProcCtx::new(ctx.pid, ctx.nprocs, ctx.input.clone());
        let inner = self.instance(0).start(&sub);
        state(0, [Value::from(0usize), ctx.input.clone(), inner])
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        let _ = pc_of(local)?;
        let round = field(local, 0)?
            .as_index()
            .ok_or_else(|| ProtocolError::new("repeated-ac: bad round"))?;
        let pref = field(local, 1)?.clone();
        let inner_local = field(local, 2)?.clone();
        let sub = ProcCtx::new(ctx.pid, ctx.nprocs, pref.clone());
        match self.instance(round).step(&sub, &inner_local, resp)? {
            Action::Invoke { local: il, obj, op } => Ok(Action::Invoke {
                local: state(0, [Value::from(round), pref, il]),
                obj,
                op,
            }),
            Action::Decide(d) => {
                let verdict = d.index(0).and_then(Value::as_sym);
                let v = d
                    .index(1)
                    .cloned()
                    .ok_or_else(|| ProtocolError::new("repeated-ac: bad AC decision"))?;
                match verdict {
                    Some(COMMIT) => Ok(Action::Decide(v)),
                    Some(ADOPT) => {
                        let next = round + 1;
                        if next >= self.max_rounds {
                            // Budget exhausted: model divergence explicitly.
                            return Ok(Action::invoke(
                                state(0, [Value::from(round), v, Value::Nil]),
                                self.sink,
                                Op::new("diverge"),
                            ));
                        }
                        let sub = ProcCtx::new(ctx.pid, ctx.nprocs, v.clone());
                        let inner = self.instance(next).start(&sub);
                        // The fresh instance's first step is an Invoke.
                        self.step(ctx, &state(0, [Value::from(next), v, inner]), None)
                    }
                    _ => Err(ProtocolError::new("repeated-ac: unknown AC verdict")),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use subconsensus_modelcheck::{check_wait_freedom, ExploreOptions, StateGraph, WaitFreedom};
    use subconsensus_objects::{RegisterArray, Sink};
    use subconsensus_sim::{
        run_from, FirstOutcome, Pid, PriorityScheduler, RunOptions, SystemBuilder, SystemSpec,
    };
    use subconsensus_tasks::{check_exhaustive, SetConsensusTask};

    fn system(inputs: &[i64], max_rounds: usize) -> SystemSpec {
        let n = inputs.len();
        let mut b = SystemBuilder::new();
        let base = b.add_object_array(
            RepeatedAdoptCommit::register_arrays_needed(max_rounds),
            |_| Box::new(RegisterArray::new(n)) as Box<dyn subconsensus_sim::ObjectSpec>,
        );
        let sink = b.add_object(Sink::new());
        let p: Arc<dyn Protocol> = Arc::new(RepeatedAdoptCommit::new(base, sink, n, max_rounds));
        b.add_processes(p, inputs.iter().map(|&v| Value::Int(v)));
        b.build()
    }

    #[test]
    fn solo_process_commits_in_round_zero() {
        let spec = system(&[9], 1);
        let report = check_exhaustive(
            &spec,
            &SetConsensusTask::consensus(),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(report.solved(), "{report:?}");
    }

    #[test]
    fn identical_inputs_commit_in_round_zero() {
        let spec = system(&[4, 4], 1);
        let report = check_exhaustive(
            &spec,
            &SetConsensusTask::consensus(),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(report.solved(), "{report:?}");
    }

    #[test]
    fn agreement_and_validity_hold_but_wait_freedom_fails() {
        // Two processes, different inputs, budget 2: everything that decides
        // agrees (safety exhaustively), but some adversarial schedule
        // exhausts the budget (the obstruction-freedom boundary).
        let spec = system(&[1, 2], 2);
        let graph = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        assert!(!graph.is_truncated());
        assert_eq!(check_wait_freedom(&graph), WaitFreedom::Hangs);
        let report = check_exhaustive(
            &spec,
            &SetConsensusTask::consensus(),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(
            report.safe(),
            "agreement must hold wherever decisions exist: {report:?}"
        );
        assert!(!report.solved());
    }

    #[test]
    fn obstruction_freedom_solo_extensions_from_every_reachable_config() {
        // From every reachable configuration in which a process has not yet
        // diverged, letting that process run alone terminates it — the
        // defining property of obstruction-freedom.
        let spec = system(&[1, 2], 3);
        let graph = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        assert!(!graph.is_truncated());
        // Sample every 7th configuration to keep runtime moderate.
        for idx in (0..graph.len()).step_by(7) {
            let config = graph.config(idx).clone();
            for pid in config.enabled() {
                let mut solo = PriorityScheduler::new(vec![pid]);
                // Run until the chosen process decides or hangs; others get
                // scheduled only if the solo process becomes disabled.
                let out = run_from(
                    &spec,
                    config.clone(),
                    &mut solo,
                    &mut FirstOutcome,
                    &RunOptions::with_max_steps(10_000),
                )
                .unwrap();
                let st = &out.config.proc_state(pid).status;
                assert!(
                    !st.is_enabled(),
                    "config {idx}: {pid} still running after a solo extension"
                );
            }
        }
        // And at least one process pair exists to make the test meaningful.
        assert!(graph.len() > 100);
        let _ = Pid::new(0);
    }
}
