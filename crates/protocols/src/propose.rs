//! One-shot propose/decide protocols over agreement objects.
//!
//! These are the workhorse protocols of the paper's positive results: a
//! process proposes its input to an agreement object (consensus,
//! set-consensus, or the deterministic grouped family of `subconsensus-core`)
//! and decides what the object answers — falling back to its own input if
//! the object answers `⊥`.

use subconsensus_sim::{Action, ObjId, Op, ProcCtx, Protocol, ProtocolError, Value};

use crate::util::{need_resp, pc_of, state};

/// Propose the input to a fixed object; decide the response (or the input
/// itself if the response is `⊥`).
///
/// Instantiated over:
///
/// * a [`Consensus`](subconsensus_objects::Consensus) object → solves
///   consensus;
/// * an `(n, k)`-[`SetConsensus`](subconsensus_objects::SetConsensus) object
///   → solves `k`-set consensus for `n` processes;
/// * a `GroupedObject` from `subconsensus-core` → the paper's Algorithm-2
///   shape, solving `(k+1)`-set consensus deterministically.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use subconsensus_objects::Consensus;
/// use subconsensus_protocols::ProposeDecide;
/// use subconsensus_sim::{
///     run, FirstOutcome, Protocol, RoundRobin, RunOptions, SystemBuilder, Value,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SystemBuilder::new();
/// let obj = b.add_object(Consensus::unbounded());
/// let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
/// b.add_processes(p, [Value::Int(10), Value::Int(20)]);
/// let out = run(&b.build(), &mut RoundRobin::new(), &mut FirstOutcome, &RunOptions::default())?;
/// assert_eq!(out.decided_values().len(), 1, "consensus: one value decided");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ProposeDecide {
    obj: ObjId,
}

impl ProposeDecide {
    /// Creates the protocol targeting `obj`.
    pub fn new(obj: ObjId) -> Self {
        ProposeDecide { obj }
    }
}

impl Protocol for ProposeDecide {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        state(0, [])
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        match pc_of(local)? {
            0 => Ok(Action::invoke(
                state(1, []),
                self.obj,
                Op::unary("propose", ctx.input.clone()),
            )),
            1 => {
                let r = need_resp(resp)?;
                let decision = if r.is_nil() {
                    ctx.input.clone()
                } else {
                    r.clone()
                };
                Ok(Action::Decide(decision))
            }
            pc => Err(ProtocolError::new(format!("propose-decide: bad pc {pc}"))),
        }
    }

    // Reads only `ctx.input`, never `ctx.pid`: equal-input proposers are
    // interchangeable, which lets the model checker quotient their orbits.
    fn pid_symmetric(&self) -> bool {
        true
    }

    // Every invocation in every execution targets `self.obj`.
    fn obj_footprint(&self, _ctx: &ProcCtx) -> Option<Vec<ObjId>> {
        Some(vec![self.obj])
    }
}

/// Partition propose: process `i` proposes to object `base + ⌊i/group⌋`.
///
/// This is the positive direction of the set-consensus characterization
/// ("Theorem 41"): partition `N` processes into blocks of at most `group`,
/// give each block one agreement object, and the number of distinct
/// decisions is at most (blocks) × (per-object agreement bound). It is also
/// the shape of the paper lineage's Algorithm 6 (`m`-set consensus for `n`
/// processes from smaller objects).
///
/// Because `step` reads `ctx.pid` (to pick the block object), this protocol
/// is *not* [`pid_symmetric`](Protocol::pid_symmetric) and gets no automatic
/// symmetry groups. Processes within one block with equal inputs *are*
/// interchangeable, though — declare that with
/// `SystemBuilder::set_symmetry_groups` when exploring partition systems.
#[derive(Clone, Copy, Debug)]
pub struct PartitionPropose {
    base: ObjId,
    group: usize,
}

impl PartitionPropose {
    /// Creates the protocol over a contiguous array of agreement objects
    /// starting at `base`, assigning `group` consecutive pids per object.
    ///
    /// # Panics
    ///
    /// Panics if `group` is 0.
    pub fn new(base: ObjId, group: usize) -> Self {
        assert!(group > 0, "group size must be positive");
        PartitionPropose { base, group }
    }

    /// Returns the object process `pid_index` proposes to.
    pub fn target(&self, pid_index: usize) -> ObjId {
        self.base.offset(pid_index / self.group)
    }
}

impl Protocol for PartitionPropose {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        state(0, [])
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        match pc_of(local)? {
            0 => Ok(Action::invoke(
                state(1, []),
                self.target(ctx.pid.index()),
                Op::unary("propose", ctx.input.clone()),
            )),
            1 => {
                let r = need_resp(resp)?;
                let decision = if r.is_nil() {
                    ctx.input.clone()
                } else {
                    r.clone()
                };
                Ok(Action::Decide(decision))
            }
            pc => Err(ProtocolError::new(format!(
                "partition-propose: bad pc {pc}"
            ))),
        }
    }

    // Process `i` only ever touches its block object: disjoint blocks are
    // statically independent, which is what lets partial-order reduction
    // serialize the blocks instead of interleaving them.
    fn obj_footprint(&self, ctx: &ProcCtx) -> Option<Vec<ObjId>> {
        Some(vec![self.target(ctx.pid.index())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use subconsensus_modelcheck::{
        check_wait_freedom, max_distinct_decisions, ExploreOptions, StateGraph, WaitFreedom,
    };
    use subconsensus_objects::{Consensus, SetConsensus};
    use subconsensus_sim::{SystemBuilder, SystemSpec};

    fn consensus_race(nprocs: usize) -> SystemSpec {
        let mut b = SystemBuilder::new();
        let obj = b.add_object(Consensus::unbounded());
        let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
        b.add_processes(p, (0..nprocs).map(|i| Value::Int(i as i64 + 1)));
        b.build()
    }

    #[test]
    fn consensus_race_agrees_under_all_schedules() {
        for n in 1..=3 {
            let g = StateGraph::explore(&consensus_race(n), &ExploreOptions::default()).unwrap();
            assert_eq!(check_wait_freedom(&g), WaitFreedom::WaitFree);
            assert_eq!(max_distinct_decisions(&g), 1, "n = {n}");
        }
    }

    #[test]
    fn set_consensus_object_bounds_agreement_exactly() {
        // 3 processes over a (3,2)-set-consensus object: at most 2 distinct
        // decisions over ALL schedules and ALL nondeterministic outcomes —
        // and the bound is tight.
        let mut b = SystemBuilder::new();
        let obj = b.add_object(SetConsensus::new(3, 2).unwrap());
        let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
        b.add_processes(p, [Value::Int(1), Value::Int(2), Value::Int(3)]);
        let g = StateGraph::explore(&b.build(), &ExploreOptions::default()).unwrap();
        assert_eq!(check_wait_freedom(&g), WaitFreedom::WaitFree);
        assert_eq!(max_distinct_decisions(&g), 2);
    }

    #[test]
    fn exhausted_bounded_consensus_hangs_fourth_process() {
        // 4 processes over a 3-bounded consensus object: some schedule hangs
        // the last proposer, so the protocol is not wait-free for 4.
        let mut b = SystemBuilder::new();
        let obj = b.add_object(Consensus::bounded(3));
        let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
        b.add_processes(p, (0..4).map(|i| Value::Int(i as i64 + 1)));
        let g = StateGraph::explore(&b.build(), &ExploreOptions::default()).unwrap();
        assert_eq!(check_wait_freedom(&g), WaitFreedom::Hangs);
    }

    #[test]
    fn partition_respects_group_boundaries() {
        let p = PartitionPropose::new(ObjId::new(3), 2);
        assert_eq!(p.target(0), ObjId::new(3));
        assert_eq!(p.target(1), ObjId::new(3));
        assert_eq!(p.target(2), ObjId::new(4));
        assert_eq!(p.target(5), ObjId::new(5));
    }

    #[test]
    #[should_panic(expected = "group size must be positive")]
    fn zero_group_panics() {
        let _ = PartitionPropose::new(ObjId::new(0), 0);
    }

    #[test]
    fn partition_consensus_gives_one_value_per_block() {
        // 4 processes, 2 consensus objects, blocks of 2: exactly 2 distinct
        // decisions in the worst case, 1 per block at least... exhaustive.
        let mut b = SystemBuilder::new();
        let base = b.add_object_array(2, |_| Box::new(Consensus::unbounded()));
        let p: Arc<dyn Protocol> = Arc::new(PartitionPropose::new(base, 2));
        b.add_processes(p, (0..4).map(|i| Value::Int(i as i64 + 1)));
        let g = StateGraph::explore(&b.build(), &ExploreOptions::default()).unwrap();
        assert_eq!(check_wait_freedom(&g), WaitFreedom::WaitFree);
        let max = max_distinct_decisions(&g);
        assert_eq!(max, 2, "one value per block; blocks are independent");
    }
}
