//! A minimal, dependency-free stand-in for the criterion benchmark API.
//!
//! The container this repo builds in has no network access to crates.io, so
//! the benches use this std-only harness exposing the small slice of
//! criterion's surface they need: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is wall-clock: a short warm-up, then
//! `sample_size` samples of an adaptively sized iteration batch, reporting
//! the median and min/max nanoseconds per iteration.

use std::fmt;
use std::time::{Duration, Instant};

/// Target measuring time per sample batch (public so bench reports can
/// record the harness configuration in their `meta` blocks).
pub const SAMPLE_BUDGET: Duration = Duration::from_millis(25);
/// Warm-up budget per benchmark.
pub const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Returns `true` when `BENCH_SMOKE` is set (truthy — see
/// [`env_flag`](subconsensus_sim::env_flag), the shared parser for all
/// diagnostic env vars): every benchmark runs its routine twice with no
/// warm-up and a single iteration per sample. The numbers are meaningless,
/// but every bench code path is exercised — `scripts/check.sh` uses this
/// to fail the gate on bench bit-rot instead of discovering it at bench
/// time.
pub fn smoke_mode() -> bool {
    subconsensus_sim::env_flag("BENCH_SMOKE")
}

/// One timing measurement, exposed for machine-readable reporting.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Full benchmark label (`group/function/param`).
    pub label: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
    /// Iterations per sample batch.
    pub iters_per_sample: u64,
    /// Number of sample batches taken.
    pub samples: usize,
}

/// Top-level driver collecting measurements; analogue of
/// `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        self.run_one(name, 20, f);
    }

    /// All measurements collected so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    fn run_one(&mut self, label: String, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size,
            measurement: None,
        };
        f(&mut b);
        let mut m = b
            .measurement
            .expect("benchmark closure must call Bencher::iter");
        m.label = label;
        println!(
            "{:<56} median {:>12} (min {}, max {}) x{} iters/sample",
            m.label,
            format_ns(m.median_ns),
            format_ns(m.min_ns),
            format_ns(m.max_ns),
            m.iters_per_sample,
        );
        self.measurements.push(m);
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` with `input`, labeled by `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        self.criterion.run_one(label, sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function(
        &mut self,
        name: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{name}", self.name);
        let sample_size = self.sample_size;
        self.criterion.run_one(label, sample_size, f);
        self
    }

    /// Ends the group (criterion-compat no-op).
    pub fn finish(self) {}
}

/// A two-part benchmark label: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates a label from a function name and a parameter display.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// The per-benchmark timer handed to the closure; analogue of
/// `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement: Option<Measurement>,
}

impl Bencher {
    /// Times `routine`, running it in adaptively sized batches.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        self.iter_with_setup(|| (), |()| routine());
    }

    /// Times `routine` over fresh values from `setup`; only the routine is
    /// timed (per-iteration, so setup cost never pollutes the numbers).
    pub fn iter_with_setup<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        if smoke_mode() {
            // Exercise the routine, skip the measurement protocol.
            let mut samples_ns = Vec::with_capacity(2);
            for _ in 0..2 {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(std::hint::black_box(input)));
                samples_ns.push(t.elapsed().as_nanos() as f64);
            }
            samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
            self.measurement = Some(Measurement {
                label: String::new(),
                median_ns: samples_ns[1],
                min_ns: samples_ns[0],
                max_ns: samples_ns[1],
                iters_per_sample: 1,
                samples: 2,
            });
            return;
        }
        // Warm-up and batch sizing: run until the warm-up budget is spent,
        // tracking the per-iteration cost to size the sample batches.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        let mut spent = Duration::ZERO;
        while spent < WARMUP_BUDGET {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(std::hint::black_box(input)));
            spent += t.elapsed();
            warmup_iters += 1;
            if warmup_start.elapsed() > 4 * WARMUP_BUDGET {
                break; // setup dominates; stop early
            }
        }
        let per_iter = spent.checked_div(warmup_iters as u32).unwrap_or_default();
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (SAMPLE_BUDGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64
        };

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut batch = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(std::hint::black_box(input)));
                batch += t.elapsed();
            }
            samples_ns.push(batch.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median_ns = samples_ns[samples_ns.len() / 2];
        self.measurement = Some(Measurement {
            label: String::new(),
            median_ns,
            min_ns: samples_ns[0],
            max_ns: *samples_ns.last().expect("at least one sample"),
            iters_per_sample,
            samples: samples_ns.len(),
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_routine() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("add", 2), &2u64, |b, &x| b.iter(|| x + 1));
        g.finish();
        c.bench_function("lone", |b| b.iter_with_setup(|| 5u64, |x| x * 2));
        assert_eq!(c.measurements().len(), 2);
        assert_eq!(c.measurements()[0].label, "g/add/2");
        let expected_samples = if smoke_mode() { 2 } else { 3 };
        assert_eq!(c.measurements()[0].samples, expected_samples);
        assert!(c.measurements()[0].median_ns >= 0.0);
        assert_eq!(c.measurements()[1].label, "lone");
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("f", "n2_k1").to_string(), "f/n2_k1");
    }
}
