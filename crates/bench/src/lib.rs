//! Shared fixtures for the experiment benchmarks (`benches/e1 … e9`).
//!
//! Each bench regenerates one table of `EXPERIMENTS.md` (printed once at
//! startup) and then measures the kernels behind it with the in-tree
//! [`harness`] (a std-only stand-in for the criterion API).

pub mod harness;

use std::sync::Arc;

use subconsensus_core::GroupedObject;
use subconsensus_objects::{Consensus, Queue, RegisterArray, SetConsensus};
use subconsensus_protocols::{
    tournament_nodes, GridRenaming, PartitionPropose, ProposeDecide, Tournament,
    UniversalConstruction,
};
use subconsensus_sim::{
    BaseObjects, Implementation, ObjectSpec, Op, Pid, Protocol, SymmetryGroups, SystemBuilder,
    SystemSpec, Value,
};

/// `procs` processes proposing distinct values through one
/// `GroupedObject::for_level(n, k)`.
///
/// Distinct inputs mean the automatic symmetry groups are trivial; use
/// [`grouped_system_sym`] for the orbit-quotient fixtures.
pub fn grouped_system(n: usize, k: usize, procs: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let obj = b.add_object(GroupedObject::for_level(n, k));
    let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
    b.add_processes(p, (0..procs).map(|i| Value::Int(i as i64 + 1)));
    b.build()
}

/// `procs` processes proposing one shared value through one
/// `GroupedObject::for_level(n, k)` — the symmetric sibling of
/// [`grouped_system`]: every process runs the same `ProposeDecide` instance
/// with the same input, so `SystemBuilder::build` groups all of them into a
/// single symmetry class and symmetry-enabled exploration visits one config
/// per orbit.
pub fn grouped_system_sym(n: usize, k: usize, procs: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let obj = b.add_object(GroupedObject::for_level(n, k));
    let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
    b.add_processes(p, (0..procs).map(|_| Value::Int(1)));
    b.build()
}

/// `procs` processes over `⌈procs/m⌉` copies of an `(m, j)` agreement
/// object ((m,1) = bounded consensus).
///
/// `PartitionPropose` reads `ctx.pid`, so the automatic symmetry groups are
/// trivial here; [`partition_system_sym`] declares the per-block symmetry
/// explicitly.
pub fn partition_system(procs: usize, m: usize, j: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let blocks = procs.div_ceil(m);
    let base = b.add_object_array(blocks, |_| {
        if j == 1 {
            Box::new(Consensus::bounded(m)) as Box<dyn ObjectSpec>
        } else {
            Box::new(SetConsensus::new(m, j).expect("0 < j < m")) as Box<dyn ObjectSpec>
        }
    });
    let p: Arc<dyn Protocol> = Arc::new(PartitionPropose::new(base, m));
    b.add_processes(p, (0..procs).map(|i| Value::Int(i as i64 + 1)));
    b.build()
}

/// The symmetric sibling of [`partition_system`]: every process of a block
/// gets the block index as input, and the per-block symmetry — invisible to
/// the automatic rule because `PartitionPropose` reads `ctx.pid` to pick
/// its block object — is declared with an explicit
/// `SystemBuilder::set_symmetry_groups` override. Processes of one block
/// are interchangeable: they propose the same value to the same object, and
/// no object state embeds a pid.
pub fn partition_system_sym(procs: usize, m: usize, j: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let blocks = procs.div_ceil(m);
    let base = b.add_object_array(blocks, |_| {
        if j == 1 {
            Box::new(Consensus::bounded(m)) as Box<dyn ObjectSpec>
        } else {
            Box::new(SetConsensus::new(m, j).expect("0 < j < m")) as Box<dyn ObjectSpec>
        }
    });
    let p: Arc<dyn Protocol> = Arc::new(PartitionPropose::new(base, m));
    b.add_processes(p, (0..procs).map(|i| Value::Int((i / m) as i64 + 1)));
    b.set_symmetry_groups(SymmetryGroups::new((0..blocks).map(|blk| {
        (0..procs)
            .filter(move |i| i / m == blk)
            .map(Pid::new)
            .collect::<Vec<_>>()
    })));
    b.build()
}

/// A tournament test-and-set system for `n` processes.
pub fn tournament_system(n: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let base = b.add_object_array(tournament_nodes(n), |_| {
        Box::new(Consensus::bounded(2)) as Box<dyn ObjectSpec>
    });
    let p: Arc<dyn Protocol> = Arc::new(Tournament::new(base, n));
    b.add_processes(p, (0..n).map(Value::from));
    b.build()
}

/// A grid-renaming system for `k` participants with large original names.
pub fn renaming_system(k: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let regs = b.add_object(RegisterArray::new(GridRenaming::registers_needed(k)));
    let p: Arc<dyn Protocol> = Arc::new(GridRenaming::new(regs, k));
    b.add_processes(p, (0..k).map(|i| Value::Int(1_000 + 37 * i as i64)));
    b.build()
}

/// A universal-construction queue over `nprocs`-bounded consensus slots,
/// plus a simple enq/deq workload per process.
pub fn universal_queue(
    nprocs: usize,
    nslots: usize,
    ops_per_proc: usize,
) -> (BaseObjects, Arc<dyn Implementation>, Vec<Vec<Op>>) {
    let mut bank = BaseObjects::new();
    let announce = bank.add(RegisterArray::new(nprocs));
    let slots = bank.add_array(nslots, |_| {
        Box::new(Consensus::bounded(nprocs)) as Box<dyn ObjectSpec>
    });
    let inner: Arc<dyn ObjectSpec> = Arc::new(Queue::new());
    let im: Arc<dyn Implementation> = Arc::new(UniversalConstruction::new(
        inner, announce, slots, nslots, nprocs,
    ));
    let workload = (0..nprocs)
        .map(|p| {
            (0..ops_per_proc)
                .map(|i| {
                    if i % 2 == 0 {
                        Op::unary("enq", Value::Int((p * 100 + i) as i64))
                    } else {
                        Op::new("deq")
                    }
                })
                .collect()
        })
        .collect();
    (bank, im, workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subconsensus_sim::{run, FirstOutcome, RoundRobin, RunOptions};

    #[test]
    fn fixtures_build_and_run() {
        for spec in [
            grouped_system(2, 1, 4),
            grouped_system_sym(2, 1, 4),
            partition_system(6, 3, 2),
            partition_system_sym(6, 3, 2),
            tournament_system(4),
            renaming_system(3),
        ] {
            let out = run(
                &spec,
                &mut RoundRobin::new(),
                &mut subconsensus_sim::RandomScheduler::seeded(1),
                &RunOptions::default(),
            )
            .unwrap();
            assert!(out.reached_final);
        }
        // The symmetric fixtures carry the symmetry groups they promise.
        assert_eq!(
            grouped_system_sym(2, 1, 3).symmetry_groups().groups(),
            &[vec![Pid::new(0), Pid::new(1), Pid::new(2)]]
        );
        assert_eq!(
            partition_system_sym(4, 2, 1).symmetry_groups().groups(),
            &[
                vec![Pid::new(0), Pid::new(1)],
                vec![Pid::new(2), Pid::new(3)]
            ]
        );
        assert!(grouped_system(2, 1, 3).symmetry_groups().is_trivial());
        assert!(partition_system(4, 2, 1).symmetry_groups().is_trivial());

        let (bank, im, workload) = universal_queue(2, 16, 4);
        let out = subconsensus_sim::run_concurrent(
            &bank,
            &im,
            workload,
            &mut RoundRobin::new(),
            &mut FirstOutcome,
            1_000_000,
        )
        .unwrap();
        assert!(out.reached_final);
    }
}
