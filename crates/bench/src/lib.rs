//! Shared fixtures for the experiment benchmarks (`benches/e1 … e9`).
//!
//! Each bench regenerates one table of `EXPERIMENTS.md` (printed once at
//! startup) and then measures the kernels behind it with the in-tree
//! [`harness`] (a std-only stand-in for the criterion API).

pub mod harness;

use std::sync::Arc;

use subconsensus_core::GroupedObject;
use subconsensus_objects::{Consensus, Queue, RegisterArray, SetConsensus};
use subconsensus_protocols::{
    tournament_nodes, GridRenaming, PartitionPropose, ProposeDecide, Tournament,
    UniversalConstruction,
};
use subconsensus_sim::{
    Action, BaseObjects, Implementation, ObjId, ObjectSpec, Op, Pid, ProcCtx, Protocol,
    ProtocolError, SymmetryGroups, SystemBuilder, SystemSpec, Value,
};

/// `procs` processes proposing distinct values through one
/// `GroupedObject::for_level(n, k)`.
///
/// Distinct inputs mean the automatic symmetry groups are trivial; use
/// [`grouped_system_sym`] for the orbit-quotient fixtures.
pub fn grouped_system(n: usize, k: usize, procs: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let obj = b.add_object(GroupedObject::for_level(n, k));
    let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
    b.add_processes(p, (0..procs).map(|i| Value::Int(i as i64 + 1)));
    b.build()
}

/// `procs` processes proposing one shared value through one
/// `GroupedObject::for_level(n, k)` — the symmetric sibling of
/// [`grouped_system`]: every process runs the same `ProposeDecide` instance
/// with the same input, so `SystemBuilder::build` groups all of them into a
/// single symmetry class and symmetry-enabled exploration visits one config
/// per orbit.
pub fn grouped_system_sym(n: usize, k: usize, procs: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let obj = b.add_object(GroupedObject::for_level(n, k));
    let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
    b.add_processes(p, (0..procs).map(|_| Value::Int(1)));
    b.build()
}

/// `procs` processes over `⌈procs/m⌉` copies of an `(m, j)` agreement
/// object ((m,1) = bounded consensus).
///
/// `PartitionPropose` reads `ctx.pid`, so the automatic symmetry groups are
/// trivial here; [`partition_system_sym`] declares the per-block symmetry
/// explicitly.
pub fn partition_system(procs: usize, m: usize, j: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let blocks = procs.div_ceil(m);
    let base = b.add_object_array(blocks, |_| {
        if j == 1 {
            Box::new(Consensus::bounded(m)) as Box<dyn ObjectSpec>
        } else {
            Box::new(SetConsensus::new(m, j).expect("0 < j < m")) as Box<dyn ObjectSpec>
        }
    });
    let p: Arc<dyn Protocol> = Arc::new(PartitionPropose::new(base, m));
    b.add_processes(p, (0..procs).map(|i| Value::Int(i as i64 + 1)));
    b.build()
}

/// The symmetric sibling of [`partition_system`]: every process of a block
/// gets the block index as input, and the per-block symmetry — invisible to
/// the automatic rule because `PartitionPropose` reads `ctx.pid` to pick
/// its block object — is declared with an explicit
/// `SystemBuilder::set_symmetry_groups` override. Processes of one block
/// are interchangeable: they propose the same value to the same object, and
/// no object state embeds a pid.
pub fn partition_system_sym(procs: usize, m: usize, j: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let blocks = procs.div_ceil(m);
    let base = b.add_object_array(blocks, |_| {
        if j == 1 {
            Box::new(Consensus::bounded(m)) as Box<dyn ObjectSpec>
        } else {
            Box::new(SetConsensus::new(m, j).expect("0 < j < m")) as Box<dyn ObjectSpec>
        }
    });
    let p: Arc<dyn Protocol> = Arc::new(PartitionPropose::new(base, m));
    b.add_processes(p, (0..procs).map(|i| Value::Int((i / m) as i64 + 1)));
    b.set_symmetry_groups(SymmetryGroups::new((0..blocks).map(|blk| {
        (0..procs)
            .filter(move |i| i / m == blk)
            .map(Pid::new)
            .collect::<Vec<_>>()
    })));
    b.build()
}

/// An *over-capacity* partitioned fixture: `blocks` blocks of `group`
/// equal-input processes, each block sharing one `Consensus::bounded(m)`
/// with `m < group`, so every schedule hangs `group - m` processes per
/// block.
///
/// This exercises the *hung-terminal* refutation of a streaming
/// wait-freedom check ([`ExploreGoal::Verdict`]): every terminal contains
/// hung processes, so the verdict is refuted at the first terminal level.
/// Note the exit saves no configurations here — exactly `m` processes
/// decide (2 steps each) and `group - m` hang (1 step each) in *every*
/// schedule, so all terminals sit on the same BFS level and the early exit
/// lands on the last level anyway. The gate fixtures
/// ([`grouped_gate_sym`], [`partition_gate_sym`]) are the ones whose
/// refutation is confirmed early; this one pins down the hang path and the
/// level-granular exit's determinism. Per-block symmetry is declared
/// explicitly, as in [`partition_system_sym`].
///
/// [`ExploreGoal::Verdict`]: subconsensus_modelcheck::ExploreGoal
///
/// # Panics
///
/// Panics if `m == 0` or `m >= group`.
pub fn partition_overflow_sym(blocks: usize, group: usize, m: usize) -> SystemSpec {
    assert!(m > 0, "object capacity must be positive");
    assert!(
        m < group,
        "overflow fixture needs more proposers than capacity"
    );
    let mut b = SystemBuilder::new();
    let procs = blocks * group;
    let base = b.add_object_array(blocks, |_| {
        Box::new(Consensus::bounded(m)) as Box<dyn ObjectSpec>
    });
    let p: Arc<dyn Protocol> = Arc::new(PartitionPropose::new(base, group));
    b.add_processes(p, (0..procs).map(|i| Value::Int((i / group) as i64 + 1)));
    b.set_symmetry_groups(SymmetryGroups::new((0..blocks).map(|blk| {
        (0..procs)
            .filter(move |i| i / group == blk)
            .map(Pid::new)
            .collect::<Vec<_>>()
    })));
    b.build()
}

/// The writer-and-spinners "gate" protocol behind [`grouped_gate_sym`] and
/// [`partition_gate_sym`]: the first process of each `group`-sized block
/// proposes to the block's agreement object and then raises the block's
/// flag register; every other process of the block spin-reads the flag and
/// decides once it is up.
///
/// The spin makes the protocol non-blocking but *not* wait-free — a
/// schedule that never runs the writer loops forever — and the spin cycle
/// closes within the first few BFS levels, so a streaming wait-freedom
/// check ([`ExploreGoal::Verdict`]) refutes and exits while the full
/// interleaving graph is still growing. The refutation survives every
/// reduction: spinners and writer share the flag's footprint, so
/// partial-order reduction cannot serialize the spin away, and the
/// symmetry quotient keeps one representative of the looping orbit.
///
/// [`ExploreGoal::Verdict`]: subconsensus_modelcheck::ExploreGoal
#[derive(Clone, Copy, Debug)]
struct GateSpin {
    /// First block's agreement object (block `b` uses `objs + b`).
    objs: ObjId,
    /// First block's one-cell flag register (block `b` uses `flags + b`).
    flags: ObjId,
    /// Processes per block; pid `b * group` is block `b`'s writer.
    group: usize,
}

impl GateSpin {
    fn block(&self, pid: Pid) -> usize {
        pid.index() / self.group
    }

    fn is_writer(&self, pid: Pid) -> bool {
        pid.index() % self.group == 0
    }
}

impl Protocol for GateSpin {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        Value::Int(0)
    }

    fn step(
        &self,
        ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        let blk = self.block(ctx.pid);
        let pc = local.as_int().unwrap_or(-1);
        if self.is_writer(ctx.pid) {
            match pc {
                0 => Ok(Action::invoke(
                    Value::Int(1),
                    self.objs.offset(blk),
                    Op::unary("propose", ctx.input.clone()),
                )),
                1 => Ok(Action::invoke(
                    Value::Int(2),
                    self.flags.offset(blk),
                    Op::binary("write", Value::Int(0), Value::Int(1)),
                )),
                2 => Ok(Action::Decide(ctx.input.clone())),
                pc => Err(ProtocolError::new(format!("gate-spin writer: bad pc {pc}"))),
            }
        } else {
            match pc {
                0 => Ok(Action::invoke(
                    Value::Int(1),
                    self.flags.offset(blk),
                    Op::unary("read", Value::Int(0)),
                )),
                1 => {
                    if resp.is_some_and(|r| r.as_int() == Some(1)) {
                        Ok(Action::Decide(ctx.input.clone()))
                    } else {
                        // Flag still down: poll again from the same local
                        // state — the successor configuration equals this
                        // one, which is the spin cycle the verdict engine
                        // refutes.
                        Ok(Action::invoke(
                            Value::Int(1),
                            self.flags.offset(blk),
                            Op::unary("read", Value::Int(0)),
                        ))
                    }
                }
                pc => Err(ProtocolError::new(format!(
                    "gate-spin spinner: bad pc {pc}"
                ))),
            }
        }
    }

    // Every process only ever touches its own block's objects, so disjoint
    // blocks stay statically independent (POR serializes across blocks);
    // within a block the writer and the spinners share the flag, which is
    // what keeps the spin cycle in the reduced graph.
    fn obj_footprint(&self, ctx: &ProcCtx) -> Option<Vec<ObjId>> {
        let blk = self.block(ctx.pid);
        if self.is_writer(ctx.pid) {
            Some(vec![self.objs.offset(blk), self.flags.offset(blk)])
        } else {
            Some(vec![self.flags.offset(blk)])
        }
    }
}

/// A one-block [`GateSpin`] gate over a `GroupedObject::for_level(n, k)`:
/// pid 0 proposes and raises the flag, the `procs - 1` equal-input
/// spinners poll it. The spinners form one explicit symmetry group (the
/// protocol reads `ctx.pid` to pick its role, so the automatic rule sees
/// nothing).
///
/// This is the p10 verdict-goal bench fixture (`grouped_gate_sym(2, 1,
/// 10)`): the full graph enumerates every writer/spinner interleaving
/// while a streaming wait-freedom verdict exits at the first confirmed
/// spin cycle, a few levels in.
///
/// # Panics
///
/// Panics if `procs < 2` (a gate needs a writer and at least one spinner).
pub fn grouped_gate_sym(n: usize, k: usize, procs: usize) -> SystemSpec {
    assert!(procs >= 2, "a gate needs a writer and at least one spinner");
    let mut b = SystemBuilder::new();
    let objs = b.add_object(GroupedObject::for_level(n, k));
    let flags = b.add_object(RegisterArray::new(1));
    let p: Arc<dyn Protocol> = Arc::new(GateSpin {
        objs,
        flags,
        group: procs,
    });
    b.add_processes(p, (0..procs).map(|_| Value::Int(1)));
    b.set_symmetry_groups(SymmetryGroups::new([(1..procs)
        .map(Pid::new)
        .collect::<Vec<_>>()]));
    b.build()
}

/// The partitioned sibling of [`grouped_gate_sym`]: `blocks` blocks of
/// `group` processes, each block with its own `Consensus::bounded(m)` and
/// its own flag register, writer and spinners as in [`GateSpin`]. The
/// per-block spinner symmetry is declared explicitly, as in
/// [`partition_system_sym`].
///
/// This is the p12 verdict-goal bench fixture (`partition_gate_sym(2, 6,
/// 2)`).
///
/// # Panics
///
/// Panics if `m == 0` or `group < 2`.
pub fn partition_gate_sym(blocks: usize, group: usize, m: usize) -> SystemSpec {
    assert!(m > 0, "object capacity must be positive");
    assert!(group >= 2, "a gate needs a writer and at least one spinner");
    let mut b = SystemBuilder::new();
    let procs = blocks * group;
    let objs = b.add_object_array(blocks, |_| {
        Box::new(Consensus::bounded(m)) as Box<dyn ObjectSpec>
    });
    let flags = b.add_object_array(blocks, |_| {
        Box::new(RegisterArray::new(1)) as Box<dyn ObjectSpec>
    });
    let p: Arc<dyn Protocol> = Arc::new(GateSpin { objs, flags, group });
    b.add_processes(p, (0..procs).map(|i| Value::Int((i / group) as i64 + 1)));
    b.set_symmetry_groups(SymmetryGroups::new((0..blocks).map(|blk| {
        (blk * group + 1..(blk + 1) * group)
            .map(Pid::new)
            .collect::<Vec<_>>()
    })));
    b.build()
}

/// A tournament test-and-set system for `n` processes.
pub fn tournament_system(n: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let base = b.add_object_array(tournament_nodes(n), |_| {
        Box::new(Consensus::bounded(2)) as Box<dyn ObjectSpec>
    });
    let p: Arc<dyn Protocol> = Arc::new(Tournament::new(base, n));
    b.add_processes(p, (0..n).map(Value::from));
    b.build()
}

/// A grid-renaming system for `k` participants with large original names.
pub fn renaming_system(k: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let regs = b.add_object(RegisterArray::new(GridRenaming::registers_needed(k)));
    let p: Arc<dyn Protocol> = Arc::new(GridRenaming::new(regs, k));
    b.add_processes(p, (0..k).map(|i| Value::Int(1_000 + 37 * i as i64)));
    b.build()
}

/// A universal-construction queue over `nprocs`-bounded consensus slots,
/// plus a simple enq/deq workload per process.
pub fn universal_queue(
    nprocs: usize,
    nslots: usize,
    ops_per_proc: usize,
) -> (BaseObjects, Arc<dyn Implementation>, Vec<Vec<Op>>) {
    let mut bank = BaseObjects::new();
    let announce = bank.add(RegisterArray::new(nprocs));
    let slots = bank.add_array(nslots, |_| {
        Box::new(Consensus::bounded(nprocs)) as Box<dyn ObjectSpec>
    });
    let inner: Arc<dyn ObjectSpec> = Arc::new(Queue::new());
    let im: Arc<dyn Implementation> = Arc::new(UniversalConstruction::new(
        inner, announce, slots, nslots, nprocs,
    ));
    let workload = (0..nprocs)
        .map(|p| {
            (0..ops_per_proc)
                .map(|i| {
                    if i % 2 == 0 {
                        Op::unary("enq", Value::Int((p * 100 + i) as i64))
                    } else {
                        Op::new("deq")
                    }
                })
                .collect()
        })
        .collect();
    (bank, im, workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subconsensus_sim::{run, FirstOutcome, RoundRobin, RunOptions};

    #[test]
    fn fixtures_build_and_run() {
        for spec in [
            grouped_system(2, 1, 4),
            grouped_system_sym(2, 1, 4),
            partition_system(6, 3, 2),
            partition_system_sym(6, 3, 2),
            tournament_system(4),
            renaming_system(3),
        ] {
            let out = run(
                &spec,
                &mut RoundRobin::new(),
                &mut subconsensus_sim::RandomScheduler::seeded(1),
                &RunOptions::default(),
            )
            .unwrap();
            assert!(out.reached_final);
        }
        // The symmetric fixtures carry the symmetry groups they promise.
        assert_eq!(
            grouped_system_sym(2, 1, 3).symmetry_groups().groups(),
            &[vec![Pid::new(0), Pid::new(1), Pid::new(2)]]
        );
        assert_eq!(
            partition_system_sym(4, 2, 1).symmetry_groups().groups(),
            &[
                vec![Pid::new(0), Pid::new(1)],
                vec![Pid::new(2), Pid::new(3)]
            ]
        );
        assert!(grouped_system(2, 1, 3).symmetry_groups().is_trivial());
        assert!(partition_system(4, 2, 1).symmetry_groups().is_trivial());

        let (bank, im, workload) = universal_queue(2, 16, 4);
        let out = subconsensus_sim::run_concurrent(
            &bank,
            &im,
            workload,
            &mut RoundRobin::new(),
            &mut FirstOutcome,
            1_000_000,
        )
        .unwrap();
        assert!(out.reached_final);
    }
}

#[cfg(test)]
mod gate_tests {
    use super::*;
    use subconsensus_modelcheck::{
        check_wait_freedom, ExploreGoal, ExploreOptions, StateGraph, VerdictQuery,
    };

    /// The gate fixtures are the verdict-goal bench workload: their spin
    /// cycle must refute wait-freedom within the first few levels, strictly
    /// before the full graph is done, under every reduction combination.
    #[test]
    fn gate_fixtures_refute_wait_freedom_early() {
        for spec in [grouped_gate_sym(2, 1, 4), partition_gate_sym(2, 3, 2)] {
            for symmetry in [false, true] {
                for por in [false, true] {
                    let base = ExploreOptions::default()
                        .with_symmetry(symmetry)
                        .with_por(por);
                    let full = StateGraph::explore(&spec, &base).unwrap();
                    assert!(!full.is_truncated());
                    assert!(!check_wait_freedom(&full).is_wait_free());
                    let goal = ExploreGoal::Verdict(VerdictQuery::new().require_wait_freedom());
                    let v = StateGraph::explore(&spec, &base.clone().with_goal(goal)).unwrap();
                    let vd = v.verdict().expect("verdict goal yields a verdict");
                    assert_eq!(vd.holds(), Some(false), "sym={symmetry} por={por}");
                    assert!(
                        vd.configs < full.len(),
                        "sym={symmetry} por={por}: verdict explored {} of {}",
                        vd.configs,
                        full.len()
                    );
                }
            }
        }
    }

    /// The overflow fixture refutes through hung terminals instead; all its
    /// terminals share one BFS level, so the refutation is exact but saves
    /// no configurations (see the builder docs).
    #[test]
    fn overflow_fixture_refutes_through_hangs() {
        let spec = partition_overflow_sym(2, 3, 2);
        let goal = ExploreGoal::Verdict(VerdictQuery::new().require_wait_freedom());
        let g = StateGraph::explore(&spec, &ExploreOptions::default().with_goal(goal)).unwrap();
        let vd = g.verdict().unwrap();
        assert_eq!(vd.holds(), Some(false));
        assert!(vd.terminals > 0, "refuted at a terminal, not a cycle");
    }
}
