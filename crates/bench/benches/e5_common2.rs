//! Experiment E5: the Common2 positive side — what 2-consensus builds.
//!
//! Benchmarks tournament test-and-set at growing process counts and the
//! universal-construction queue, with a one-time linearizability
//! verification before timing.

use subconsensus_bench::harness::{BenchmarkId, Criterion};
use subconsensus_bench::{criterion_group, criterion_main};
use subconsensus_bench::{tournament_system, universal_queue};
use subconsensus_objects::Queue;
use subconsensus_sim::{
    check_linearizable, run, run_concurrent, FirstOutcome, RandomScheduler, RunOptions,
};

fn verify_once() {
    // Tournament: single winner across 50 schedules at n = 8.
    let spec = tournament_system(8);
    for seed in 0..50 {
        let mut sched = RandomScheduler::seeded(seed);
        let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).expect("run");
        let winners = out
            .decisions()
            .iter()
            .filter(|d| d.as_ref().and_then(subconsensus_sim::Value::as_int) == Some(0))
            .count();
        assert_eq!(winners, 1, "seed {seed}");
    }
    // Universal queue: linearizable across 25 schedules.
    for seed in 0..25 {
        let (bank, im, workload) = universal_queue(3, 48, 4);
        let mut sched = RandomScheduler::seeded(seed);
        let out = run_concurrent(
            &bank,
            &im,
            workload,
            &mut sched,
            &mut FirstOutcome,
            1_000_000,
        )
        .expect("run");
        assert!(
            check_linearizable(&out.history, &Queue::new())
                .expect("check")
                .is_some(),
            "seed {seed}"
        );
    }
    println!("\nE5 — verified: single-winner tournament (n=8), linearizable universal queue\n");
}

fn bench(c: &mut Criterion) {
    verify_once();
    let mut g = c.benchmark_group("e5_tournament");
    for n in [2usize, 4, 8, 16] {
        let spec = tournament_system(n);
        g.bench_with_input(BenchmarkId::new("tas", n), &spec, |b, spec| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sched = RandomScheduler::seeded(seed);
                run(spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).expect("run")
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e5_universal_queue");
    for (procs, ops) in [(2usize, 4usize), (3, 4), (3, 8)] {
        g.bench_with_input(
            BenchmarkId::new("queue", format!("p{procs}_ops{ops}")),
            &(procs, ops),
            |b, &(procs, ops)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let (bank, im, workload) = universal_queue(procs, procs * ops * 2, ops);
                    let mut sched = RandomScheduler::seeded(seed);
                    run_concurrent(
                        &bank,
                        &im,
                        workload,
                        &mut sched,
                        &mut FirstOutcome,
                        1_000_000,
                    )
                    .expect("run")
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
