//! Experiment E4: the hierarchies beyond consensus numbers.
//!
//! Regenerates the sub-consensus chain table and benchmarks the executable
//! object-implementation directions (capacity gate, spillover).

use std::sync::Arc;

use subconsensus_bench::harness::{BenchmarkId, Criterion};
use subconsensus_bench::{criterion_group, criterion_main};
use subconsensus_core::{sc_chain, CapacityGate, GroupedObject};
use subconsensus_objects::FetchAdd;
use subconsensus_sim::{
    run_concurrent, BaseObjects, FirstOutcome, Implementation, Op, RandomScheduler, Value,
};

fn print_table() {
    println!("\nE4 — the strict sub-consensus chain (counting-verified both directions)");
    for link in sc_chain(10) {
        println!("   {link}");
    }
    println!();
}

fn gate_fixture(n: usize, k_big: usize, limit: usize) -> (BaseObjects, Arc<dyn Implementation>) {
    let mut bank = BaseObjects::new();
    let inner = bank.add(GroupedObject::for_level(n, k_big));
    let tickets = bank.add(FetchAdd::new());
    let im: Arc<dyn Implementation> = Arc::new(CapacityGate::new(inner, tickets, limit));
    (bank, im)
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("e4_capacity_gate");
    for (n, k_big, limit, procs) in [(2usize, 3usize, 4usize, 4usize), (3, 3, 6, 6)] {
        g.bench_with_input(
            BenchmarkId::new("gate_run", format!("n{n}_limit{limit}_p{procs}")),
            &(n, k_big, limit, procs),
            |b, &(n, k_big, limit, procs)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let (bank, im) = gate_fixture(n, k_big, limit);
                    let workload: Vec<Vec<Op>> = (0..procs)
                        .map(|i| vec![Op::unary("propose", Value::Int(i as i64 + 1))])
                        .collect();
                    let mut sched = RandomScheduler::seeded(seed);
                    run_concurrent(&bank, &im, workload, &mut sched, &mut FirstOutcome, 100_000)
                        .expect("run")
                })
            },
        );
    }
    g.finish();

    // Chain construction itself (pure arithmetic, scales far).
    c.bench_function("e4_chain_arithmetic_k1000", |b| {
        b.iter(|| sc_chain(1000).len())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
