//! Experiment E2: set-consensus power of the grouped family.
//!
//! Regenerates the E2 table — worst-case distinct decisions over many
//! adversarial schedules vs. the `k+1` bound — and benchmarks full protocol
//! runs at several sizes.

use subconsensus_bench::grouped_system;
use subconsensus_bench::harness::{BenchmarkId, Criterion};
use subconsensus_bench::{criterion_group, criterion_main};
use subconsensus_sim::{run, RandomScheduler, RunOptions};

fn worst_case_distinct(n: usize, k: usize, seeds: u64) -> usize {
    let spec = grouped_system(n, k, n * (k + 1));
    let mut worst = 0;
    for seed in 0..seeds {
        let mut sched = RandomScheduler::seeded(seed);
        let mut chooser = RandomScheduler::seeded(seed + 7);
        let out = run(&spec, &mut sched, &mut chooser, &RunOptions::default()).expect("run");
        assert!(out.reached_final);
        worst = worst.max(out.decided_values().len());
    }
    worst
}

fn print_table() {
    println!("\nE2 — (n(k+1), k+1)-set consensus from one O_{{n,k}} (1000 schedules each)");
    println!(
        "{:>4} {:>4} {:>8} {:>10} {:>16}",
        "n", "k", "procs", "bound k+1", "worst observed"
    );
    for n in 2..=4usize {
        for k in 0..=3usize {
            let worst = worst_case_distinct(n, k, 1000);
            println!(
                "{:>4} {:>4} {:>8} {:>10} {:>16}",
                n,
                k,
                n * (k + 1),
                k + 1,
                worst
            );
            assert!(worst <= k + 1, "bound violated");
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("e2_protocol_run");
    for (n, k) in [(2usize, 1usize), (3, 2), (4, 3), (2, 7)] {
        let procs = n * (k + 1);
        let spec = grouped_system(n, k, procs);
        g.bench_with_input(
            BenchmarkId::new("run", format!("n{n}_k{k}_p{procs}")),
            &spec,
            |b, spec| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut sched = RandomScheduler::seeded(seed);
                    let mut chooser = RandomScheduler::seeded(seed + 7);
                    run(spec, &mut sched, &mut chooser, &RunOptions::default()).expect("run")
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
