//! Experiment E8 (extension): the Write-and-Read-Next algorithms.
//!
//! Benchmarks Algorithm 2 (set consensus from one `WRN_k`), Algorithm 3
//! (participants out of a huge namespace, with its `k^(k(k+1)/2)` object
//! table), and Algorithm 5 (the `1sWRN` construction from strong set
//! election), after a one-time correctness pass.

use std::sync::Arc;

use subconsensus_bench::harness::{BenchmarkId, Criterion};
use subconsensus_bench::{criterion_group, criterion_main};
use subconsensus_objects::{Register, RegisterArray, Snapshot};
use subconsensus_protocols::GridRenaming;
use subconsensus_sim::{
    check_linearizable, run, run_concurrent, BaseObjects, FirstOutcome, Implementation, ObjectSpec,
    Op, Protocol, RandomScheduler, RunOptions, SystemBuilder, SystemSpec, Value,
};
use subconsensus_wrn::{OneShotWrn, StrongSetElection, Wrn, WrnFromSse, WrnManyProcs, WrnPropose};

fn algorithm2_system(k: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let obj = b.add_object(Wrn::new(k));
    let p: Arc<dyn Protocol> = Arc::new(WrnPropose::new(obj));
    b.add_processes(p, (0..k).map(|i| Value::Int(100 + i as i64)));
    b.build()
}

fn algorithm3_system(k: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let regs = b.add_object(RegisterArray::new(GridRenaming::registers_needed(k)));
    let wrns = b.add_object_array(WrnManyProcs::wrn_objects_needed(k), |_| {
        Box::new(Wrn::new(k)) as Box<dyn ObjectSpec>
    });
    let p: Arc<dyn Protocol> = Arc::new(WrnManyProcs::new(regs, wrns, k));
    b.add_processes(p, (0..k).map(|i| Value::Int(1_000_000 + 7 * i as i64)));
    b.build()
}

fn algorithm5_fixture(k: usize) -> (BaseObjects, Arc<dyn Implementation>, Vec<Vec<Op>>) {
    let mut bank = BaseObjects::new();
    let r = bank.add(Snapshot::new(k));
    let o = bank.add(Snapshot::new(k));
    let doorway = bank.add(Register::with_initial(Value::Sym("opened")));
    let sse = bank.add(StrongSetElection::new(k));
    let im: Arc<dyn Implementation> = Arc::new(WrnFromSse::new(r, o, doorway, sse, k));
    let workload = (0..k)
        .map(|i| vec![Op::binary("wrn", Value::from(i), Value::Int(50 + i as i64))])
        .collect();
    (bank, im, workload)
}

fn verify_once() {
    // Algorithm 2 respects the (k-1) bound on 200 schedules at k = 5.
    let spec = algorithm2_system(5);
    for seed in 0..200 {
        let mut sched = RandomScheduler::seeded(seed);
        let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).expect("run");
        assert!(out.decided_values().len() <= 4);
    }
    // Algorithm 5 linearizes on 25 schedules at k = 3.
    let reference = OneShotWrn::new(3);
    for seed in 0..25 {
        let (bank, im, workload) = algorithm5_fixture(3);
        let mut sched = RandomScheduler::seeded(seed);
        let mut chooser = RandomScheduler::seeded(seed + 5);
        let out =
            run_concurrent(&bank, &im, workload, &mut sched, &mut chooser, 500_000).expect("run");
        assert!(check_linearizable(&out.history, &reference)
            .expect("check")
            .is_some());
    }
    println!("\nE8 — verified: Algorithm 2 bound (k=5), Algorithm 5 linearizability (k=3)\n");
}

fn bench(c: &mut Criterion) {
    verify_once();

    let mut g = c.benchmark_group("e8_algorithm2");
    for k in [3usize, 5, 8, 12] {
        let spec = algorithm2_system(k);
        g.bench_with_input(
            BenchmarkId::new("wrn_set_consensus", k),
            &spec,
            |b, spec| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut sched = RandomScheduler::seeded(seed);
                    run(spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).expect("run")
                })
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("e8_algorithm3");
    g.sample_size(10);
    for k in [2usize, 3] {
        let spec = algorithm3_system(k);
        g.bench_with_input(
            BenchmarkId::new(
                "many_procs",
                format!("k{k}_objs{}", WrnManyProcs::wrn_objects_needed(k)),
            ),
            &spec,
            |b, spec| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut sched = RandomScheduler::seeded(seed);
                    run(spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).expect("run")
                })
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("e8_algorithm5");
    for k in [3usize, 4, 6] {
        g.bench_with_input(BenchmarkId::new("wrn_from_sse", k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let (bank, im, workload) = algorithm5_fixture(k);
                let mut sched = RandomScheduler::seeded(seed);
                let mut chooser = RandomScheduler::seeded(seed + 5);
                run_concurrent(&bank, &im, workload, &mut sched, &mut chooser, 500_000)
                    .expect("run")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
