//! Experiment E7: the grouped object on real hardware atomics.
//!
//! Benchmarks lock-free vs mutex-based grouped objects under real thread
//! contention, plus the hardware-CAS consensus cell, and prints a
//! throughput-shape table (lock-free should win under contention).

use std::sync::atomic::{AtomicU64, Ordering};

use subconsensus_bench::harness::{BenchmarkId, Criterion};
use subconsensus_bench::{criterion_group, criterion_main};
use subconsensus_rt::{CasConsensus, Grouped, LockFreeGrouped, LockedGrouped};

/// Runs `threads` threads, each proposing `per_thread` values across many
/// fresh objects; returns the total number of completed proposals.
fn contend<G: Grouped, F: Fn() -> G + Sync>(make: F, threads: usize, rounds: usize) -> u64 {
    let completed = AtomicU64::new(0);
    for _ in 0..rounds {
        let obj = make();
        std::thread::scope(|s| {
            for t in 0..threads {
                let obj = &obj;
                let completed = &completed;
                s.spawn(move || {
                    if obj.propose(1 + t as u64).is_some() {
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
    }
    completed.load(Ordering::Relaxed)
}

fn bench(c: &mut Criterion) {
    println!("\nE7 — real-atomics grouped object (group 2), shape: lock-free ≥ locked\n");

    let mut g = c.benchmark_group("e7_grouped_contention");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("lock_free", threads),
            &threads,
            |b, &threads| {
                b.iter(|| contend(|| LockFreeGrouped::new(2, threads.max(2)), threads, 20))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("locked", threads),
            &threads,
            |b, &threads| b.iter(|| contend(|| LockedGrouped::new(2, threads.max(2)), threads, 20)),
        );
    }
    g.finish();

    let mut g = c.benchmark_group("e7_cas_consensus");
    g.sample_size(10);
    for threads in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("propose", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let c = CasConsensus::new();
                    std::thread::scope(|s| {
                        for t in 0..threads {
                            let c = &c;
                            s.spawn(move || c.propose(1 + t as u64));
                        }
                    });
                    c.read()
                })
            },
        );
    }
    g.finish();

    // Single-thread hot path.
    c.bench_function("e7_lock_free_solo_propose", |b| {
        b.iter_with_setup(
            || LockFreeGrouped::new(4, 1024),
            |obj| {
                for v in 1..=1024u64 {
                    let _ = obj.propose(v);
                }
                obj
            },
        )
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
