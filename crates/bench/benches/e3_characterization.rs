//! Experiment E3: the Theorem-41 implementability characterization.
//!
//! Regenerates the predicate/execution consistency table and benchmarks the
//! partition construction and the exhaustive cross-check.

use subconsensus_bench::harness::{BenchmarkId, Criterion};
use subconsensus_bench::partition_system;
use subconsensus_bench::{criterion_group, criterion_main};
use subconsensus_core::{implementable, partition_bound, ScPower};
use subconsensus_modelcheck::{max_distinct_decisions, ExploreOptions, StateGraph};
use subconsensus_sim::{run, RandomScheduler, RunOptions};

fn print_table() {
    println!("\nE3 — partition bound vs executed construction (500 schedules each)");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>16} {:>12}",
        "procs", "m", "j", "bound", "worst observed", "predicate"
    );
    for (procs, m, j) in [
        (4usize, 2usize, 1usize),
        (6, 2, 1),
        (6, 3, 2),
        (8, 3, 2),
        (9, 4, 3),
        (12, 3, 2),
    ] {
        let bound = partition_bound(procs, m, j);
        let spec = partition_system(procs, m, j);
        let mut worst = 0;
        for seed in 0..500u64 {
            let mut sched = RandomScheduler::seeded(seed);
            let mut chooser = RandomScheduler::seeded(seed + 13);
            let out = run(&spec, &mut sched, &mut chooser, &RunOptions::default()).expect("run");
            worst = worst.max(out.decided_values().len());
        }
        let pred = implementable(ScPower::new(procs, bound), ScPower::new(m, j));
        println!(
            "{:>8} {:>8} {:>8} {:>8} {:>16} {:>12}",
            procs,
            m,
            j,
            bound,
            worst,
            if pred { "yes" } else { "no" }
        );
        assert!(worst <= bound);
        assert!(pred);
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("e3");
    // The executable positive direction at growing sizes.
    for (procs, m, j) in [(6usize, 3usize, 2usize), (12, 3, 2), (16, 4, 2)] {
        let spec = partition_system(procs, m, j);
        g.bench_with_input(
            BenchmarkId::new("partition_run", format!("p{procs}_m{m}_j{j}")),
            &spec,
            |b, spec| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut sched = RandomScheduler::seeded(seed);
                    let mut chooser = RandomScheduler::seeded(seed + 13);
                    run(spec, &mut sched, &mut chooser, &RunOptions::default()).expect("run")
                })
            },
        );
    }
    // The exhaustive cross-check (incl. object nondeterminism).
    let spec = partition_system(3, 3, 2);
    g.bench_function("exhaustive_3_from_3_2", |b| {
        b.iter(|| StateGraph::explore(&spec, &ExploreOptions::default()).expect("explore"))
    });
    let spec = partition_system(4, 2, 1);
    g.bench_function("exhaustive_4_from_2cons", |b| {
        b.iter(|| {
            let graph = StateGraph::explore(&spec, &ExploreOptions::default()).expect("explore");
            max_distinct_decisions(&graph)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
