//! Experiment E9: model-checker exploration throughput.
//!
//! Times `StateGraph::explore` on the E1 (grouped family) and E4
//! (partitioned agreement) fixtures across thread counts *and shard
//! counts* (the Stern–Dill fingerprint-partitioned explorer,
//! `ExploreOptions::shards`) with symmetry reduction and partial-order
//! reduction on/off, and writes a machine-readable
//! `BENCH_modelcheck.json` at the repo root with configs/sec, peak
//! configuration counts, per-config memory, the reduction ratios and a
//! per-phase wall-time breakdown (`phases`, from an instrumented
//! post-warm-up exploration run per row with that row's exact thread and
//! shard options — see [`subconsensus_sim::ExploreMetrics`]), so perf
//! regressions are diffable across commits *and* attributable to a
//! phase. The sharded rows are where `dedup_ns`/`merge_ns` shrink: the
//! per-shard merge runs in parallel and only the tag-ordered feedback
//! replay stays sequential. A `meta` block records the hardware thread
//! count, git revision (plus a `dirty` flag when the worktree differs
//! from it) and harness iteration budgets that produced the numbers.
//!
//! Every (fixture, symmetry, por) combination also prints one `GUARD` line
//! with its deterministic facts (`peak_configs`, `edges`, `truncated`,
//! `approx_bytes_per_config`); `scripts/bench_guard.sh` compares those
//! against the committed JSON so a regression that *grows* the explored
//! graph — or its per-config memory — fails CI even in smoke mode. With
//! `INTERNER_STATS=1` each row additionally prints its hash-consing arena
//! summary on stderr.
//!
//! `BENCH_SMOKE=1` runs every kernel twice with no warm-up (see
//! `harness::smoke_mode`) so `scripts/check.sh` can catch bench bit-rot.

use std::path::Path;

use subconsensus_bench::harness::{
    smoke_mode, BenchmarkId, Criterion, SAMPLE_BUDGET, WARMUP_BUDGET,
};
use subconsensus_bench::{
    grouped_gate_sym, grouped_system, grouped_system_sym, partition_gate_sym, partition_system,
    partition_system_sym,
};
use subconsensus_modelcheck::{
    check_wait_freedom, ExploreGoal, ExploreOptions, StateGraph, StoreBackend, VerdictCause,
    VerdictQuery,
};
use subconsensus_sim::{InternerStats, StoreMetrics, SystemSpec};

const THREADS: [usize; 3] = [1, 2, 4];
/// Shard counts benched at `threads = 1` (the sharded explorer runs one
/// worker per shard; `threads` only shapes the unsharded rows).
const SHARDS: [usize; 2] = [2, 4];
const SAMPLE_SIZE: usize = 10;
/// `max_configs` bound of the verdict-goal gate fixtures: big enough that
/// the sym-off full graphs are meaningful (the p10/p12 gates truncate at
/// it), small enough to keep the full-graph baseline rows benchable.
const VERDICT_CAP: usize = 50_000;

/// One benched fixture: a system plus the `max_configs` bound its rows run
/// under (`usize::MAX`-ish default for the small fixtures; a deliberate cap
/// for the large ones, where only the reduced explorations complete).
struct Fixture {
    name: &'static str,
    spec: SystemSpec,
    max_configs: usize,
}

/// Static facts of one (fixture, symmetry, por) graph, computed once
/// outside the timing loop.
#[derive(Clone)]
struct GraphFacts {
    peak_configs: usize,
    edges: usize,
    truncated: bool,
    approx_bytes: usize,
    /// Hash-consing arena stats (`None` on the deep store).
    interner: Option<InternerStats>,
    /// Per-phase wall-time breakdown (JSON object) of one instrumented
    /// post-warm-up exploration; its `total_ns` approximates the timed
    /// rows' `median_ns`.
    phases: String,
    /// Spill counters of the instrumented run (`None` on memory-backed
    /// rows).
    store: Option<StoreMetrics>,
}

impl GraphFacts {
    /// Per-config memory of the frozen node store, floor-divided.
    fn bytes_per_config(&self) -> usize {
        self.approx_bytes
            .checked_div(self.peak_configs)
            .unwrap_or(0)
    }
}

fn facts(spec: &SystemSpec, opts: &ExploreOptions) -> GraphFacts {
    // One warm-up run, then a few instrumented ones keeping the fastest:
    // the phase timers are on only for the instrumented runs, and at
    // microsecond graph sizes a single run's clock reads and cold caches
    // would inflate `total_ns` well past the timing loop's `median_ns`.
    // Min-of-5 keeps the captured breakdown close to the timed kernels
    // (the instrumented graph is node-for-node identical to the timed
    // ones — telemetry is write-only). Smoke runs publish no numbers, so
    // one instrumented pass suffices there — this runs once per row now,
    // and the guard script runs the whole bench twice.
    StateGraph::explore(spec, opts).expect("explore");
    let reps = if smoke_mode() { 1 } else { 5 };
    let g = (0..reps)
        .map(|_| StateGraph::explore(spec, &opts.clone().with_metrics(true)).expect("explore"))
        .min_by_key(|g| g.metrics().total_ns)
        .expect("at least one instrumented run");
    let s = g.stats();
    GraphFacts {
        peak_configs: s.configs,
        edges: s.edges,
        truncated: s.truncated,
        approx_bytes: g.approx_bytes(),
        interner: g.interner_stats(),
        phases: g.metrics().phases_json(),
        store: g.metrics().store,
    }
}

/// Deterministic facts of one verdict-goal exploration: the streaming
/// verdict plus the phase telemetry proving the freeze and reverse-CSR
/// phases never ran.
#[derive(Clone, Debug, PartialEq, Eq)]
struct VerdictFacts {
    configs: usize,
    edges: usize,
    truncated: bool,
    holds: Option<bool>,
    /// Compact cause tag, e.g. `early-exit: wait-freedom refuted: …`.
    cause: String,
    phases: String,
}

fn verdict_facts(spec: &SystemSpec, opts: &ExploreOptions) -> VerdictFacts {
    // Same warm-up + min-of-reps discipline as `facts`, but the verdict
    // graph has no CSR: facts come from the verdict and the metrics, and
    // the zero freeze/reverse-CSR phase counters are asserted right here —
    // `_calls` distinguishes "skipped" from "too fast to time".
    StateGraph::explore(spec, opts).expect("explore");
    let reps = if smoke_mode() { 1 } else { 5 };
    let g = (0..reps)
        .map(|_| StateGraph::explore(spec, &opts.clone().with_metrics(true)).expect("explore"))
        .min_by_key(|g| g.metrics().total_ns)
        .expect("at least one instrumented run");
    let m = g.metrics();
    assert_eq!(
        (
            m.freeze_ns,
            m.reverse_csr_ns,
            m.freeze_calls,
            m.reverse_csr_calls
        ),
        (0, 0, 0, 0),
        "verdict-goal exploration ran a freeze or reverse-CSR phase"
    );
    let v = g
        .verdict()
        .expect("verdict-goal exploration yields a verdict");
    VerdictFacts {
        configs: v.configs,
        edges: m.edges,
        truncated: matches!(v.cause, VerdictCause::Truncated { .. }),
        holds: v.holds(),
        cause: match &v.cause {
            VerdictCause::Exhausted => "exhausted".to_string(),
            VerdictCause::EarlyExit { reason } => format!("early-exit: {reason}"),
            VerdictCause::Truncated { cap } => format!("truncated at {cap}"),
        },
        phases: m.phases_json(),
    }
}

/// `INTERNER_STATS=1` prints one arena summary per (fixture, symmetry, por)
/// row on stderr — `scripts/check.sh` runs the smoke bench with it once so
/// the diagnostic path stays exercised.
fn interner_stats_enabled() -> bool {
    subconsensus_sim::env_flag("INTERNER_STATS")
}

fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// `true` when the worktree (tracked files) differs from the recorded
/// revision — the JSON then says so instead of attributing the numbers to a
/// clean commit.
fn git_dirty() -> bool {
    std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| !o.stdout.is_empty())
        .unwrap_or(false)
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

fn main() {
    println!(
        "\nE9 — state-graph exploration throughput (symmetry quotient × partial-order \
         reduction per fixture)\n"
    );

    let fixtures = [
        // The headline symmetric fixture: 3 equal-input proposers, one
        // 6-element orbit group; the quotient must visit ≤ 1/2 of the full
        // graph (acceptance criterion — the measured ratio lands ≈ 0.37).
        Fixture {
            name: "e1_grouped_n2_k1_p3",
            spec: grouped_system_sym(2, 1, 3),
            max_configs: ExploreOptions::default().max_configs,
        },
        // The PR-1 fixture (distinct inputs): trivial symmetry, kept for
        // perf continuity across PRs; its symmetry on/off rows coincide.
        Fixture {
            name: "e1_grouped_n2_k1_p3_distinct",
            spec: grouped_system(2, 1, 3),
            max_configs: ExploreOptions::default().max_configs,
        },
        // Pid-dependent protocol, distinct inputs: the automatic-grouping
        // guard keeps symmetry trivial; POR still reduces via the blocks'
        // declared disjoint footprints.
        Fixture {
            name: "e4_partition_p3_m2_j1",
            spec: partition_system(3, 2, 1),
            max_configs: ExploreOptions::default().max_configs,
        },
        // Explicit per-block override: 2 blocks × 2 equal-input processes.
        Fixture {
            name: "e4_partition_p4_m2_j1_sym",
            spec: partition_system_sym(4, 2, 1),
            max_configs: ExploreOptions::default().max_configs,
        },
        // The larger fixture that is only tractable with symmetry on: the
        // full graph has 6561 configs and truncates at this cap, while the
        // quotient (8! orbits collapse) completes at 45.
        Fixture {
            name: "e1_grouped_n2_k3_p8_sym",
            spec: grouped_system_sym(2, 3, 8),
            max_configs: 2_000,
        },
        // The interleaving-heavy fixture that is only tractable with POR
        // on: 4 disjoint consensus blocks of 2 distinct-input processes
        // each. The block interleavings blow the full graph past this cap,
        // while POR serializes the statically-independent blocks and
        // completes (symmetry can't help: the inputs are distinct).
        Fixture {
            name: "e4_partition_p8_m2_j1",
            spec: partition_system(8, 2, 1),
            max_configs: 2_000,
        },
        // The verdict-goal gate fixtures (writer raises a flag, spinners
        // poll it): these rows are the *full-graph* baselines; the
        // streaming-verdict rows for the same fixtures live in the
        // e9_verdict section below and must explore strictly fewer
        // configurations.
        Fixture {
            name: "e9_gate_grouped_p10_sym",
            spec: grouped_gate_sym(2, 1, 10),
            max_configs: VERDICT_CAP,
        },
        Fixture {
            name: "e9_gate_partition_p12_sym",
            spec: partition_gate_sym(2, 6, 2),
            max_configs: VERDICT_CAP,
        },
    ];

    let mut c = Criterion::new();
    // Row metadata in the same order the harness records measurements:
    // (fixture, threads, shards, symmetry, por, facts, full_configs if
    // untruncated).
    #[allow(clippy::type_complexity)]
    let mut rows: Vec<(&str, usize, usize, bool, bool, GraphFacts, Option<usize>)> = Vec::new();
    for fixture in &fixtures {
        let base = ExploreOptions::with_max_configs(fixture.max_configs);
        let full = facts(&fixture.spec, &base.clone());
        let full_configs = (!full.truncated).then_some(full.peak_configs);
        let mut g = c.benchmark_group("e9_explore");
        g.sample_size(SAMPLE_SIZE);
        for symmetry in [false, true] {
            for por in [false, true] {
                let opts_row = base.clone().with_symmetry(symmetry).with_por(por);
                // Thread scaling at one shard, then shard scaling at one
                // thread; (1, 1) leads so its facts anchor the GUARD line.
                let grid = THREADS
                    .iter()
                    .map(|&t| (t, 1usize))
                    .chain(SHARDS.iter().map(|&s| (1usize, s)));
                let mut guard_facts: Option<GraphFacts> = None;
                for (threads, shards) in grid {
                    let opts = opts_row.clone().with_threads(threads).with_shards(shards);
                    // Per-row instrumented pass: phase breakdowns reflect
                    // this row's exact thread/shard shape, not a shared
                    // run's (threads=1/2/4 used to publish byte-identical
                    // `phases` objects).
                    let row_facts = facts(&fixture.spec, &opts);
                    match &guard_facts {
                        None => {
                            println!(
                                "GUARD {} {} {} {} {} {} {}",
                                fixture.name,
                                symmetry,
                                por,
                                row_facts.peak_configs,
                                row_facts.edges,
                                row_facts.truncated,
                                row_facts.bytes_per_config()
                            );
                            if interner_stats_enabled() {
                                if let Some(stats) = &row_facts.interner {
                                    eprintln!(
                                        "INTERNER {} sym={symmetry} por={por} {stats}",
                                        fixture.name
                                    );
                                }
                            }
                            guard_facts = Some(row_facts.clone());
                        }
                        Some(first) => {
                            // Thread- and shard-count independence checked
                            // right here: every row of one (fixture,
                            // symmetry, por) cell must produce the same
                            // graph with the same footprint.
                            assert_eq!(
                                (
                                    first.peak_configs,
                                    first.edges,
                                    first.truncated,
                                    first.approx_bytes
                                ),
                                (
                                    row_facts.peak_configs,
                                    row_facts.edges,
                                    row_facts.truncated,
                                    row_facts.approx_bytes
                                ),
                                "{} sym={symmetry} por={por} t{threads} x{shards}: \
                                 graph diverged from the t1 x1 row",
                                fixture.name
                            );
                        }
                    }
                    let label = format!(
                        "{}{}{}{}",
                        fixture.name,
                        if symmetry { "/sym" } else { "" },
                        if por { "/por" } else { "" },
                        if shards > 1 {
                            format!("/shards{shards}")
                        } else {
                            String::new()
                        }
                    );
                    g.bench_with_input(BenchmarkId::new(label, threads), &opts, |b, opts| {
                        b.iter(|| StateGraph::explore(&fixture.spec, opts).expect("explore"))
                    });
                    rows.push((
                        fixture.name,
                        threads,
                        shards,
                        symmetry,
                        por,
                        row_facts,
                        full_configs,
                    ));
                }
            }
        }
        g.finish();
    }

    // ------------------------------------------------------------------
    // Verdict-goal rows: the gate fixtures under a streaming wait-freedom
    // check (`ExploreGoal::Verdict`). The spin cycle refutes the query a
    // few levels in, so the exploration must stop strictly before the
    // full graph is done, skip the freeze and reverse-CSR phases
    // entirely (asserted inside `verdict_facts`), and agree with the
    // full-graph answer — all asserted here, and re-checked across shard
    // counts. One `VERDICT` line per (fixture, symmetry, por) carries
    // the deterministic facts for `scripts/bench_guard.sh` gate 3.
    // ------------------------------------------------------------------
    let verdict_fixtures = [
        ("e9_gate_grouped_p10_sym", grouped_gate_sym(2, 1, 10)),
        ("e9_gate_partition_p12_sym", partition_gate_sym(2, 6, 2)),
    ];
    #[allow(clippy::type_complexity)]
    let mut vrows: Vec<(&str, usize, bool, bool, VerdictFacts, usize)> = Vec::new();
    {
        let mut g = c.benchmark_group("e9_verdict");
        g.sample_size(SAMPLE_SIZE);
        for (name, spec) in &verdict_fixtures {
            for symmetry in [false, true] {
                for por in [false, true] {
                    let base = ExploreOptions::with_max_configs(VERDICT_CAP)
                        .with_symmetry(symmetry)
                        .with_por(por);
                    // Full-graph baseline at (threads 1, shards 1): the
                    // refutation must be visible in the expanded graph
                    // too (on the truncated sym-off rows the spin cycle
                    // still sits in the explored prefix, so the check is
                    // sound there as well).
                    let full = StateGraph::explore(spec, &base).expect("explore");
                    let full_peak = full.len();
                    assert!(
                        !check_wait_freedom(&full).is_wait_free(),
                        "{name} sym={symmetry} por={por}: full graph misses the refutation"
                    );
                    let mut anchor: Option<VerdictFacts> = None;
                    for shards in [1usize, 4] {
                        let opts =
                            base.clone()
                                .with_shards(shards)
                                .with_goal(ExploreGoal::Verdict(
                                    VerdictQuery::new().require_wait_freedom(),
                                ));
                        let vf = verdict_facts(spec, &opts);
                        assert_eq!(
                            vf.holds,
                            Some(false),
                            "{name} sym={symmetry} por={por} x{shards}: \
                             verdict disagrees with the full-graph refutation"
                        );
                        assert!(
                            vf.configs < full_peak,
                            "{name} sym={symmetry} por={por} x{shards}: verdict explored \
                             {} configs, full graph {full_peak} — no early exit",
                            vf.configs
                        );
                        match &anchor {
                            None => {
                                println!(
                                    "VERDICT {name} {symmetry} {por} {} {full_peak} {} {}",
                                    vf.configs,
                                    match vf.holds {
                                        Some(true) => "holds",
                                        Some(false) => "refuted",
                                        None => "undecided",
                                    },
                                    vf.cause
                                );
                                anchor = Some(vf.clone());
                            }
                            Some(first) => assert_eq!(
                                // `phases` carries wall-clock numbers; every
                                // other field must be shard-count invariant.
                                (
                                    first.configs,
                                    first.edges,
                                    first.truncated,
                                    first.holds,
                                    &first.cause
                                ),
                                (vf.configs, vf.edges, vf.truncated, vf.holds, &vf.cause),
                                "{name} sym={symmetry} por={por}: verdict facts \
                                 diverged between shard counts"
                            ),
                        }
                        let label = format!(
                            "{name}{}{}/verdict",
                            if symmetry { "/sym" } else { "" },
                            if por { "/por" } else { "" },
                        );
                        g.bench_with_input(BenchmarkId::new(label, shards), &opts, |b, opts| {
                            b.iter(|| StateGraph::explore(spec, opts).expect("explore"))
                        });
                        vrows.push((name, shards, symmetry, por, vf, full_peak));
                    }
                }
            }
        }
        g.finish();
    }

    // ------------------------------------------------------------------
    // Disk-store rows: the reduced fixtures re-run under `MC_STORE=disk`
    // semantics with a hot-tier budget far below their footprint, so
    // every row actually spills (asserted). The graph facts — including
    // `approx_bytes`, after the freeze-time unspill — must be identical
    // to an explicit in-memory run; one `SPILL` line per fixture feeds
    // `scripts/bench_guard.sh` gate 4.
    // ------------------------------------------------------------------
    let disk_budget: usize = 2 << 10;
    let disk_fixtures = [
        (
            "e1_grouped_n2_k3_p8_sym",
            grouped_system_sym(2, 3, 8),
            true,
            false,
            2_000usize,
        ),
        (
            "e4_partition_p8_m2_j1",
            partition_system(8, 2, 1),
            false,
            true,
            2_000usize,
        ),
    ];
    #[allow(clippy::type_complexity)]
    let mut drows: Vec<(&str, usize, bool, bool, GraphFacts, StoreMetrics)> = Vec::new();
    {
        let mut g = c.benchmark_group("e9_disk");
        g.sample_size(SAMPLE_SIZE);
        for (name, spec, symmetry, por, cap) in &disk_fixtures {
            let base = ExploreOptions::with_max_configs(*cap)
                .with_symmetry(*symmetry)
                .with_por(*por);
            // Explicitly memory-backed baseline: gate 4 re-runs this bench
            // with MC_STORE=disk in the environment, and the comparison
            // must stay disk-vs-memory there too.
            let mem = facts(spec, &base.clone().with_store(StoreBackend::Memory));
            for shards in [1usize, 4] {
                let opts = base
                    .clone()
                    .with_shards(shards)
                    .with_store(StoreBackend::Disk)
                    .with_store_budget(disk_budget);
                let row_facts = facts(spec, &opts);
                assert_eq!(
                    (mem.peak_configs, mem.edges, mem.truncated, mem.approx_bytes),
                    (
                        row_facts.peak_configs,
                        row_facts.edges,
                        row_facts.truncated,
                        row_facts.approx_bytes
                    ),
                    "{name} sym={symmetry} por={por} x{shards}: \
                     disk-store graph diverged from the in-memory one"
                );
                let sm = row_facts.store.expect("disk rows report store metrics");
                assert!(
                    sm.spilled_bytes > 0,
                    "{name} x{shards}: a {disk_budget} B hot tier must force spill"
                );
                if shards == 1 {
                    println!(
                        "SPILL {name} {symmetry} {por} {} {}",
                        sm.spilled_bytes, sm.reload_count
                    );
                }
                let label = format!(
                    "{name}{}{}/disk",
                    if *symmetry { "/sym" } else { "" },
                    if *por { "/por" } else { "" },
                );
                g.bench_with_input(BenchmarkId::new(label, shards), &opts, |b, opts| {
                    b.iter(|| StateGraph::explore(spec, opts).expect("explore"))
                });
                drows.push((name, shards, *symmetry, *por, row_facts, sm));
            }
        }
        g.finish();
    }

    // Hand-formatted JSON (no serde in the offline build).
    let meas = c.measurements();
    assert_eq!(meas.len(), rows.len() + vrows.len() + drows.len());
    let (full_meas, rest_meas) = meas.split_at(rows.len());
    let (verdict_meas, disk_meas) = rest_meas.split_at(vrows.len());
    let mut kernels = String::new();
    for (m, (name, threads, shards, symmetry, por, facts_row, full_configs)) in
        full_meas.iter().zip(&rows)
    {
        let secs = m.median_ns / 1e9;
        let configs_per_sec = if secs > 0.0 {
            facts_row.peak_configs as f64 / secs
        } else {
            0.0
        };
        // Reduction ratio: reduced size over the unreduced (symmetry off,
        // POR off) size. Baseline rows emit 1.0 by construction; `null`
        // means only that the unreduced baseline truncated, so no ratio
        // can be stated.
        let ratio = match full_configs {
            Some(fc) => json_f64(facts_row.peak_configs as f64 / *fc as f64),
            None => "null".to_string(),
        };
        let bytes_per_config = facts_row.bytes_per_config();
        // Interner-table stats of the hash-consed (default) store; `null`s
        // would mean the row ran on the deep store.
        let interner = match &facts_row.interner {
            Some(s) => s.to_json(),
            None => "null".to_string(),
        };
        if !kernels.is_empty() {
            kernels.push_str(",\n");
        }
        let phases = &facts_row.phases;
        kernels.push_str(&format!(
            "    {{\"fixture\": \"{name}\", \"threads\": {threads}, \
             \"shards\": {shards}, \
             \"symmetry\": {symmetry}, \"por\": {por}, \"peak_configs\": {}, \
             \"edges\": {}, \"truncated\": {}, \"approx_bytes_per_config\": \
             {bytes_per_config}, \"interner\": {interner}, \
             \"phases\": {phases}, \
             \"reduction_ratio\": {ratio}, \
             \"median_ns\": {:.0}, \"configs_per_sec\": {:.0}, \
             \"iters_per_sample\": {}, \"samples\": {}}}",
            facts_row.peak_configs,
            facts_row.edges,
            facts_row.truncated,
            m.median_ns,
            configs_per_sec,
            m.iters_per_sample,
            m.samples,
        ));
    }
    // Verdict-goal rows. `"goal"` sits right after `"fixture"` so the
    // per-fixture greps in scripts/bench_guard.sh (which anchor on
    // `"fixture": ..., "threads":`) can never match a verdict row.
    for (m, (name, shards, symmetry, por, vf, full_peak)) in verdict_meas.iter().zip(&vrows) {
        let secs = m.median_ns / 1e9;
        let configs_per_sec = if secs > 0.0 {
            vf.configs as f64 / secs
        } else {
            0.0
        };
        let holds = match vf.holds {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        };
        kernels.push_str(",\n");
        kernels.push_str(&format!(
            "    {{\"fixture\": \"{name}\", \"goal\": \"verdict\", \
             \"threads\": 1, \"shards\": {shards}, \
             \"symmetry\": {symmetry}, \"por\": {por}, \"peak_configs\": {}, \
             \"edges\": {}, \"truncated\": {}, \"holds\": {holds}, \
             \"cause\": \"{}\", \"full_peak_configs\": {full_peak}, \
             \"phases\": {}, \
             \"median_ns\": {:.0}, \"configs_per_sec\": {:.0}, \
             \"iters_per_sample\": {}, \"samples\": {}}}",
            vf.configs,
            vf.edges,
            vf.truncated,
            vf.cause,
            vf.phases,
            m.median_ns,
            configs_per_sec,
            m.iters_per_sample,
            m.samples,
        ));
    }
    // Disk-store rows. `"store"` sits right after `"fixture"` for the same
    // reason `"goal"` does on the verdict rows: the per-fixture greps in
    // scripts/bench_guard.sh must never match one.
    for (m, (name, shards, symmetry, por, facts_row, sm)) in disk_meas.iter().zip(&drows) {
        let secs = m.median_ns / 1e9;
        let configs_per_sec = if secs > 0.0 {
            facts_row.peak_configs as f64 / secs
        } else {
            0.0
        };
        kernels.push_str(",\n");
        kernels.push_str(&format!(
            "    {{\"fixture\": \"{name}\", \"store\": \"disk\", \
             \"store_budget\": {disk_budget}, \"threads\": 1, \
             \"shards\": {shards}, \
             \"symmetry\": {symmetry}, \"por\": {por}, \"peak_configs\": {}, \
             \"edges\": {}, \"truncated\": {}, \"approx_bytes_per_config\": {}, \
             \"spill\": {}, \"phases\": {}, \
             \"median_ns\": {:.0}, \"configs_per_sec\": {:.0}, \
             \"iters_per_sample\": {}, \"samples\": {}}}",
            facts_row.peak_configs,
            facts_row.edges,
            facts_row.truncated,
            facts_row.bytes_per_config(),
            sm.to_json(),
            facts_row.phases,
            m.median_ns,
            configs_per_sec,
            m.iters_per_sample,
            m.samples,
        ));
    }
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let meta = format!(
        "  \"meta\": {{\n    \"hardware_threads\": {hardware_threads},\n    \
         \"git_revision\": \"{}\",\n    \"dirty\": {},\n    \
         \"sample_size\": {SAMPLE_SIZE},\n    \
         \"sample_budget_ms\": {},\n    \"warmup_budget_ms\": {},\n    \
         \"smoke\": {}\n  }}",
        git_revision(),
        git_dirty(),
        SAMPLE_BUDGET.as_millis(),
        WARMUP_BUDGET.as_millis(),
        smoke_mode(),
    );
    let json = format!(
        "{{\n  \"bench\": \"modelcheck_explore\",\n{meta},\n  \"kernels\": [\n{kernels}\n  ]\n}}\n"
    );
    if smoke_mode() {
        // Smoke runs exist to exercise the code (and feed the GUARD lines
        // above to scripts/bench_guard.sh), not to publish numbers.
        println!("\nBENCH_SMOKE=1: skipping BENCH_modelcheck.json write");
        return;
    }
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_modelcheck.json");
    std::fs::write(&out, &json).expect("write BENCH_modelcheck.json");
    println!("\nwrote {}", out.display());
}
