//! Experiment E9: model-checker exploration throughput.
//!
//! Times `StateGraph::explore` on the E1 (grouped family) and E4
//! (partitioned agreement) fixtures across thread counts, and writes a
//! machine-readable `BENCH_modelcheck.json` at the repo root with
//! configs/sec, peak configuration counts and thread counts, so perf
//! regressions are diffable across commits.

use std::path::Path;

use subconsensus_bench::harness::{BenchmarkId, Criterion};
use subconsensus_bench::{grouped_system, partition_system};
use subconsensus_modelcheck::{ExploreOptions, StateGraph};

const THREADS: [usize; 3] = [1, 2, 4];

fn main() {
    println!("\nE9 — state-graph exploration throughput (identical graphs per thread count)\n");

    let fixtures = [
        ("e1_grouped_n2_k1_p3", grouped_system(2, 1, 3)),
        ("e4_partition_p3_m2_j1", partition_system(3, 2, 1)),
    ];

    let mut c = Criterion::new();
    // (fixture name, threads, peak configs, edges) per measurement, in
    // the same order the harness records them.
    let mut meta = Vec::new();
    for (name, spec) in &fixtures {
        let base = StateGraph::explore(spec, &ExploreOptions::default()).expect("explore");
        assert!(!base.is_truncated(), "{name} must fit in the default bound");
        let stats = base.stats();
        let mut g = c.benchmark_group("e9_explore");
        g.sample_size(10);
        for threads in THREADS {
            let opts = ExploreOptions::default().with_threads(threads);
            g.bench_with_input(BenchmarkId::new(*name, threads), &opts, |b, opts| {
                b.iter(|| StateGraph::explore(spec, opts).expect("explore"))
            });
            meta.push((*name, threads, stats.configs, stats.edges));
        }
        g.finish();
    }

    // Hand-formatted JSON (no serde in the offline build).
    let mut kernels = String::new();
    for (m, (name, threads, configs, edges)) in c.measurements().iter().zip(&meta) {
        let secs = m.median_ns / 1e9;
        let configs_per_sec = if secs > 0.0 {
            *configs as f64 / secs
        } else {
            0.0
        };
        if !kernels.is_empty() {
            kernels.push_str(",\n");
        }
        kernels.push_str(&format!(
            "    {{\"fixture\": \"{name}\", \"threads\": {threads}, \
             \"peak_configs\": {configs}, \"edges\": {edges}, \
             \"median_ns\": {:.0}, \"configs_per_sec\": {:.0}}}",
            m.median_ns, configs_per_sec
        ));
    }
    let json =
        format!("{{\n  \"bench\": \"modelcheck_explore\",\n  \"kernels\": [\n{kernels}\n  ]\n}}\n");
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_modelcheck.json");
    std::fs::write(&out, &json).expect("write BENCH_modelcheck.json");
    println!("\nwrote {}", out.display());
}
