//! Experiment E9: model-checker exploration throughput.
//!
//! Times `StateGraph::explore` on the E1 (grouped family) and E4
//! (partitioned agreement) fixtures across thread counts *and shard
//! counts* (the Stern–Dill fingerprint-partitioned explorer,
//! `ExploreOptions::shards`) with symmetry reduction and partial-order
//! reduction on/off, and writes a machine-readable
//! `BENCH_modelcheck.json` at the repo root with configs/sec, peak
//! configuration counts, per-config memory, the reduction ratios and a
//! per-phase wall-time breakdown (`phases`, from an instrumented
//! post-warm-up exploration run per row with that row's exact thread and
//! shard options — see [`subconsensus_sim::ExploreMetrics`]), so perf
//! regressions are diffable across commits *and* attributable to a
//! phase. The sharded rows are where `dedup_ns`/`merge_ns` shrink: the
//! per-shard merge runs in parallel and only the tag-ordered feedback
//! replay stays sequential. A `meta` block records the hardware thread
//! count, git revision (plus a `dirty` flag when the worktree differs
//! from it) and harness iteration budgets that produced the numbers.
//!
//! Every (fixture, symmetry, por) combination also prints one `GUARD` line
//! with its deterministic facts (`peak_configs`, `edges`, `truncated`,
//! `approx_bytes_per_config`); `scripts/bench_guard.sh` compares those
//! against the committed JSON so a regression that *grows* the explored
//! graph — or its per-config memory — fails CI even in smoke mode. With
//! `INTERNER_STATS=1` each row additionally prints its hash-consing arena
//! summary on stderr.
//!
//! `BENCH_SMOKE=1` runs every kernel twice with no warm-up (see
//! `harness::smoke_mode`) so `scripts/check.sh` can catch bench bit-rot.

use std::path::Path;

use subconsensus_bench::harness::{
    smoke_mode, BenchmarkId, Criterion, SAMPLE_BUDGET, WARMUP_BUDGET,
};
use subconsensus_bench::{
    grouped_system, grouped_system_sym, partition_system, partition_system_sym,
};
use subconsensus_modelcheck::{ExploreOptions, StateGraph};
use subconsensus_sim::{InternerStats, SystemSpec};

const THREADS: [usize; 3] = [1, 2, 4];
/// Shard counts benched at `threads = 1` (the sharded explorer runs one
/// worker per shard; `threads` only shapes the unsharded rows).
const SHARDS: [usize; 2] = [2, 4];
const SAMPLE_SIZE: usize = 10;

/// One benched fixture: a system plus the `max_configs` bound its rows run
/// under (`usize::MAX`-ish default for the small fixtures; a deliberate cap
/// for the large ones, where only the reduced explorations complete).
struct Fixture {
    name: &'static str,
    spec: SystemSpec,
    max_configs: usize,
}

/// Static facts of one (fixture, symmetry, por) graph, computed once
/// outside the timing loop.
#[derive(Clone)]
struct GraphFacts {
    peak_configs: usize,
    edges: usize,
    truncated: bool,
    approx_bytes: usize,
    /// Hash-consing arena stats (`None` on the deep store).
    interner: Option<InternerStats>,
    /// Per-phase wall-time breakdown (JSON object) of one instrumented
    /// post-warm-up exploration; its `total_ns` approximates the timed
    /// rows' `median_ns`.
    phases: String,
}

impl GraphFacts {
    /// Per-config memory of the frozen node store, floor-divided.
    fn bytes_per_config(&self) -> usize {
        self.approx_bytes
            .checked_div(self.peak_configs)
            .unwrap_or(0)
    }
}

fn facts(spec: &SystemSpec, opts: &ExploreOptions) -> GraphFacts {
    // One warm-up run, then a few instrumented ones keeping the fastest:
    // the phase timers are on only for the instrumented runs, and at
    // microsecond graph sizes a single run's clock reads and cold caches
    // would inflate `total_ns` well past the timing loop's `median_ns`.
    // Min-of-5 keeps the captured breakdown close to the timed kernels
    // (the instrumented graph is node-for-node identical to the timed
    // ones — telemetry is write-only). Smoke runs publish no numbers, so
    // one instrumented pass suffices there — this runs once per row now,
    // and the guard script runs the whole bench twice.
    StateGraph::explore(spec, opts).expect("explore");
    let reps = if smoke_mode() { 1 } else { 5 };
    let g = (0..reps)
        .map(|_| StateGraph::explore(spec, &opts.with_metrics(true)).expect("explore"))
        .min_by_key(|g| g.metrics().total_ns)
        .expect("at least one instrumented run");
    let s = g.stats();
    GraphFacts {
        peak_configs: s.configs,
        edges: s.edges,
        truncated: s.truncated,
        approx_bytes: g.approx_bytes(),
        interner: g.interner_stats(),
        phases: g.metrics().phases_json(),
    }
}

/// `INTERNER_STATS=1` prints one arena summary per (fixture, symmetry, por)
/// row on stderr — `scripts/check.sh` runs the smoke bench with it once so
/// the diagnostic path stays exercised.
fn interner_stats_enabled() -> bool {
    subconsensus_sim::env_flag("INTERNER_STATS")
}

fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// `true` when the worktree (tracked files) differs from the recorded
/// revision — the JSON then says so instead of attributing the numbers to a
/// clean commit.
fn git_dirty() -> bool {
    std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| !o.stdout.is_empty())
        .unwrap_or(false)
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

fn main() {
    println!(
        "\nE9 — state-graph exploration throughput (symmetry quotient × partial-order \
         reduction per fixture)\n"
    );

    let fixtures = [
        // The headline symmetric fixture: 3 equal-input proposers, one
        // 6-element orbit group; the quotient must visit ≤ 1/2 of the full
        // graph (acceptance criterion — the measured ratio lands ≈ 0.37).
        Fixture {
            name: "e1_grouped_n2_k1_p3",
            spec: grouped_system_sym(2, 1, 3),
            max_configs: ExploreOptions::default().max_configs,
        },
        // The PR-1 fixture (distinct inputs): trivial symmetry, kept for
        // perf continuity across PRs; its symmetry on/off rows coincide.
        Fixture {
            name: "e1_grouped_n2_k1_p3_distinct",
            spec: grouped_system(2, 1, 3),
            max_configs: ExploreOptions::default().max_configs,
        },
        // Pid-dependent protocol, distinct inputs: the automatic-grouping
        // guard keeps symmetry trivial; POR still reduces via the blocks'
        // declared disjoint footprints.
        Fixture {
            name: "e4_partition_p3_m2_j1",
            spec: partition_system(3, 2, 1),
            max_configs: ExploreOptions::default().max_configs,
        },
        // Explicit per-block override: 2 blocks × 2 equal-input processes.
        Fixture {
            name: "e4_partition_p4_m2_j1_sym",
            spec: partition_system_sym(4, 2, 1),
            max_configs: ExploreOptions::default().max_configs,
        },
        // The larger fixture that is only tractable with symmetry on: the
        // full graph has 6561 configs and truncates at this cap, while the
        // quotient (8! orbits collapse) completes at 45.
        Fixture {
            name: "e1_grouped_n2_k3_p8_sym",
            spec: grouped_system_sym(2, 3, 8),
            max_configs: 2_000,
        },
        // The interleaving-heavy fixture that is only tractable with POR
        // on: 4 disjoint consensus blocks of 2 distinct-input processes
        // each. The block interleavings blow the full graph past this cap,
        // while POR serializes the statically-independent blocks and
        // completes (symmetry can't help: the inputs are distinct).
        Fixture {
            name: "e4_partition_p8_m2_j1",
            spec: partition_system(8, 2, 1),
            max_configs: 2_000,
        },
    ];

    let mut c = Criterion::new();
    // Row metadata in the same order the harness records measurements:
    // (fixture, threads, shards, symmetry, por, facts, full_configs if
    // untruncated).
    #[allow(clippy::type_complexity)]
    let mut rows: Vec<(&str, usize, usize, bool, bool, GraphFacts, Option<usize>)> = Vec::new();
    for fixture in &fixtures {
        let base = ExploreOptions::with_max_configs(fixture.max_configs);
        let full = facts(&fixture.spec, &base);
        let full_configs = (!full.truncated).then_some(full.peak_configs);
        let mut g = c.benchmark_group("e9_explore");
        g.sample_size(SAMPLE_SIZE);
        for symmetry in [false, true] {
            for por in [false, true] {
                let opts_row = base.with_symmetry(symmetry).with_por(por);
                // Thread scaling at one shard, then shard scaling at one
                // thread; (1, 1) leads so its facts anchor the GUARD line.
                let grid = THREADS
                    .iter()
                    .map(|&t| (t, 1usize))
                    .chain(SHARDS.iter().map(|&s| (1usize, s)));
                let mut guard_facts: Option<GraphFacts> = None;
                for (threads, shards) in grid {
                    let opts = opts_row.with_threads(threads).with_shards(shards);
                    // Per-row instrumented pass: phase breakdowns reflect
                    // this row's exact thread/shard shape, not a shared
                    // run's (threads=1/2/4 used to publish byte-identical
                    // `phases` objects).
                    let row_facts = facts(&fixture.spec, &opts);
                    match &guard_facts {
                        None => {
                            println!(
                                "GUARD {} {} {} {} {} {} {}",
                                fixture.name,
                                symmetry,
                                por,
                                row_facts.peak_configs,
                                row_facts.edges,
                                row_facts.truncated,
                                row_facts.bytes_per_config()
                            );
                            if interner_stats_enabled() {
                                if let Some(stats) = &row_facts.interner {
                                    eprintln!(
                                        "INTERNER {} sym={symmetry} por={por} {stats}",
                                        fixture.name
                                    );
                                }
                            }
                            guard_facts = Some(row_facts.clone());
                        }
                        Some(first) => {
                            // Thread- and shard-count independence checked
                            // right here: every row of one (fixture,
                            // symmetry, por) cell must produce the same
                            // graph with the same footprint.
                            assert_eq!(
                                (
                                    first.peak_configs,
                                    first.edges,
                                    first.truncated,
                                    first.approx_bytes
                                ),
                                (
                                    row_facts.peak_configs,
                                    row_facts.edges,
                                    row_facts.truncated,
                                    row_facts.approx_bytes
                                ),
                                "{} sym={symmetry} por={por} t{threads} x{shards}: \
                                 graph diverged from the t1 x1 row",
                                fixture.name
                            );
                        }
                    }
                    let label = format!(
                        "{}{}{}{}",
                        fixture.name,
                        if symmetry { "/sym" } else { "" },
                        if por { "/por" } else { "" },
                        if shards > 1 {
                            format!("/shards{shards}")
                        } else {
                            String::new()
                        }
                    );
                    g.bench_with_input(BenchmarkId::new(label, threads), &opts, |b, opts| {
                        b.iter(|| StateGraph::explore(&fixture.spec, opts).expect("explore"))
                    });
                    rows.push((
                        fixture.name,
                        threads,
                        shards,
                        symmetry,
                        por,
                        row_facts,
                        full_configs,
                    ));
                }
            }
        }
        g.finish();
    }

    // Hand-formatted JSON (no serde in the offline build).
    let mut kernels = String::new();
    for (m, (name, threads, shards, symmetry, por, facts_row, full_configs)) in
        c.measurements().iter().zip(&rows)
    {
        let secs = m.median_ns / 1e9;
        let configs_per_sec = if secs > 0.0 {
            facts_row.peak_configs as f64 / secs
        } else {
            0.0
        };
        // Reduction ratio: reduced size over the unreduced (symmetry off,
        // POR off) size, only meaningful when the full graph completed
        // under the bound and some reduction is on.
        let ratio = match full_configs {
            Some(fc) if *symmetry || *por => json_f64(facts_row.peak_configs as f64 / *fc as f64),
            _ => "null".to_string(),
        };
        let bytes_per_config = facts_row.bytes_per_config();
        // Interner-table stats of the hash-consed (default) store; `null`s
        // would mean the row ran on the deep store.
        let interner = match &facts_row.interner {
            Some(s) => format!(
                "{{\"object_states\": {}, \"proc_states\": {}, \
                 \"hit_rate\": {}, \"table_bytes\": {}, \"state_bytes\": {}, \
                 \"bytes_saved\": {}}}",
                s.object_states,
                s.proc_states,
                json_f64(s.hit_rate()),
                s.table_bytes,
                s.state_bytes,
                s.bytes_saved(),
            ),
            None => "null".to_string(),
        };
        if !kernels.is_empty() {
            kernels.push_str(",\n");
        }
        let phases = &facts_row.phases;
        kernels.push_str(&format!(
            "    {{\"fixture\": \"{name}\", \"threads\": {threads}, \
             \"shards\": {shards}, \
             \"symmetry\": {symmetry}, \"por\": {por}, \"peak_configs\": {}, \
             \"edges\": {}, \"truncated\": {}, \"approx_bytes_per_config\": \
             {bytes_per_config}, \"interner\": {interner}, \
             \"phases\": {phases}, \
             \"reduction_ratio\": {ratio}, \
             \"median_ns\": {:.0}, \"configs_per_sec\": {:.0}, \
             \"iters_per_sample\": {}, \"samples\": {}}}",
            facts_row.peak_configs,
            facts_row.edges,
            facts_row.truncated,
            m.median_ns,
            configs_per_sec,
            m.iters_per_sample,
            m.samples,
        ));
    }
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let meta = format!(
        "  \"meta\": {{\n    \"hardware_threads\": {hardware_threads},\n    \
         \"git_revision\": \"{}\",\n    \"dirty\": {},\n    \
         \"sample_size\": {SAMPLE_SIZE},\n    \
         \"sample_budget_ms\": {},\n    \"warmup_budget_ms\": {},\n    \
         \"smoke\": {}\n  }}",
        git_revision(),
        git_dirty(),
        SAMPLE_BUDGET.as_millis(),
        WARMUP_BUDGET.as_millis(),
        smoke_mode(),
    );
    let json = format!(
        "{{\n  \"bench\": \"modelcheck_explore\",\n{meta},\n  \"kernels\": [\n{kernels}\n  ]\n}}\n"
    );
    if smoke_mode() {
        // Smoke runs exist to exercise the code (and feed the GUARD lines
        // above to scripts/bench_guard.sh), not to publish numbers.
        println!("\nBENCH_SMOKE=1: skipping BENCH_modelcheck.json write");
        return;
    }
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_modelcheck.json");
    std::fs::write(&out, &json).expect("write BENCH_modelcheck.json");
    println!("\nwrote {}", out.display());
}
