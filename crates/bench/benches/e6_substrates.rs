//! Experiment E6: substrate costs — snapshot, renaming, adopt–commit, and
//! model-checker scaling.
//!
//! Regenerates the state-space scaling table and benchmarks each substrate
//! protocol end to end.

use std::sync::Arc;

use subconsensus_bench::harness::{BenchmarkId, Criterion};
use subconsensus_bench::{criterion_group, criterion_main};
use subconsensus_bench::{grouped_system, renaming_system};
use subconsensus_modelcheck::{ExploreOptions, StateGraph};
use subconsensus_objects::RegisterArray;
use subconsensus_protocols::{AdoptCommit, SnapshotFromRegisters};
use subconsensus_sim::{
    run, run_concurrent, BaseObjects, FirstOutcome, Implementation, Op, Protocol, RandomScheduler,
    RunOptions, SystemBuilder, Value,
};

fn print_scaling_table() {
    println!("\nE6 — model-checker state-space scaling (one O_{{2,1}}, propose protocol)");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>8}",
        "procs", "configs", "edges", "terminals", "depth"
    );
    for procs in 1..=4usize {
        let spec = grouped_system(2, 1, procs);
        let g = StateGraph::explore(&spec, &ExploreOptions::default()).expect("explore");
        let s = g.stats();
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>8}",
            procs, s.configs, s.edges, s.terminals, s.max_depth
        );
    }
    println!();
}

fn snapshot_fixture(n: usize) -> (BaseObjects, Arc<dyn Implementation>, Vec<Vec<Op>>) {
    let mut bank = BaseObjects::new();
    let regs = bank.add(RegisterArray::new(n));
    let im: Arc<dyn Implementation> = Arc::new(SnapshotFromRegisters::new(regs, n));
    let workload = (0..n)
        .map(|i| {
            vec![
                Op::binary("update", Value::from(i), Value::Int(i as i64)),
                Op::new("scan"),
                Op::binary("update", Value::from(i), Value::Int(i as i64 + 10)),
                Op::new("scan"),
            ]
        })
        .collect();
    (bank, im, workload)
}

fn bench(c: &mut Criterion) {
    print_scaling_table();

    let mut g = c.benchmark_group("e6_snapshot");
    for n in [2usize, 3, 4, 6] {
        g.bench_with_input(BenchmarkId::new("scan_update", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let (bank, im, workload) = snapshot_fixture(n);
                let mut sched = RandomScheduler::seeded(seed);
                run_concurrent(
                    &bank,
                    &im,
                    workload,
                    &mut sched,
                    &mut FirstOutcome,
                    1_000_000,
                )
                .expect("run")
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e6_renaming");
    for k in [2usize, 3, 4, 6] {
        let spec = renaming_system(k);
        g.bench_with_input(BenchmarkId::new("grid", k), &spec, |b, spec| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sched = RandomScheduler::seeded(seed);
                run(spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).expect("run")
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e6_adopt_commit");
    for n in [2usize, 3, 4] {
        let mut b = SystemBuilder::new();
        let r1 = b.add_object(RegisterArray::new(n));
        let r2 = b.add_object(RegisterArray::new(n));
        let p: Arc<dyn Protocol> = Arc::new(AdoptCommit::new(r1, r2, n));
        b.add_processes(p, (0..n).map(|i| Value::Int(i as i64)));
        let spec = b.build();
        g.bench_with_input(BenchmarkId::new("ac", n), &spec, |b, spec| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sched = RandomScheduler::seeded(seed);
                run(spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).expect("run")
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e6_agreement_substrates");
    for n in [2usize, 3, 4] {
        // Immediate snapshot.
        let mut b = SystemBuilder::new();
        let snap = b.add_object(subconsensus_objects::Snapshot::new(n));
        let p: Arc<dyn Protocol> =
            Arc::new(subconsensus_protocols::ImmediateSnapshot::new(snap, n));
        b.add_processes(p, (0..n).map(|i| Value::Int(i as i64)));
        let spec = b.build();
        g.bench_with_input(
            BenchmarkId::new("immediate_snapshot", n),
            &spec,
            |b, spec| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut sched = RandomScheduler::seeded(seed);
                    run(spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).expect("run")
                })
            },
        );

        // Safe agreement.
        let mut b = SystemBuilder::new();
        let snap = b.add_object(subconsensus_objects::Snapshot::new(n));
        let p: Arc<dyn Protocol> = Arc::new(subconsensus_protocols::SafeAgreement::new(snap, n));
        b.add_processes(p, (0..n).map(|i| Value::Int(i as i64)));
        let spec = b.build();
        g.bench_with_input(BenchmarkId::new("safe_agreement", n), &spec, |b, spec| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sched = RandomScheduler::seeded(seed);
                run(spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).expect("run")
            })
        });

        // Tight renaming.
        let mut b = SystemBuilder::new();
        let snap = b.add_object(subconsensus_objects::Snapshot::new(n));
        let p: Arc<dyn Protocol> = Arc::new(subconsensus_protocols::SnapshotRenaming::new(snap));
        b.add_processes(p, (0..n).map(|i| Value::Int(100 + i as i64)));
        let spec = b.build();
        g.bench_with_input(BenchmarkId::new("tight_renaming", n), &spec, |b, spec| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sched = RandomScheduler::seeded(seed);
                run(spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).expect("run")
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e6_modelcheck_scaling");
    g.sample_size(10);
    for procs in [2usize, 3, 4] {
        let spec = grouped_system(2, 1, procs);
        g.bench_with_input(BenchmarkId::new("explore", procs), &spec, |b, spec| {
            b.iter(|| StateGraph::explore(spec, &ExploreOptions::default()).expect("explore"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
