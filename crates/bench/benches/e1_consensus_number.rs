//! Experiment E1: consensus number of the deterministic grouped family.
//!
//! Regenerates the E1 table (exhaustive consensus checks per level and
//! process count) and benchmarks the model-checking kernel behind it.

use subconsensus_bench::grouped_system;
use subconsensus_bench::harness::{BenchmarkId, Criterion};
use subconsensus_bench::{criterion_group, criterion_main};
use subconsensus_core::grouped_consensus_check;
use subconsensus_modelcheck::{ExploreOptions, StateGraph};

fn print_table() {
    println!("\nE1 — consensus number of O_{{n,k}} (exhaustive model check)");
    println!(
        "{:>4} {:>4} {:>7} {:>10} {:>14} {:>10}",
        "n", "k", "procs", "solves?", "max distinct", "configs"
    );
    for n in 1..=3usize {
        for k in 0..=1usize {
            for procs in [n, n + 1] {
                let r = grouped_consensus_check(n, k, procs).expect("check");
                println!(
                    "{:>4} {:>4} {:>7} {:>10} {:>14} {:>10}",
                    r.n,
                    r.k,
                    r.procs,
                    if r.solves_consensus { "yes" } else { "NO" },
                    r.max_distinct,
                    r.configs
                );
                assert_eq!(r.solves_consensus, procs <= n);
            }
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("e1_explore");
    for (n, k, procs) in [(2usize, 1usize, 3usize), (3, 0, 4), (2, 1, 4)] {
        let spec = grouped_system(n, k, procs);
        g.bench_with_input(
            BenchmarkId::new("statespace", format!("n{n}_k{k}_p{procs}")),
            &spec,
            |b, spec| {
                b.iter(|| StateGraph::explore(spec, &ExploreOptions::default()).expect("explore"))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
