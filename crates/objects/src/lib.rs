//! The shared-object zoo of the `subconsensus` workspace.
//!
//! Every object here is a [`subconsensus_sim::ObjectSpec`]: a sequential
//! specification over the simulator's universal [`Value`] domain that can be
//! dropped into simulated systems, used as the reference spec for
//! linearizability checking, or explored by the model checker.
//!
//! The zoo covers the landmarks of the consensus hierarchy the paper argues
//! about:
//!
//! | object | consensus number |
//! |---|---|
//! | [`Register`], [`RegisterArray`], [`Snapshot`], [`Counter`], [`MaxRegister`] | 1 |
//! | [`Swap`], [`TestAndSet`], [`FetchAdd`], [`Queue`], [`Stack`] | 2 |
//! | [`Consensus::bounded`]`(n)` | `n` |
//! | [`CompareAndSwap`], [`Consensus::unbounded`], [`StickyBit`] | ∞ |
//! | [`SetConsensus`] (`(n,k)`, nondeterministic, `k ≥ 2`) | 1 |
//!
//! The paper's own **deterministic** sub-consensus family lives in
//! `subconsensus-core`, built on top of this crate.
//!
//! [`Value`]: subconsensus_sim::Value

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod collections;
mod consensus;
mod counter;
mod misc;
mod register;
mod rmw;
mod set_consensus;
mod sink;
mod snapshot;
pub(crate) mod util;

pub use collections::{Queue, Stack};
pub use consensus::Consensus;
pub use counter::{Counter, CounterArray};
pub use misc::{MaxRegister, StickyBit};
pub use register::{Register, RegisterArray};
pub use rmw::{CompareAndSwap, FetchAdd, Swap, TestAndSet};
pub use set_consensus::{InvalidSetConsensusParams, SetConsensus};
pub use sink::Sink;
pub use snapshot::Snapshot;
