//! FIFO queues and LIFO stacks as shared objects.
//!
//! Queues and stacks have consensus number 2 and are the classic targets of
//! the *Common2* conjecture the paper refutes: stacks are implementable from
//! 2-consensus (Afek–Gafni–Morrison), queues are not known to be in general.

use subconsensus_sim::{ObjectError, ObjectSpec, Op, Outcome, Value};

use crate::util::{need_arity, tup_state, unknown_op, value_arg};

/// A FIFO queue.
///
/// Operations:
///
/// * `enq(v)` → `⊥`;
/// * `deq()` → oldest element, or `⊥` if empty.
///
/// # Examples
///
/// ```
/// use subconsensus_objects::Queue;
/// use subconsensus_sim::{ObjectSpec, Op, Value};
///
/// let q = Queue::new();
/// let s = q.apply(&q.initial_state(), &Op::unary("enq", Value::Int(1))).unwrap().remove(0).state;
/// let out = q.apply(&s, &Op::new("deq")).unwrap();
/// assert_eq!(out[0].response, Some(Value::Int(1)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Queue {
    init: Vec<Value>,
}

impl Queue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a queue pre-filled with `items` (front first).
    pub fn with_items<I: IntoIterator<Item = Value>>(items: I) -> Self {
        Queue {
            init: items.into_iter().collect(),
        }
    }
}

const QUEUE: &str = "queue";

impl ObjectSpec for Queue {
    fn type_name(&self) -> &'static str {
        QUEUE
    }

    fn initial_state(&self) -> Value {
        Value::Tup(self.init.clone())
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        let items = tup_state(QUEUE, state)?;
        match op.name {
            "enq" => {
                need_arity(QUEUE, op, 1)?;
                let v = value_arg(QUEUE, op, 0)?;
                let mut items = items.to_vec();
                items.push(v);
                Ok(vec![Outcome::ret(Value::Tup(items), Value::Nil)])
            }
            "deq" => {
                need_arity(QUEUE, op, 0)?;
                if items.is_empty() {
                    Ok(vec![Outcome::ret(state.clone(), Value::Nil)])
                } else {
                    let head = items[0].clone();
                    Ok(vec![Outcome::ret(Value::Tup(items[1..].to_vec()), head)])
                }
            }
            _ => Err(unknown_op(QUEUE, op)),
        }
    }
}

/// A LIFO stack.
///
/// Operations:
///
/// * `push(v)` → `⊥`;
/// * `pop()` → newest element, or `⊥` if empty.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stack {
    init: Vec<Value>,
}

impl Stack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a stack pre-filled with `items` (bottom first).
    pub fn with_items<I: IntoIterator<Item = Value>>(items: I) -> Self {
        Stack {
            init: items.into_iter().collect(),
        }
    }
}

const STACK: &str = "stack";

impl ObjectSpec for Stack {
    fn type_name(&self) -> &'static str {
        STACK
    }

    fn initial_state(&self) -> Value {
        Value::Tup(self.init.clone())
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        let items = tup_state(STACK, state)?;
        match op.name {
            "push" => {
                need_arity(STACK, op, 1)?;
                let v = value_arg(STACK, op, 0)?;
                let mut items = items.to_vec();
                items.push(v);
                Ok(vec![Outcome::ret(Value::Tup(items), Value::Nil)])
            }
            "pop" => {
                need_arity(STACK, op, 0)?;
                match items.split_last() {
                    None => Ok(vec![Outcome::ret(state.clone(), Value::Nil)]),
                    Some((top, rest)) => {
                        Ok(vec![Outcome::ret(Value::Tup(rest.to_vec()), top.clone())])
                    }
                }
            }
            _ => Err(unknown_op(STACK, op)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_is_fifo() {
        let q = Queue::new();
        let mut s = q.initial_state();
        for i in 1..=3 {
            s = q
                .apply(&s, &Op::unary("enq", Value::Int(i)))
                .unwrap()
                .remove(0)
                .state;
        }
        for i in 1..=3 {
            let out = q.apply(&s, &Op::new("deq")).unwrap().remove(0);
            assert_eq!(out.response, Some(Value::Int(i)));
            s = out.state;
        }
        let out = q.apply(&s, &Op::new("deq")).unwrap().remove(0);
        assert_eq!(out.response, Some(Value::Nil), "empty queue dequeues ⊥");
    }

    #[test]
    fn stack_is_lifo() {
        let st = Stack::new();
        let mut s = st.initial_state();
        for i in 1..=3 {
            s = st
                .apply(&s, &Op::unary("push", Value::Int(i)))
                .unwrap()
                .remove(0)
                .state;
        }
        for i in (1..=3).rev() {
            let out = st.apply(&s, &Op::new("pop")).unwrap().remove(0);
            assert_eq!(out.response, Some(Value::Int(i)));
            s = out.state;
        }
        let out = st.apply(&s, &Op::new("pop")).unwrap().remove(0);
        assert_eq!(out.response, Some(Value::Nil));
    }

    #[test]
    fn prefilled_constructors() {
        let q = Queue::with_items([Value::Int(9)]);
        let out = q
            .apply(&q.initial_state(), &Op::new("deq"))
            .unwrap()
            .remove(0);
        assert_eq!(out.response, Some(Value::Int(9)));
        let st = Stack::with_items([Value::Int(1), Value::Int(2)]);
        let out = st
            .apply(&st.initial_state(), &Op::new("pop"))
            .unwrap()
            .remove(0);
        assert_eq!(out.response, Some(Value::Int(2)));
    }

    #[test]
    fn bad_usage_rejected() {
        let q = Queue::new();
        assert!(q.apply(&q.initial_state(), &Op::new("pop")).is_err());
        assert!(q.apply(&Value::Int(0), &Op::new("deq")).is_err());
        let st = Stack::new();
        assert!(st.apply(&st.initial_state(), &Op::new("deq")).is_err());
        assert!(st.apply(&st.initial_state(), &Op::new("push")).is_err());
    }
}
