//! Smaller classical objects: max-registers and sticky bits.

use subconsensus_sim::{ObjectError, ObjectSpec, Op, Outcome, Value};

use crate::util::{int_arg, need_arity, unknown_op};

/// A max-register: `write_max(v)` raises the stored maximum; `read()`
/// returns it (`⊥` before the first write).
///
/// Max-registers are implementable from plain registers (Aspnes et al.), so
/// their consensus number is 1; they are a staple substrate for counters
/// and snapshots at the register level of the hierarchy.
///
/// # Examples
///
/// ```
/// use subconsensus_objects::MaxRegister;
/// use subconsensus_sim::{ObjectSpec, Op, Value};
///
/// let m = MaxRegister::new();
/// let s = m.apply(&m.initial_state(), &Op::unary("write_max", Value::Int(5))).unwrap().remove(0).state;
/// let s = m.apply(&s, &Op::unary("write_max", Value::Int(3))).unwrap().remove(0).state;
/// let out = m.apply(&s, &Op::new("read")).unwrap();
/// assert_eq!(out[0].response, Some(Value::Int(5)));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaxRegister;

impl MaxRegister {
    /// Creates an empty max-register.
    pub fn new() -> Self {
        MaxRegister
    }
}

const MAXREG: &str = "max-register";

impl ObjectSpec for MaxRegister {
    fn type_name(&self) -> &'static str {
        MAXREG
    }

    fn initial_state(&self) -> Value {
        Value::Nil
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        match op.name {
            "write_max" => {
                need_arity(MAXREG, op, 1)?;
                let v = int_arg(MAXREG, op, 0)?;
                let cur = state.as_int();
                let next = match cur {
                    Some(c) if c >= v => state.clone(),
                    _ => Value::Int(v),
                };
                Ok(vec![Outcome::ret(next, Value::Nil)])
            }
            "read" => {
                need_arity(MAXREG, op, 0)?;
                Ok(vec![Outcome::ret(state.clone(), state.clone())])
            }
            _ => Err(unknown_op(MAXREG, op)),
        }
    }
}

/// A sticky bit: `set(b)` with `b ∈ {0, 1}` sticks the first written bit
/// and returns the stuck value; `read()` observes it.
///
/// The sticky bit is the canonical *binary* consensus object: its consensus
/// number is infinite for binary inputs — the contrast primitive to the
/// paper's bounded-power deterministic objects.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StickyBit;

impl StickyBit {
    /// Creates an unset sticky bit.
    pub fn new() -> Self {
        StickyBit
    }
}

const STICKY: &str = "sticky-bit";

impl ObjectSpec for StickyBit {
    fn type_name(&self) -> &'static str {
        STICKY
    }

    fn initial_state(&self) -> Value {
        Value::Nil
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        match op.name {
            "set" => {
                need_arity(STICKY, op, 1)?;
                let b = int_arg(STICKY, op, 0)?;
                if b != 0 && b != 1 {
                    return Err(ObjectError::IllegalOp {
                        object: STICKY,
                        detail: format!("sticky bit takes 0 or 1, got {b}"),
                    });
                }
                let stuck = if state.is_nil() {
                    Value::Int(b)
                } else {
                    state.clone()
                };
                Ok(vec![Outcome::ret(stuck.clone(), stuck)])
            }
            "read" => {
                need_arity(STICKY, op, 0)?;
                Ok(vec![Outcome::ret(state.clone(), state.clone())])
            }
            _ => Err(unknown_op(STICKY, op)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subconsensus_sim::audit_determinism;

    #[test]
    fn max_register_is_monotone() {
        let m = MaxRegister::new();
        let mut s = m.initial_state();
        for (w, expect) in [(3i64, 3i64), (7, 7), (5, 7), (7, 7), (100, 100)] {
            s = m
                .apply(&s, &Op::unary("write_max", Value::Int(w)))
                .unwrap()
                .remove(0)
                .state;
            let r = m
                .apply(&s, &Op::new("read"))
                .unwrap()
                .remove(0)
                .response
                .unwrap();
            assert_eq!(r, Value::Int(expect));
        }
    }

    #[test]
    fn max_register_misuse() {
        let m = MaxRegister::new();
        assert!(m.apply(&Value::Nil, &Op::new("write_max")).is_err());
        assert!(m
            .apply(&Value::Nil, &Op::unary("write_max", Value::Sym("x")))
            .is_err());
        assert!(m.apply(&Value::Nil, &Op::new("inc")).is_err());
    }

    #[test]
    fn sticky_bit_sticks() {
        let b = StickyBit::new();
        let s0 = b.initial_state();
        let o1 = b
            .apply(&s0, &Op::unary("set", Value::Int(1)))
            .unwrap()
            .remove(0);
        assert_eq!(o1.response, Some(Value::Int(1)));
        let o2 = b
            .apply(&o1.state, &Op::unary("set", Value::Int(0)))
            .unwrap()
            .remove(0);
        assert_eq!(o2.response, Some(Value::Int(1)), "first bit sticks");
        assert!(matches!(
            b.apply(&s0, &Op::unary("set", Value::Int(2))),
            Err(ObjectError::IllegalOp { .. })
        ));
    }

    #[test]
    fn both_deterministic() {
        assert_eq!(
            audit_determinism(
                &MaxRegister::new(),
                &[Op::unary("write_max", Value::Int(2)), Op::new("read")],
                4
            )
            .unwrap(),
            None
        );
        assert_eq!(
            audit_determinism(
                &StickyBit::new(),
                &[
                    Op::unary("set", Value::Int(0)),
                    Op::unary("set", Value::Int(1))
                ],
                4
            )
            .unwrap(),
            None
        );
    }
}
