//! Increment/read counters.

use subconsensus_sim::{ObjectError, ObjectSpec, Op, Outcome, Value};

use crate::util::{int_state, need_arity, unknown_op};

/// An atomic counter supporting separate increment and read steps.
///
/// Operations:
///
/// * `inc()` → `⊥` (adds one);
/// * `read()` → current count.
///
/// This is the "counter protected register" shape used by flag-principle
/// constructions: increment first, then read, and only the process that
/// reads exactly 1 may proceed.
///
/// A counter with separate `inc` and `read` has consensus number 1.
///
/// # Examples
///
/// ```
/// use subconsensus_objects::Counter;
/// use subconsensus_sim::{ObjectSpec, Op, Value};
///
/// let c = Counter::new();
/// let s = c.apply(&c.initial_state(), &Op::new("inc")).unwrap().remove(0).state;
/// let out = c.apply(&s, &Op::new("read")).unwrap();
/// assert_eq!(out[0].response, Some(Value::Int(1)));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter;

impl Counter {
    /// Creates a counter initialized to 0.
    pub fn new() -> Self {
        Counter
    }
}

const COUNTER: &str = "counter";

impl ObjectSpec for Counter {
    fn type_name(&self) -> &'static str {
        COUNTER
    }

    fn initial_state(&self) -> Value {
        Value::Int(0)
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        let n = int_state(COUNTER, state)?;
        match op.name {
            "inc" => {
                need_arity(COUNTER, op, 0)?;
                Ok(vec![Outcome::ret(Value::Int(n + 1), Value::Nil)])
            }
            "read" => {
                need_arity(COUNTER, op, 0)?;
                Ok(vec![Outcome::ret(state.clone(), Value::Int(n))])
            }
            _ => Err(unknown_op(COUNTER, op)),
        }
    }
}

/// An array of `len` independent counters packaged as one object.
///
/// Operations: `inc(i)` → `⊥`, `read(i)` → count of cell `i`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterArray {
    len: usize,
}

impl CounterArray {
    /// Creates `len` counters, all initialized to 0.
    pub fn new(len: usize) -> Self {
        CounterArray { len }
    }

    /// Returns the number of counters.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the array has no cells.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

const COUNTER_ARRAY: &str = "counter-array";

impl ObjectSpec for CounterArray {
    fn type_name(&self) -> &'static str {
        COUNTER_ARRAY
    }

    fn initial_state(&self) -> Value {
        Value::Tup(vec![Value::Int(0); self.len])
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        need_arity(COUNTER_ARRAY, op, 1)?;
        let i = crate::util::index_arg(COUNTER_ARRAY, op, 0)?;
        if i >= self.len {
            return Err(ObjectError::IllegalOp {
                object: COUNTER_ARRAY,
                detail: format!("cell index {i} out of range 0..{}", self.len),
            });
        }
        let cur =
            state
                .index(i)
                .and_then(Value::as_int)
                .ok_or_else(|| ObjectError::TypeMismatch {
                    object: COUNTER_ARRAY,
                    detail: format!(
                        "state {state} is not an integer tuple of length {}",
                        self.len
                    ),
                })?;
        match op.name {
            "inc" => {
                let next = state
                    .with_index(i, Value::Int(cur + 1))
                    .expect("index validated above");
                Ok(vec![Outcome::ret(next, Value::Nil)])
            }
            "read" => Ok(vec![Outcome::ret(state.clone(), Value::Int(cur))]),
            _ => Err(unknown_op(COUNTER_ARRAY, op)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subconsensus_sim::audit_determinism;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        let mut s = c.initial_state();
        for i in 1..=5 {
            s = c.apply(&s, &Op::new("inc")).unwrap().remove(0).state;
            let out = c.apply(&s, &Op::new("read")).unwrap();
            assert_eq!(out[0].response, Some(Value::Int(i)));
        }
    }

    #[test]
    fn counter_rejects_unknown_op_and_bad_state() {
        let c = Counter::new();
        assert!(c.apply(&Value::Int(0), &Op::new("dec")).is_err());
        assert!(c.apply(&Value::Nil, &Op::new("inc")).is_err());
        assert!(c
            .apply(&Value::Int(0), &Op::unary("inc", Value::Nil))
            .is_err());
    }

    #[test]
    fn counter_is_deterministic() {
        let ops = [Op::new("inc"), Op::new("read")];
        assert_eq!(audit_determinism(&Counter::new(), &ops, 4).unwrap(), None);
    }

    #[test]
    fn counter_array_cells_independent() {
        let a = CounterArray::new(2);
        let s0 = a.initial_state();
        let s1 = a
            .apply(&s0, &Op::unary("inc", Value::Int(1)))
            .unwrap()
            .remove(0)
            .state;
        let r0 = a
            .apply(&s1, &Op::unary("read", Value::Int(0)))
            .unwrap()
            .remove(0)
            .response;
        let r1 = a
            .apply(&s1, &Op::unary("read", Value::Int(1)))
            .unwrap()
            .remove(0)
            .response;
        assert_eq!(r0, Some(Value::Int(0)));
        assert_eq!(r1, Some(Value::Int(1)));
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn counter_array_bounds() {
        let a = CounterArray::new(1);
        let s = a.initial_state();
        assert!(matches!(
            a.apply(&s, &Op::unary("inc", Value::Int(1))),
            Err(ObjectError::IllegalOp { .. })
        ));
    }
}
